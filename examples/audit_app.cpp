// audit_app: a single-app security audit, the workflow an app-security
// auditor (e.g. working against OWASP MASVS) would run with this toolkit:
//
//   1. download the app from its store,
//   2. static analysis — embedded certificates, pin hashes, NSC/ATS configs,
//   3. dynamic differential analysis — which destinations actually pin,
//   4. instrumented re-run — can the pinned traffic be inspected at all,
//   5. verdict: what the pinning protects and what it hides.
#include <cstdio>

#include "dynamicanalysis/pipeline.h"
#include "report/table.h"
#include "staticanalysis/static_report.h"
#include "store/crawler.h"
#include "store/generator.h"

int main() {
  using namespace pinscope;

  store::EcosystemConfig config;
  config.seed = 77;
  config.scale = 0.05;
  const store::Ecosystem eco = store::Ecosystem::Generate(config);

  // Pick a finance-style pinning app to audit (ground truth only used to
  // choose an interesting target; the audit itself is pure measurement).
  const appmodel::App* target = nullptr;
  const auto& apps = eco.apps(appmodel::Platform::kAndroid);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (eco.truth(appmodel::Platform::kAndroid, i).runtime_pinning) {
      target = &apps[i];
      break;
    }
  }
  if (target == nullptr) {
    std::printf("no pinning app in this corpus\n");
    return 1;
  }

  // 1. Acquire the APK.
  store::GPlayCli cli(eco);
  const auto downloaded = cli.Download(target->meta.app_id);
  std::printf("== Auditing %s (%s, category %s) ==\n\n",
              target->meta.display_name.c_str(), target->meta.app_id.c_str(),
              target->meta.category.c_str());

  // 2. Static analysis.
  staticanalysis::StaticAnalysisOptions sopts;
  sopts.ct_log = &eco.ct_log();
  const auto sreport = staticanalysis::AnalyzeStatically(**downloaded, sopts);
  std::printf("[static] %zu files scanned (%zu bytes)\n",
              sreport.scan.files_scanned, sreport.scan.bytes_scanned);
  std::printf("[static] embedded certificates: %zu, pin hashes: %zu "
              "(%zu resolved via CT log)\n",
              sreport.scan.certificates.size(), sreport.pins_total,
              sreport.pins_resolved);
  for (const auto& cert : sreport.scan.certificates) {
    std::printf("         cert '%.*s' at %s\n",
                static_cast<int>(cert.cert.subject().common_name().size()),
                cert.cert.subject().common_name().data(), cert.path.c_str());
  }
  for (const auto& pin : sreport.scan.pins) {
    if (pin.parsed.has_value()) {
      std::printf("         pin  %s at %s\n", pin.pin_string.c_str(),
                  pin.path.c_str());
    }
  }
  if (sreport.nsc.uses_nsc) {
    std::printf("[static] Network Security Config present (%s pins)\n",
                sreport.nsc.PinsViaNsc() ? "with" : "without");
    for (const std::string& domain : sreport.nsc.MisconfiguredDomains()) {
      std::printf("         WARNING: overridePins neutralizes pins for %s\n",
                  domain.c_str());
    }
  }

  // 3-4. Dynamic differential + circumvention.
  const auto dreport = dynamicanalysis::RunDynamicAnalysis(**downloaded, eco.world());
  std::printf("\n[dynamic] app %s at run time\n",
              dreport.AppPins() ? "PINS" : "does not pin");
  report::TextTable table;
  table.SetHeader({"Destination", "Pinned", "Circumvented", "Weak ciphers",
                   "PII observed"});
  for (const auto& dest : dreport.destinations) {
    std::string pii;
    for (const auto t : dest.pii) {
      if (!pii.empty()) pii += ", ";
      pii += appmodel::PiiTypeName(t);
    }
    table.AddRow({dest.hostname, dest.pinned ? "yes" : "no",
                  dest.pinned ? (dest.circumvented ? "yes" : "NO — opaque") : "-",
                  dest.weak_cipher ? "yes" : "no", pii.empty() ? "-" : pii});
  }
  std::printf("%s\n", table.Render().c_str());

  // 5. Verdict.
  int opaque = 0;
  for (const auto& dest : dreport.destinations) {
    if (dest.pinned && !dest.circumvented) ++opaque;
  }
  std::printf("[verdict] %zu pinned destination(s); %d resist instrumentation "
              "(custom TLS stack) and stay opaque to this audit.\n",
              dreport.PinnedDestinations().size(), opaque);
  return 0;
}

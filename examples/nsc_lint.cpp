// nsc_lint: a Network-Security-Config auditor in the style of Possemato &
// Fratantonio's USENIX'20 study — walk a corpus of APKs, parse every NSC,
// and report the misconfigurations that weaken or neutralize pinning.
#include <cstdio>
#include <map>

#include "staticanalysis/nsc_analyzer.h"
#include "store/generator.h"

int main() {
  using namespace pinscope;

  store::EcosystemConfig config;
  config.seed = 2020;
  config.scale = 0.5;
  std::printf("Generating corpus (scale %.2f)...\n\n", config.scale);
  const store::Ecosystem eco = store::Ecosystem::Generate(config);

  int apps_total = 0;
  int apps_with_nsc = 0;
  int apps_with_nsc_pins = 0;
  std::map<std::string, int> finding_counts;
  int findings_shown = 0;

  for (const appmodel::App& app : eco.apps(appmodel::Platform::kAndroid)) {
    ++apps_total;
    const staticanalysis::NscAnalysis nsc = staticanalysis::AnalyzeNsc(app.package);
    if (!nsc.uses_nsc) continue;
    ++apps_with_nsc;
    if (nsc.PinsViaNsc()) ++apps_with_nsc_pins;

    const auto findings = nsc.LintFindings();
    for (const std::string& finding : findings) {
      // Aggregate by finding class (text before the first " for "/" is ").
      std::string cls = finding;
      for (const char* cut : {" for ", " is ", " ("}) {
        const std::size_t pos = cls.find(cut);
        if (pos != std::string::npos) cls = cls.substr(0, pos);
      }
      ++finding_counts[cls];
      if (findings_shown < 12) {
        std::printf("  [%s] %s\n", app.meta.app_id.c_str(), finding.c_str());
        ++findings_shown;
      }
    }
  }

  std::printf("\n== NSC audit summary ==\n");
  std::printf("APKs scanned:        %d\n", apps_total);
  std::printf("APKs with an NSC:    %d (%.1f%%)\n", apps_with_nsc,
              100.0 * apps_with_nsc / apps_total);
  std::printf("NSCs that pin:       %d\n", apps_with_nsc_pins);
  std::printf("\nFinding classes:\n");
  for (const auto& [cls, count] : finding_counts) {
    std::printf("  %3d × %s\n", count, cls.c_str());
  }
  std::printf(
      "\n(The paper's §2.2 context: Possemato et al. found 13.02%% of apps using\n"
      "network security policies, only 0.62%% pinning, and recurring\n"
      "overridePins-style misconfigurations — the classes this linter flags.)\n");
  return 0;
}

// mitm_lab: a step-by-step walkthrough of why the differential detector
// works — one server, one client, four scenarios:
//
//   1. direct connection (baseline),
//   2. interception of an unpinned client (proxy CA trusted → decrypted),
//   3. interception of a pinning client (pin failure → the §4.2.2 signals),
//   4. instrumented client (validation stubbed → pinned traffic readable).
#include <cstdio>

#include "dynamicanalysis/detector.h"
#include "net/flow.h"
#include "net/mitm_proxy.h"
#include "tls/handshake.h"
#include "util/rng.h"
#include "x509/root_store.h"

namespace {

using namespace pinscope;

void Describe(const char* title, const tls::ConnectionOutcome& outcome) {
  std::printf("-- %s --\n", title);
  std::printf("   %s, %zu records, failure=%s\n",
              TlsVersionName(outcome.version).data(), outcome.records.size(),
              tls::FailureReasonName(outcome.failure).data());
  for (const tls::Record& r : outcome.records) {
    std::printf("   %s %-17s (actually %-17s) %4u bytes\n",
                r.direction == tls::Direction::kClientToServer ? "C→S" : "S→C",
                tls::ContentTypeName(r.wire_type).data(),
                tls::ContentTypeName(r.actual_type).data(), r.wire_length);
  }
  const net::Flow flow =
      net::FlowFromOutcome("bank.example.com", outcome, 0, net::FlowOrigin::kApp,
                           /*observer_decrypted=*/false);
  std::printf("   detector: used=%s failed=%s\n\n",
              dynamicanalysis::IsUsedConnection(flow) ? "YES" : "no",
              dynamicanalysis::IsFailedConnection(flow) ? "YES" : "no");
}

}  // namespace

int main() {
  util::Rng rng(404);

  // The genuine server: bank.example.com under a public CA.
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.veridian");
  x509::IssueSpec spec;
  spec.subject.set_common_name("bank.example.com");
  spec.san_dns = {"bank.example.com"};
  spec.not_before = -30 * util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  tls::ServerEndpoint server;
  server.hostname = "bank.example.com";
  server.chain = {ca.Issue(spec, rng), ca.certificate()};

  // The test device trusts the OS store *plus* the proxy CA (the paper's
  // instrumented-device setup).
  net::MitmProxy proxy;
  x509::RootStore device_store = x509::PublicCaCatalog::Instance().IosStore();
  device_store.AddRoot(proxy.CaCertificate());

  tls::AppPayload payload;
  payload.plaintext = "POST /transfer amount=100 to=alice";

  // 1. Baseline: direct connection.
  tls::ClientTlsConfig plain_client;
  plain_client.root_store = &device_store;
  Describe("1. direct connection (no interception)",
           tls::SimulateDirectConnection(plain_client, server, payload, 0, rng));

  // 2. Intercepting an unpinned client.
  auto intercepted = proxy.Intercept(plain_client, server, payload, 0, rng);
  Describe("2. MITM of unpinned client (proxy CA trusted)", intercepted.outcome);
  std::printf("   proxy observed plaintext: %s\n\n",
              intercepted.decrypted ? intercepted.outcome.plaintext_sent.c_str()
                                    : "(nothing)");

  // 3. Intercepting a pinning client.
  tls::ClientTlsConfig pinning_client = plain_client;
  pinning_client.pins.AddRule(
      {"bank.example.com", false,
       {tls::Pin::ForCertificate(ca.certificate(), tls::PinForm::kSpkiSha256)}});
  auto pinned = proxy.Intercept(pinning_client, server, payload, 0, rng);
  Describe("3. MITM of pinning client (pin mismatch)", pinned.outcome);
  std::printf("   proxy observed plaintext: %s\n\n",
              pinned.decrypted ? pinned.outcome.plaintext_sent.c_str()
                               : "(nothing — connection aborted)");

  // 4. Instrumentation: stub out validation like a Frida hook would.
  tls::ClientTlsConfig hooked = pinning_client;
  hooked.pins = {};
  hooked.validation.check_hostname = false;
  hooked.validation.check_expiry = false;
  hooked.validation.check_signatures = false;
  hooked.validation.require_trusted_root = false;
  auto circumvented = proxy.Intercept(hooked, server, payload, 0, rng);
  Describe("4. MITM with TLS library hooked (pinning disabled)",
           circumvented.outcome);
  std::printf("   proxy observed plaintext: %s\n",
              circumvented.decrypted ? circumvented.outcome.plaintext_sent.c_str()
                                     : "(nothing)");
  return 0;
}

// cross_platform_diff: compare the pinning posture of one app's Android and
// iOS builds — the paper's §5.1 head-to-head methodology on a single app.
#include <cstdio>

#include "core/analyses.h"
#include "core/study.h"
#include "stats/jaccard.h"
#include "store/generator.h"

int main() {
  using namespace pinscope;

  store::EcosystemConfig config;
  config.seed = 31;
  config.scale = 0.05;
  const store::Ecosystem eco = store::Ecosystem::Generate(config);

  core::Study study(eco);
  study.Run();
  const auto pairs = core::AnalyzeCommonPairs(study);

  // Walk the Common dataset and print a diff for every app that pins
  // anywhere.
  int shown = 0;
  for (const core::PairAnalysis& pa : pairs) {
    if (pa.mode == core::PairAnalysis::Mode::kNone) continue;
    ++shown;
    std::printf("== %s ==\n", pa.name.c_str());

    auto print_set = [](const char* label, const std::set<std::string>& hosts) {
      std::printf("  %s:", label);
      if (hosts.empty()) std::printf(" (none)");
      for (const std::string& h : hosts) std::printf(" %s", h.c_str());
      std::printf("\n");
    };
    print_set("Android pins", pa.pinned_android);
    print_set("iOS pins    ", pa.pinned_ios);

    const char* verdict = "";
    switch (pa.verdict) {
      case core::PairAnalysis::Verdict::kConsistent:
        verdict = pa.identical_sets ? "CONSISTENT (identical pinned sets)"
                                    : "CONSISTENT (shared pinned domain)";
        break;
      case core::PairAnalysis::Verdict::kInconsistent:
        verdict = "INCONSISTENT — a domain pinned on one platform is served "
                  "unpinned on the other";
        break;
      case core::PairAnalysis::Verdict::kInconclusive:
        verdict = "INCONCLUSIVE — pinned domains never co-observed";
        break;
      case core::PairAnalysis::Verdict::kNone:
        break;
    }
    std::printf("  Jaccard(pinned sets) = %.2f\n", pa.jaccard);
    if (pa.android_pinned_unpinned_on_ios > 0) {
      std::printf("  %.0f%% of Android-pinned domains observed UNPINNED on iOS\n",
                  100.0 * pa.android_pinned_unpinned_on_ios);
    }
    if (pa.ios_pinned_unpinned_on_android > 0) {
      std::printf("  %.0f%% of iOS-pinned domains observed UNPINNED on Android\n",
                  100.0 * pa.ios_pinned_unpinned_on_android);
    }
    std::printf("  verdict: %s\n\n", verdict);
    if (shown == 12) break;
  }
  std::printf("(%d pinning apps diffed; same-developer builds frequently "
              "disagree — the paper's key §5.1 finding)\n",
              shown);
  return 0;
}

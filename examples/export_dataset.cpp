// export_dataset: write the study's per-app measurements as JSON Lines —
// the toolkit's equivalent of the paper's public dataset release
// (https://github.com/NEU-SNS/app-tls-pinning).
//
//   $ ./export_dataset [output.jsonl]
//
// One JSON object per (platform, app): metadata, static findings, dynamic
// per-destination verdicts, circumvention and PII observations.
#include <cstdio>
#include <fstream>

#include "core/study.h"
#include "report/csv_writer.h"
#include "report/json_writer.h"
#include "store/generator.h"

namespace {

using namespace pinscope;

std::string AppRecord(const core::AppResult& r) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("app_id");
  w.String(r.app->meta.app_id);
  w.Key("platform");
  w.String(PlatformName(r.app->meta.platform));
  w.Key("category");
  w.String(r.app->meta.category);

  w.Key("static");
  w.BeginObject();
  w.Key("embedded_certificates");
  w.Int(static_cast<std::int64_t>(r.static_report.scan.certificates.size()));
  w.Key("pin_hashes");
  w.Int(static_cast<std::int64_t>(r.static_report.pins_total));
  w.Key("pin_hashes_resolved_via_ct");
  w.Int(static_cast<std::int64_t>(r.static_report.pins_resolved));
  w.Key("potential_pinning");
  w.Bool(r.static_report.PotentialPinning());
  w.Key("config_pinning");
  w.Bool(r.static_report.ConfigPinning());
  w.EndObject();

  w.Key("dynamic");
  w.BeginObject();
  w.Key("pins_at_runtime");
  w.Bool(r.dynamic_report.AppPins());
  w.Key("destinations");
  w.BeginArray();
  for (const auto& dest : r.dynamic_report.destinations) {
    w.BeginObject();
    w.Key("hostname");
    w.String(dest.hostname);
    w.Key("pinned");
    w.Bool(dest.pinned);
    w.Key("used_baseline");
    w.Bool(dest.used_baseline);
    w.Key("weak_ciphers");
    w.Bool(dest.weak_cipher);
    w.Key("circumvented");
    w.Bool(dest.circumvented);
    w.Key("chain_length");
    w.Int(static_cast<std::int64_t>(dest.served_chain.size()));
    w.Key("pii");
    w.BeginArray();
    for (const auto t : dest.pii) w.String(appmodel::PiiTypeName(t));
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.EndObject();
  return w.TakeString();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "pinscope_dataset.jsonl";
  const std::string csv_path =
      path.substr(0, path.find_last_of('.')) + "_destinations.csv";

  store::EcosystemConfig config;
  config.seed = 42;
  config.scale = 0.1;
  std::printf("Generating ecosystem and running the study (scale %.2f)...\n",
              config.scale);
  const store::Ecosystem eco = store::Ecosystem::Generate(config);
  core::Study study(eco);
  study.Run();

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  int records = 0;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const core::AppResult* r : study.AllResults(p)) {
      out << AppRecord(*r) << "\n";
      ++records;
    }
  }
  std::printf("Wrote %d app records to %s\n", records, path.c_str());

  // Flat per-destination CSV companion (the release's second format).
  report::CsvWriter csv;
  csv.SetHeader({"app_id", "platform", "hostname", "pinned", "used_baseline",
                 "weak_ciphers", "circumvented"});
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const core::AppResult* r : study.AllResults(p)) {
      for (const auto& dest : r->dynamic_report.destinations) {
        csv.AddRow({r->app->meta.app_id, std::string(PlatformName(p)),
                    dest.hostname, dest.pinned ? "1" : "0",
                    dest.used_baseline ? "1" : "0", dest.weak_cipher ? "1" : "0",
                    dest.circumvented ? "1" : "0"});
      }
    }
  }
  std::ofstream csv_out(csv_path);
  const std::size_t csv_rows = csv.rows();
  csv_out << csv.TakeString();
  std::printf("Wrote %zu destination rows to %s\n", csv_rows, csv_path.c_str());
  return 0;
}

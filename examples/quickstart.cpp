// Quickstart: generate a small app ecosystem, run the full measurement study,
// and print a pinning prevalence summary.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API: Ecosystem::Generate → Study →
// analyses.
#include <cstdio>

#include "core/analyses.h"
#include "core/study.h"
#include "report/table.h"
#include "store/generator.h"
#include "util/strings.h"

int main() {
  using namespace pinscope;

  // 1. A scaled-down ecosystem (10% of the paper's corpus) — servers, CT log,
  //    app stores, and calibrated apps.
  store::EcosystemConfig config;
  config.seed = 2022;
  config.scale = 0.10;
  std::printf("Generating ecosystem (scale %.2f)...\n", config.scale);
  const store::Ecosystem eco = store::Ecosystem::Generate(config);
  std::printf("  %zu Android apps, %zu iOS apps, %zu servers, %zu CT-logged certs\n",
              eco.apps(appmodel::Platform::kAndroid).size(),
              eco.apps(appmodel::Platform::kIos).size(), eco.world().size(),
              eco.ct_log().size());

  // 2. Run the paper's pipeline: static scan + differential dynamic analysis
  //    + circumvention + PII inspection for every dataset member.
  std::printf("Running measurement study...\n");
  core::Study study(eco);
  study.Run();

  // 3. Table-3-style prevalence summary.
  report::TextTable table;
  table.SetHeader({"Dataset", "Platform", "Apps", "Pin at run time",
                   "Ship pin material", "Pin via NSC"});
  for (const store::DatasetId id : store::AllDatasets()) {
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      const core::PrevalenceRow row = core::ComputePrevalence(study, id, p);
      table.AddRow({std::string(store::DatasetName(id)), std::string(PlatformName(p)),
                    std::to_string(row.total), std::to_string(row.dynamic_pinning),
                    std::to_string(row.embedded_static),
                    p == appmodel::Platform::kAndroid
                        ? std::to_string(row.config_pinning)
                        : std::string("-")});
    }
  }
  std::printf("\n%s\n", table.Render().c_str());

  // 4. One headline number per platform.
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const core::CircumventionStats c = core::ComputeCircumvention(study, p);
    std::printf("%s: %d unique pinned destinations, %.0f%% circumventable via "
                "TLS-library hooks\n",
                PlatformName(p).data(), c.pinned_unique, 100.0 * c.Rate());
  }
  return 0;
}

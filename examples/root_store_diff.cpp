// root_store_diff: compare the trust anchors shipped by AOSP, iOS, Mozilla
// and an OEM-augmented Android image — the root-store heterogeneity ("A
// Tangled Mass", Vallina-Rodriguez et al.) that motivates certificate pinning
// in the first place (§2.1).
#include <cstdio>
#include <set>

#include "report/table.h"
#include "util/clock.h"
#include "x509/root_store.h"

int main() {
  using namespace pinscope;

  const auto& catalog = x509::PublicCaCatalog::Instance();
  const x509::RootStore mozilla = catalog.MozillaStore();
  const x509::RootStore aosp = catalog.AospStore();
  const x509::RootStore ios = catalog.IosStore();
  const x509::RootStore oem = catalog.OemAugmentedStore();

  auto names = [](const x509::RootStore& store) {
    std::set<std::string> out;
    for (const auto& root : store.roots()) out.insert(std::string(root.subject().common_name()));
    return out;
  };
  const auto moz = names(mozilla), android = names(aosp), apple = names(ios),
             vendor = names(oem);

  report::TextTable table;
  table.SetHeader({"Anchor", "Mozilla", "AOSP", "iOS", "OEM image", "Status"});
  std::set<std::string> all = vendor;
  all.insert(moz.begin(), moz.end());
  all.insert(apple.begin(), apple.end());
  for (const std::string& cn : all) {
    std::string status = "-";
    for (const auto& store : {&mozilla, &aosp, &ios, &oem}) {
      if (const auto cert = store->FindBySubject(cn)) {
        if (cert->not_after() < util::kStudyEpoch) status = "EXPIRED";
      }
    }
    table.AddRow({cn, moz.contains(cn) ? "x" : "", android.contains(cn) ? "x" : "",
                  apple.contains(cn) ? "x" : "", vendor.contains(cn) ? "x" : "",
                  status});
  }
  std::printf("%s", table.Render().c_str());

  int aosp_only = 0, expired = 0;
  for (const auto& root : aosp.roots()) {
    if (!moz.contains(std::string(root.subject().common_name()))) ++aosp_only;
    if (root.not_after() < util::kStudyEpoch) ++expired;
  }
  std::printf(
      "\n%d anchors ship in AOSP but not in Mozilla's store; %d AOSP anchor(s)\n"
      "are expired; the OEM image adds %zu more. Any one of these keys can mint\n"
      "certificates every stock Android app trusts — which is exactly the attack\n"
      "surface certificate pinning removes (§2.1).\n",
      aosp_only, expired, vendor.size() - android.size());
  return 0;
}

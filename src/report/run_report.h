// Run reports: one human-readable (Markdown) and one machine-readable
// (JSON) document explaining a finished study run (DESIGN.md §12).
//
// A run report merges three sources — the final MetricsRegistry snapshot
// (counters, cache-family gauges, phase timings), the deterministic decision
// journal, and the per-app verdicts as exported — into a single
// verdict-attribution view: for every app, *why* the pipeline reached its
// verdict ("PINS because NSC pin-set for host X + dynamic divergence at Y"),
// with each reason backed by journal events.
//
// The verdict/attribution content is deterministic (it derives from exported
// results and the journal). Wall-clock metrics sections are of course
// schedule-dependent — they describe the run, not the results.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"

namespace pinscope::report {

/// One app's final verdicts, in export order (core::CollectAppVerdicts
/// builds these from a finished Study).
struct AppVerdict {
  std::string platform;
  std::string app_id;
  bool pins_at_runtime = false;   ///< Dynamic differential verdict.
  bool potential_pinning = false; ///< Static embedded-certificate signal.
  bool config_pinning = false;    ///< NSC / ATS declarative pin-sets.
  std::vector<std::string> pinned_hosts;
};

/// Inputs to the report generator. The metrics and journal pointers are
/// optional — absent sections are omitted, not faked.
struct RunReportInput {
  std::string title = "pinscope run report";
  std::vector<AppVerdict> verdicts;
  const obs::MetricsSnapshot* metrics = nullptr;
  /// Journal events sorted by logical keys (EventLog::SortedEvents()).
  const std::vector<obs::LogEvent>* events = nullptr;
};

/// Attribution lines for one app's verdicts, derived from its journal
/// events (exposed for tests; the writers call it per verdict).
[[nodiscard]] std::vector<std::string> AttributionFor(
    const AppVerdict& verdict, const std::vector<obs::LogEvent>& events);

/// Renders the Markdown report (`--report-out=report.md`).
[[nodiscard]] std::string WriteRunReportMarkdown(const RunReportInput& input);

/// Renders the JSON companion document.
[[nodiscard]] std::string WriteRunReportJson(const RunReportInput& input);

/// The JSON companion path for a Markdown report path: swaps a trailing
/// ".md" for ".json", otherwise appends ".json".
[[nodiscard]] std::string ReportJsonPathFor(std::string_view markdown_path);

}  // namespace pinscope::report

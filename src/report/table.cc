#include "report/table.h"

#include <algorithm>

#include "util/strings.h"

namespace pinscope::report {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      cell.resize(widths[i], ' ');
      out += cell;
      if (i + 1 < widths.size()) out += "  ";
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
    return out;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string HeatCell(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string out = "[";
  out += std::string(static_cast<std::size_t>(filled), '#');
  out += std::string(static_cast<std::size_t>(width - filled), ' ');
  out += "] ";
  out += util::Percent(fraction, 0);
  return out;
}

std::string SectionHeader(const std::string& title) {
  std::string out = "\n=== " + title + " ===\n";
  return out;
}

}  // namespace pinscope::report

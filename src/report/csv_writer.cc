#include "report/csv_writer.h"

#include "util/error.h"
#include "util/strings.h"

namespace pinscope::report {

std::string CsvEscape(std::string_view field) {
  const bool needs_quotes = field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  return "\"" + util::ReplaceAll(field, "\"", "\"\"") + "\"";
}

namespace {

std::string RenderRow(const std::vector<std::string>& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += CsvEscape(row[i]);
  }
  out += "\r\n";
  return out;
}

}  // namespace

void CsvWriter::SetHeader(std::vector<std::string> columns) {
  if (columns_ != 0) throw util::Error("CsvWriter: header already set");
  if (columns.empty()) throw util::Error("CsvWriter: empty header");
  columns_ = columns.size();
  out_ += RenderRow(columns);
}

void CsvWriter::AddRow(const std::vector<std::string>& row) {
  if (columns_ == 0) throw util::Error("CsvWriter: SetHeader first");
  if (row.size() != columns_) {
    throw util::Error("CsvWriter: row has " + std::to_string(row.size()) +
                      " fields, header has " + std::to_string(columns_));
  }
  out_ += RenderRow(row);
  ++rows_;
}

std::string CsvWriter::TakeString() { return std::move(out_); }

}  // namespace pinscope::report

#include "report/json_writer.h"

#include <cstdio>

#include "util/error.h"
#include "util/strings.h"

namespace pinscope::report {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject && !pending_key_) {
    throw util::Error("JsonWriter: value inside object requires a Key()");
  }
  if (stack_.back() == Frame::kArray) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
  pending_key_ = false;
}

void JsonWriter::Key(std::string_view key) {
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw util::Error("JsonWriter: Key() outside an object");
  }
  if (pending_key_) throw util::Error("JsonWriter: consecutive Key() calls");
  if (needs_comma_.back()) out_.push_back(',');
  needs_comma_.back() = true;
  out_ += "\"" + JsonEscape(key) + "\":";
  pending_key_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  if (stack_.empty() || stack_.back() != Frame::kObject || pending_key_) {
    throw util::Error("JsonWriter: unbalanced EndObject");
  }
  out_.push_back('}');
  stack_.pop_back();
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw util::Error("JsonWriter: unbalanced EndArray");
  }
  out_.push_back(']');
  stack_.pop_back();
  needs_comma_.pop_back();
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += "\"" + JsonEscape(value) + "\"";
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value, int digits) {
  BeforeValue();
  out_ += util::FormatDouble(value, digits);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

std::string JsonWriter::TakeString() {
  if (!stack_.empty()) throw util::Error("JsonWriter: unbalanced document");
  return std::move(out_);
}

}  // namespace pinscope::report

// Performance reports: the run-autopsy twin of run_report.h (DESIGN §17).
//
// Where the run report explains *verdicts* (why each app was judged as it
// was), the perf report explains *wall-clock*: utilization per worker, the
// critical path through the stage chains, the idle-time taxonomy, the
// slowest apps, and the contended locks — everything obs::Analyze derives
// from a finished Timeline, rendered once as Markdown for humans
// (`--perf-report-out=perf.md`) and once as a JSON companion for tooling.
//
// Wall-clock content is inherently schedule-dependent; the writers are
// still deterministic *given* an Autopsy (same input, same bytes), which
// is what the writer tests pin down.
#pragma once

#include <string>
#include <string_view>

#include "obs/autopsy.h"

namespace pinscope::report {

/// Inputs to the perf-report writers. `autopsy` is required; the resolver
/// (optional) turns item keys into platform/app labels.
struct PerfReportInput {
  std::string title = "pinscope perf report";
  const obs::Autopsy* autopsy = nullptr;
  obs::ItemResolver resolver;
};

/// Renders the Markdown perf report.
[[nodiscard]] std::string WritePerfReportMarkdown(const PerfReportInput& input);

/// Renders the JSON companion document.
[[nodiscard]] std::string WritePerfReportJson(const PerfReportInput& input);

/// The JSON companion path for a Markdown perf-report path: swaps a
/// trailing ".md" for ".json", otherwise appends ".json".
[[nodiscard]] std::string PerfReportJsonPathFor(std::string_view markdown_path);

}  // namespace pinscope::report

// BENCH_*.json comparator — the repo's perf-regression gate (DESIGN §17).
//
// The bench trajectory (BENCH_static_scan.json, BENCH_dynamic.json,
// BENCH_stream.json) is committed, but until now nothing machine-checked
// that a change didn't regress it. CompareBenchJson flattens two bench
// documents into dotted numeric paths, classifies each metric's direction
// from its name (wall-times and byte counts regress upward, speedups
// regress downward, counts are informational), and flags any classified
// metric that moved the wrong way by more than the threshold. Consumed by
// `tools/bench_diff.cc` (standalone gate: non-zero exit on regression) and
// by the bench harnesses themselves (PINSCOPE_BENCH_CHECK=1 compares a
// fresh run against the committed baseline before overwriting it).
//
// The parser is a minimal recursive-descent JSON reader: arrays are
// skipped wholesale (telemetry timelines differ in length run to run),
// booleans compare as claims (true -> false is always a regression), and
// anything non-numeric is ignored.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pinscope::report {

/// How a metric's value relates to "better".
enum class MetricDirection {
  kLowerIsBetter,   ///< Wall-times, byte counts, ratios, drop counts.
  kHigherIsBetter,  ///< Speedups, hit counts, boolean claims.
  kInformational,   ///< Workers, app counts, seeds — never gate.
};

/// Classifies a flattened dotted path ("streaming.large_ms") by its last
/// segment. Exposed for tests.
[[nodiscard]] MetricDirection DirectionForPath(std::string_view path);

struct BenchCompareOptions {
  /// A classified metric moving the wrong way by more than this percentage
  /// of the baseline is a regression.
  double max_regress_pct = 10.0;
};

/// One metric that moved (either way) beyond the threshold.
struct BenchDelta {
  std::string path;
  double baseline = 0;
  double current = 0;
  double delta_pct = 0;  ///< Signed (current - baseline) / baseline * 100.
};

struct BenchCompareResult {
  std::vector<BenchDelta> regressions;   ///< Wrong-way moves > threshold.
  std::vector<BenchDelta> improvements;  ///< Right-way moves > threshold.
  std::size_t compared = 0;              ///< Classified metrics in both docs.
  std::vector<std::string> errors;       ///< Parse failures (gate fails too).

  [[nodiscard]] bool ok() const {
    return errors.empty() && regressions.empty();
  }
};

/// Compares two bench JSON documents (baseline vs current).
[[nodiscard]] BenchCompareResult CompareBenchJson(
    std::string_view baseline, std::string_view current,
    const BenchCompareOptions& options = {});

/// Human-readable summary of a comparison (one line per finding).
[[nodiscard]] std::string RenderBenchCompare(const BenchCompareResult& result);

/// Flattens a bench JSON document to sorted "path value" lines (numeric
/// leaves only, booleans as 0/1, arrays skipped). Exposed for tests.
[[nodiscard]] std::vector<std::pair<std::string, double>> FlattenBenchJson(
    std::string_view json, std::vector<std::string>* errors = nullptr);

}  // namespace pinscope::report

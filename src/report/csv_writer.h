// Minimal RFC 4180-style CSV emission (the second format of the dataset
// export alongside JSON Lines).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pinscope::report {

/// Quotes a CSV field when needed (commas, quotes, newlines).
[[nodiscard]] std::string CsvEscape(std::string_view field);

/// Row-oriented CSV builder.
class CsvWriter {
 public:
  /// Sets the header row (must be called before AddRow; fixes column count).
  void SetHeader(std::vector<std::string> columns);

  /// Adds a data row; must match the header's column count.
  void AddRow(const std::vector<std::string>& row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_; }

  /// The document with CRLF line endings.
  [[nodiscard]] std::string TakeString();

 private:
  std::string out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace pinscope::report

#include "report/bench_compare.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace pinscope::report {

namespace {

/// Minimal recursive-descent JSON reader that only keeps numeric leaves
/// (and booleans, as 0/1) under dotted paths. Arrays are skipped: bench
/// timelines vary in length run to run and carry no gateable claim.
class Flattener {
 public:
  Flattener(std::string_view json, std::vector<std::string>* errors)
      : p_(json.data()), end_(json.data() + json.size()), errors_(errors) {}

  std::map<std::string, double> Run() {
    SkipWs();
    Value("");
    SkipWs();
    if (p_ != end_) Fail("trailing characters after document");
    return std::move(values_);
  }

 private:
  void Fail(const std::string& what) {
    if (!failed_ && errors_ != nullptr) {
      errors_->push_back("bench json parse error: " + what);
    }
    failed_ = true;
    p_ = end_;
  }

  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size()) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }

  /// Parses one string token; returns its (unescaped-enough) content. Bench
  /// keys never use escapes, but we tolerate them by skipping.
  std::string String() {
    std::string out;
    if (!Consume('"')) {
      Fail("expected string");
      return out;
    }
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\' && p_ + 1 != end_) {
        out += *(p_ + 1);
        p_ += 2;
      } else {
        out += *p_;
        ++p_;
      }
    }
    if (!Consume('"')) Fail("unterminated string");
    return out;
  }

  void Value(const std::string& path) {
    SkipWs();
    if (p_ == end_) {
      Fail("unexpected end of document");
      return;
    }
    if (*p_ == '{') {
      Object(path);
    } else if (*p_ == '[') {
      SkipArray();
    } else if (*p_ == '"') {
      (void)String();
    } else if (ConsumeWord("true")) {
      if (!path.empty()) values_[path] = 1.0;
    } else if (ConsumeWord("false")) {
      if (!path.empty()) values_[path] = 0.0;
    } else if (ConsumeWord("null")) {
    } else {
      Number(path);
    }
  }

  void Object(const std::string& path) {
    (void)Consume('{');
    SkipWs();
    if (Consume('}')) return;
    for (;;) {
      SkipWs();
      const std::string key = String();
      if (failed_) return;
      SkipWs();
      if (!Consume(':')) {
        Fail("expected ':' after key '" + key + "'");
        return;
      }
      Value(path.empty() ? key : path + "." + key);
      if (failed_) return;
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return;
      Fail("expected ',' or '}' in object");
      return;
    }
  }

  /// Arrays carry no gated metrics; balance brackets/braces and move on
  /// (strings are skipped token-wise so brackets inside them don't count).
  void SkipArray() {
    int depth = 0;
    while (p_ != end_) {
      const char c = *p_;
      if (c == '"') {
        (void)String();
        continue;
      }
      ++p_;
      if (c == '[' || c == '{') ++depth;
      if (c == ']' || c == '}') {
        --depth;
        if (depth == 0) return;
      }
    }
    Fail("unterminated array");
  }

  void Number(const std::string& path) {
    const char* start = p_;
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '-' ||
            *p_ == '+' || *p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      ++p_;
    }
    if (start == p_) {
      Fail("unexpected character");
      return;
    }
    char* parsed_end = nullptr;
    const std::string token(start, p_);
    const double value = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end == token.c_str()) {
      Fail("bad number '" + token + "'");
      return;
    }
    if (!path.empty()) values_[path] = value;
  }

  const char* p_;
  const char* end_;
  std::vector<std::string>* errors_;
  std::map<std::string, double> values_;
  bool failed_ = false;
};

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string_view LastSegment(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string_view::npos ? path : path.substr(dot + 1);
}

}  // namespace

MetricDirection DirectionForPath(std::string_view path) {
  const std::string_view key = LastSegment(path);
  // Boolean claims flattened to 0/1 ("flat_within_2x",
  // "exports_byte_identical", "within_2pct"): true going false regresses.
  if (key.find("within") != std::string_view::npos ||
      key.find("identical") != std::string_view::npos) {
    return MetricDirection::kHigherIsBetter;
  }
  if (EndsWith(key, "speedup") || EndsWith(key, "_hits") ||
      EndsWith(key, "throughput") || EndsWith(key, "_per_sec")) {
    return MetricDirection::kHigherIsBetter;
  }
  if (EndsWith(key, "_ms") || EndsWith(key, "_us") || EndsWith(key, "_ns") ||
      EndsWith(key, "bytes") || EndsWith(key, "ratio") ||
      EndsWith(key, "_pct") || EndsWith(key, "dropped") ||
      EndsWith(key, "_misses")) {
    return MetricDirection::kLowerIsBetter;
  }
  return MetricDirection::kInformational;
}

std::vector<std::pair<std::string, double>> FlattenBenchJson(
    std::string_view json, std::vector<std::string>* errors) {
  Flattener flattener(json, errors);
  const std::map<std::string, double> values = flattener.Run();
  return {values.begin(), values.end()};
}

BenchCompareResult CompareBenchJson(std::string_view baseline,
                                    std::string_view current,
                                    const BenchCompareOptions& options) {
  BenchCompareResult result;
  const auto base = FlattenBenchJson(baseline, &result.errors);
  const auto cur = FlattenBenchJson(current, &result.errors);
  std::map<std::string, double> cur_map(cur.begin(), cur.end());
  for (const auto& [path, base_value] : base) {
    const MetricDirection direction = DirectionForPath(path);
    if (direction == MetricDirection::kInformational) continue;
    const auto it = cur_map.find(path);
    if (it == cur_map.end()) continue;  // sections may come and go across PRs
    ++result.compared;
    const double cur_value = it->second;
    double delta_pct = 0;
    if (base_value != 0.0) {
      delta_pct = (cur_value - base_value) / std::fabs(base_value) * 100.0;
    } else if (cur_value != 0.0) {
      // From exactly zero, any wrong-way move is effectively infinite; a
      // lower-is-better metric leaving zero regresses, the reverse improves.
      delta_pct = cur_value > 0 ? 1e9 : -1e9;
    }
    const bool wrong_way = direction == MetricDirection::kLowerIsBetter
                               ? delta_pct > 0
                               : delta_pct < 0;
    if (std::fabs(delta_pct) <= options.max_regress_pct) continue;
    BenchDelta delta{path, base_value, cur_value, delta_pct};
    if (wrong_way) {
      result.regressions.push_back(std::move(delta));
    } else {
      result.improvements.push_back(std::move(delta));
    }
  }
  const auto by_magnitude = [](const BenchDelta& a, const BenchDelta& b) {
    const double ma = std::fabs(a.delta_pct);
    const double mb = std::fabs(b.delta_pct);
    return ma != mb ? ma > mb : a.path < b.path;
  };
  std::sort(result.regressions.begin(), result.regressions.end(), by_magnitude);
  std::sort(result.improvements.begin(), result.improvements.end(),
            by_magnitude);
  return result;
}

std::string RenderBenchCompare(const BenchCompareResult& result) {
  std::string out;
  char line[256];
  for (const std::string& error : result.errors) {
    out += "ERROR " + error + "\n";
  }
  for (const BenchDelta& d : result.regressions) {
    std::snprintf(line, sizeof(line), "REGRESSION %-40s %12.3f -> %12.3f (%+.1f%%)\n",
                  d.path.c_str(), d.baseline, d.current, d.delta_pct);
    out += line;
  }
  for (const BenchDelta& d : result.improvements) {
    std::snprintf(line, sizeof(line), "improved   %-40s %12.3f -> %12.3f (%+.1f%%)\n",
                  d.path.c_str(), d.baseline, d.current, d.delta_pct);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%zu metrics compared, %zu regressions, %zu improvements\n",
                result.compared, result.regressions.size(),
                result.improvements.size());
  out += line;
  return out;
}

}  // namespace pinscope::report

#include "report/perf_report.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "report/json_writer.h"

namespace pinscope::report {

namespace {

std::string Ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", us / 1000.0);
  return buf;
}

std::string Pct(double part, double whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                whole > 0 ? 100.0 * part / whole : 0.0);
  return buf;
}

obs::ItemLabel Resolve(const PerfReportInput& input, std::uint64_t key) {
  return input.resolver ? input.resolver(key) : obs::FallbackLabel(key);
}

/// Critical-path segments ranked by duration (the "top-K" view); the path
/// itself stays in run order in the autopsy.
std::vector<const obs::CriticalSegment*> RankedSegments(
    const obs::Autopsy& autopsy) {
  std::vector<const obs::CriticalSegment*> ranked;
  ranked.reserve(autopsy.critical_path.size());
  for (const obs::CriticalSegment& segment : autopsy.critical_path) {
    ranked.push_back(&segment);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const obs::CriticalSegment* a, const obs::CriticalSegment* b) {
              const std::int64_t da = a->duration_us();
              const std::int64_t db = b->duration_us();
              return da != db ? da > db : a->start_us < b->start_us;
            });
  return ranked;
}

}  // namespace

std::string WritePerfReportMarkdown(const PerfReportInput& input) {
  std::string out = "# " + input.title + "\n\n";
  if (input.autopsy == nullptr) {
    out += "No autopsy input.\n";
    return out;
  }
  const obs::Autopsy& a = *input.autopsy;

  out += "## Run\n\n";
  out += "- wall clock: " + Ms(a.wall_us) + " ms\n";
  out += "- workers: " + std::to_string(a.workers) + "\n";
  out += "- stage intervals: " + std::to_string(a.intervals_seen) +
         " recorded, " + std::to_string(a.intervals_sampled) + " sampled";
  out += a.sampled ? " (reservoir-sampled: interval sections are a uniform "
                     "sample; per-worker buckets stay exact)\n"
                   : " (exhaustive)\n";
  out += "\n";

  out += "## Critical path\n\n";
  if (a.critical_path.empty()) {
    out += "No stage intervals recorded.\n\n";
  } else {
    out += "Longest dependency-respecting chain: " + Ms(a.critical_path_us) +
           " ms across " + std::to_string(a.critical_path.size()) +
           " segments (" + Pct(a.critical_path_us, a.wall_us) +
           " of wall clock).\n\n";
    out += "| rank | platform | app | stage | worker | ms | % wall |\n";
    out += "|---:|---|---|---|---:|---:|---:|\n";
    const auto ranked = RankedSegments(a);
    const std::size_t k = std::min<std::size_t>(ranked.size(), 10);
    for (std::size_t i = 0; i < k; ++i) {
      const obs::CriticalSegment& s = *ranked[i];
      const obs::ItemLabel label = Resolve(input, s.key);
      out += "| " + std::to_string(i + 1) + " | " + label.platform + " | " +
             label.app + " | " + s.stage + " | " + std::to_string(s.worker) +
             " | " + Ms(static_cast<double>(s.duration_us())) + " | " +
             Pct(static_cast<double>(s.duration_us()), a.wall_us) + " |\n";
    }
    out += "\n";
  }

  out += "## Worker utilization\n\n";
  if (a.worker_breakdown.empty()) {
    out += "No per-worker intervals recorded.\n\n";
  } else {
    out += "| worker | stages | busy | queue-starved | backpressure | "
           "lock-wait | tail-join | other | busy % |\n";
    out += "|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
    for (const obs::WorkerBreakdown& w : a.worker_breakdown) {
      out += "| " + std::to_string(w.worker) + " | " +
             std::to_string(w.stage_count) + " | " + Ms(w.busy_us) + " | " +
             Ms(w.queue_starved_us) + " | " + Ms(w.backpressure_us) + " | " +
             Ms(w.lock_wait_us) + " | " + Ms(w.tail_join_us) + " | " +
             Ms(w.other_us) + " | " + Pct(w.busy_us, a.wall_us) + " |\n";
    }
    out += "\nAll durations in ms; buckets partition each worker's wall "
           "clock (DESIGN §17 idle taxonomy).\n\n";
  }

  out += "## Slowest apps\n\n";
  if (a.slowest.empty()) {
    out += "No stage intervals recorded.\n\n";
  } else {
    out += "| platform | app | total ms | stages |\n";
    out += "|---|---|---:|---|\n";
    for (const obs::SlowItem& item : a.slowest) {
      const obs::ItemLabel label = Resolve(input, item.key);
      std::string stages;
      for (const auto& [stage, us] : item.stages) {
        if (!stages.empty()) stages += ", ";
        stages += stage + " " + Ms(us);
      }
      out += "| " + label.platform + " | " + label.app + " | " +
             Ms(item.total_us) + " | " + stages + " |\n";
    }
    out += "\n";
  }

  out += "## Lock contention\n\n";
  if (a.locks.empty()) {
    out += "No contended locks recorded.\n";
  } else {
    out += "| lock | contended | total wait ms | p99 wait µs |\n";
    out += "|---|---:|---:|---:|\n";
    for (const obs::LockProfile& lock : a.locks) {
      char p99[32];
      std::snprintf(p99, sizeof(p99), "%.1f", lock.p99_wait_us);
      out += "| " + lock.name + " | " + std::to_string(lock.contended) +
             " | " + Ms(lock.total_wait_us) + " | " + p99 + " |\n";
    }
  }
  return out;
}

std::string WritePerfReportJson(const PerfReportInput& input) {
  JsonWriter w;
  w.BeginObject();
  w.Key("title");
  w.String(input.title);
  if (input.autopsy != nullptr) {
    const obs::Autopsy& a = *input.autopsy;
    w.Key("run");
    w.BeginObject();
    w.Key("wall_us");
    w.Double(a.wall_us, 1);
    w.Key("workers");
    w.Int(static_cast<std::int64_t>(a.workers));
    w.Key("intervals_seen");
    w.Int(static_cast<std::int64_t>(a.intervals_seen));
    w.Key("intervals_sampled");
    w.Int(static_cast<std::int64_t>(a.intervals_sampled));
    w.Key("sampled");
    w.Bool(a.sampled);
    w.EndObject();

    w.Key("critical_path");
    w.BeginObject();
    w.Key("total_us");
    w.Double(a.critical_path_us, 1);
    w.Key("segments");
    w.BeginArray();
    for (const obs::CriticalSegment& s : a.critical_path) {
      const obs::ItemLabel label = Resolve(input, s.key);
      w.BeginObject();
      w.Key("platform");
      w.String(label.platform);
      w.Key("app");
      w.String(label.app);
      w.Key("stage");
      w.String(s.stage);
      w.Key("worker");
      w.Int(s.worker);
      w.Key("start_us");
      w.Int(s.start_us);
      w.Key("duration_us");
      w.Int(s.duration_us());
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();

    w.Key("workers_breakdown");
    w.BeginArray();
    for (const obs::WorkerBreakdown& b : a.worker_breakdown) {
      w.BeginObject();
      w.Key("worker");
      w.Int(b.worker);
      w.Key("stages");
      w.Int(static_cast<std::int64_t>(b.stage_count));
      w.Key("busy_us");
      w.Double(b.busy_us, 1);
      w.Key("queue_starved_us");
      w.Double(b.queue_starved_us, 1);
      w.Key("backpressure_us");
      w.Double(b.backpressure_us, 1);
      w.Key("lock_wait_us");
      w.Double(b.lock_wait_us, 1);
      w.Key("tail_join_us");
      w.Double(b.tail_join_us, 1);
      w.Key("other_us");
      w.Double(b.other_us, 1);
      w.EndObject();
    }
    w.EndArray();

    w.Key("slowest");
    w.BeginArray();
    for (const obs::SlowItem& item : a.slowest) {
      const obs::ItemLabel label = Resolve(input, item.key);
      w.BeginObject();
      w.Key("platform");
      w.String(label.platform);
      w.Key("app");
      w.String(label.app);
      w.Key("total_us");
      w.Double(item.total_us, 1);
      w.Key("stages");
      w.BeginObject();
      for (const auto& [stage, us] : item.stages) {
        w.Key(stage);
        w.Double(us, 1);
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();

    w.Key("locks");
    w.BeginArray();
    for (const obs::LockProfile& lock : a.locks) {
      w.BeginObject();
      w.Key("name");
      w.String(lock.name);
      w.Key("contended");
      w.Int(static_cast<std::int64_t>(lock.contended));
      w.Key("total_wait_us");
      w.Double(lock.total_wait_us, 1);
      w.Key("p99_wait_us");
      w.Double(lock.p99_wait_us, 1);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.TakeString();
}

std::string PerfReportJsonPathFor(std::string_view markdown_path) {
  std::string out(markdown_path);
  if (out.size() >= 3 && out.compare(out.size() - 3, 3, ".md") == 0) {
    out.replace(out.size() - 3, 3, ".json");
  } else {
    out += ".json";
  }
  return out;
}

}  // namespace pinscope::report

// A minimal JSON emitter.
//
// The paper releases its dataset and per-app results publicly; pinscope's
// equivalent is a JSON export of measurements (see examples/export_dataset).
// The writer is a small streaming builder — no DOM, no dependencies — with
// correct string escaping.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pinscope::report {

/// Escapes a string for inclusion inside JSON quotes.
[[nodiscard]] std::string JsonEscape(std::string_view s);

/// Streaming JSON builder. Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name"); w.String("value");
///   w.Key("items"); w.BeginArray(); w.Int(1); w.Int(2); w.EndArray();
///   w.EndObject();
///   std::string json = w.TakeString();
/// The writer inserts commas automatically; nesting errors throw.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key (must be inside an object).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void Double(double value, int digits = 4);
  void Bool(bool value);
  void Null();

  /// Finalizes and returns the document. The writer must be balanced.
  [[nodiscard]] std::string TakeString();

 private:
  enum class Frame { kObject, kArray };
  void BeforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace pinscope::report

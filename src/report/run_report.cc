#include "report/run_report.h"

#include <cstdio>
#include <map>

#include "report/json_writer.h"

namespace pinscope::report {

namespace {

/// Renders a value for prose (unquoted strings, bare numbers/booleans).
std::string Prose(const obs::LogValue& v) {
  switch (v.type()) {
    case obs::LogValue::Type::kString: return v.AsString();
    case obs::LogValue::Type::kInt: return std::to_string(v.AsInt());
    case obs::LogValue::Type::kUint: return std::to_string(v.AsUint());
    case obs::LogValue::Type::kBool: return v.AsBool() ? "true" : "false";
    case obs::LogValue::Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", v.AsDouble());
      return buf;
    }
  }
  return std::string();
}

std::string ProseField(const obs::LogEvent& e, std::string_view key) {
  const obs::LogValue* v = obs::FindField(e, key);
  return v == nullptr ? std::string() : Prose(*v);
}

bool BoolField(const obs::LogEvent& e, std::string_view key) {
  const obs::LogValue* v = obs::FindField(e, key);
  return v != nullptr && v->type() == obs::LogValue::Type::kBool && v->AsBool();
}

std::string Ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", us / 1000.0);
  return buf;
}

}  // namespace

std::vector<std::string> AttributionFor(
    const AppVerdict& verdict, const std::vector<obs::LogEvent>& events) {
  std::vector<std::string> reasons;
  std::size_t pins_embedded = 0;
  std::size_t certs_embedded = 0;
  for (const obs::LogEvent& e : events) {
    if (e.platform != verdict.platform || e.app_id != verdict.app_id) continue;
    if (e.name == "static.pin_found") {
      ++pins_embedded;
    } else if (e.name == "static.cert_found") {
      ++certs_embedded;
    } else if (e.name == "nsc.pin_set") {
      reasons.push_back("NSC pin-set for " + ProseField(e, "domain") + " (" +
                        ProseField(e, "source") + ")");
    } else if (e.name == "ats.pinned_domain") {
      reasons.push_back("ATS pinned domain " + ProseField(e, "domain") + " (" +
                        ProseField(e, "source") + ")");
    } else if (e.name == "dynamic.divergence" && BoolField(e, "pinned")) {
      reasons.push_back("dynamic divergence at " + ProseField(e, "host") +
                        ": " + ProseField(e, "rationale"));
    } else if (e.name == "frida.circumvented") {
      reasons.push_back("circumvented via instrumentation at " +
                        ProseField(e, "host"));
    }
  }
  // Aggregate the (possibly many) scanner hits into one line each.
  if (pins_embedded > 0) {
    reasons.insert(reasons.begin(),
                   std::to_string(pins_embedded) + " embedded pin string" +
                       (pins_embedded == 1 ? "" : "s"));
  }
  if (certs_embedded > 0) {
    reasons.insert(reasons.begin(),
                   std::to_string(certs_embedded) + " embedded certificate" +
                       (certs_embedded == 1 ? "" : "s"));
  }
  return reasons;
}

std::string WriteRunReportMarkdown(const RunReportInput& input) {
  std::string out = "# " + input.title + "\n\n";

  // --- Corpus overview ---
  std::size_t android = 0;
  std::size_t ios = 0;
  std::size_t pins = 0;
  std::size_t potential = 0;
  std::size_t config = 0;
  for (const AppVerdict& v : input.verdicts) {
    (v.platform == "android" ? android : ios) += 1;
    if (v.pins_at_runtime) ++pins;
    if (v.potential_pinning) ++potential;
    if (v.config_pinning) ++config;
  }
  out += "## Corpus\n\n";
  out += "- apps analyzed: " + std::to_string(input.verdicts.size()) +
         " (android " + std::to_string(android) + ", ios " +
         std::to_string(ios) + ")\n";
  out += "- pins at runtime: " + std::to_string(pins) + "\n";
  out += "- potential pinning (static): " + std::to_string(potential) + "\n";
  out += "- config pinning (NSC/ATS): " + std::to_string(config) + "\n\n";

  // --- Verdict attribution ---
  out += "## Verdict attribution\n\n";
  out += "| app | platform | verdict | attributing evidence |\n";
  out += "|---|---|---|---|\n";
  static const std::vector<obs::LogEvent> kNoEvents;
  const std::vector<obs::LogEvent>& events =
      input.events != nullptr ? *input.events : kNoEvents;
  for (const AppVerdict& v : input.verdicts) {
    std::string verdict = v.pins_at_runtime ? "PINS" : "no pinning";
    if (v.potential_pinning) verdict += " +static";
    if (v.config_pinning) verdict += " +config";
    std::string evidence;
    for (const std::string& reason : AttributionFor(v, events)) {
      if (!evidence.empty()) evidence += "; ";
      evidence += reason;
    }
    if (evidence.empty()) evidence = "-";
    out += "| " + v.app_id + " | " + v.platform + " | " + verdict + " | " +
           evidence + " |\n";
  }
  out += "\n";

  // --- Pipeline metrics (wall-clock; describes the run, not the results) ---
  if (input.metrics != nullptr) {
    std::map<std::string, std::map<std::string, std::uint64_t>> caches;
    for (const auto& [name, value] : input.metrics->gauges) {
      if (name.rfind("cache.", 0) != 0) continue;
      const std::size_t dot = name.find('.', 6);
      if (dot == std::string::npos) continue;
      caches[name.substr(6, dot - 6)][name.substr(dot + 1)] = value;
    }
    if (!caches.empty()) {
      out += "## Caches\n\n";
      out += "| family | lookups | hits | entries |\n|---|---|---|---|\n";
      for (const auto& [family, fields] : caches) {
        auto field = [&](const char* key) -> std::uint64_t {
          const auto it = fields.find(key);
          return it == fields.end() ? 0 : it->second;
        };
        out += "| " + family + " | " + std::to_string(field("lookups")) +
               " | " + std::to_string(field("hits")) + " | " +
               std::to_string(field("entries")) + " |\n";
      }
      out += "\n";
    }
    bool header = false;
    for (const auto& [name, h] : input.metrics->histograms) {
      if (name.rfind("phase.", 0) != 0 || h.count == 0) continue;
      if (!header) {
        out += "## Phases (wall time)\n\n";
        out += "| phase | count | total ms | mean ms |\n|---|---|---|---|\n";
        header = true;
      }
      out += "| " + name.substr(6) + " | " + std::to_string(h.count) + " | " +
             Ms(h.sum) + " | " + Ms(h.Mean()) + " |\n";
    }
    if (header) out += "\n";
  }

  // --- Journal overview ---
  if (input.events != nullptr) {
    std::map<std::string, std::size_t> by_name;
    for (const obs::LogEvent& e : *input.events) ++by_name[e.name];
    out += "## Journal\n\n";
    out += "- events recorded: " + std::to_string(input.events->size()) + "\n";
    for (const auto& [name, count] : by_name) {
      out += "  - " + name + ": " + std::to_string(count) + "\n";
    }
  }
  return out;
}

std::string WriteRunReportJson(const RunReportInput& input) {
  static const std::vector<obs::LogEvent> kNoEvents;
  const std::vector<obs::LogEvent>& events =
      input.events != nullptr ? *input.events : kNoEvents;

  JsonWriter w;
  w.BeginObject();
  w.Key("title");
  w.String(input.title);

  w.Key("verdicts");
  w.BeginArray();
  for (const AppVerdict& v : input.verdicts) {
    w.BeginObject();
    w.Key("app_id");
    w.String(v.app_id);
    w.Key("platform");
    w.String(v.platform);
    w.Key("pins_at_runtime");
    w.Bool(v.pins_at_runtime);
    w.Key("potential_pinning");
    w.Bool(v.potential_pinning);
    w.Key("config_pinning");
    w.Bool(v.config_pinning);
    w.Key("pinned_hosts");
    w.BeginArray();
    for (const std::string& host : v.pinned_hosts) w.String(host);
    w.EndArray();
    w.Key("attribution");
    w.BeginArray();
    for (const std::string& reason : AttributionFor(v, events)) {
      w.String(reason);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  if (input.metrics != nullptr) {
    w.Key("counters");
    w.BeginObject();
    for (const auto& [name, value] : input.metrics->counters) {
      w.Key(name);
      w.Int(static_cast<std::int64_t>(value));
    }
    w.EndObject();
    w.Key("gauges");
    w.BeginObject();
    for (const auto& [name, value] : input.metrics->gauges) {
      w.Key(name);
      w.Int(static_cast<std::int64_t>(value));
    }
    w.EndObject();
  }

  if (input.events != nullptr) {
    std::map<std::string, std::size_t> by_name;
    for (const obs::LogEvent& e : events) ++by_name[e.name];
    w.Key("journal");
    w.BeginObject();
    w.Key("events");
    w.Int(static_cast<std::int64_t>(events.size()));
    w.Key("by_event");
    w.BeginObject();
    for (const auto& [name, count] : by_name) {
      w.Key(name);
      w.Int(static_cast<std::int64_t>(count));
    }
    w.EndObject();
    w.EndObject();
  }

  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

std::string ReportJsonPathFor(std::string_view markdown_path) {
  std::string out(markdown_path);
  if (out.size() >= 3 && out.compare(out.size() - 3, 3, ".md") == 0) {
    out.replace(out.size() - 3, 3, ".json");
  } else {
    out += ".json";
  }
  return out;
}

}  // namespace pinscope::report

// Plain-text table and heatmap rendering for the bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace pinscope::report {

/// A simple left-aligned text table with a header row and a separator.
class TextTable {
 public:
  /// Sets the column headers (fixes the column count).
  void SetHeader(std::vector<std::string> header);

  /// Adds a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Renders with two-space column gaps.
  [[nodiscard]] std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a 0..1 fraction as a coarse ASCII heat cell plus the percentage,
/// e.g. "[####      ]  40%".
[[nodiscard]] std::string HeatCell(double fraction, int width = 10);

/// Section header used by every bench binary.
[[nodiscard]] std::string SectionHeader(const std::string& title);

}  // namespace pinscope::report

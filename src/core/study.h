// The study driver: runs static + dynamic analysis over every dataset and
// caches per-app results for the evaluation analyses (src/core/analyses.h).
//
// This is the paper's Figure 1 pipeline, end to end: crawl (generated
// ecosystem) → static detection → two-phase dynamic detection → circumvention
// → PII inspection.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cache_persist.h"
#include "dynamicanalysis/pipeline.h"
#include "dynamicanalysis/sim_fixtures.h"
#include "obs/obs.h"
#include "staticanalysis/scan_cache.h"
#include "staticanalysis/static_report.h"
#include "store/generator.h"

namespace pinscope::util {
class SchedulerFaultPlan;
}  // namespace pinscope::util

namespace pinscope::obs {
class Telemetry;
class Timeline;
}  // namespace pinscope::obs

namespace pinscope::core {

/// Combined per-app result.
struct AppResult {
  std::size_t universe_index = 0;
  const appmodel::App* app = nullptr;
  staticanalysis::StaticReport static_report;
  dynamicanalysis::DynamicReport dynamic_report;
  /// Empty on success. Under the pipeline scheduler a stage failure is
  /// recorded here ("<stage>: <message>") instead of aborting the study; the
  /// app's remaining stages are skipped and its reports stay empty
  /// (tests/core/sched_fault_test.cc). Always empty on the normal path.
  std::string error;

  [[nodiscard]] bool failed() const { return !error.empty(); }
};

/// How Run() schedules the per-app work.
enum class SchedulerKind {
  /// Corpus-wide fan-out per platform: all of a platform's apps run through
  /// one ParallelMap barrier before the next platform starts. The original
  /// scheduler, kept as the equivalence baseline.
  kPhases,
  /// Barrier-free per-app stage chains (static → dynamic → verdict) over
  /// bounded MPMC work queues (core/pipeline_study.h): apps overlap across
  /// stages and platforms, and results stream out as chains complete.
  kPipeline,
};

/// Study configuration.
struct StudyOptions {
  dynamicanalysis::DynamicOptions dynamic;
  /// §4.5: the Common-iOS dataset is re-run with a 2-minute settle so
  /// associated-domain verification finishes before capture.
  int common_ios_settle_seconds = 120;
  /// Worker threads for Run(): per-app work fans out across them and merges
  /// back in universe-index order, so any value produces byte-identical
  /// results (0 = hardware concurrency, 1 = serial).
  int threads = 1;
  /// Share one corpus-wide static-scan cache across every app of the study,
  /// so files shipped identically by many apps (third-party SDKs, §5
  /// Table 7) are scanned once instead of once per app. Exports are
  /// byte-identical with the cache on or off (`ctest -L static`); off is a
  /// debugging/measurement knob, not a correctness one.
  bool scan_cache = true;
  /// Share the connection-simulation fixtures study-wide: one proxy CA +
  /// forged-leaf cache, immutable per-platform root stores, and a chain-
  /// validation memo (dynamicanalysis/sim_fixtures.h). Like scan_cache,
  /// exports are byte-identical either way (`ctest -L dynamic`); off is a
  /// debugging/measurement knob.
  bool sim_cache = true;
  /// Optional observability sink for the whole study: Run() opens study- and
  /// platform-level spans, AnalyzeApp records per-app spans + phase-duration
  /// histograms, every layer below contributes counters, and the shared
  /// caches publish their hit-rates as gauges when Run() finishes. Purely
  /// observational: exports are byte-identical with or without an observer,
  /// at any thread count (DESIGN.md §11; `ctest -L obs`).
  obs::Observer* observer = nullptr;
  /// Optional live-run telemetry (obs/telemetry.h): Run() reports the
  /// expected chain total up front, marks each app's current stage as it
  /// enters/leaves, and signals chain completion — the feed behind the
  /// progress meter, heartbeat, and straggler watchdog. Like the observer,
  /// purely observational: exports, journal, and run reports are
  /// byte-identical with telemetry attached or not (`ctest -L telemetry`).
  /// The caller owns Start()/Stop().
  obs::Telemetry* telemetry = nullptr;
  /// Optional bounded interval timeline (obs/timeline.h) feeding the run
  /// autopsy (obs/autopsy.h): per-worker stage intervals plus the idle-time
  /// taxonomy (queue-starved / backpressure / lock-wait / tail-join),
  /// O(workers · cap) memory at any corpus size. Pipeline scheduler only —
  /// the phase-barrier path has no per-item chains to attribute (a timeline
  /// attached there records nothing). Purely observational: exports,
  /// journal, and run reports are byte-identical with a timeline attached
  /// or not (`ctest -L autopsy`).
  obs::Timeline* timeline = nullptr;
  /// Which scheduler Run() uses. Byte-identical exports, journal, and run
  /// reports either way (`ctest -L sched`); kPhases is the measurement
  /// baseline the equivalence suite compares against.
  SchedulerKind scheduler = SchedulerKind::kPipeline;
  /// Pipeline scheduler only: ready-queue capacity (0 = 2× the worker
  /// count). A pure buffering/backpressure knob — results are identical for
  /// every depth ≥ 1.
  std::size_t queue_depth = 0;
  /// Pipeline scheduler only: re-run a failed stage this many times before
  /// recording the app's error verdict. Stage bodies overwrite their slot,
  /// so a retried stage replays cleanly.
  int stage_retries = 0;
  /// Test-only fault injection for the pipeline scheduler (delays and
  /// transient failures at stage entry, keyed by work-item index; see
  /// util/pipeline_scheduler.h).
  const util::SchedulerFaultPlan* fault_plan = nullptr;
  /// Streaming hook: called once per app as its result is finalized. Under
  /// the pipeline scheduler this fires in completion order from worker
  /// threads (synchronize externally; the callback must not touch exports);
  /// under the phase scheduler it fires in universe-index order after each
  /// platform merges.
  std::function<void(const AppResult&)> on_result;
  /// When non-empty, the scan cache and validation memo warm-start from this
  /// directory at construction and persist back when Run() completes
  /// (core/cache_persist.h). A missing or corrupt file means a cold start;
  /// results are byte-identical warm or cold — only speed changes.
  std::string cache_dir;
  /// When set, only apps for which the filter returns true are analyzed —
  /// the incremental re-analysis hook (changed-apps-only mode). Results and
  /// exports then cover the filtered subset; merging with a prior full run's
  /// retained rows is the caller's job (core/stream_export.h MergeBase).
  std::function<bool(appmodel::Platform, std::size_t)> app_filter;
};

/// Keys per-app results by universe index. Completion order is irrelevant:
/// any permutation of `results` yields the same map (the merge invariant the
/// parallel Run() relies on). Indices must be unique.
[[nodiscard]] std::map<std::size_t, AppResult> MergeByIndex(
    std::vector<AppResult> results);

/// Runs and caches the full measurement over one generated ecosystem.
class Study {
 public:
  explicit Study(const store::Ecosystem& eco, StudyOptions options = {});

  /// Executes static + dynamic analysis for every app appearing in any
  /// dataset (each app analyzed once; dataset views share results). With
  /// options.threads != 1 the per-app work units run on a thread pool; the
  /// output is byte-identical to the serial run because every app derives
  /// its RNG streams from the study seed + app identity (DESIGN.md §8).
  /// options.scheduler picks between the phase-barrier fan-out and the
  /// barrier-free per-app pipeline (DESIGN.md §13) — also byte-identical.
  void Run();

  /// Analyzes one universe app, independent of any other app's state. This
  /// is the parallel work unit; it never touches the result caches.
  [[nodiscard]] AppResult AnalyzeApp(appmodel::Platform p,
                                     std::size_t index) const;

  /// The static stage of one app's chain: fills result.static_report.
  /// result.app must be set; touches nothing outside the result (plus the
  /// internally-synchronized shared caches).
  void RunStaticStage(AppResult& result) const;

  /// The dynamic stage of one app's chain: fills result.dynamic_report
  /// (including the §4.5 Common-iOS settle override). Same isolation
  /// contract as RunStaticStage.
  void RunDynamicStage(AppResult& result) const;

  /// Universe indices of every dataset member of `p` not yet analyzed, each
  /// once, in ascending order (the deterministic work list both schedulers
  /// consume).
  [[nodiscard]] std::vector<std::size_t> PendingIndices(appmodel::Platform p) const;

  [[nodiscard]] const store::Ecosystem& ecosystem() const { return *eco_; }

  /// Result for one universe app (Run() must have completed).
  [[nodiscard]] const AppResult& result(appmodel::Platform p,
                                        std::size_t universe_index) const;

  /// Results for every member of a dataset.
  [[nodiscard]] std::vector<const AppResult*> DatasetResults(
      store::DatasetId id, appmodel::Platform p) const;

  /// All analyzed results for a platform.
  [[nodiscard]] std::vector<const AppResult*> AllResults(appmodel::Platform p) const;

  /// The study's scan cache (nullptr when options.scan_cache is off). Read
  /// its Stats() after Run() for hit/dedup observability.
  [[nodiscard]] const staticanalysis::ScanCache* scan_cache() const {
    return scan_cache_.get();
  }

  /// The study's shared simulation fixtures (nullptr when options.sim_cache
  /// is off). Read forged_cache_stats()/validation_cache_stats() after Run()
  /// for hit-rate observability.
  [[nodiscard]] const dynamicanalysis::SimFixtures* sim_fixtures() const {
    return sim_fixtures_.get();
  }

 private:
  /// The original per-platform fan-out: one ParallelMap barrier per
  /// platform.
  void RunPhased(obs::EventScope& study_log);

  /// Barrier-free per-app stage chains over util::RunPipeline (defined in
  /// core/pipeline_study.cc).
  void RunPipelined(obs::EventScope& study_log);

  /// The pipeline scheduler's "verdict" stage: per-app counters plus the
  /// on_result streaming hook. (The phase path counts inside AnalyzeApp and
  /// streams after its merge, keeping metric totals identical.)
  void FinishApp(const AppResult& result) const;

  /// Publishes the shared caches' counters as `cache.<family>.<field>`
  /// gauges on the observer's registry (no-op without one). Gauges, not
  /// counters, so calling Run() twice republishes instead of double-counts.
  void PublishCacheStats() const;

  const store::Ecosystem* eco_;
  StudyOptions options_;
  /// Shared by every AnalyzeApp worker; internally synchronized.
  std::unique_ptr<staticanalysis::ScanCache> scan_cache_;
  /// Shared by every AnalyzeApp worker; immutable or internally synchronized.
  std::unique_ptr<dynamicanalysis::SimFixtures> sim_fixtures_;
  /// Entry counts from the constructor's warm load; Run()'s save skips any
  /// cache that has not grown past this.
  StudyCacheBaseline cache_baseline_;
  std::map<std::size_t, AppResult> android_results_;
  std::map<std::size_t, AppResult> ios_results_;
};

}  // namespace pinscope::core

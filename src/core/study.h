// The study driver: runs static + dynamic analysis over every dataset and
// caches per-app results for the evaluation analyses (src/core/analyses.h).
//
// This is the paper's Figure 1 pipeline, end to end: crawl (generated
// ecosystem) → static detection → two-phase dynamic detection → circumvention
// → PII inspection.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "dynamicanalysis/pipeline.h"
#include "dynamicanalysis/sim_fixtures.h"
#include "obs/obs.h"
#include "staticanalysis/scan_cache.h"
#include "staticanalysis/static_report.h"
#include "store/generator.h"

namespace pinscope::core {

/// Combined per-app result.
struct AppResult {
  std::size_t universe_index = 0;
  const appmodel::App* app = nullptr;
  staticanalysis::StaticReport static_report;
  dynamicanalysis::DynamicReport dynamic_report;
};

/// Study configuration.
struct StudyOptions {
  dynamicanalysis::DynamicOptions dynamic;
  /// §4.5: the Common-iOS dataset is re-run with a 2-minute settle so
  /// associated-domain verification finishes before capture.
  int common_ios_settle_seconds = 120;
  /// Worker threads for Run(): per-app work fans out across them and merges
  /// back in universe-index order, so any value produces byte-identical
  /// results (0 = hardware concurrency, 1 = serial).
  int threads = 1;
  /// Share one corpus-wide static-scan cache across every app of the study,
  /// so files shipped identically by many apps (third-party SDKs, §5
  /// Table 7) are scanned once instead of once per app. Exports are
  /// byte-identical with the cache on or off (`ctest -L static`); off is a
  /// debugging/measurement knob, not a correctness one.
  bool scan_cache = true;
  /// Share the connection-simulation fixtures study-wide: one proxy CA +
  /// forged-leaf cache, immutable per-platform root stores, and a chain-
  /// validation memo (dynamicanalysis/sim_fixtures.h). Like scan_cache,
  /// exports are byte-identical either way (`ctest -L dynamic`); off is a
  /// debugging/measurement knob.
  bool sim_cache = true;
  /// Optional observability sink for the whole study: Run() opens study- and
  /// platform-level spans, AnalyzeApp records per-app spans + phase-duration
  /// histograms, every layer below contributes counters, and the shared
  /// caches publish their hit-rates as gauges when Run() finishes. Purely
  /// observational: exports are byte-identical with or without an observer,
  /// at any thread count (DESIGN.md §11; `ctest -L obs`).
  obs::Observer* observer = nullptr;
};

/// Keys per-app results by universe index. Completion order is irrelevant:
/// any permutation of `results` yields the same map (the merge invariant the
/// parallel Run() relies on). Indices must be unique.
[[nodiscard]] std::map<std::size_t, AppResult> MergeByIndex(
    std::vector<AppResult> results);

/// Runs and caches the full measurement over one generated ecosystem.
class Study {
 public:
  explicit Study(const store::Ecosystem& eco, StudyOptions options = {});

  /// Executes static + dynamic analysis for every app appearing in any
  /// dataset (each app analyzed once; dataset views share results). With
  /// options.threads != 1 the per-app work units run on a thread pool; the
  /// output is byte-identical to the serial run because every app derives
  /// its RNG streams from the study seed + app identity (DESIGN.md §8).
  void Run();

  /// Analyzes one universe app, independent of any other app's state. This
  /// is the parallel work unit; it never touches the result caches.
  [[nodiscard]] AppResult AnalyzeApp(appmodel::Platform p,
                                     std::size_t index) const;

  [[nodiscard]] const store::Ecosystem& ecosystem() const { return *eco_; }

  /// Result for one universe app (Run() must have completed).
  [[nodiscard]] const AppResult& result(appmodel::Platform p,
                                        std::size_t universe_index) const;

  /// Results for every member of a dataset.
  [[nodiscard]] std::vector<const AppResult*> DatasetResults(
      store::DatasetId id, appmodel::Platform p) const;

  /// All analyzed results for a platform.
  [[nodiscard]] std::vector<const AppResult*> AllResults(appmodel::Platform p) const;

  /// The study's scan cache (nullptr when options.scan_cache is off). Read
  /// its Stats() after Run() for hit/dedup observability.
  [[nodiscard]] const staticanalysis::ScanCache* scan_cache() const {
    return scan_cache_.get();
  }

  /// The study's shared simulation fixtures (nullptr when options.sim_cache
  /// is off). Read forged_cache_stats()/validation_cache_stats() after Run()
  /// for hit-rate observability.
  [[nodiscard]] const dynamicanalysis::SimFixtures* sim_fixtures() const {
    return sim_fixtures_.get();
  }

 private:
  /// Universe indices of every dataset member of `p` not yet analyzed, each
  /// once, in ascending order (the deterministic work list).
  [[nodiscard]] std::vector<std::size_t> PendingIndices(appmodel::Platform p) const;

  /// Publishes the shared caches' counters as `cache.<family>.<field>`
  /// gauges on the observer's registry (no-op without one). Gauges, not
  /// counters, so calling Run() twice republishes instead of double-counts.
  void PublishCacheStats() const;

  const store::Ecosystem* eco_;
  StudyOptions options_;
  /// Shared by every AnalyzeApp worker; internally synchronized.
  std::unique_ptr<staticanalysis::ScanCache> scan_cache_;
  /// Shared by every AnalyzeApp worker; immutable or internally synchronized.
  std::unique_ptr<dynamicanalysis::SimFixtures> sim_fixtures_;
  std::map<std::size_t, AppResult> android_results_;
  std::map<std::size_t, AppResult> ios_results_;
};

}  // namespace pinscope::core

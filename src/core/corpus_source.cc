#include "core/corpus_source.h"

#include <algorithm>

#include "store/dataset.h"

namespace pinscope::core {

EcosystemCorpusSource::EcosystemCorpusSource(const store::Ecosystem& eco)
    : eco_(eco) {
  common_ios_ =
      eco.dataset(store::DatasetId::kCommon, appmodel::Platform::kIos)
          .app_indices;
  std::sort(common_ios_.begin(), common_ios_.end());
}

const appmodel::ServerWorld& EcosystemCorpusSource::world() const {
  return eco_.world();
}

const x509::CtLog& EcosystemCorpusSource::ct_log() const {
  return eco_.ct_log();
}

std::vector<std::size_t> EcosystemCorpusSource::Indices(
    appmodel::Platform p) const {
  std::vector<std::size_t> indices;
  for (const store::DatasetId id : store::AllDatasets()) {
    const store::Dataset& ds = eco_.dataset(id, p);
    indices.insert(indices.end(), ds.app_indices.begin(), ds.app_indices.end());
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

appmodel::App EcosystemCorpusSource::Hydrate(appmodel::Platform p,
                                             std::size_t index) const {
  return eco_.apps(p)[index];
}

bool EcosystemCorpusSource::NeedsCommonIosSettle(std::size_t index) const {
  return std::binary_search(common_ios_.begin(), common_ios_.end(), index);
}

}  // namespace pinscope::core

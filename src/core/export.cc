#include "core/export.h"

#include <utility>

#include "report/csv_writer.h"
#include "report/json_writer.h"

namespace pinscope::core {

std::string AppResultJsonLine(const AppResult& r, appmodel::Platform p) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("app_id");
  w.String(r.app->meta.app_id);
  w.Key("platform");
  w.String(PlatformName(p));
  w.Key("pins_at_runtime");
  w.Bool(r.dynamic_report.AppPins());
  w.Key("potential_pinning");
  w.Bool(r.static_report.PotentialPinning());
  w.Key("pinned_destinations");
  w.BeginArray();
  for (const auto& host : r.dynamic_report.PinnedDestinations()) w.String(host);
  w.EndArray();
  w.EndObject();
  return w.TakeString() + "\n";
}

std::vector<std::string> StudyCsvHeader() {
  return {"app_id", "platform", "hostname", "pinned", "circumvented"};
}

std::vector<std::vector<std::string>> AppResultCsvRows(const AppResult& r,
                                                       appmodel::Platform p) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& dest : r.dynamic_report.destinations) {
    rows.push_back({r.app->meta.app_id, std::string(PlatformName(p)),
                    dest.hostname, dest.pinned ? "1" : "0",
                    dest.circumvented ? "1" : "0"});
  }
  return rows;
}

report::AppVerdict AppResultVerdict(const AppResult& r, appmodel::Platform p) {
  report::AppVerdict v;
  v.platform = std::string(PlatformName(p));
  v.app_id = r.app->meta.app_id;
  v.pins_at_runtime = r.dynamic_report.AppPins();
  v.potential_pinning = r.static_report.PotentialPinning();
  v.config_pinning = r.static_report.ConfigPinning();
  v.pinned_hosts = r.dynamic_report.PinnedDestinations();
  return v;
}

std::string ExportStudyJson(const Study& study) {
  std::string out;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const AppResult* r : study.AllResults(p)) {
      out += AppResultJsonLine(*r, p);
    }
  }
  return out;
}

std::string ExportStudyCsv(const Study& study) {
  report::CsvWriter csv;
  csv.SetHeader(StudyCsvHeader());
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const AppResult* r : study.AllResults(p)) {
      for (auto& row : AppResultCsvRows(*r, p)) csv.AddRow(std::move(row));
    }
  }
  return csv.TakeString();
}

std::vector<report::AppVerdict> CollectAppVerdicts(const Study& study) {
  std::vector<report::AppVerdict> out;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const AppResult* r : study.AllResults(p)) {
      out.push_back(AppResultVerdict(*r, p));
    }
  }
  return out;
}

}  // namespace pinscope::core

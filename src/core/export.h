// Canonical study exports: the per-app JSON Lines dataset and the
// per-destination CSV the paper's artifact releases.
//
// Both serializations iterate platforms in a fixed order and apps in
// universe-index order, so the bytes depend only on the study's results —
// never on thread count or completion order. The determinism-equivalence
// suite (tests/core/parallel_study_test.cc) pins that property.
#pragma once

#include <string>
#include <vector>

#include "core/study.h"
#include "report/run_report.h"

namespace pinscope::core {

/// One JSON object per analyzed app (JSON Lines), Android first, ascending
/// universe index within a platform.
[[nodiscard]] std::string ExportStudyJson(const Study& study);

/// One CSV row per (app, destination) pair, with a header row; same ordering
/// as the JSON export.
[[nodiscard]] std::string ExportStudyCsv(const Study& study);

/// Per-app verdict rows in export order — the input to the run-report
/// generator (report/run_report.h). Mirrors ExportStudyJson field for field.
[[nodiscard]] std::vector<report::AppVerdict> CollectAppVerdicts(
    const Study& study);

// --- Per-app building blocks ------------------------------------------------
// The batch exports above and the streaming exporter (core/stream_export.h)
// both compose these, so a streamed study's merged output is byte-identical
// to the batch path by construction, not by parallel maintenance.

/// One app's JSON Lines record, including the trailing newline.
[[nodiscard]] std::string AppResultJsonLine(const AppResult& r,
                                            appmodel::Platform p);

/// The CSV header shared by ExportStudyCsv and the streaming exporter.
[[nodiscard]] std::vector<std::string> StudyCsvHeader();

/// One app's CSV rows (one per destination), unescaped field values.
[[nodiscard]] std::vector<std::vector<std::string>> AppResultCsvRows(
    const AppResult& r, appmodel::Platform p);

/// One app's run-report verdict row.
[[nodiscard]] report::AppVerdict AppResultVerdict(const AppResult& r,
                                                  appmodel::Platform p);

}  // namespace pinscope::core

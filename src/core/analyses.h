// Evaluation analyses: one function per table/figure of the paper.
//
// Every function consumes only measured Study results (never generator
// ground truth), exactly as the paper derives its tables from captures and
// scans.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "appmodel/pii.h"
#include "core/study.h"
#include "staticanalysis/attribution.h"
#include "stats/chi_square.h"

namespace pinscope::core {

// --- Table 3: prevalence by technique --------------------------------------

struct PrevalenceRow {
  store::DatasetId dataset = store::DatasetId::kCommon;
  appmodel::Platform platform = appmodel::Platform::kAndroid;
  int total = 0;
  int dynamic_pinning = 0;    ///< Apps with ≥1 pinned connection at run time.
  int embedded_static = 0;    ///< Apps with embedded certificates / pin hashes.
  int config_pinning = 0;     ///< Apps pinning via NSC (Android; prior work).
};

[[nodiscard]] PrevalenceRow ComputePrevalence(const Study& study,
                                              store::DatasetId id,
                                              appmodel::Platform p);

// --- Tables 4 & 5: pinning by category --------------------------------------

struct CategoryPinningRow {
  std::string category;
  int popularity_rank = 0;    ///< Rank of the category by app count.
  double pinning_pct = 0.0;   ///< Pinning apps / apps in category.
  int pinning_apps = 0;
};

/// Top-`top_n` categories by pinning percentage across all datasets
/// (categories with fewer than `min_apps` members are skipped).
[[nodiscard]] std::vector<CategoryPinningRow> ComputePinningByCategory(
    const Study& study, appmodel::Platform p, std::size_t top_n = 10,
    std::size_t min_apps = 5);

// --- Figures 2-4: cross-platform consistency ---------------------------------

/// Measured consistency of one Common pair (§5.1 definitions).
struct PairAnalysis {
  std::size_t android_index = 0;
  std::size_t ios_index = 0;
  std::string name;

  std::set<std::string> pinned_android, pinned_ios;
  std::set<std::string> unpinned_android, unpinned_ios;  ///< used, not pinned

  enum class Mode { kNone, kBoth, kAndroidOnly, kIosOnly } mode = Mode::kNone;
  enum class Verdict { kNone, kConsistent, kInconsistent, kInconclusive } verdict =
      Verdict::kNone;
  bool identical_sets = false;  ///< Consistent with equal pinned sets.

  double jaccard = 0.0;  ///< Jaccard(pinned_android, pinned_ios).
  /// Fraction of Android-pinned domains observed unpinned on iOS, and the
  /// mirror (the Figure 3/4 heatmap cells).
  double android_pinned_unpinned_on_ios = 0.0;
  double ios_pinned_unpinned_on_android = 0.0;
};

[[nodiscard]] std::vector<PairAnalysis> AnalyzeCommonPairs(const Study& study);

// --- Figure 5: per-app pinned vs unpinned domains, by party -----------------

struct AppDomainProfile {
  std::string app_id;
  store::DatasetId dataset = store::DatasetId::kPopular;
  int first_party_pinned = 0;
  int first_party_unpinned = 0;
  int third_party_pinned = 0;
  int third_party_unpinned = 0;

  [[nodiscard]] int Total() const {
    return first_party_pinned + first_party_unpinned + third_party_pinned +
           third_party_unpinned;
  }
  [[nodiscard]] bool PinsAll() const {
    return first_party_unpinned + third_party_unpinned == 0 && Total() > 0;
  }
};

/// Profiles of every pinning app in the Popular and Random datasets.
[[nodiscard]] std::vector<AppDomainProfile> ComputeDomainProfiles(
    const Study& study, appmodel::Platform p);

// --- Table 6 + §5.3.1: PKI of pinned destinations ----------------------------

struct PkiCounts {
  int default_pki = 0;
  int custom_pki = 0;      ///< Includes self-signed (broken out below).
  int unavailable = 0;
  int self_signed = 0;     ///< Subset of custom_pki.
  std::vector<std::int64_t> self_signed_validity_days;
};

[[nodiscard]] PkiCounts ComputePkiCounts(const Study& study, appmodel::Platform p);

// --- §5.3.2 / §5.3.3: which certificates are pinned --------------------------

struct CertMatchStats {
  int pinning_apps = 0;          ///< Apps pinning at run time.
  int apps_with_match = 0;       ///< ≥1 cert in both static & dynamic data.
  int ca_certs = 0;              ///< Matched certificates that are CAs.
  int leaf_certs = 0;            ///< Matched leaf certificates.
  int leaf_spki_pinned = 0;      ///< Leaves pinned via SPKI hash.
  int leaf_raw_embedded = 0;     ///< Leaves embedded as raw cert files.
  int rotated_still_pinned = 0;  ///< New leaf served, connection still pinned.
};

[[nodiscard]] CertMatchStats ComputeCertMatches(const Study& study,
                                                appmodel::Platform p);

// --- Table 7: frameworks shipping certificates -------------------------------

[[nodiscard]] std::vector<staticanalysis::FrameworkAttribution> ComputeFrameworks(
    const Study& study, appmodel::Platform p, std::size_t min_apps = 5);

// --- Table 8: weak ciphers ---------------------------------------------------

struct CipherRow {
  store::DatasetId dataset = store::DatasetId::kCommon;
  appmodel::Platform platform = appmodel::Platform::kAndroid;
  double overall_pct = 0.0;       ///< Apps with ≥1 weak-cipher connection.
  double pinning_apps_pct = 0.0;  ///< Pinning apps with ≥1 weak pinned conn.
};

[[nodiscard]] CipherRow ComputeCiphers(const Study& study, store::DatasetId id,
                                       appmodel::Platform p);

// --- Table 9 + §4.3: PII and circumvention -----------------------------------

struct PiiRow {
  appmodel::PiiType type = appmodel::PiiType::kAdvertisingId;
  double pinned_pct = 0.0;
  double non_pinned_pct = 0.0;
  stats::ChiSquareResult test;
};

struct PiiAnalysis {
  std::vector<PiiRow> rows;   ///< Only types observed at least once.
  int pinned_dests = 0;       ///< Decrypted pinned (app, destination) pairs.
  int non_pinned_dests = 0;   ///< Decrypted non-pinned pairs.
};

[[nodiscard]] PiiAnalysis ComputePii(const Study& study, appmodel::Platform p);

struct CircumventionStats {
  int pinned_unique = 0;        ///< Unique pinned hostnames.
  int circumvented_unique = 0;  ///< Of those, decrypted via instrumentation.

  [[nodiscard]] double Rate() const {
    return pinned_unique == 0
               ? 0.0
               : static_cast<double>(circumvented_unique) / pinned_unique;
  }
};

[[nodiscard]] CircumventionStats ComputeCircumvention(const Study& study,
                                                      appmodel::Platform p);

}  // namespace pinscope::core

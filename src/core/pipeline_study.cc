#include "core/pipeline_study.h"

#include <utility>

#include "core/study.h"
#include "obs/telemetry.h"
#include "util/pipeline_scheduler.h"

namespace pinscope::core {

std::vector<PipelineWorkItem> BuildPipelineWorkList(const Study& study) {
  std::vector<PipelineWorkItem> items;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const std::size_t idx : study.PendingIndices(p)) {
      items.push_back({p, idx});
    }
  }
  return items;
}

void Study::RunPipelined(obs::EventScope& study_log) {
  // Same study-level journal events, in the same order, as RunPhased — the
  // journal sorts by logical keys, so emitting both platform_start events up
  // front (before any app runs) yields byte-identical JSONL.
  std::vector<PipelineWorkItem> items;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const std::vector<std::size_t> indices = PendingIndices(p);
    study_log.Emit(obs::Severity::kInfo, "study.platform_start",
                   {{"platform", appmodel::PlatformName(p)},
                    {"apps", static_cast<std::uint64_t>(indices.size())}});
    for (const std::size_t idx : indices) items.push_back({p, idx});
  }
  if (items.empty()) return;

  // One pre-sized slot per work item: every stage writes only its own slot,
  // which is the whole determinism argument — completion order cannot matter
  // because nothing is shared. Identity is fixed before scheduling so even
  // an app whose first stage fails keeps a mergeable result.
  std::vector<AppResult> slots(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    slots[i].universe_index = items[i].universe_index;
    slots[i].app = &eco_->apps(items[i].platform)[items[i].universe_index];
  }

  // Each analysis stage carries its own app-level span (category "app", as
  // AnalyzeApp's single span does on the phases path) — the two halves of an
  // app's chain can run on different workers, so one span cannot cover both.
  auto app_span = [this, &items, &slots](std::size_t i, const char* stage) {
    return obs::SpanFor(
        options_.observer, slots[i].app->meta.app_id, "app",
        {{"platform", std::string(appmodel::PlatformName(items[i].platform))},
         {"stage", stage}});
  };
  const std::vector<util::PipelineStage> stages = {
      {"static",
       [&](std::size_t i) {
         const obs::Span span = app_span(i, "static");
         RunStaticStage(slots[i]);
       }},
      {"dynamic",
       [&](std::size_t i) {
         const obs::Span span = app_span(i, "dynamic");
         RunDynamicStage(slots[i]);
       }},
      {"verdict", [&](std::size_t i) { FinishApp(slots[i]); }},
  };

  util::PipelineOptions popts;
  popts.threads = options_.threads;
  popts.queue_depth = options_.queue_depth;
  popts.max_stage_retries = options_.stage_retries;
  popts.faults = options_.fault_plan;
  popts.trace = obs::TraceOf(options_.observer);
  popts.metrics = obs::MetricsOf(options_.observer);
  // Timeline intervals carry the same (platform, universe index) key the
  // telemetry uses, so the autopsy can resolve app ids against the live
  // ecosystem at report time without the timeline retaining O(corpus) state.
  popts.timeline = options_.timeline;
  popts.timeline_key = [&items](std::size_t item) {
    return obs::TelemetryKey(
        items[item].platform == appmodel::Platform::kAndroid ? 0 : 1,
        items[item].universe_index);
  };
  if (obs::Telemetry* telemetry = options_.telemetry) {
    telemetry->AddTotal(items.size());
    // The hook wraps the whole attempt loop — fault-injected delays included
    // — so the straggler table sees a stalled stage the stage body never
    // entered. The final stage's kEnd doubles as chain completion; a kFailed
    // completes too, since the scheduler skips the item's remaining stages.
    popts.stage_hook = [telemetry, &items, &slots, &stages](
                           std::size_t item, std::size_t stage,
                           util::StageEvent event) {
      const std::uint64_t key = obs::TelemetryKey(
          items[item].platform == appmodel::Platform::kAndroid ? 0 : 1,
          items[item].universe_index);
      const std::string& name = stages[stage].name;
      switch (event) {
        case util::StageEvent::kBegin:
          telemetry->OnStageStart(
              key, appmodel::PlatformName(items[item].platform),
              slots[item].app->meta.app_id, name);
          break;
        case util::StageEvent::kEnd:
          telemetry->OnStageEnd(key, name);
          if (stage + 1 == stages.size()) telemetry->OnItemDone(key);
          break;
        case util::StageEvent::kFailed:
          // Not an OnStageEnd — a failed stage never completed. OnItemDone
          // clears the in-flight entry and still counts the chain.
          telemetry->OnItemDone(key);
          break;
      }
    };
  }
  const util::PipelineResult run =
      util::RunPipeline(items.size(), stages, popts);

  // A failed stage becomes the app's error verdict; siblings are untouched.
  // At most one failure per item exists (later stages were skipped).
  for (const util::StageFailure& f : run.failures) {
    slots[f.item].error = f.stage_name + ": " + f.message;
  }

  std::vector<AppResult> android;
  std::vector<AppResult> ios;
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto& side = items[i].platform == appmodel::Platform::kAndroid ? android : ios;
    side.push_back(std::move(slots[i]));
  }
  auto merged_android = MergeByIndex(std::move(android));
  android_results_.merge(merged_android);
  auto merged_ios = MergeByIndex(std::move(ios));
  ios_results_.merge(merged_ios);
}

}  // namespace pinscope::core

#include "core/stream_export.h"

#include <utility>

#include "core/export.h"
#include "report/csv_writer.h"

namespace pinscope::core {

namespace {

int PlatformRank(appmodel::Platform p) {
  return p == appmodel::Platform::kAndroid ? 0 : 1;
}

}  // namespace

StreamExporter::StreamExporter(Options options) : options_(std::move(options)) {
  if (!options_.live_jsonl_path.empty()) {
    live_.open(options_.live_jsonl_path, std::ios::out | std::ios::trunc);
  }
}

void StreamExporter::OnResult(appmodel::Platform platform, const AppResult& r) {
  Row row;
  row.json_line = AppResultJsonLine(r, platform);
  if (options_.retain_rows) {
    row.csv_rows = AppResultCsvRows(r, platform);
    row.verdict = AppResultVerdict(r, platform);
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++results_;
  if (live_.is_open()) {
    live_ << row.json_line;
    live_.flush();
  }
  if (options_.retain_rows) {
    rows_.insert_or_assign(RowKey{PlatformRank(platform), r.universe_index},
                           std::move(row));
  }
}

void StreamExporter::MergeBase(const StreamExporter& prev) {
  std::scoped_lock lock(mu_, prev.mu_);
  for (const auto& [key, row] : prev.rows_) {
    // insert (not insert_or_assign): rows this run produced — the delta —
    // take precedence over the previous run's.
    rows_.emplace(key, row);
  }
}

std::string StreamExporter::FinishJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [key, row] : rows_) out += row.json_line;
  return out;
}

std::string StreamExporter::FinishCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  report::CsvWriter csv;
  csv.SetHeader(StudyCsvHeader());
  for (const auto& [key, row] : rows_) {
    for (const auto& fields : row.csv_rows) csv.AddRow(fields);
  }
  return csv.TakeString();
}

std::vector<report::AppVerdict> StreamExporter::FinishVerdicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<report::AppVerdict> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) out.push_back(row.verdict);
  return out;
}

std::size_t StreamExporter::results() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_;
}

}  // namespace pinscope::core

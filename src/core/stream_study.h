// The streaming study driver (DESIGN.md §15).
//
// Study (core/study.h) materializes its whole universe in an Ecosystem and
// keeps every AppResult resident until export. RunStreamingStudy replaces
// both residencies: apps are pulled one at a time from a CorpusSource
// (hydrate → static → dynamic → verdict per-item chains over the same
// barrier-free scheduler), each app's payload is freed the moment its
// verdict lands, and results leave through a StreamExporter as serialized
// rows. Peak hydrated-app memory is bounded by the scheduler's in-flight
// window (workers + queue depth), independent of corpus size.
//
// Determinism: identical contract to Study::Run. Stage bodies touch only
// per-item state, every RNG derives from the study seed + app identity, the
// journal orders by logical keys, and the exporter replays rows in the batch
// export order — so a streamed study's exports, journal, and run reports are
// byte-identical to the materialized path across thread counts and queue
// depths (tests/core/stream_equivalence_test.cc).
//
// StudyOptions fields honored: dynamic, common_ios_settle_seconds (via
// CorpusSource::NeedsCommonIosSettle), threads, scan_cache, sim_cache,
// observer, queue_depth, stage_retries, fault_plan, on_result, cache_dir,
// app_filter. `scheduler` is ignored — streaming is inherently pipelined.
#pragma once

#include <cstddef>

#include "core/corpus_source.h"
#include "core/stream_export.h"
#include "core/study.h"

namespace pinscope::core {

/// Aggregate outcome of one streaming run.
struct StreamStudyResult {
  std::size_t apps = 0;      ///< Results delivered (including failed apps).
  std::size_t failures = 0;  ///< Apps whose chain recorded a stage failure.
};

/// Streams every app of `source` through the four-stage chain, delivering
/// results to `exporter` (and options.on_result) as chains complete.
StreamStudyResult RunStreamingStudy(const CorpusSource& source,
                                    const StudyOptions& options,
                                    StreamExporter& exporter);

}  // namespace pinscope::core

// Pull-based corpus iteration for streaming studies (DESIGN.md §15).
//
// The materialized path holds every generated App in an Ecosystem for the
// whole run — fine at the paper's scale (~5k apps), hopeless at store scale.
// A CorpusSource inverts that: the streaming driver asks for one app at a
// time by (platform, universe index), analyzes it through the full stage
// chain, and frees it. Peak hydrated-app memory is then bounded by the
// scheduler's in-flight window (workers + queue depth), not corpus size.
//
// Hydrate must be a pure function of (platform, index): called twice it
// returns equal apps, and calling it for index j must not require having
// hydrated index i first. That is what makes work-stealing schedules, warm
// caches, and incremental re-analysis all export byte-identical results.
#pragma once

#include <cstddef>
#include <vector>

#include "appmodel/app.h"
#include "appmodel/platform.h"
#include "appmodel/server_world.h"
#include "store/generator.h"
#include "x509/ct_log.h"

namespace pinscope::core {

/// Abstract pull-iterator over an app corpus.
class CorpusSource {
 public:
  virtual ~CorpusSource() = default;

  /// The server-side world apps are exercised against (shared, read-only).
  [[nodiscard]] virtual const appmodel::ServerWorld& world() const = 0;

  /// The CT log the static stage consults (shared, read-only).
  [[nodiscard]] virtual const x509::CtLog& ct_log() const = 0;

  /// Universe indices to analyze for one platform, ascending and unique.
  [[nodiscard]] virtual std::vector<std::size_t> Indices(
      appmodel::Platform p) const = 0;

  /// Materializes one app. Pure: same (p, index) ⇒ equal App; thread-safe
  /// for concurrent calls with distinct or equal arguments.
  [[nodiscard]] virtual appmodel::App Hydrate(appmodel::Platform p,
                                              std::size_t index) const = 0;

  /// True if this iOS app belongs to the Common dataset — those apps get the
  /// longer §4.2.2 settle window (StudyOptions::common_ios_settle_seconds).
  [[nodiscard]] virtual bool NeedsCommonIosSettle(std::size_t index) const = 0;
};

/// CorpusSource over a materialized Ecosystem: Hydrate copies the stored
/// app. Costs nothing new in memory (the Ecosystem is already resident) —
/// this is the equivalence anchor proving streamed == materialized bytes,
/// and the adapter the CLI uses for generator-backed corpora.
class EcosystemCorpusSource final : public CorpusSource {
 public:
  /// `eco` must outlive the source.
  explicit EcosystemCorpusSource(const store::Ecosystem& eco);

  [[nodiscard]] const appmodel::ServerWorld& world() const override;
  [[nodiscard]] const x509::CtLog& ct_log() const override;
  [[nodiscard]] std::vector<std::size_t> Indices(
      appmodel::Platform p) const override;
  [[nodiscard]] appmodel::App Hydrate(appmodel::Platform p,
                                      std::size_t index) const override;
  [[nodiscard]] bool NeedsCommonIosSettle(std::size_t index) const override;

 private:
  const store::Ecosystem& eco_;
  std::vector<std::size_t> common_ios_;  ///< Sorted Common-iOS indices.
};

}  // namespace pinscope::core

#include "core/synthetic_corpus.h"

#include <string>
#include <utility>

#include "appmodel/android_package.h"
#include "appmodel/ios_package.h"
#include "tls/pinning.h"
#include "x509/pem.h"

namespace pinscope::core {

SyntheticCorpusSource::SyntheticCorpusSource(const SyntheticCorpusConfig& config)
    : config_(config), world_(config.seed) {
  const std::size_t hosts = config_.hosts == 0 ? 1 : config_.hosts;
  hostnames_.reserve(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    const std::string hostname = "svc" + std::to_string(h) + ".stream.test";
    world_.EnsureDefaultPki(hostname, "org-stream-" + std::to_string(h));
    hostnames_.push_back(hostname);
  }
  world_.ExportToCtLog(ct_log_);
  if (config_.pem_certs_in_payload > 0 || config_.cert_files_per_app > 0) {
    pem_block_ =
        x509::PemEncode(world_.Find(hostnames_[0])->endpoint.chain[0]) + "\n";
  }
}

std::vector<std::size_t> SyntheticCorpusSource::Indices(
    appmodel::Platform) const {
  std::vector<std::size_t> indices(config_.apps_per_platform);
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return indices;
}

const std::string& SyntheticCorpusSource::HostFor(std::size_t index) const {
  return hostnames_[index % hostnames_.size()];
}

std::string SyntheticCorpusSource::PayloadFor(std::size_t index) const {
  std::string payload;
  if (config_.unique_payload) {
    // A distinct first line gives every app a distinct content digest, so
    // only a *persisted* cache from a previous run can dedup the scan.
    payload += "corpus-" + std::to_string(index) + "\n";
  }
  for (std::size_t c = 0; c < config_.pem_certs_in_payload; ++c) {
    payload += pem_block_;
  }
  // Distinct, well-formed pins: cheap to emit, expensive to re-parse.
  tls::Pin pin;
  pin.form = tls::PinForm::kSpkiSha256;
  pin.material.resize(32);
  for (std::size_t n = 0; n < config_.pin_strings_in_payload; ++n) {
    std::uint64_t x = (static_cast<std::uint64_t>(index) << 24) ^ n;
    for (std::size_t b = 0; b < pin.material.size(); ++b) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      pin.material[b] = static_cast<std::uint8_t>(x >> 56);
    }
    payload += pin.ToPinString();
    payload += "\n";
  }
  while (payload.size() < config_.payload_bytes) {
    payload += "stream-filler-payload-0123456789abcdef\n";
  }
  return payload;
}

appmodel::App SyntheticCorpusSource::Hydrate(appmodel::Platform p,
                                             std::size_t index) const {
  const bool android = p == appmodel::Platform::kAndroid;
  util::Rng rng = util::Rng(config_.seed)
                      .Fork("stream:" + std::string(PlatformName(p)) + ":" +
                            std::to_string(index));

  appmodel::App app;
  app.meta.app_id = (android ? "stream.android.a" : "com.stream.ios.a") +
                    std::to_string(index);
  app.meta.display_name = "Stream App " + std::to_string(index);
  app.meta.platform = p;
  app.meta.category = "Tools";
  app.meta.developer_org = "org-stream-" + std::to_string(index % hostnames_.size());
  app.meta.popularity_rank = static_cast<int>(index) + 1;

  const std::string& host = HostFor(index);
  const bool pinned = index % 2 == 0;
  const tls::Pin pin = tls::Pin::ForCertificate(
      world_.Find(host)->endpoint.chain[0], tls::PinForm::kSpkiSha256);

  appmodel::DestinationBehavior dest;
  dest.hostname = host;
  dest.pinned = pinned;
  if (pinned) dest.pins = {pin};
  dest.stack = android ? tls::TlsStack::kOkHttp : tls::TlsStack::kNsUrlSession;
  app.behavior.destinations.push_back(std::move(dest));

  const std::string payload = PayloadFor(index);
  // Each cert file's digest is unique to (platform, index, file) via the
  // comment line PemDecode skips over, so only a persisted scan cache can
  // dedup the parses across runs.
  auto cert_file = [&](std::size_t c) {
    return "# stream-" + std::string(PlatformName(p)) + "-" +
           std::to_string(index) + "-cert-" + std::to_string(c) + "\n" +
           pem_block_;
  };
  if (android) {
    appmodel::AndroidPackageBuilder builder(app.meta);
    if (pinned) {
      appmodel::NscDomainConfig nsc;
      nsc.domain = host;
      nsc.pin_strings = {pin.ToPinString()};
      builder.WithNsc({std::move(nsc)});
    }
    builder.AddSmaliString("com/stream/net", "HttpClient.smali", host);
    builder.AddAsset("assets/payload.bin", payload);
    for (std::size_t c = 0; c < config_.cert_files_per_app; ++c) {
      builder.AddAsset("assets/certs/c" + std::to_string(c) + ".pem",
                       cert_file(c));
    }
    app.package = builder.Build();
  } else {
    appmodel::IosPackageBuilder builder(app.meta);
    builder.AddMainBinaryString(host);
    if (pinned) builder.AddMainBinaryString(pin.ToPinString());
    builder.AddResource("payload.bin", payload);
    for (std::size_t c = 0; c < config_.cert_files_per_app; ++c) {
      builder.AddResource("certs/c" + std::to_string(c) + ".pem",
                          cert_file(c));
    }
    app.package = builder.Build(rng);
  }
  return app;
}

}  // namespace pinscope::core

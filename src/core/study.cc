#include "core/study.h"

#include <algorithm>

#include "util/error.h"
#include "util/parallel.h"

namespace pinscope::core {

Study::Study(const store::Ecosystem& eco, StudyOptions options)
    : eco_(&eco), options_(options) {
  if (options_.scan_cache) {
    scan_cache_ = std::make_unique<staticanalysis::ScanCache>();
  }
  if (options_.sim_cache) {
    // Fixtures must share the pipeline's seed so shared forged leaves match
    // what an unshared pipeline would forge.
    sim_fixtures_ = std::make_unique<dynamicanalysis::SimFixtures>(
        options_.dynamic.seed);
  }
}

std::map<std::size_t, AppResult> MergeByIndex(std::vector<AppResult> results) {
  std::map<std::size_t, AppResult> out;
  for (AppResult& r : results) {
    const std::size_t index = r.universe_index;
    if (!out.emplace(index, std::move(r)).second) {
      throw util::Error("MergeByIndex: duplicate universe index " +
                        std::to_string(index));
    }
  }
  return out;
}

AppResult Study::AnalyzeApp(appmodel::Platform p, std::size_t index) const {
  AppResult r;
  r.universe_index = index;
  r.app = &eco_->apps(p)[index];

  staticanalysis::StaticAnalysisOptions static_opts;
  static_opts.ct_log = &eco_->ct_log();
  static_opts.scan_cache = scan_cache_.get();
  r.static_report = staticanalysis::AnalyzeStatically(*r.app, static_opts);

  dynamicanalysis::DynamicOptions dyn = options_.dynamic;
  dyn.fixtures = sim_fixtures_.get();
  // §4.5: the Common-iOS re-run settles 2 minutes before capture.
  if (p == appmodel::Platform::kIos) {
    const store::Dataset& common =
        eco_->dataset(store::DatasetId::kCommon, appmodel::Platform::kIos);
    for (std::size_t idx : common.app_indices) {
      if (idx == index) {
        dyn.settle_seconds = options_.common_ios_settle_seconds;
        break;
      }
    }
  }
  // The pipeline derives its RNG from dyn.seed + the app id, so this call is
  // self-contained: no draw here can perturb (or race with) any other app.
  r.dynamic_report = dynamicanalysis::RunDynamicAnalysis(*r.app, eco_->world(), dyn);
  return r;
}

std::vector<std::size_t> Study::PendingIndices(appmodel::Platform p) const {
  const auto& results =
      p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  std::vector<std::size_t> indices;
  for (const store::DatasetId id : store::AllDatasets()) {
    for (std::size_t idx : eco_->dataset(id, p).app_indices) {
      if (!results.contains(idx)) indices.push_back(idx);
    }
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

void Study::Run() {
  util::ParallelOptions par;
  par.threads = options_.threads;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const std::vector<std::size_t> indices = PendingIndices(p);
    std::vector<AppResult> computed = util::ParallelMap(
        indices.size(),
        [&](std::size_t i) { return AnalyzeApp(p, indices[i]); }, par);

    auto& results = p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
    auto merged = MergeByIndex(std::move(computed));
    results.merge(merged);
  }
}

const AppResult& Study::result(appmodel::Platform p, std::size_t universe_index) const {
  const auto& results =
      p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  const auto it = results.find(universe_index);
  if (it == results.end()) throw util::Error("Study::result: app not analyzed");
  return it->second;
}

std::vector<const AppResult*> Study::DatasetResults(store::DatasetId id,
                                                    appmodel::Platform p) const {
  std::vector<const AppResult*> out;
  for (std::size_t idx : eco_->dataset(id, p).app_indices) {
    out.push_back(&result(p, idx));
  }
  return out;
}

std::vector<const AppResult*> Study::AllResults(appmodel::Platform p) const {
  const auto& results =
      p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  std::vector<const AppResult*> out;
  out.reserve(results.size());
  for (const auto& [_, r] : results) out.push_back(&r);
  return out;
}

}  // namespace pinscope::core

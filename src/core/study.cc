#include "core/study.h"

#include <algorithm>

#include "core/cache_persist.h"
#include "obs/telemetry.h"
#include "util/error.h"
#include "util/parallel.h"

namespace pinscope::core {

Study::Study(const store::Ecosystem& eco, StudyOptions options)
    : eco_(&eco), options_(options) {
  if (options_.scan_cache) {
    scan_cache_ = std::make_unique<staticanalysis::ScanCache>();
  }
  if (options_.sim_cache) {
    // Fixtures must share the pipeline's seed so shared forged leaves match
    // what an unshared pipeline would forge.
    sim_fixtures_ = std::make_unique<dynamicanalysis::SimFixtures>(
        options_.dynamic.seed);
  }
  // Bind the shared caches' shard locks to contention metrics (and, via the
  // retained lock names, to the run autopsy's lock-wait attribution). Safe
  // even without an observer: an unattached registry records nothing.
  if (obs::MetricsRegistry* metrics = obs::MetricsOf(options_.observer)) {
    if (scan_cache_) scan_cache_->AttachMetrics(metrics);
    if (sim_fixtures_) sim_fixtures_->AttachMetrics(metrics);
  }
  if (!options_.cache_dir.empty()) {
    cache_baseline_ = LoadStudyCaches(
        options_.cache_dir, scan_cache_.get(),
        sim_fixtures_ ? sim_fixtures_->validation_cache() : nullptr,
        options_.observer);
  }
}

std::map<std::size_t, AppResult> MergeByIndex(std::vector<AppResult> results) {
  std::map<std::size_t, AppResult> out;
  for (AppResult& r : results) {
    const std::size_t index = r.universe_index;
    if (!out.emplace(index, std::move(r)).second) {
      throw util::Error("MergeByIndex: duplicate universe index " +
                        std::to_string(index));
    }
  }
  return out;
}

void Study::RunStaticStage(AppResult& r) const {
  obs::Observer* observer = options_.observer;
  staticanalysis::StaticAnalysisOptions static_opts;
  static_opts.ct_log = &eco_->ct_log();
  static_opts.scan_cache = scan_cache_.get();
  static_opts.observer = observer;
  obs::ScopedTimer timer(
      obs::PhaseHistogramOrNull(obs::MetricsOf(observer), "phase.static"));
  r.static_report = staticanalysis::AnalyzeStatically(*r.app, static_opts);
}

void Study::RunDynamicStage(AppResult& r) const {
  const appmodel::Platform p = r.app->meta.platform;
  obs::Observer* observer = options_.observer;
  dynamicanalysis::DynamicOptions dyn = options_.dynamic;
  dyn.fixtures = sim_fixtures_.get();
  dyn.observer = observer;
  // §4.5: the Common-iOS re-run settles 2 minutes before capture.
  if (p == appmodel::Platform::kIos) {
    const store::Dataset& common =
        eco_->dataset(store::DatasetId::kCommon, appmodel::Platform::kIos);
    for (std::size_t idx : common.app_indices) {
      if (idx == r.universe_index) {
        dyn.settle_seconds = options_.common_ios_settle_seconds;
        break;
      }
    }
  }
  // The pipeline derives its RNG from dyn.seed + the app id, so this call is
  // self-contained: no draw here can perturb (or race with) any other app.
  obs::ScopedTimer timer(
      obs::PhaseHistogramOrNull(obs::MetricsOf(observer), "phase.dynamic"));
  r.dynamic_report =
      dynamicanalysis::RunDynamicAnalysis(*r.app, eco_->world(), dyn);
}

void Study::FinishApp(const AppResult& r) const {
  obs::CounterOrNull(obs::MetricsOf(options_.observer), "study.apps_analyzed")
      .Increment();
  if (options_.on_result) options_.on_result(r);
}

AppResult Study::AnalyzeApp(appmodel::Platform p, std::size_t index) const {
  AppResult r;
  r.universe_index = index;
  r.app = &eco_->apps(p)[index];

  const obs::Span app_span =
      obs::SpanFor(options_.observer, r.app->meta.app_id, "app",
                   {{"platform", std::string(appmodel::PlatformName(p))}});
  const std::uint64_t tkey =
      obs::TelemetryKey(p == appmodel::Platform::kAndroid ? 0 : 1, index);
  {
    obs::StageWatch watch(options_.telemetry, tkey, appmodel::PlatformName(p),
                          r.app->meta.app_id, "static");
    RunStaticStage(r);
  }
  {
    obs::StageWatch watch(options_.telemetry, tkey, appmodel::PlatformName(p),
                          r.app->meta.app_id, "dynamic");
    RunDynamicStage(r);
  }
  obs::CounterOrNull(obs::MetricsOf(options_.observer), "study.apps_analyzed")
      .Increment();
  obs::TelemetryItemDone(options_.telemetry, tkey);
  return r;
}

std::vector<std::size_t> Study::PendingIndices(appmodel::Platform p) const {
  const auto& results =
      p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  std::vector<std::size_t> indices;
  for (const store::DatasetId id : store::AllDatasets()) {
    for (std::size_t idx : eco_->dataset(id, p).app_indices) {
      if (results.contains(idx)) continue;
      if (options_.app_filter && !options_.app_filter(p, idx)) continue;
      indices.push_back(idx);
    }
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

void Study::Run() {
  const obs::Span run_span = obs::SpanFor(options_.observer, "study.run", "study");
  obs::ScopedTimer run_timer(
      obs::PhaseHistogramOrNull(obs::MetricsOf(options_.observer), "phase.study"));

  // Study-level journal scope: empty platform/app sort it ahead of every
  // per-app event. Used only from this (single) thread. Both schedulers emit
  // the same study-level events with the same sequence numbers, so journal
  // bytes never depend on the scheduler.
  obs::EventScope study_log = obs::ScopeFor(options_.observer, "", "", "study");

  if (options_.scheduler == SchedulerKind::kPipeline) {
    RunPipelined(study_log);
  } else {
    RunPhased(study_log);
  }
  PublishCacheStats();
  if (!options_.cache_dir.empty()) {
    SaveStudyCaches(options_.cache_dir, scan_cache_.get(),
                    sim_fixtures_ ? sim_fixtures_->validation_cache() : nullptr,
                    options_.observer, cache_baseline_);
  }
}

void Study::RunPhased(obs::EventScope& study_log) {
  util::ParallelOptions par;
  par.threads = options_.threads;
  par.trace = obs::TraceOf(options_.observer);
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const bool android = p == appmodel::Platform::kAndroid;
    const obs::Span platform_span = obs::SpanFor(
        options_.observer, android ? "study.android" : "study.ios", "study");
    par.trace_label = android ? "study.android" : "study.ios";
    const std::vector<std::size_t> indices = PendingIndices(p);
    obs::TelemetryAddTotal(options_.telemetry, indices.size());
    study_log.Emit(obs::Severity::kInfo, "study.platform_start",
                   {{"platform", appmodel::PlatformName(p)},
                    {"apps", static_cast<std::uint64_t>(indices.size())}});
    std::vector<AppResult> computed = util::ParallelMap(
        indices.size(),
        [&](std::size_t i) { return AnalyzeApp(p, indices[i]); }, par);

    auto& results = android ? android_results_ : ios_results_;
    auto merged = MergeByIndex(std::move(computed));
    if (options_.on_result) {
      for (const auto& [_, r] : merged) options_.on_result(r);
    }
    results.merge(merged);
  }
}

void Study::PublishCacheStats() const {
  PublishCacheGauges(options_.observer, scan_cache_.get(), sim_fixtures_.get());
}

const AppResult& Study::result(appmodel::Platform p, std::size_t universe_index) const {
  const auto& results =
      p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  const auto it = results.find(universe_index);
  if (it == results.end()) throw util::Error("Study::result: app not analyzed");
  return it->second;
}

std::vector<const AppResult*> Study::DatasetResults(store::DatasetId id,
                                                    appmodel::Platform p) const {
  std::vector<const AppResult*> out;
  for (std::size_t idx : eco_->dataset(id, p).app_indices) {
    out.push_back(&result(p, idx));
  }
  return out;
}

std::vector<const AppResult*> Study::AllResults(appmodel::Platform p) const {
  const auto& results =
      p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  std::vector<const AppResult*> out;
  out.reserve(results.size());
  for (const auto& [_, r] : results) out.push_back(&r);
  return out;
}

}  // namespace pinscope::core

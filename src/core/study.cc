#include "core/study.h"

#include "util/error.h"

namespace pinscope::core {

Study::Study(const store::Ecosystem& eco, StudyOptions options)
    : eco_(&eco), options_(options) {}

void Study::RunApp(appmodel::Platform p, std::size_t index) {
  auto& results = p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  if (results.contains(index)) return;

  AppResult r;
  r.universe_index = index;
  r.app = &eco_->apps(p)[index];

  staticanalysis::StaticAnalysisOptions static_opts;
  static_opts.ct_log = &eco_->ct_log();
  r.static_report = staticanalysis::AnalyzeStatically(*r.app, static_opts);

  dynamicanalysis::DynamicOptions dyn = options_.dynamic;
  // §4.5: the Common-iOS re-run settles 2 minutes before capture.
  if (p == appmodel::Platform::kIos) {
    const store::Dataset& common =
        eco_->dataset(store::DatasetId::kCommon, appmodel::Platform::kIos);
    for (std::size_t idx : common.app_indices) {
      if (idx == index) {
        dyn.settle_seconds = options_.common_ios_settle_seconds;
        break;
      }
    }
  }
  r.dynamic_report = dynamicanalysis::RunDynamicAnalysis(*r.app, eco_->world(), dyn);

  results.emplace(index, std::move(r));
}

void Study::Run() {
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    for (const store::DatasetId id : store::AllDatasets()) {
      for (std::size_t idx : eco_->dataset(id, p).app_indices) {
        RunApp(p, idx);
      }
    }
  }
}

const AppResult& Study::result(appmodel::Platform p, std::size_t universe_index) const {
  const auto& results =
      p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  const auto it = results.find(universe_index);
  if (it == results.end()) throw util::Error("Study::result: app not analyzed");
  return it->second;
}

std::vector<const AppResult*> Study::DatasetResults(store::DatasetId id,
                                                    appmodel::Platform p) const {
  std::vector<const AppResult*> out;
  for (std::size_t idx : eco_->dataset(id, p).app_indices) {
    out.push_back(&result(p, idx));
  }
  return out;
}

std::vector<const AppResult*> Study::AllResults(appmodel::Platform p) const {
  const auto& results =
      p == appmodel::Platform::kAndroid ? android_results_ : ios_results_;
  std::vector<const AppResult*> out;
  out.reserve(results.size());
  for (const auto& [_, r] : results) out.push_back(&r);
  return out;
}

}  // namespace pinscope::core

// Incremental exporter for streaming studies (DESIGN.md §15).
//
// The batch path materializes every AppResult and then serializes in a fixed
// (platform, universe index) order; the streaming path analyzes apps in
// completion order and frees each payload as soon as its verdict lands. The
// bridge between them is this exporter: each completed app is reduced to its
// serialized rows (JSON line, CSV field rows, verdict) the moment it
// finishes, and the final exports replay those rows in the same logical-key
// order the batch path uses — so streamed exports are byte-identical to
// materialized ones by construction, independent of thread count, queue
// depth, and completion order.
//
// Two retention modes:
//  - retain_rows = true (default): rows are kept for the Finish* replay and
//    for incremental merges. Per-app memory is a few hundred bytes of
//    serialized text — ~10^3x smaller than a hydrated App.
//  - retain_rows = false: nothing is kept; pair with `live_jsonl_path` to
//    emit a completion-ordered JSON Lines stream. This is the truly
//    O(in-flight) mode the 100k-app memory benchmark runs in.
#pragma once

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "appmodel/app.h"
#include "core/study.h"
#include "report/run_report.h"

namespace pinscope::core {

class StreamExporter {
 public:
  struct Options {
    /// Keep per-app rows for the ordered Finish* replay (and incremental
    /// merging). Off = bounded-memory firehose mode.
    bool retain_rows = true;
    /// When non-empty, every result is appended to this file as a JSON line
    /// in completion order, flushed per app. Completion order is
    /// schedule-dependent; the *set* of lines equals the ordered export.
    std::string live_jsonl_path;
  };

  StreamExporter() = default;
  explicit StreamExporter(Options options);

  StreamExporter(const StreamExporter&) = delete;
  StreamExporter& operator=(const StreamExporter&) = delete;

  /// Records one finished app. Thread-safe; called from verdict-stage
  /// workers. Copies what it needs from `r` — the caller frees the payload
  /// (App + reports) immediately after.
  void OnResult(appmodel::Platform platform, const AppResult& r);

  /// Seeds this exporter with another's retained rows — the incremental
  /// merge: `prev` is the previous full run, `this` holds the re-analyzed
  /// delta, and rows already present here (this run) win. Call before the
  /// Finish* replays.
  void MergeBase(const StreamExporter& prev);

  /// Ordered replays — identical bytes to ExportStudyJson / ExportStudyCsv /
  /// CollectAppVerdicts over a materialized study with the same results.
  /// Require retain_rows; call after every OnResult has landed.
  [[nodiscard]] std::string FinishJson() const;
  [[nodiscard]] std::string FinishCsv() const;
  [[nodiscard]] std::vector<report::AppVerdict> FinishVerdicts() const;

  /// Results recorded so far (all modes).
  [[nodiscard]] std::size_t results() const;

 private:
  /// The batch export order: Android before iOS, ascending universe index.
  struct RowKey {
    int platform_rank = 0;  ///< 0 = Android, 1 = iOS.
    std::size_t index = 0;
    bool operator<(const RowKey& o) const {
      return platform_rank != o.platform_rank ? platform_rank < o.platform_rank
                                              : index < o.index;
    }
  };

  struct Row {
    std::string json_line;
    std::vector<std::vector<std::string>> csv_rows;
    report::AppVerdict verdict;
  };

  Options options_;
  mutable std::mutex mu_;
  std::map<RowKey, Row> rows_;
  std::size_t results_ = 0;
  std::ofstream live_;
};

}  // namespace pinscope::core

#include "core/analyses.h"

#include <algorithm>
#include <map>

#include "net/party.h"
#include "stats/jaccard.h"
#include "util/hex.h"
#include "x509/validation.h"

namespace pinscope::core {

PrevalenceRow ComputePrevalence(const Study& study, store::DatasetId id,
                                appmodel::Platform p) {
  PrevalenceRow row;
  row.dataset = id;
  row.platform = p;
  for (const AppResult* r : study.DatasetResults(id, p)) {
    ++row.total;
    if (r->dynamic_report.AppPins()) ++row.dynamic_pinning;
    if (r->static_report.PotentialPinning()) ++row.embedded_static;
    if (r->static_report.ConfigPinning()) ++row.config_pinning;
  }
  return row;
}

std::vector<CategoryPinningRow> ComputePinningByCategory(const Study& study,
                                                         appmodel::Platform p,
                                                         std::size_t top_n,
                                                         std::size_t min_apps) {
  struct Counts {
    int total = 0;
    int pinning = 0;
  };
  std::map<std::string, Counts> by_category;
  for (const AppResult* r : study.AllResults(p)) {
    Counts& c = by_category[r->app->meta.category];
    ++c.total;
    if (r->dynamic_report.AppPins()) ++c.pinning;
  }

  // Popularity ranks: categories ordered by descending app count.
  std::vector<std::pair<std::string, int>> by_size;
  for (const auto& [cat, c] : by_category) by_size.emplace_back(cat, c.total);
  std::sort(by_size.begin(), by_size.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::map<std::string, int> ranks;
  for (std::size_t i = 0; i < by_size.size(); ++i) {
    ranks[by_size[i].first] = static_cast<int>(i) + 1;
  }

  std::vector<CategoryPinningRow> rows;
  for (const auto& [cat, c] : by_category) {
    if (static_cast<std::size_t>(c.total) < min_apps || c.pinning == 0) continue;
    CategoryPinningRow row;
    row.category = cat;
    row.popularity_rank = ranks[cat];
    row.pinning_apps = c.pinning;
    row.pinning_pct = 100.0 * c.pinning / c.total;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const CategoryPinningRow& a, const CategoryPinningRow& b) {
              if (a.pinning_pct != b.pinning_pct) return a.pinning_pct > b.pinning_pct;
              return a.category < b.category;
            });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

std::vector<PairAnalysis> AnalyzeCommonPairs(const Study& study) {
  std::vector<PairAnalysis> out;
  for (const store::CommonPair& pair : study.ecosystem().common_pairs()) {
    const AppResult& a = study.result(appmodel::Platform::kAndroid, pair.android_index);
    const AppResult& i = study.result(appmodel::Platform::kIos, pair.ios_index);

    PairAnalysis pa;
    pa.android_index = pair.android_index;
    pa.ios_index = pair.ios_index;
    pa.name = a.app->meta.display_name;

    auto fill = [](const dynamicanalysis::DynamicReport& report,
                   std::set<std::string>& pinned, std::set<std::string>& unpinned) {
      for (const auto& dest : report.destinations) {
        if (dest.pinned) {
          pinned.insert(dest.hostname);
        } else if (dest.used_baseline) {
          unpinned.insert(dest.hostname);
        }
      }
    };
    fill(a.dynamic_report, pa.pinned_android, pa.unpinned_android);
    fill(i.dynamic_report, pa.pinned_ios, pa.unpinned_ios);

    const bool pins_a = !pa.pinned_android.empty();
    const bool pins_i = !pa.pinned_ios.empty();

    pa.jaccard = stats::JaccardIndex(pa.pinned_android, pa.pinned_ios);
    pa.android_pinned_unpinned_on_ios =
        stats::OverlapFraction(pa.pinned_android, pa.unpinned_ios);
    pa.ios_pinned_unpinned_on_android =
        stats::OverlapFraction(pa.pinned_ios, pa.unpinned_android);

    if (!pins_a && !pins_i) {
      pa.mode = PairAnalysis::Mode::kNone;
      out.push_back(std::move(pa));
      continue;
    }

    const bool a_in_i_unpinned = pa.android_pinned_unpinned_on_ios > 0.0;
    const bool i_in_a_unpinned = pa.ios_pinned_unpinned_on_android > 0.0;

    if (pins_a && pins_i) {
      pa.mode = PairAnalysis::Mode::kBoth;
      if (a_in_i_unpinned || i_in_a_unpinned) {
        pa.verdict = PairAnalysis::Verdict::kInconsistent;
      } else if (!stats::Intersect(pa.pinned_android, pa.pinned_ios).empty()) {
        pa.verdict = PairAnalysis::Verdict::kConsistent;
        pa.identical_sets = pa.pinned_android == pa.pinned_ios;
      } else {
        pa.verdict = PairAnalysis::Verdict::kInconclusive;
      }
    } else {
      pa.mode = pins_a ? PairAnalysis::Mode::kAndroidOnly
                       : PairAnalysis::Mode::kIosOnly;
      const bool observed_unpinned = pins_a ? a_in_i_unpinned : i_in_a_unpinned;
      pa.verdict = observed_unpinned ? PairAnalysis::Verdict::kInconsistent
                                     : PairAnalysis::Verdict::kInconclusive;
    }
    out.push_back(std::move(pa));
  }
  return out;
}

std::vector<AppDomainProfile> ComputeDomainProfiles(const Study& study,
                                                    appmodel::Platform p) {
  const net::OrganizationDirectory& orgs = study.ecosystem().organizations();
  std::vector<AppDomainProfile> out;
  std::set<std::size_t> seen;
  for (const store::DatasetId id : {store::DatasetId::kPopular, store::DatasetId::kRandom}) {
    for (const AppResult* r : study.DatasetResults(id, p)) {
      if (!seen.insert(r->universe_index).second) continue;
      if (!r->dynamic_report.AppPins()) continue;
      AppDomainProfile profile;
      profile.app_id = r->app->meta.app_id;
      profile.dataset = id;
      for (const auto& dest : r->dynamic_report.destinations) {
        if (!dest.pinned && !dest.used_baseline) continue;
        const bool first = orgs.PartyOrThird(r->app->meta.developer_org,
                                             dest.hostname) == net::Party::kFirst;
        if (dest.pinned) {
          (first ? profile.first_party_pinned : profile.third_party_pinned) += 1;
        } else {
          (first ? profile.first_party_unpinned : profile.third_party_unpinned) += 1;
        }
      }
      out.push_back(std::move(profile));
    }
  }
  return out;
}

PkiCounts ComputePkiCounts(const Study& study, appmodel::Platform p) {
  const x509::RootStore mozilla = x509::PublicCaCatalog::Instance().MozillaStore();
  // Unique pinned destinations across all datasets.
  std::map<std::string, const x509::CertificateChain*> chains;
  for (const AppResult* r : study.AllResults(p)) {
    for (const auto& dest : r->dynamic_report.destinations) {
      if (dest.pinned) chains.emplace(dest.hostname, &dest.served_chain);
    }
  }

  PkiCounts counts;
  for (const auto& [host, chain] : chains) {
    if (chain->empty()) {
      ++counts.unavailable;
      continue;
    }
    if (x509::ChainsToPublicRoot(*chain, mozilla)) {
      ++counts.default_pki;
      continue;
    }
    ++counts.custom_pki;
    if (chain->size() == 1 && chain->front().IsSelfIssued()) {
      ++counts.self_signed;
      counts.self_signed_validity_days.push_back(chain->front().ValidityDays());
    }
  }
  return counts;
}

CertMatchStats ComputeCertMatches(const Study& study, appmodel::Platform p) {
  CertMatchStats stats;
  for (const AppResult* r : study.AllResults(p)) {
    if (!r->dynamic_report.AppPins()) continue;
    ++stats.pinning_apps;

    // Static evidence, indexed by subject common name.
    std::set<std::string> raw_cns;       // embedded certificate files
    std::set<std::string> resolved_cns;  // CT-resolved from scanned hashes
    std::map<std::string, util::Bytes> raw_der;
    for (const auto& found : r->static_report.scan.certificates) {
      raw_cns.insert(std::string(found.cert.subject().common_name()));
      raw_der[std::string(found.cert.subject().common_name())] =
          found.cert.DerBytes();
    }
    for (const auto& cert : r->static_report.ct_resolved) {
      resolved_cns.insert(std::string(cert.subject().common_name()));
    }

    bool matched_any = false;
    std::set<std::string> counted;  // avoid double-counting a CN per app
    for (const auto& dest : r->dynamic_report.destinations) {
      if (!dest.pinned) continue;
      for (std::size_t i = 0; i < dest.served_chain.size(); ++i) {
        const x509::Certificate& cert = dest.served_chain[i];
        const std::string cn(cert.subject().common_name());
        const bool in_static = raw_cns.contains(cn) || resolved_cns.contains(cn);
        if (!in_static || !counted.insert(cn).second) continue;
        matched_any = true;
        if (cert.is_ca()) {
          ++stats.ca_certs;
        } else {
          ++stats.leaf_certs;
          if (resolved_cns.contains(cn)) ++stats.leaf_spki_pinned;
          if (raw_cns.contains(cn)) {
            ++stats.leaf_raw_embedded;
            // §5.3.3: embedded cert differs from the served one — the server
            // renewed, yet the connection still pinned successfully.
            const auto it = raw_der.find(cn);
            if (it != raw_der.end() && it->second != cert.DerBytes()) {
              ++stats.rotated_still_pinned;
            }
          }
        }
      }
    }
    if (matched_any) ++stats.apps_with_match;
  }
  return stats;
}

std::vector<staticanalysis::FrameworkAttribution> ComputeFrameworks(
    const Study& study, appmodel::Platform p, std::size_t min_apps) {
  std::vector<staticanalysis::AppEvidence> evidence;
  for (const AppResult* r : study.AllResults(p)) {
    staticanalysis::AppEvidence e;
    e.app_id = r->app->meta.app_id;
    e.platform = p;
    e.evidence_paths = r->static_report.EvidencePaths();
    if (!e.evidence_paths.empty()) evidence.push_back(std::move(e));
  }
  return staticanalysis::AttributeFrameworks(evidence, p, min_apps);
}

CipherRow ComputeCiphers(const Study& study, store::DatasetId id,
                         appmodel::Platform p) {
  CipherRow row;
  row.dataset = id;
  row.platform = p;
  int total = 0, overall = 0, pinning_apps = 0, pinning_weak = 0;
  for (const AppResult* r : study.DatasetResults(id, p)) {
    ++total;
    bool any_weak = false, any_pinned_weak = false;
    for (const auto& dest : r->dynamic_report.destinations) {
      if (dest.weak_cipher) {
        any_weak = true;
        if (dest.pinned) any_pinned_weak = true;
      }
    }
    if (any_weak) ++overall;
    if (r->dynamic_report.AppPins()) {
      ++pinning_apps;
      if (any_pinned_weak) ++pinning_weak;
    }
  }
  row.overall_pct = total == 0 ? 0.0 : 100.0 * overall / total;
  row.pinning_apps_pct =
      pinning_apps == 0 ? 0.0 : 100.0 * pinning_weak / pinning_apps;
  return row;
}

PiiAnalysis ComputePii(const Study& study, appmodel::Platform p) {
  PiiAnalysis out;
  std::map<appmodel::PiiType, std::pair<int, int>> hits;  // type → (pinned, non)
  for (const AppResult* r : study.AllResults(p)) {
    for (const auto& dest : r->dynamic_report.destinations) {
      if (dest.pinned) {
        if (!dest.circumvented) continue;  // opaque: no PII observation
        ++out.pinned_dests;
        for (appmodel::PiiType t : dest.pii) ++hits[t].first;
      } else {
        if (!dest.used_baseline) continue;
        ++out.non_pinned_dests;
        for (appmodel::PiiType t : dest.pii) ++hits[t].second;
      }
    }
  }
  for (appmodel::PiiType t : appmodel::AllPiiTypes()) {
    const auto it = hits.find(t);
    const int pinned = it == hits.end() ? 0 : it->second.first;
    const int non = it == hits.end() ? 0 : it->second.second;
    if (pinned == 0 && non == 0) continue;
    PiiRow row;
    row.type = t;
    row.pinned_pct =
        out.pinned_dests == 0 ? 0.0 : 100.0 * pinned / out.pinned_dests;
    row.non_pinned_pct =
        out.non_pinned_dests == 0 ? 0.0 : 100.0 * non / out.non_pinned_dests;
    row.test = stats::ChiSquareTest({pinned, out.pinned_dests - pinned, non,
                                     out.non_pinned_dests - non});
    out.rows.push_back(row);
  }
  std::sort(out.rows.begin(), out.rows.end(), [](const PiiRow& a, const PiiRow& b) {
    return a.pinned_pct + a.non_pinned_pct > b.pinned_pct + b.non_pinned_pct;
  });
  return out;
}

CircumventionStats ComputeCircumvention(const Study& study, appmodel::Platform p) {
  std::set<std::string> pinned, circumvented;
  for (const AppResult* r : study.AllResults(p)) {
    for (const auto& dest : r->dynamic_report.destinations) {
      if (!dest.pinned) continue;
      pinned.insert(dest.hostname);
      if (dest.circumvented) circumvented.insert(dest.hostname);
    }
  }
  CircumventionStats stats;
  stats.pinned_unique = static_cast<int>(pinned.size());
  stats.circumvented_unique = static_cast<int>(circumvented.size());
  return stats;
}

}  // namespace pinscope::core

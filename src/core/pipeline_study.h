// Barrier-free pipelined study execution (DESIGN.md §13).
//
// The phase-barrier scheduler (Study::RunPhased) fans every platform's apps
// out with one ParallelMap and joins before touching the next platform — a
// corpus-wide barrier per platform. The pipelined scheduler instead submits
// one stage chain per app (static → dynamic → verdict) to
// util::RunPipeline, so app N can be in dynamic analysis while app N+1 is
// still being statically scanned, across both platforms at once, and
// per-app results stream out (StudyOptions::on_result) as each chain
// completes.
//
// Determinism: both schedulers run the same per-app stage bodies with the
// same options, and both merge by universe index, so exports, the decision
// journal, and run reports are byte-identical between them at any thread
// count, queue depth, and cache setting (tests/core/sched_equivalence_test.cc).
#pragma once

#include <cstddef>
#include <vector>

#include "appmodel/platform.h"

namespace pinscope::core {

class Study;

/// One app of the pipelined work list.
struct PipelineWorkItem {
  appmodel::Platform platform = appmodel::Platform::kAndroid;
  std::size_t universe_index = 0;
};

/// The deterministic work list the pipelined scheduler runs: every pending
/// dataset member of both platforms (Android first, then iOS, each in
/// ascending universe-index order — the same order the phase scheduler
/// visits them, so merge results are identical).
[[nodiscard]] std::vector<PipelineWorkItem> BuildPipelineWorkList(
    const Study& study);

}  // namespace pinscope::core

#include "core/cache_persist.h"

#include <cstdint>
#include <filesystem>

namespace pinscope::core {

namespace {

void SetGauge(obs::Observer* observer, const char* name, std::uint64_t value) {
  if (obs::MetricsRegistry* metrics = obs::MetricsOf(observer)) {
    metrics->gauge(name).Set(value);
  }
}

}  // namespace

std::string ScanCachePathFor(const std::string& cache_dir) {
  return cache_dir + "/scan_cache.pscf";
}

std::string ValidationCachePathFor(const std::string& cache_dir) {
  return cache_dir + "/validation_cache.pscf";
}

StudyCacheBaseline LoadStudyCaches(const std::string& cache_dir,
                                   staticanalysis::ScanCache* scan_cache,
                                   x509::ValidationCache* validation_cache,
                                   obs::Observer* observer) {
  StudyCacheBaseline baseline;
  if (cache_dir.empty()) return baseline;
  if (scan_cache != nullptr) {
    const bool warm = scan_cache->LoadFromFile(ScanCachePathFor(cache_dir));
    if (warm) baseline.scan_entries = scan_cache->EntryCount();
    SetGauge(observer, "cache.persist.scan_loaded", warm ? 1 : 0);
  }
  if (validation_cache != nullptr) {
    const bool warm =
        validation_cache->LoadFromFile(ValidationCachePathFor(cache_dir));
    if (warm) baseline.validation_entries = validation_cache->EntryCount();
    SetGauge(observer, "cache.persist.validation_loaded", warm ? 1 : 0);
  }
  return baseline;
}

void SaveStudyCaches(const std::string& cache_dir,
                     const staticanalysis::ScanCache* scan_cache,
                     const x509::ValidationCache* validation_cache,
                     obs::Observer* observer,
                     const StudyCacheBaseline& baseline) {
  if (cache_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (scan_cache != nullptr) {
    const bool unchanged = scan_cache->EntryCount() == baseline.scan_entries;
    const bool saved =
        unchanged ||
        (!ec && scan_cache->SaveToFile(ScanCachePathFor(cache_dir)));
    SetGauge(observer, "cache.persist.scan_saved", saved ? 1 : 0);
  }
  if (validation_cache != nullptr) {
    const bool unchanged =
        validation_cache->EntryCount() == baseline.validation_entries;
    const bool saved =
        unchanged ||
        (!ec && validation_cache->SaveToFile(ValidationCachePathFor(cache_dir)));
    SetGauge(observer, "cache.persist.validation_saved", saved ? 1 : 0);
  }
}

void PublishCacheGauges(obs::Observer* observer,
                        const staticanalysis::ScanCache* scan_cache,
                        const dynamicanalysis::SimFixtures* fixtures) {
  obs::MetricsRegistry* metrics = obs::MetricsOf(observer);
  if (metrics == nullptr) return;
  if (scan_cache != nullptr) {
    const staticanalysis::ScanCacheStats s = scan_cache->Stats();
    metrics->gauge("cache.scan.lookups").Set(s.lookups);
    metrics->gauge("cache.scan.hits").Set(s.hits);
    metrics->gauge("cache.scan.misses").Set(s.misses);
    metrics->gauge("cache.scan.entries").Set(s.entries);
    metrics->gauge("cache.scan.bytes_deduped").Set(s.bytes_deduped);
  }
  if (fixtures != nullptr) {
    const net::ForgedLeafCacheStats f = fixtures->forged_cache_stats();
    metrics->gauge("cache.forged_leaf.lookups").Set(f.lookups);
    metrics->gauge("cache.forged_leaf.hits").Set(f.hits);
    metrics->gauge("cache.forged_leaf.misses").Set(f.misses);
    metrics->gauge("cache.forged_leaf.entries").Set(f.entries);
    const x509::ValidationCacheStats v = fixtures->validation_cache_stats();
    metrics->gauge("cache.validation.lookups").Set(v.lookups);
    metrics->gauge("cache.validation.hits").Set(v.hits);
    metrics->gauge("cache.validation.misses").Set(v.misses);
    metrics->gauge("cache.validation.inserts").Set(v.inserts);
    metrics->gauge("cache.validation.entries").Set(v.entries);
  }
}

}  // namespace pinscope::core

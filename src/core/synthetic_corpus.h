// Procedurally generated streaming corpora for benchmarks and scale tests.
//
// The calibrated generator (store/generator.h) materializes its whole
// universe — exactly what the streaming path exists to avoid — so the memory
// benchmark needs a corpus whose apps can be built one at a time from
// nothing but (seed, platform, index). SyntheticCorpusSource is that: a
// small fixed ServerWorld plus a pure per-index app factory. It makes no
// attempt to match the paper's calibrated distributions; it exists to let
// bench_stream hydrate 100k apps without 100k apps ever coexisting, and to
// construct warm-vs-cold corpora with controllable scan cost.
//
// Two content regimes, chosen per config:
//  - Shared payload (unique_payload = false): every app ships the same
//    filler blob — the duplicated-SDK shape where the in-run scan cache
//    already deduplicates everything. Used for the flat-RSS sweep.
//  - Unique payload (unique_payload = true): each app's blob starts with a
//    per-index line, so every app has a distinct content digest and the
//    in-run cache can never help across apps — but a persisted cache from a
//    previous run over the same corpus hits every file. Stack
//    `pem_certs_in_payload` PEM blocks into the blob to make each cold scan
//    arbitrarily expensive (every block is found, parsed, and
//    fingerprinted). Used for the warm-vs-cold benchmark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/corpus_source.h"

namespace pinscope::core {

struct SyntheticCorpusConfig {
  std::uint64_t seed = 7;
  std::size_t apps_per_platform = 100;
  std::size_t hosts = 8;  ///< Shared destination pool (apps rotate through).
  std::size_t payload_bytes = 4096;  ///< Filler blob size per app.
  bool unique_payload = false;
  std::size_t pem_certs_in_payload = 0;
  /// Per-app count of small `.pem` cert files, each with a unique comment
  /// line ahead of the PEM block: unique content digest, identical parse.
  std::size_t cert_files_per_app = 0;
  /// Distinct "sha256/<base64>" pin strings baked into the payload. Pin-hit
  /// handling (match + base64 decode per hit) is the one scan cost that
  /// dwarfs the cache-key digest, so pin-dense payloads are where a warm
  /// start wins: the persisted scan cache replaces every per-hit parse with
  /// one digest lookup.
  std::size_t pin_strings_in_payload = 0;
};

class SyntheticCorpusSource final : public CorpusSource {
 public:
  explicit SyntheticCorpusSource(const SyntheticCorpusConfig& config);

  [[nodiscard]] const appmodel::ServerWorld& world() const override {
    return world_;
  }
  [[nodiscard]] const x509::CtLog& ct_log() const override { return ct_log_; }
  [[nodiscard]] std::vector<std::size_t> Indices(
      appmodel::Platform p) const override;
  [[nodiscard]] appmodel::App Hydrate(appmodel::Platform p,
                                      std::size_t index) const override;
  [[nodiscard]] bool NeedsCommonIosSettle(std::size_t) const override {
    return false;
  }

 private:
  [[nodiscard]] const std::string& HostFor(std::size_t index) const;
  [[nodiscard]] std::string PayloadFor(std::size_t index) const;

  SyntheticCorpusConfig config_;
  appmodel::ServerWorld world_;
  x509::CtLog ct_log_;
  std::vector<std::string> hostnames_;
  std::string pem_block_;  ///< One pre-rendered PEM cert, stacked per config.
};

}  // namespace pinscope::core

#include "core/stream_study.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cache_persist.h"
#include "dynamicanalysis/pipeline.h"
#include "obs/telemetry.h"
#include "staticanalysis/static_report.h"
#include "util/pipeline_scheduler.h"

namespace pinscope::core {

namespace {

/// Everything that exists only while one app is in flight. Heap-held so a
/// finished slot frees back to ~32 bytes; the driver's live memory is then
/// (workers + queue depth) payloads, not corpus size.
struct StreamPayload {
  appmodel::App app;
  AppResult result;  ///< result.app points at `app` above.
};

struct StreamSlot {
  appmodel::Platform platform = appmodel::Platform::kAndroid;
  std::size_t index = 0;
  std::unique_ptr<StreamPayload> payload;
};

}  // namespace

StreamStudyResult RunStreamingStudy(const CorpusSource& source,
                                    const StudyOptions& options,
                                    StreamExporter& exporter) {
  obs::Observer* observer = options.observer;
  const obs::Span run_span = obs::SpanFor(observer, "study.run", "study");
  obs::ScopedTimer run_timer(
      obs::PhaseHistogramOrNull(obs::MetricsOf(observer), "phase.study"));
  obs::EventScope study_log = obs::ScopeFor(observer, "", "", "study");

  // Same shared caches as Study, warm-started from cache_dir when set.
  std::unique_ptr<staticanalysis::ScanCache> scan_cache;
  if (options.scan_cache) {
    scan_cache = std::make_unique<staticanalysis::ScanCache>();
  }
  std::unique_ptr<dynamicanalysis::SimFixtures> sim_fixtures;
  if (options.sim_cache) {
    sim_fixtures =
        std::make_unique<dynamicanalysis::SimFixtures>(options.dynamic.seed);
  }
  if (obs::MetricsRegistry* metrics = obs::MetricsOf(observer)) {
    if (scan_cache) scan_cache->AttachMetrics(metrics);
    if (sim_fixtures) sim_fixtures->AttachMetrics(metrics);
  }
  StudyCacheBaseline cache_baseline;
  if (!options.cache_dir.empty()) {
    cache_baseline = LoadStudyCaches(
        options.cache_dir, scan_cache.get(),
        sim_fixtures ? sim_fixtures->validation_cache() : nullptr, observer);
  }

  // Work list + journal parity with Study::RunPipelined: both platform_start
  // events are emitted up front, with the (possibly filtered) counts.
  std::vector<StreamSlot> slots;
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    std::vector<std::size_t> indices;
    for (const std::size_t idx : source.Indices(p)) {
      if (options.app_filter && !options.app_filter(p, idx)) continue;
      indices.push_back(idx);
    }
    study_log.Emit(obs::Severity::kInfo, "study.platform_start",
                   {{"platform", appmodel::PlatformName(p)},
                    {"apps", static_cast<std::uint64_t>(indices.size())}});
    for (const std::size_t idx : indices) {
      StreamSlot slot;
      slot.platform = p;
      slot.index = idx;
      slots.push_back(std::move(slot));
    }
  }

  StreamStudyResult outcome;
  if (!slots.empty()) {
    auto app_span = [&](std::size_t i, const char* stage) {
      return obs::SpanFor(
          observer, slots[i].payload->result.app->meta.app_id, "app",
          {{"platform",
            std::string(appmodel::PlatformName(slots[i].platform))},
           {"stage", stage}});
    };
    const std::vector<util::PipelineStage> stages = {
        {"hydrate",
         [&](std::size_t i) {
           StreamSlot& slot = slots[i];
           auto payload = std::make_unique<StreamPayload>();
           payload->app = source.Hydrate(slot.platform, slot.index);
           payload->result.universe_index = slot.index;
           payload->result.app = &payload->app;
           slot.payload = std::move(payload);
         }},
        {"static",
         [&](std::size_t i) {
           const obs::Span span = app_span(i, "static");
           staticanalysis::StaticAnalysisOptions static_opts;
           static_opts.ct_log = &source.ct_log();
           static_opts.scan_cache = scan_cache.get();
           static_opts.observer = observer;
           AppResult& r = slots[i].payload->result;
           obs::ScopedTimer timer(
               obs::PhaseHistogramOrNull(obs::MetricsOf(observer), "phase.static"));
           r.static_report = staticanalysis::AnalyzeStatically(*r.app, static_opts);
         }},
        {"dynamic",
         [&](std::size_t i) {
           const obs::Span span = app_span(i, "dynamic");
           dynamicanalysis::DynamicOptions dyn = options.dynamic;
           dyn.fixtures = sim_fixtures.get();
           dyn.observer = observer;
           if (slots[i].platform == appmodel::Platform::kIos &&
               source.NeedsCommonIosSettle(slots[i].index)) {
             dyn.settle_seconds = options.common_ios_settle_seconds;
           }
           AppResult& r = slots[i].payload->result;
           obs::ScopedTimer timer(
               obs::PhaseHistogramOrNull(obs::MetricsOf(observer), "phase.dynamic"));
           r.dynamic_report =
               dynamicanalysis::RunDynamicAnalysis(*r.app, source.world(), dyn);
         }},
        {"verdict",
         [&](std::size_t i) {
           StreamSlot& slot = slots[i];
           obs::CounterOrNull(obs::MetricsOf(observer), "study.apps_analyzed")
               .Increment();
           exporter.OnResult(slot.platform, slot.payload->result);
           if (options.on_result) options.on_result(slot.payload->result);
           // The whole point: the hydrated app and its reports die here, not
           // at the end of the run.
           slot.payload.reset();
         }},
    };

    util::PipelineOptions popts;
    popts.threads = options.threads;
    popts.queue_depth = options.queue_depth;
    popts.max_stage_retries = options.stage_retries;
    popts.faults = options.fault_plan;
    popts.trace = obs::TraceOf(observer);
    popts.metrics = obs::MetricsOf(observer);
    // Same key scheme as the telemetry (and the materialized pipeline), so
    // autopsy labels resolve identically on either path.
    popts.timeline = options.timeline;
    popts.timeline_key = [&slots](std::size_t item) {
      const StreamSlot& slot = slots[item];
      return obs::TelemetryKey(
          slot.platform == appmodel::Platform::kAndroid ? 0 : 1, slot.index);
    };
    if (obs::Telemetry* telemetry = options.telemetry) {
      telemetry->AddTotal(slots.size());
      popts.stage_hook = [telemetry, &slots, &stages](std::size_t item,
                                                      std::size_t stage,
                                                      util::StageEvent event) {
        const StreamSlot& slot = slots[item];
        const std::uint64_t key = obs::TelemetryKey(
            slot.platform == appmodel::Platform::kAndroid ? 0 : 1, slot.index);
        const std::string& name = stages[stage].name;
        switch (event) {
          case util::StageEvent::kBegin: {
            // kBegin of "hydrate" runs before the app has an identity — the
            // straggler table then shows the corpus index instead. Safe to
            // read the payload here: only this item's (sequential) chain
            // touches its slot, and the hook precedes the stage body.
            const std::string app_id =
                slot.payload != nullptr ? slot.payload->app.meta.app_id
                                        : "app#" + std::to_string(slot.index);
            telemetry->OnStageStart(key, appmodel::PlatformName(slot.platform),
                                    app_id, name);
            break;
          }
          case util::StageEvent::kEnd:
            telemetry->OnStageEnd(key, name);
            if (stage + 1 == stages.size()) telemetry->OnItemDone(key);
            break;
          case util::StageEvent::kFailed:
            telemetry->OnItemDone(key);
            break;
        }
      };
    }
    const util::PipelineResult run =
        util::RunPipeline(slots.size(), stages, popts);

    // Failed chains still deliver a row (matching the materialized pipeline,
    // where a failed slot merges with empty reports and the error recorded) —
    // unless hydration itself failed, in which case there is no app identity
    // to report.
    outcome.failures = run.failures.size();
    for (const util::StageFailure& f : run.failures) {
      StreamSlot& slot = slots[f.item];
      if (slot.payload == nullptr) continue;
      slot.payload->result.error = f.stage_name + ": " + f.message;
      exporter.OnResult(slot.platform, slot.payload->result);
      if (options.on_result) options.on_result(slot.payload->result);
      slot.payload.reset();
    }
  }
  outcome.apps = exporter.results();

  PublishCacheGauges(observer, scan_cache.get(), sim_fixtures.get());
  if (!options.cache_dir.empty()) {
    SaveStudyCaches(options.cache_dir, scan_cache.get(),
                    sim_fixtures ? sim_fixtures->validation_cache() : nullptr,
                    observer, cache_baseline);
  }
  return outcome;
}

}  // namespace pinscope::core

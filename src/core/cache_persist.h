// Warm-start persistence for the two content-keyed study caches.
//
// A study's expensive work is dominated by two pure functions: the static
// scanner (content digest → scan outcome, staticanalysis/scan_cache.h) and
// chain validation (validation tuple → verdict, x509/validation_cache.h).
// Both are keyed purely by content, so their memos are valid across process
// boundaries: a second study over an overlapping corpus can skip every scan
// and validation the first one already did. These helpers give Study and the
// streaming driver one shared load/save path rooted at a --cache-dir.
//
// Failure policy (DESIGN.md §15): persistence is an accelerator, never a
// dependency. A missing, truncated, corrupt, or version-skewed cache file
// loads nothing and the study runs cold; a failed save leaves the previous
// file intact (atomic write-replace in util/cache_file). Neither path can
// change study results — only how fast they are recomputed.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

#include "dynamicanalysis/sim_fixtures.h"
#include "obs/obs.h"
#include "staticanalysis/scan_cache.h"
#include "x509/validation_cache.h"

namespace pinscope::core {

/// File locations inside a cache dir. Fixed names: a cache dir holds exactly
/// one scan cache and one validation memo, shared by every study that points
/// at it.
[[nodiscard]] std::string ScanCachePathFor(const std::string& cache_dir);
[[nodiscard]] std::string ValidationCachePathFor(const std::string& cache_dir);

/// Entry counts right after a successful load — the "nothing new learned"
/// baseline SaveStudyCaches uses to skip rewriting an unchanged file. The
/// sentinel (no successful load) never equals a real count, so cold starts
/// always save. Valid because cache entries are immutable once inserted:
/// new information always shows up as entry-count growth.
struct StudyCacheBaseline {
  static constexpr std::size_t kNotLoaded =
      std::numeric_limits<std::size_t>::max();
  std::size_t scan_entries = kNotLoaded;
  std::size_t validation_entries = kNotLoaded;
};

/// Loads both caches from `cache_dir` (each independently; one file may be
/// warm while the other is cold). Publishes cache.persist.scan_loaded /
/// cache.persist.validation_loaded gauges (1 = warm, 0 = cold start) when an
/// observer with metrics is attached. Returns the post-load baseline to hand
/// back to SaveStudyCaches.
StudyCacheBaseline LoadStudyCaches(const std::string& cache_dir,
                                   staticanalysis::ScanCache* scan_cache,
                                   x509::ValidationCache* validation_cache,
                                   obs::Observer* observer);

/// Saves both caches into `cache_dir`, creating the directory if needed.
/// A cache still at its loaded entry count is skipped — a fully warm run
/// rewrites nothing. Publishes cache.persist.scan_saved /
/// cache.persist.validation_saved gauges (1 = persisted or unchanged, 0 =
/// save failed). Concurrent saves from separate studies are safe: each
/// writes a private temp file and renames, and equal caches serialize
/// byte-identically, so last-writer-wins is unobservable.
void SaveStudyCaches(const std::string& cache_dir,
                     const staticanalysis::ScanCache* scan_cache,
                     const x509::ValidationCache* validation_cache,
                     obs::Observer* observer,
                     const StudyCacheBaseline& baseline = {});

/// Publishes the shared caches' counters as `cache.<family>.<field>` gauges
/// (no-op without an observer). Shared by Study::Run and the streaming
/// driver so both paths report identically. Gauges, not counters, so
/// republishing is idempotent.
void PublishCacheGauges(obs::Observer* observer,
                        const staticanalysis::ScanCache* scan_cache,
                        const dynamicanalysis::SimFixtures* fixtures);

}  // namespace pinscope::core

#include "cli/cli_options.h"

#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace pinscope::cli {

namespace {

/// State shared by the per-flag parsers: the argument cursor plus the
/// `--flag value` / `--flag=value` plumbing.
struct ArgCursor {
  int argc;
  const char* const* argv;
  int i = 2;

  [[nodiscard]] std::optional<std::string> Next() {
    if (i + 1 >= argc) return std::nullopt;
    return std::string(argv[++i]);
  }
};

/// If `arg` is `flag` or starts with `flag=`, extracts the value into `out`
/// (consuming the next argument for the space form) and returns true.
/// `*ok` turns false when the value is missing or empty.
bool TakeValue(const std::string& arg, const std::string& flag,
               ArgCursor& cursor, std::string& out, bool& ok) {
  if (arg == flag) {
    const auto v = cursor.Next();
    if (!v || v->empty()) {
      ok = false;
      return true;
    }
    out = *v;
    return true;
  }
  if (util::StartsWith(arg, flag + "=")) {
    out = arg.substr(flag.size() + 1);
    if (out.empty()) ok = false;
    return true;
  }
  return false;
}

/// on|off flags (--scan-cache, --sim-cache, --summary).
bool TakeOnOff(const std::string& arg, const std::string& flag,
               ArgCursor& cursor, bool& out, bool& ok) {
  std::string v;
  if (!TakeValue(arg, flag, cursor, v, ok)) return false;
  if (!ok) return true;
  if (v == "on") {
    out = true;
  } else if (v == "off") {
    out = false;
  } else {
    std::fprintf(stderr, "%s expects on|off, got '%s'\n", flag.c_str(),
                 v.c_str());
    ok = false;
  }
  return true;
}

}  // namespace

std::optional<CliOptions> ParseArgs(int argc, const char* const* argv) {
  if (argc < 2) return std::nullopt;
  CliOptions opts;
  opts.command = argv[1];
  ArgCursor cursor{argc, argv};
  for (; cursor.i < argc; ++cursor.i) {
    const std::string arg = argv[cursor.i];
    bool ok = true;
    std::string value;
    if (arg == "--scale") {
      const auto v = cursor.Next();
      if (!v) return std::nullopt;
      opts.scale = std::atof(v->c_str());
      if (opts.scale <= 0.0 || opts.scale > 1.0) return std::nullopt;
    } else if (arg == "--seed") {
      const auto v = cursor.Next();
      if (!v) return std::nullopt;
      opts.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      const auto v = cursor.Next();
      if (!v) return std::nullopt;
      opts.threads = std::atoi(v->c_str());
      if (opts.threads < 0) return std::nullopt;
    } else if (TakeValue(arg, "--scheduler", cursor, value, ok)) {
      if (!ok) return std::nullopt;
      if (value != "phases" && value != "pipeline") {
        std::fprintf(stderr, "--scheduler expects phases|pipeline, got '%s'\n",
                     value.c_str());
        return std::nullopt;
      }
      opts.scheduler = value;
    } else if (TakeValue(arg, "--queue-depth", cursor, value, ok)) {
      if (!ok) return std::nullopt;
      opts.queue_depth = std::atoi(value.c_str());
      if (opts.queue_depth < 0 ||
          (opts.queue_depth == 0 && value != "0")) {
        std::fprintf(stderr, "--queue-depth expects a non-negative integer, "
                             "got '%s'\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (TakeOnOff(arg, "--scan-cache", cursor, opts.scan_cache, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeOnOff(arg, "--sim-cache", cursor, opts.sim_cache, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeOnOff(arg, "--summary", cursor, opts.summary, ok)) {
      if (!ok) return std::nullopt;
    } else if (arg == "--json") {
      const auto v = cursor.Next();
      if (!v) return std::nullopt;
      opts.json_path = *v;
    } else if (arg == "--csv") {
      const auto v = cursor.Next();
      if (!v) return std::nullopt;
      opts.csv_path = *v;
    } else if (TakeValue(arg, "--metrics-out", cursor, opts.metrics_path, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--progress", cursor, value, ok)) {
      if (!ok) return std::nullopt;
      if (value != "off" && value != "plain" && value != "tty") {
        std::fprintf(stderr, "--progress expects off|plain|tty, got '%s'\n",
                     value.c_str());
        return std::nullopt;
      }
      opts.progress = value;
    } else if (TakeValue(arg, "--heartbeat-out", cursor, opts.heartbeat_path,
                         ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--telemetry-interval-ms", cursor, value, ok)) {
      if (!ok) return std::nullopt;
      opts.telemetry_interval_ms = std::atoi(value.c_str());
      if (opts.telemetry_interval_ms <= 0) {
        std::fprintf(stderr,
                     "--telemetry-interval-ms expects a positive integer, "
                     "got '%s'\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (TakeValue(arg, "--trace-out", cursor, opts.trace_path, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--log-out", cursor, opts.log_path, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--report-out", cursor, opts.report_path, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--cache-dir", cursor, opts.cache_dir, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--snapshot", cursor, value, ok)) {
      if (!ok) return std::nullopt;
      opts.snapshots = std::atoi(value.c_str());
      if (opts.snapshots < 0 || (opts.snapshots == 0 && value != "0")) {
        std::fprintf(stderr,
                     "--snapshot expects a non-negative integer, got '%s'\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (TakeOnOff(arg, "--incremental", cursor, opts.incremental, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--perf-report-out", cursor,
                         opts.perf_report_path, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--folded-out", cursor, opts.folded_path, ok)) {
      if (!ok) return std::nullopt;
    } else if (TakeValue(arg, "--timeline-cap", cursor, value, ok)) {
      if (!ok) return std::nullopt;
      opts.timeline_cap = std::atoi(value.c_str());
      if (opts.timeline_cap <= 0) {
        std::fprintf(stderr,
                     "--timeline-cap expects a positive integer, got '%s'\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (TakeValue(arg, "--log-level", cursor, value, ok)) {
      if (!ok) return std::nullopt;
      const auto severity = obs::ParseSeverity(value);
      if (!severity.has_value()) {
        std::fprintf(stderr,
                     "--log-level expects debug|info|decision|warn|error, "
                     "got '%s'\n",
                     value.c_str());
        return std::nullopt;
      }
      opts.log_level = *severity;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return std::nullopt;
    } else {
      opts.positional.push_back(arg);
    }
  }
  return opts;
}

}  // namespace pinscope::cli

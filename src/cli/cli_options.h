// Command-line option parsing for the pinscope front-end.
//
// Lives in src/cli (not tools/) so the flag grammar is unit-testable: the
// binary in tools/pinscope_cli.cc is a thin command dispatcher over this
// parser. Every flag accepts both `--flag value` and `--flag=value` forms
// where noted; bad values are rejected with a message on stderr and a
// nullopt return (the caller prints usage).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/log.h"

namespace pinscope::cli {

/// Parsed command line. Defaults mirror the documented `pinscope help` text.
struct CliOptions {
  std::string command;
  std::vector<std::string> positional;
  double scale = 0.1;
  std::uint64_t seed = 42;
  int threads = 0;  // 0 = hardware concurrency
  /// --scheduler: "pipeline" (barrier-free per-app stage chains, the
  /// default) or "phases" (corpus-wide fan-out per platform). Results are
  /// byte-identical either way (DESIGN.md §13).
  std::string scheduler = "pipeline";
  /// --queue-depth: pipeline ready-queue capacity (0 = 2× worker count).
  int queue_depth = 0;
  bool scan_cache = true;
  bool sim_cache = true;
  bool summary = true;
  std::string json_path;
  std::string csv_path;
  std::string metrics_path;  ///< `.prom` suffix selects OpenMetrics format.
  /// --progress: live progress rendering — "off" (default), "plain" (one
  /// line per tick, pipeable), or "tty" (carriage-return status line).
  std::string progress = "off";
  /// --heartbeat-out: machine-readable heartbeat JSONL, one object per
  /// telemetry tick.
  std::string heartbeat_path;
  /// --telemetry-interval-ms: sampler tick period (positive).
  int telemetry_interval_ms = 250;
  std::string trace_path;
  std::string log_path;      ///< --log-out: decision-journal JSONL.
  obs::Severity log_level = obs::Severity::kInfo;  ///< --log-level.
  std::string report_path;   ///< --report-out: Markdown (+ JSON companion).
  /// --cache-dir: persist/reload the content-keyed scan and validation
  /// caches across runs (warm starts). Missing or corrupt files mean a cold
  /// start, never an error; results are byte-identical either way.
  std::string cache_dir;
  /// --snapshot: advance the generated store this many churn epochs before
  /// analyzing (0 = as generated). Also the epoch count for `longitudinal`.
  int snapshots = 0;
  /// --incremental: with --snapshot N, analyze only apps changed by the
  /// final churn epoch and merge over the previous snapshot's results.
  bool incremental = false;
  /// --perf-report-out: post-hoc run autopsy as Markdown (+ JSON companion
  /// next to it, mirroring --report-out). Setting it attaches an interval
  /// timeline to the run; implied by the `autopsy` command.
  std::string perf_report_path;
  /// --folded-out: collapsed-stack lines (`platform;app;stage weight_us`)
  /// for flamegraph.pl / speedscope, from the same timeline.
  std::string folded_path;
  /// --timeline-cap: per-worker interval-reservoir capacity (positive).
  /// Memory is O(workers × cap) regardless of corpus size.
  int timeline_cap = 8192;
};

/// Parses `argv` (argv[0] is the program name, argv[1] the command).
/// Returns nullopt on any malformed flag, after describing it on stderr.
[[nodiscard]] std::optional<CliOptions> ParseArgs(int argc,
                                                  const char* const* argv);

}  // namespace pinscope::cli

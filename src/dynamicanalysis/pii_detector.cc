#include "dynamicanalysis/pii_detector.h"

#include <algorithm>

#include "net/http.h"
#include "util/error.h"
#include "util/strings.h"

namespace pinscope::dynamicanalysis {

std::vector<appmodel::PiiType> DetectPii(std::string_view payload,
                                         const appmodel::DeviceIdentity& device) {
  std::vector<appmodel::PiiType> out;
  for (appmodel::PiiType t : appmodel::AllPiiTypes()) {
    const std::string& value = device.Value(t);
    if (!value.empty() && util::Contains(payload, value)) out.push_back(t);
  }
  return out;
}

std::string_view PiiLocationName(PiiLocation loc) {
  switch (loc) {
    case PiiLocation::kQueryParam: return "query-param";
    case PiiLocation::kHeader: return "header";
    case PiiLocation::kFormBody: return "form-body";
    case PiiLocation::kRawBytes: return "raw-bytes";
  }
  throw util::Error("unknown PiiLocation");
}

std::vector<PiiFinding> DetectPiiDetailed(std::string_view payload,
                                          const appmodel::DeviceIdentity& device) {
  std::vector<PiiFinding> out;
  auto add = [&out](appmodel::PiiType type, PiiLocation loc, std::string key) {
    for (const PiiFinding& f : out) {
      if (f.type == type && f.location == loc && f.key == key) return;
    }
    out.push_back({type, loc, std::move(key)});
  };

  const auto request = net::HttpRequest::Parse(payload);
  if (!request.has_value()) {
    for (appmodel::PiiType t : DetectPii(payload, device)) {
      add(t, PiiLocation::kRawBytes, "");
    }
    return out;
  }

  for (appmodel::PiiType t : appmodel::AllPiiTypes()) {
    const std::string& value = device.Value(t);
    if (value.empty()) continue;
    for (const auto& [key, v] : request->QueryParams()) {
      if (util::Contains(v, value)) add(t, PiiLocation::kQueryParam, key);
    }
    for (const auto& [key, v] : request->headers) {
      if (util::Contains(v, value)) add(t, PiiLocation::kHeader, key);
    }
    for (const auto& [key, v] : request->FormParams()) {
      if (util::Contains(v, value)) add(t, PiiLocation::kFormBody, key);
    }
    // Anything the structured views missed (free-form bodies).
    bool located = false;
    for (const PiiFinding& f : out) {
      if (f.type == t) located = true;
    }
    if (!located && util::Contains(request->body, value)) {
      add(t, PiiLocation::kRawBytes, "");
    }
  }
  return out;
}

std::vector<appmodel::PiiType> DetectPiiForDestination(
    const net::Capture& capture, std::string_view hostname,
    const appmodel::DeviceIdentity& device) {
  // Dedupes inline against the (≤ PiiType-count) accumulator instead of
  // building a per-flow vector and merging it.
  std::vector<appmodel::PiiType> out;
  for (const net::Flow& f : capture.flows) {
    if (f.sni != hostname || !f.decrypted_payload.has_value()) continue;
    for (appmodel::PiiType t : appmodel::AllPiiTypes()) {
      if (std::find(out.begin(), out.end(), t) != out.end()) continue;
      const std::string& value = device.Value(t);
      if (!value.empty() && util::Contains(*f.decrypted_payload, value)) {
        out.push_back(t);
      }
    }
  }
  return out;
}

}  // namespace pinscope::dynamicanalysis

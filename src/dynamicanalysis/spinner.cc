#include "dynamicanalysis/spinner.h"

#include "util/error.h"
#include "x509/validation.h"

namespace pinscope::dynamicanalysis {

std::string_view SpinnerVerdictName(SpinnerVerdict v) {
  switch (v) {
    case SpinnerVerdict::kNoPinning: return "no-pinning";
    case SpinnerVerdict::kVulnerable: return "vulnerable-no-hostname-check";
    case SpinnerVerdict::kCaPinningDetected: return "ca-pinning-detected";
    case SpinnerVerdict::kIndistinguishable: return "indistinguishable";
  }
  throw util::Error("unknown SpinnerVerdict");
}

namespace {

// Where a probe chain is rejected (what Spinner infers from alert patterns
// and handshake progress).
enum class Stage { kAccepted, kPinOrTrust, kHostname };

Stage ProbeStage(const appmodel::DestinationBehavior& dest,
                 const appmodel::AppBehavior& behavior,
                 const x509::RootStore& store,
                 const x509::CertificateChain& probe_chain) {
  // Chain trust and pin evaluation reject early with distinctive signals;
  // hostname mismatch rejects later.
  x509::ValidationOptions opts;
  opts.check_hostname = false;
  opts.check_expiry = behavior.validates_expiry;
  const bool trust_ok =
      x509::ValidateChain(probe_chain, "", util::kStudyEpoch, store, opts).ok();

  bool pin_ok = true;
  if (dest.pinned && !dest.pins.empty()) {
    pin_ok = false;
    for (const tls::Pin& pin : dest.pins) {
      for (const x509::Certificate& cert : probe_chain) {
        if (pin.Matches(cert)) pin_ok = true;
      }
    }
  }
  if (!trust_ok || !pin_ok) return Stage::kPinOrTrust;

  if (behavior.validates_hostname &&
      !probe_chain.front().MatchesHostname(dest.hostname)) {
    return Stage::kHostname;
  }
  return Stage::kAccepted;
}

}  // namespace

std::vector<SpinnerResult> RunSpinnerProbes(const appmodel::App& app,
                                            const appmodel::ServerWorld& world,
                                            util::Rng& rng) {
  const x509::RootStore system_store =
      app.meta.platform == appmodel::Platform::kAndroid
          ? x509::PublicCaCatalog::Instance().AospStore()
          : x509::PublicCaCatalog::Instance().IosStore();

  std::vector<SpinnerResult> out;
  for (const appmodel::DestinationBehavior& dest : app.behavior.destinations) {
    const appmodel::ServerInfo* srv = world.Find(dest.hostname);
    if (srv == nullptr) continue;

    // Spinner's probe database: a valid certificate for some *other* site
    // under the same CA hierarchy, and one under a different hierarchy.
    const std::string decoy = "decoy-" + rng.Identifier(6) + ".example.net";
    const x509::CertificateChain same_ca = world.MakeDecoyChain(dest.hostname, decoy);
    const x509::CertificateChain other_ca = world.MakeForeignChain(dest.hostname, decoy);

    // Custom-trust destinations validate against the app's bundled store.
    const x509::RootStore bundled("app-bundled", {srv->endpoint.chain.back()});
    const x509::RootStore& store = dest.custom_trust ? bundled : system_store;

    const Stage s_same = ProbeStage(dest, app.behavior, store, same_ca);
    const Stage s_other = ProbeStage(dest, app.behavior, store, other_ca);

    SpinnerResult result;
    result.hostname = dest.hostname;
    if (s_same == Stage::kAccepted || s_other == Stage::kAccepted) {
      result.verdict = SpinnerVerdict::kVulnerable;
    } else if (s_same == Stage::kHostname && s_other == Stage::kPinOrTrust) {
      result.verdict = SpinnerVerdict::kCaPinningDetected;
    } else if (s_same == Stage::kHostname && s_other == Stage::kHostname) {
      result.verdict = SpinnerVerdict::kNoPinning;
    } else {
      // Every probe dies at the pin/trust stage: leaf pinning, key pinning
      // and bundled custom trust all look identical to Spinner.
      result.verdict = SpinnerVerdict::kIndistinguishable;
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace pinscope::dynamicanalysis

#include "dynamicanalysis/device.h"

#include <algorithm>

#include "util/error.h"

namespace pinscope::dynamicanalysis {

const std::vector<std::string>& AppleBackgroundDomains() {
  static const std::vector<std::string> domains = {
      "gsp-ssl.icloud.com", "configuration.apple.com", "init.itunes.apple.com",
      "is1-ssl.mzstatic.com"};
  return domains;
}

namespace {

appmodel::DeviceIdentity Pixel3Identity() {
  appmodel::DeviceIdentity id;
  id.imei = "358240051111110";
  id.advertising_id = "cdda802e-fb9c-47ad-9866-0794d394c912";
  id.wifi_mac = "02:00:00:44:55:66";
  id.email = "pinscope.tester@gmail.com";
  id.state = "Massachusetts";
  id.city = "Boston";
  id.lat_long = "42.3601,-71.0589";
  return id;
}

appmodel::DeviceIdentity IPhoneXIdentity() {
  appmodel::DeviceIdentity id;
  id.imei = "356556080000000";
  id.advertising_id = "EA7583CD-A667-48BC-B806-42ECB2B48606";
  id.wifi_mac = "f0:98:9d:12:34:56";
  id.email = "pinscope.tester@gmail.com";
  id.state = "Massachusetts";
  id.city = "Boston";
  id.lat_long = "42.3601,-71.0589";
  return id;
}

// System store for the pointer-CA factories: the platform catalog store,
// plus the proxy CA when interception is on. The OS-service store never
// gains the proxy CA.
std::shared_ptr<const x509::RootStore> WithOptionalProxyCa(
    x509::RootStore base, const x509::Certificate* proxy_ca) {
  if (proxy_ca != nullptr) base.AddRoot(*proxy_ca);
  return std::make_shared<const x509::RootStore>(std::move(base));
}

}  // namespace

DeviceEmulator::DeviceEmulator(
    appmodel::Platform platform, std::string model, std::string os_version,
    std::shared_ptr<const x509::RootStore> system_store,
    std::shared_ptr<const x509::RootStore> os_service_store,
    appmodel::DeviceIdentity identity)
    : platform_(platform),
      model_(std::move(model)),
      os_version_(std::move(os_version)),
      system_store_(std::move(system_store)),
      os_service_store_(std::move(os_service_store)),
      identity_(std::move(identity)) {}

DeviceEmulator DeviceEmulator::Pixel3(const x509::Certificate* proxy_ca) {
  const x509::RootStore& aosp = x509::PublicCaCatalog::Instance().AospStore();
  return Pixel3(WithOptionalProxyCa(aosp, proxy_ca),
                std::make_shared<const x509::RootStore>(aosp));
}

DeviceEmulator DeviceEmulator::IPhoneX(const x509::Certificate* proxy_ca) {
  const x509::RootStore& ios = x509::PublicCaCatalog::Instance().IosStore();
  return IPhoneX(WithOptionalProxyCa(ios, proxy_ca),
                 std::make_shared<const x509::RootStore>(ios));
}

DeviceEmulator DeviceEmulator::Pixel3(
    std::shared_ptr<const x509::RootStore> system_store,
    std::shared_ptr<const x509::RootStore> os_service_store) {
  return DeviceEmulator(appmodel::Platform::kAndroid, "Pixel 3", "Android 11",
                        std::move(system_store), std::move(os_service_store),
                        Pixel3Identity());
}

DeviceEmulator DeviceEmulator::IPhoneX(
    std::shared_ptr<const x509::RootStore> system_store,
    std::shared_ptr<const x509::RootStore> os_service_store) {
  return DeviceEmulator(appmodel::Platform::kIos, "iPhone X", "iOS 13.6",
                        std::move(system_store), std::move(os_service_store),
                        IPhoneXIdentity());
}

namespace {

// Builds the private trust store of a custom-PKI app: it trusts exactly the
// terminal certificate of each of its servers' chains.
x509::RootStore CustomStoreFor(const x509::CertificateChain& chain) {
  x509::RootStore store("app-bundled", {chain.back()});
  return store;
}

}  // namespace

net::Capture DeviceEmulator::RunApp(const appmodel::App& app,
                                    const appmodel::ServerWorld& world,
                                    const RunOptions& options,
                                    util::Rng& rng) const {
  if (app.meta.platform != platform_) {
    throw util::Error("app platform does not match device platform");
  }

  net::Capture cap;
  const std::int64_t capture_ms =
      static_cast<std::int64_t>(options.capture_seconds) * 1000;
  const std::int64_t settle_ms =
      static_cast<std::int64_t>(options.settle_seconds) * 1000;
  const net::MitmProxy* proxy = options.proxy;

  // App activity happens on its own timeline (§4.2.1: the paper swept 15/30/
  // 60-second captures and found diminishing returns past 30 s). Connections
  // scheduled after the capture window are simply not recorded; idle
  // connections still open at window end appear with no orderly shutdown.
  auto connect = [&](const tls::ClientTlsConfig& cfg,
                     const tls::ServerEndpoint& server,
                     const tls::AppPayload& payload, std::int64_t start_ms,
                     net::FlowOrigin origin) {
    if (start_ms >= capture_ms) return;  // after the recording stopped
    tls::ConnectionOutcome out;
    bool decrypted = false;
    if (proxy != nullptr) {
      net::InterceptResult res =
          proxy->Intercept(cfg, server, payload, util::kStudyEpoch, rng);
      out = std::move(res.outcome);
      decrypted = res.decrypted;
    } else {
      out = tls::SimulateDirectConnection(cfg, server, payload, util::kStudyEpoch,
                                          rng);
    }
    // Idle-but-successful connections near the window end are cut before
    // their close_notify — the "limited recording time" confounder §4.2.2's
    // failed-connection definition guards against.
    if (out.handshake_complete && !out.application_data_sent &&
        start_ms + 2'000 > capture_ms && !out.records.empty()) {
      out.records.pop_back();  // the pending close_notify never got captured
      out.closure = tls::Closure::kOpen;
    }
    cap.flows.push_back(net::FlowFromOutcome(server.hostname, std::move(out),
                                             start_ms, origin, decrypted));
    obs::CounterOrNull(options.metrics, "net.flows_simulated").Increment();
  };

  // Long-tailed activity schedule: u² over ~55 s keeps most traffic early.
  auto long_tail = [&rng]() {
    const double u = rng.UniformDouble();
    return static_cast<std::int64_t>(100 + u * u * 55'000);
  };

  // --- App traffic ---
  for (const appmodel::DestinationBehavior& d : app.behavior.destinations) {
    if (d.requires_interaction && !options.interact) continue;
    const appmodel::ServerInfo* srv = world.Find(d.hostname);
    if (srv == nullptr) continue;  // unresolvable destination

    // Custom-PKI destinations use the app's bundled trust store; it does not
    // contain the proxy CA, so interception fails exactly like a pin failure.
    std::optional<x509::RootStore> custom_store;
    if (d.custom_trust) {
      custom_store = CustomStoreFor(srv->endpoint.chain);
    }

    tls::ClientTlsConfig cfg;
    cfg.root_store =
        custom_store.has_value() ? &*custom_store : system_store_.get();
    cfg.validation_cache = options.validation_cache;
    cfg.metrics = options.metrics;
    cfg.validation.metrics = options.metrics;
    cfg.log = options.log;
    cfg.store_session_tickets = false;  // captures never resume sessions
    cfg.offered_ciphers = d.cipher_offer;
    cfg.stack = d.stack;
    cfg.validation.check_hostname = app.behavior.validates_hostname;
    cfg.validation.check_expiry = app.behavior.validates_expiry;
    if (d.pinned && !d.pins.empty()) {
      tls::DomainPinRule rule;
      rule.pattern = d.hostname;
      rule.pins = d.pins;
      cfg.pins.AddRule(std::move(rule));
    }

    tls::AppPayload payload;
    if (!d.never_used) {
      payload.plaintext =
          appmodel::ExpandPiiTemplate(d.payload_template, identity_);
      payload.client_records =
          1 + static_cast<int>(payload.plaintext.size() / 1200);
    }

    // Primary connections belong to the app's startup burst.
    const std::int64_t t0 =
        static_cast<std::int64_t>(rng.UniformU64(100, 12'000));
    connect(cfg, srv->endpoint, payload, t0, net::FlowOrigin::kApp);

    for (int i = 0; i < d.redundant_connections; ++i) {
      connect(cfg, srv->endpoint, tls::AppPayload{}, long_tail(),
              net::FlowOrigin::kApp);
    }
  }

  // A small share of traffic carries no SNI (raw-IP sockets, ESNI-less
  // telemetry). §4.2.2 reports 99% SNI coverage; destination attribution
  // simply skips the remainder.
  if (!cap.flows.empty() && rng.Bernoulli(0.08)) {
    net::Flow anonymous = cap.flows.front();
    anonymous.sni.clear();
    anonymous.start_ms = static_cast<std::int64_t>(rng.UniformU64(100, 9'000));
    cap.flows.push_back(std::move(anonymous));
  }

  if (platform_ != appmodel::Platform::kIos) return cap;

  // --- iOS OS-background traffic (Apple services, spans the whole test) ---
  for (const std::string& host : AppleBackgroundDomains()) {
    const appmodel::ServerInfo* srv = world.Find(host);
    if (srv == nullptr) continue;
    tls::ClientTlsConfig cfg;
    cfg.root_store = os_service_store_.get();  // ignores user-installed CAs
    cfg.validation_cache = options.validation_cache;
    cfg.metrics = options.metrics;
    cfg.validation.metrics = options.metrics;
    cfg.log = options.log;
    cfg.store_session_tickets = false;
    cfg.stack = tls::TlsStack::kNsUrlSession;
    tls::AppPayload payload;
    payload.plaintext = "POST /telemetry HTTP/1.1\r\nhost: " + host;
    const int flows = 1 + static_cast<int>(rng.UniformU64(0, 2));
    for (int i = 0; i < flows; ++i) {
      // Background churn spans the whole test (§4.5: "spanned the whole
      // duration of dynamic testing").
      const std::int64_t t = static_cast<std::int64_t>(rng.UniformU64(
          0, static_cast<std::uint64_t>(std::max<std::int64_t>(capture_ms - 500, 1))));
      connect(cfg, srv->endpoint, payload, t, net::FlowOrigin::kOsBackground);
    }
  }

  // --- Associated-domain verification (install-time; §4.5). With a settle
  // delay of ≥2 minutes the verification finishes before capture starts. ---
  if (settle_ms < 120'000) {
    for (const std::string& host : app.behavior.associated_domains) {
      const appmodel::ServerInfo* srv = world.Find(host);
      if (srv == nullptr) continue;
      tls::ClientTlsConfig cfg;
      cfg.root_store = os_service_store_.get();
      cfg.validation_cache = options.validation_cache;
      cfg.metrics = options.metrics;
      cfg.validation.metrics = options.metrics;
      cfg.log = options.log;
      cfg.store_session_tickets = false;
      cfg.stack = tls::TlsStack::kNsUrlSession;
      tls::AppPayload payload;
      payload.plaintext =
          "GET /.well-known/apple-app-site-association HTTP/1.1";
      // Verification fires shortly after install.
      const std::int64_t t = static_cast<std::int64_t>(rng.UniformU64(0, 8'000));
      connect(cfg, srv->endpoint, payload, t, net::FlowOrigin::kAssociatedDomains);
    }
  }

  return cap;
}

}  // namespace pinscope::dynamicanalysis

// Test-device emulation (§4.2.1).
//
// Models the paper's two test devices — a Pixel 3 on Android 11 with the
// mitmproxy CA added to the system store, and a checkra1n-jailbroken
// iPhone X on iOS 13.6 with user trust for the proxy CA — and executes app
// behaviour under them: per-destination TLS connections, redundant
// connections, iOS OS-background traffic to Apple domains, and
// associated-domain verification traffic that OS services perform with a
// validator that ignores user-installed CAs.
//
// Root stores are immutable after device construction and held by
// shared_ptr, so a study can build each platform's stores once and share
// them across every per-app device instead of copying two full stores per
// app (see dynamicanalysis/sim_fixtures.h).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "appmodel/app.h"
#include "appmodel/pii.h"
#include "appmodel/server_world.h"
#include "net/flow.h"
#include "net/mitm_proxy.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "x509/root_store.h"
#include "x509/validation_cache.h"

namespace pinscope::dynamicanalysis {

/// Apple-controlled domains that generate background traffic throughout iOS
/// tests (§4.5 excludes them from analysis).
[[nodiscard]] const std::vector<std::string>& AppleBackgroundDomains();

/// Options for one app test run.
struct RunOptions {
  /// Interception proxy; nullptr = the baseline (non-MITM) experiment.
  const net::MitmProxy* proxy = nullptr;
  /// Optional shared chain-validation memo threaded into every connection's
  /// ClientTlsConfig. Null ⇒ each connection validates from scratch.
  x509::ValidationCache* validation_cache = nullptr;
  /// Capture duration after launch (the paper settled on 30 s).
  int capture_seconds = 30;
  /// Delay between install and launch; the Common-iOS re-run uses 120 s so
  /// associated-domain verification finishes before capture (§4.5).
  int settle_seconds = 0;
  /// Exercise the app with (random monkey-style) UI interactions, reaching
  /// destinations behind deeper code paths. The paper ran without them.
  bool interact = false;
  /// Optional metrics registry: RunApp counts simulated flows and threads
  /// the registry into every connection's TLS config. Observational only —
  /// never consulted by the simulation itself (DESIGN.md §11).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional decision-journal scope for this run's phase (baseline, mitm,
  /// or frida). Threaded into every connection's TLS config so validation
  /// failures, pin mismatches, and intercept outcomes land under the right
  /// (platform, app, phase) keys. Observational only (DESIGN.md §12).
  obs::EventScope* log = nullptr;
};

/// A simulated test device.
class DeviceEmulator {
 public:
  /// The paper's Android device. If `proxy_ca` is non-null it is installed
  /// into the system store (the paper modified the factory image).
  static DeviceEmulator Pixel3(const x509::Certificate* proxy_ca);

  /// The paper's iOS device. If `proxy_ca` is non-null the user trusts it —
  /// but OS services still ignore user-installed CAs.
  static DeviceEmulator IPhoneX(const x509::Certificate* proxy_ca);

  /// Fixture-sharing variants: adopt prebuilt immutable stores instead of
  /// constructing (and copying) them per device. `system_store` is the
  /// app-visible store (proxy CA included when intercepting);
  /// `os_service_store` is what OS services use (never has user CAs).
  static DeviceEmulator Pixel3(
      std::shared_ptr<const x509::RootStore> system_store,
      std::shared_ptr<const x509::RootStore> os_service_store);
  static DeviceEmulator IPhoneX(
      std::shared_ptr<const x509::RootStore> system_store,
      std::shared_ptr<const x509::RootStore> os_service_store);

  [[nodiscard]] appmodel::Platform platform() const { return platform_; }
  [[nodiscard]] const std::string& model() const { return model_; }
  [[nodiscard]] const std::string& os_version() const { return os_version_; }
  [[nodiscard]] const appmodel::DeviceIdentity& identity() const { return identity_; }
  [[nodiscard]] const x509::RootStore& system_store() const { return *system_store_; }

  /// Installs `app`, waits, captures `capture_seconds` of traffic, uninstalls.
  /// Servers come from `world`; destinations without a provisioned server
  /// produce no flow (DNS failure). Deterministic given `rng`.
  [[nodiscard]] net::Capture RunApp(const appmodel::App& app,
                                    const appmodel::ServerWorld& world,
                                    const RunOptions& options, util::Rng& rng) const;

 private:
  DeviceEmulator(appmodel::Platform platform, std::string model,
                 std::string os_version,
                 std::shared_ptr<const x509::RootStore> system_store,
                 std::shared_ptr<const x509::RootStore> os_service_store,
                 appmodel::DeviceIdentity identity);

  appmodel::Platform platform_;
  std::string model_;
  std::string os_version_;
  /// App-visible trust store (immutable; possibly shared across devices).
  std::shared_ptr<const x509::RootStore> system_store_;
  /// Store OS services use (no user CAs; immutable, possibly shared).
  std::shared_ptr<const x509::RootStore> os_service_store_;
  appmodel::DeviceIdentity identity_;
};

}  // namespace pinscope::dynamicanalysis

// Pin-circumvention instrumentation (Frida substitute, §4.3).
//
// The paper hooks popular TLS libraries at run time and disables certificate
// validation, then re-runs the MITM pipeline to read pinned traffic. Hooks
// exist only for catalogued stacks; apps with statically linked custom TLS
// cannot be instrumented — which is why the paper only circumvented ≈51.5%
// of pinned destinations on Android and ≈66.2% on iOS.
#pragma once

#include <string>
#include <vector>

#include "appmodel/app.h"
#include "appmodel/server_world.h"
#include "dynamicanalysis/device.h"
#include "net/flow.h"
#include "net/mitm_proxy.h"
#include "tls/handshake.h"

namespace pinscope::dynamicanalysis {

/// True if a Frida hook script exists for `stack` on `platform` — i.e. the
/// library's certificate-validation entry points are known and patchable.
[[nodiscard]] bool IsHookable(tls::TlsStack stack, appmodel::Platform platform);

/// Result of an instrumented (pin-disabled) MITM run.
struct CircumventionRun {
  net::Capture capture;
  /// Destinations whose TLS stack was successfully hooked.
  std::vector<std::string> hooked_destinations;
  /// Destinations whose stack had no hook (traffic still opaque).
  std::vector<std::string> unhookable_destinations;
};

/// Re-runs `app` on `device` through `proxy` with every hookable stack's
/// validation and pinning disabled. Returns the capture — flows to hooked
/// destinations now complete and are decrypted by the proxy; unhookable
/// destinations still fail.
[[nodiscard]] CircumventionRun RunWithPinningDisabled(
    const appmodel::App& app, const appmodel::ServerWorld& world,
    const DeviceEmulator& device, const net::MitmProxy& proxy,
    const RunOptions& options, util::Rng& rng);

}  // namespace pinscope::dynamicanalysis

// PII detection in decrypted traffic (§4.4).
//
// ReCon-style: the detector knows the test device's identity values and
// searches decrypted payloads for them. It never sees the app's templates —
// only bytes on the wire.
#pragma once

#include <string_view>
#include <vector>

#include "appmodel/pii.h"
#include "net/flow.h"

namespace pinscope::dynamicanalysis {

/// PII types whose device value occurs verbatim in `payload`.
[[nodiscard]] std::vector<appmodel::PiiType> DetectPii(
    std::string_view payload, const appmodel::DeviceIdentity& device);

/// Where inside a request a PII value was found.
enum class PiiLocation { kQueryParam, kHeader, kFormBody, kRawBytes };

/// Human-readable location name.
[[nodiscard]] std::string_view PiiLocationName(PiiLocation loc);

/// A located PII observation.
struct PiiFinding {
  appmodel::PiiType type = appmodel::PiiType::kAdvertisingId;
  PiiLocation location = PiiLocation::kRawBytes;
  std::string key;  ///< Parameter/header name carrying the value ("" for raw).
};

/// Structured PII detection: parses `payload` as an HTTP request and
/// attributes each detected value to the query string, a header, or the form
/// body; payloads that are not HTTP fall back to raw-byte matching.
[[nodiscard]] std::vector<PiiFinding> DetectPiiDetailed(
    std::string_view payload, const appmodel::DeviceIdentity& device);

/// Union of PII found in all decrypted flows of `capture` whose SNI is
/// `hostname`. Flows without decrypted payloads contribute nothing.
[[nodiscard]] std::vector<appmodel::PiiType> DetectPiiForDestination(
    const net::Capture& capture, std::string_view hostname,
    const appmodel::DeviceIdentity& device);

}  // namespace pinscope::dynamicanalysis

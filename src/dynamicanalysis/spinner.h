// Spinner-style pinning detection (Stone, Chothia & Garcia, ACSAC'17) —
// the baseline technique the paper contrasts with its differential detector.
//
// Spinner redirects an app's TLS traffic to certificates of *other* websites
// (it has no CA power, so every probe chain is valid but for the wrong
// hostname) and classifies by where the client aborts:
//
//   * accepts a wrong-hostname chain            → broken hostname validation
//     (Spinner's headline vulnerability);
//   * rejects a wrong-host chain issued under a *different* CA hierarchy but
//     progresses further with one under the pinned CA                → the
//     app pins a CA/intermediate certificate;
//   * rejects every probe at the same (pin) stage                    → leaf
//     pinning and strict validation are indistinguishable — Spinner reports
//     nothing. This is the §2.2 limitation: "their technique only finds apps
//     that pin intermediate or root certificates"; the differential detector
//     covers all pin targets.
#pragma once

#include <string>
#include <vector>

#include "appmodel/app.h"
#include "appmodel/server_world.h"
#include "util/rng.h"

namespace pinscope::dynamicanalysis {

/// Spinner's per-destination classification.
enum class SpinnerVerdict {
  kNoPinning,           ///< Wrong-host probes rejected on hostname alone.
  kVulnerable,          ///< Wrong-host chain accepted: no hostname validation.
  kCaPinningDetected,   ///< Pin-stage rejection differs across CA hierarchies.
  kIndistinguishable,   ///< Rejects everything identically (leaf pin or
                        ///  custom trust) — Spinner cannot tell.
};

/// Human-readable verdict name.
[[nodiscard]] std::string_view SpinnerVerdictName(SpinnerVerdict v);

/// One probed destination.
struct SpinnerResult {
  std::string hostname;
  SpinnerVerdict verdict = SpinnerVerdict::kNoPinning;
  /// Ground-truth cross-check convenience: true if the destination is pinned
  /// at run time (any target). Filled by the prober from app behaviour ONLY
  /// in tests; the bench comparison uses the differential detector instead.
  bool detected_pinning() const {
    return verdict == SpinnerVerdict::kCaPinningDetected;
  }
};

/// Runs Spinner probes against every destination of `app`. For each
/// destination it synthesizes the probe chains (same-CA wrong-host,
/// different-CA wrong-host) and classifies from the client's accept/reject
/// pattern.
[[nodiscard]] std::vector<SpinnerResult> RunSpinnerProbes(
    const appmodel::App& app, const appmodel::ServerWorld& world,
    util::Rng& rng);

}  // namespace pinscope::dynamicanalysis

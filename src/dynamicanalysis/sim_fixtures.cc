#include "dynamicanalysis/sim_fixtures.h"

#include <utility>

#include "util/error.h"

namespace pinscope::dynamicanalysis {
namespace {

std::shared_ptr<const x509::RootStore> Frozen(x509::RootStore store) {
  return std::make_shared<const x509::RootStore>(std::move(store));
}

std::shared_ptr<const x509::RootStore> WithProxyCa(
    x509::RootStore store, const x509::Certificate& proxy_ca) {
  store.AddRoot(proxy_ca);
  return Frozen(std::move(store));
}

}  // namespace

SimFixtures::SimFixtures(std::uint64_t seed)
    : seed_(seed),
      proxy_(std::make_unique<net::MitmProxy>(
          "mitmproxy", seed, std::make_shared<net::ForgedLeafCache>())),
      validation_cache_(std::make_unique<x509::ValidationCache>()) {
  const x509::PublicCaCatalog& catalog = x509::PublicCaCatalog::Instance();
  const x509::Certificate& ca = proxy_->CaCertificate();
  android_system_ = WithProxyCa(catalog.AospStore(), ca);
  ios_system_ = WithProxyCa(catalog.IosStore(), ca);
  android_os_service_ = Frozen(catalog.AospStore());
  ios_os_service_ = Frozen(catalog.IosStore());
}

DeviceEmulator SimFixtures::MakeDevice(appmodel::Platform platform) const {
  switch (platform) {
    case appmodel::Platform::kAndroid:
      return DeviceEmulator::Pixel3(android_system_, android_os_service_);
    case appmodel::Platform::kIos:
      return DeviceEmulator::IPhoneX(ios_system_, ios_os_service_);
  }
  throw util::Error("unknown platform");
}

}  // namespace pinscope::dynamicanalysis

#include "dynamicanalysis/frida.h"

namespace pinscope::dynamicanalysis {

bool IsHookable(tls::TlsStack stack, appmodel::Platform platform) {
  switch (stack) {
    case tls::TlsStack::kOkHttp:
    case tls::TlsStack::kAndroidPlatform:
    case tls::TlsStack::kConscrypt:
      return platform == appmodel::Platform::kAndroid;
    case tls::TlsStack::kNsUrlSession:
    case tls::TlsStack::kAfNetworking:
    case tls::TlsStack::kAlamofire:
      return platform == appmodel::Platform::kIos;
    case tls::TlsStack::kCronet:
      return true;  // hook scripts exist on both platforms
    case tls::TlsStack::kCustom:
      return false;  // statically linked, unknown symbols
  }
  return false;
}

CircumventionRun RunWithPinningDisabled(const appmodel::App& app,
                                        const appmodel::ServerWorld& world,
                                        const DeviceEmulator& device,
                                        const net::MitmProxy& proxy,
                                        const RunOptions& options,
                                        util::Rng& rng) {
  CircumventionRun run;
  const std::int64_t capture_ms =
      static_cast<std::int64_t>(options.capture_seconds) * 1000;

  for (const appmodel::DestinationBehavior& d : app.behavior.destinations) {
    const appmodel::ServerInfo* srv = world.Find(d.hostname);
    if (srv == nullptr) continue;

    const bool hooked = IsHookable(d.stack, app.meta.platform);
    if (hooked) {
      run.hooked_destinations.push_back(d.hostname);
    } else {
      run.unhookable_destinations.push_back(d.hostname);
    }

    tls::ClientTlsConfig cfg;
    cfg.root_store = &device.system_store();
    cfg.validation_cache = options.validation_cache;
    cfg.store_session_tickets = false;  // instrumented pass never resumes
    cfg.offered_ciphers = d.cipher_offer;
    cfg.stack = d.stack;
    if (hooked) {
      // The hook stubs out the library's verify callback: no pins, no chain
      // validation, no hostname check.
      cfg.validation.check_hostname = false;
      cfg.validation.check_expiry = false;
      cfg.validation.check_signatures = false;
      cfg.validation.require_trusted_root = false;
    } else {
      cfg.validation.check_hostname = app.behavior.validates_hostname;
      cfg.validation.check_expiry = app.behavior.validates_expiry;
      if (d.pinned && !d.pins.empty()) {
        tls::DomainPinRule rule;
        rule.pattern = d.hostname;
        rule.pins = d.pins;
        cfg.pins.AddRule(std::move(rule));
      }
      // Custom-PKI destinations with unhookable stacks still distrust the
      // proxy (their bundled store lacks the proxy CA).
    }

    std::optional<x509::RootStore> custom_store;
    if (!hooked && d.custom_trust) {
      custom_store = x509::RootStore("app-bundled", {srv->endpoint.chain.back()});
      cfg.root_store = &*custom_store;
    }

    tls::AppPayload payload;
    if (!d.never_used) {
      payload.plaintext =
          appmodel::ExpandPiiTemplate(d.payload_template, device.identity());
      payload.client_records =
          1 + static_cast<int>(payload.plaintext.size() / 1200);
    }

    const std::int64_t t0 = static_cast<std::int64_t>(
        rng.UniformU64(100, static_cast<std::uint64_t>(capture_ms * 3 / 4)));
    const net::InterceptResult res =
        proxy.Intercept(cfg, srv->endpoint, payload, util::kStudyEpoch, rng);
    run.capture.flows.push_back(net::FlowFromOutcome(
        d.hostname, res.outcome, t0, net::FlowOrigin::kApp, res.decrypted));
  }
  return run;
}

}  // namespace pinscope::dynamicanalysis

// The per-app dynamic pipeline (Figure 1, right half).
//
// Installs and runs an app twice — once untouched, once behind the MITM
// proxy — applies the differential detector, then (when pinning is found)
// re-runs with TLS-library hooks to read pinned traffic, and finally searches
// everything decrypted for PII.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "appmodel/app.h"
#include "appmodel/pii.h"
#include "appmodel/server_world.h"
#include "dynamicanalysis/detector.h"
#include "obs/obs.h"
#include "util/arena.h"
#include "x509/certificate.h"

namespace pinscope::dynamicanalysis {

class SimFixtures;

/// Options for the per-app pipeline.
struct DynamicOptions {
  int capture_seconds = 30;
  /// Settle delay before launch; the Common-iOS re-run uses 120 (§4.5).
  int settle_seconds = 0;
  /// Run the instrumented circumvention pass when pinning is detected.
  bool circumvent = true;
  /// Seed for all stochastic pipeline behavior. Each app derives its own
  /// stream as seed ^ StableHash64(app_id), with labeled forks per phase
  /// (DESIGN.md §8), so runs are independent across apps and phases.
  std::uint64_t seed = 0x9e3779b9;
  /// Run the baseline and MITM captures on two worker threads. Results are
  /// identical either way: both phases draw from RNGs forked before the
  /// captures start, so neither observes the other's stream position.
  bool parallel_phases = false;
  /// Study-scoped shared fixtures (proxy + root stores + caches; see
  /// dynamicanalysis/sim_fixtures.h). Null ⇒ the pipeline builds private
  /// per-app equivalents. Reports are byte-identical either way, provided
  /// the fixtures were constructed with this options struct's `seed`.
  const SimFixtures* fixtures = nullptr;
  /// Optional observability sink: phase spans (dynamic.baseline / .mitm /
  /// .frida), phase-duration histograms, and pipeline counters. Purely
  /// observational — reports are byte-identical with or without it
  /// (DESIGN.md §11).
  obs::Observer* observer = nullptr;
  /// Scratch arena for the flight's detection phase. Null ⇒ the pipeline
  /// uses a thread-local arena it resets at flight start, so steady-state
  /// allocator traffic per flight is O(1) either way. The arena is only
  /// touched AFTER the capture phases join (captures may run on two worker
  /// threads; see util/arena.h): never share one arena across flights that
  /// run concurrently, and reset an externally-owned arena between flights
  /// yourself. Reports never hold arena pointers.
  util::Arena* arena = nullptr;
};

/// Everything the pipeline concluded about one destination of one app.
struct DestinationReport {
  std::string hostname;
  bool pinned = false;          ///< Differential verdict.
  bool used_baseline = false;   ///< Carried data in the baseline run.
  bool weak_cipher = false;     ///< Any flow advertised a §5.4 bad suite.
  bool circumvented = false;    ///< Pinned, and instrumentation decrypted it.
  std::vector<appmodel::PiiType> pii;  ///< PII seen in decrypted traffic.
  /// Chain served by the genuine destination (fetched out of band, as the
  /// paper does with OpenSSL).
  x509::CertificateChain served_chain;
};

/// The pipeline's complete result for one app.
struct DynamicReport {
  std::string app_id;
  appmodel::Platform platform = appmodel::Platform::kAndroid;
  std::vector<DestinationReport> destinations;

  /// The paper's per-app verdict: pins iff some destination is pinned.
  [[nodiscard]] bool AppPins() const;

  /// Hostnames of pinned destinations.
  [[nodiscard]] std::vector<std::string> PinnedDestinations() const;

  /// Hostnames of contacted, definitively-unpinned destinations.
  [[nodiscard]] std::vector<std::string> UnpinnedDestinations() const;
};

/// Runs the full dynamic pipeline for one app against `world`.
[[nodiscard]] DynamicReport RunDynamicAnalysis(const appmodel::App& app,
                                               const appmodel::ServerWorld& world,
                                               const DynamicOptions& options = {});

}  // namespace pinscope::dynamicanalysis

#include "dynamicanalysis/detector.h"

#include <map>
#include <set>

#include "dynamicanalysis/device.h"
#include "net/hostname.h"

namespace pinscope::dynamicanalysis {

bool IsUsedConnection(const net::Flow& flow) {
  if (flow.version != tls::TlsVersion::kTls13) {
    // TLS ≤1.2: content types are visible; any application-data record in
    // either direction means the connection carried data.
    for (const tls::Record& r : flow.records) {
      if (r.wire_type == tls::ContentType::kApplicationData) return true;
    }
    return false;
  }

  // TLS 1.3: every encrypted record is disguised as application data, so
  // count client-sent application-data records and apply the two heuristics.
  std::vector<const tls::Record*> client_appdata;
  for (const tls::Record& r : flow.records) {
    if (r.direction == tls::Direction::kClientToServer &&
        r.wire_type == tls::ContentType::kApplicationData) {
      client_appdata.push_back(&r);
    }
  }
  if (client_appdata.size() > 2) return true;
  if (client_appdata.size() == 2 &&
      client_appdata[1]->wire_length != tls::kEncryptedAlertWireLength) {
    return true;
  }
  return false;
}

bool IsFailedConnection(const net::Flow& flow) {
  if (IsUsedConnection(flow)) return false;
  return flow.closure == tls::Closure::kClientReset ||
         flow.closure == tls::Closure::kCleanFin;
}

bool ExclusionRules::IsExcluded(std::string_view hostname) const {
  for (const std::string& excluded : excluded_hostnames) {
    if (hostname == excluded) return true;
  }
  const std::string registrable = net::RegistrableDomain(hostname);
  for (const std::string& domain : excluded_registrable_domains) {
    if (registrable == domain) return true;
  }
  return false;
}

ExclusionRules ExclusionRules::ForIos(
    const std::vector<std::string>& associated_domains) {
  ExclusionRules rules;
  // OS background traffic spans many Apple hosts: exclude whole domains.
  for (const std::string& host : AppleBackgroundDomains()) {
    rules.excluded_registrable_domains.push_back(net::RegistrableDomain(host));
  }
  // Associated destinations are excluded exactly as listed in the
  // entitlements (§4.5) — not their whole registrable domain, which would
  // blind the detector to first-party pinning (a false negative the paper's
  // Common-iOS re-run is designed to avoid).
  rules.excluded_hostnames = associated_domains;
  return rules;
}

DetectionResult DetectPinning(const net::Capture& baseline,
                              const net::Capture& mitm,
                              const ExclusionRules& exclusions,
                              util::Arena* scratch) {
  struct Agg {
    bool used_baseline = false;
    bool seen_mitm = false;
    bool used_mitm = false;
    bool any_mitm_not_failed = false;
  };
  // Keys view into the captures' flows, which outlive this call; the map
  // nodes themselves live on the flight's arena when one is provided.
  using AggAlloc = util::ArenaAllocator<std::pair<const std::string_view, Agg>>;
  std::map<std::string_view, Agg, std::less<>, AggAlloc> by_host{
      std::less<>{}, AggAlloc(scratch)};

  for (const net::Flow& f : baseline.flows) {
    if (f.sni.empty() || exclusions.IsExcluded(f.sni)) continue;
    if (IsUsedConnection(f)) by_host[f.sni].used_baseline = true;
    else by_host.try_emplace(f.sni);
  }
  for (const net::Flow& f : mitm.flows) {
    if (f.sni.empty() || exclusions.IsExcluded(f.sni)) continue;
    Agg& agg = by_host[f.sni];
    agg.seen_mitm = true;
    if (IsUsedConnection(f)) agg.used_mitm = true;
    if (!IsFailedConnection(f)) agg.any_mitm_not_failed = true;
  }

  DetectionResult result;
  result.verdicts.reserve(by_host.size());
  for (const auto& [host, agg] : by_host) {
    DestinationVerdict v;
    v.hostname = std::string(host);
    v.used_baseline = agg.used_baseline;
    v.seen_mitm = agg.seen_mitm;
    v.used_mitm = agg.used_mitm;
    v.all_failed_mitm = agg.seen_mitm && !agg.any_mitm_not_failed;
    v.pinned = v.used_baseline && v.seen_mitm && v.all_failed_mitm;
    result.verdicts.push_back(std::move(v));
  }
  return result;
}

std::vector<std::string> DetectionResult::PinnedDestinations() const {
  std::vector<std::string> out;
  for (const DestinationVerdict& v : verdicts) {
    if (v.pinned) out.push_back(v.hostname);
  }
  return out;
}

std::vector<std::string> DetectionResult::UnpinnedDestinations() const {
  std::vector<std::string> out;
  for (const DestinationVerdict& v : verdicts) {
    if (v.used_mitm) out.push_back(v.hostname);
  }
  return out;
}

bool DetectionResult::AppPins() const {
  for (const DestinationVerdict& v : verdicts) {
    if (v.pinned) return true;
  }
  return false;
}

}  // namespace pinscope::dynamicanalysis

// Pinned-connection detection (§4.2.2).
//
// Implements the paper's differential analysis verbatim:
//   * used connection:  TLS ≤1.2 — any "Encrypted Application Data" record;
//                       TLS 1.3 — the client sends more than two
//                       application-data records, OR its second one differs
//                       in length from an encrypted alert.
//   * failed connection: unused, and the client aborted (RST or FIN).
//   * pinned destination: used at least once without interception, contacted
//     under interception, and every intercepted connection failed.
// Only wire-visible observables are consulted; TLS 1.3's record disguise is
// in effect.
#pragma once

#include <string>
#include <vector>

#include "net/flow.h"
#include "util/arena.h"

namespace pinscope::dynamicanalysis {

/// §4.2.2 "Used Connection" test over wire observables.
[[nodiscard]] bool IsUsedConnection(const net::Flow& flow);

/// §4.2.2 "Failed Connection" test (unused + client abort).
[[nodiscard]] bool IsFailedConnection(const net::Flow& flow);

/// Destinations excluded from attribution (§4.5): Apple background domains
/// and the app's associated domains (iOS), flaky retry-prone hosts.
struct ExclusionRules {
  /// Exact hostnames to ignore (the app's associated destinations).
  std::vector<std::string> excluded_hostnames;
  /// Registrable domains ignored wholesale (Apple-controlled background
  /// traffic appears under many hosts of icloud.com / apple.com / mzstatic.com).
  std::vector<std::string> excluded_registrable_domains;

  [[nodiscard]] bool IsExcluded(std::string_view hostname) const;

  /// The paper's iOS exclusion set: Apple-controlled background domains plus
  /// the app's associated domains from its entitlements.
  static ExclusionRules ForIos(const std::vector<std::string>& associated_domains);
};

/// Per-destination differential verdict.
struct DestinationVerdict {
  std::string hostname;
  bool used_baseline = false;    ///< Used at least once, non-MITM run.
  bool seen_mitm = false;        ///< Contacted during the MITM run.
  bool used_mitm = false;        ///< Used at least once under MITM.
  bool all_failed_mitm = false;  ///< Every MITM connection failed.
  bool pinned = false;           ///< The paper's final per-destination verdict.
};

/// Result of differential detection for one app.
struct DetectionResult {
  std::vector<DestinationVerdict> verdicts;

  /// Hostnames marked pinned.
  [[nodiscard]] std::vector<std::string> PinnedDestinations() const;

  /// Hostnames observed used under MITM (definitively not pinned).
  [[nodiscard]] std::vector<std::string> UnpinnedDestinations() const;

  /// True if any destination is pinned — the paper's per-app pinning verdict.
  [[nodiscard]] bool AppPins() const;
};

/// Runs the differential analysis over the two captures. The per-host
/// aggregation scratch comes from `scratch` when provided (nodes die with
/// the call; the arena reclaims them on its owner's Reset) and from the
/// global allocator otherwise. The result owns its strings either way.
[[nodiscard]] DetectionResult DetectPinning(const net::Capture& baseline,
                                            const net::Capture& mitm,
                                            const ExclusionRules& exclusions = {},
                                            util::Arena* scratch = nullptr);

}  // namespace pinscope::dynamicanalysis

#include "dynamicanalysis/pipeline.h"

#include <algorithm>
#include <map>
#include <optional>

#include "dynamicanalysis/device.h"
#include "dynamicanalysis/frida.h"
#include "dynamicanalysis/pii_detector.h"
#include "dynamicanalysis/sim_fixtures.h"
#include "net/mitm_proxy.h"
#include "util/parallel.h"

namespace pinscope::dynamicanalysis {

bool DynamicReport::AppPins() const {
  return std::any_of(destinations.begin(), destinations.end(),
                     [](const DestinationReport& d) { return d.pinned; });
}

std::vector<std::string> DynamicReport::PinnedDestinations() const {
  std::vector<std::string> out;
  for (const DestinationReport& d : destinations) {
    if (d.pinned) out.push_back(d.hostname);
  }
  return out;
}

std::vector<std::string> DynamicReport::UnpinnedDestinations() const {
  std::vector<std::string> out;
  for (const DestinationReport& d : destinations) {
    if (!d.pinned) out.push_back(d.hostname);
  }
  return out;
}

DynamicReport RunDynamicAnalysis(const appmodel::App& app,
                                 const appmodel::ServerWorld& world,
                                 const DynamicOptions& options) {
  DynamicReport report;
  report.app_id = app.meta.app_id;
  report.platform = app.meta.platform;

  // Shared study fixtures when provided; otherwise private equivalents.
  // Both paths forge identical leaves: the private proxy derives its leaf
  // streams from the same (seed, CA label, hostname) tuple the fixture
  // proxy uses — only the sharing differs.
  const SimFixtures* fixtures = options.fixtures;
  std::optional<net::MitmProxy> local_proxy;
  if (fixtures == nullptr) local_proxy.emplace("mitmproxy", options.seed);
  const net::MitmProxy& proxy =
      fixtures != nullptr ? fixtures->proxy() : *local_proxy;
  const DeviceEmulator device =
      fixtures != nullptr
          ? fixtures->MakeDevice(app.meta.platform)
          : (app.meta.platform == appmodel::Platform::kAndroid
                 ? DeviceEmulator::Pixel3(&proxy.CaCertificate())
                 : DeviceEmulator::IPhoneX(&proxy.CaCertificate()));

  // Per-app seed derivation (DESIGN.md §8): the stream depends only on the
  // study seed and the app's identity, never on how many apps ran before it.
  util::Rng rng(options.seed ^ util::StableHash64(app.meta.app_id));

  obs::MetricsRegistry* metrics = obs::MetricsOf(options.observer);
  const std::string platform(PlatformName(app.meta.platform));

  // One journal scope per phase: the scopes for the two capture phases are
  // distinct objects, so each is touched by exactly one thread even when the
  // phases run concurrently (their events sort by logical keys, not by which
  // thread got there first).
  obs::EventScope baseline_log = obs::ScopeFor(options.observer, platform,
                                               app.meta.app_id,
                                               "dynamic.baseline");
  obs::EventScope mitm_log =
      obs::ScopeFor(options.observer, platform, app.meta.app_id, "dynamic.mitm");

  RunOptions baseline_opts;
  baseline_opts.capture_seconds = options.capture_seconds;
  baseline_opts.settle_seconds = options.settle_seconds;
  baseline_opts.validation_cache =
      fixtures != nullptr ? fixtures->validation_cache() : nullptr;
  baseline_opts.metrics = metrics;
  RunOptions mitm_opts = baseline_opts;
  mitm_opts.proxy = &proxy;
  baseline_opts.log = &baseline_log;
  mitm_opts.log = &mitm_log;

  // Both phase streams fork before either capture runs, so the two runs are
  // order-independent — and therefore safe to execute concurrently.
  util::Rng baseline_rng = rng.Fork("baseline");
  util::Rng mitm_rng = rng.Fork("mitm");

  net::Capture baseline;
  net::Capture mitm;
  auto run_phase = [&](std::size_t phase) {
    if (phase == 0) {
      const obs::Span span = obs::SpanFor(options.observer, "dynamic.baseline",
                                          "phase", {{"app", app.meta.app_id}});
      obs::ScopedTimer timer(
          obs::PhaseHistogramOrNull(metrics, "phase.dynamic.baseline"));
      baseline = device.RunApp(app, world, baseline_opts, baseline_rng);
    } else {
      // Only this phase touches the proxy; its forged-leaf cache is
      // internally synchronized (and possibly shared study-wide).
      const obs::Span span = obs::SpanFor(options.observer, "dynamic.mitm",
                                          "phase", {{"app", app.meta.app_id}});
      obs::ScopedTimer timer(obs::PhaseHistogramOrNull(metrics, "phase.dynamic.mitm"));
      mitm = device.RunApp(app, world, mitm_opts, mitm_rng);
    }
  };
  if (options.parallel_phases) {
    util::ParallelOptions par;
    par.threads = 2;
    par.trace = obs::TraceOf(options.observer);
    par.trace_label = "dynamic.phases";
    util::ParallelFor(2, run_phase, par);
  } else {
    run_phase(0);
    run_phase(1);
  }

  const ExclusionRules exclusions =
      app.meta.platform == appmodel::Platform::kIos
          ? ExclusionRules::ForIos(app.behavior.associated_domains)
          : ExclusionRules{};
  // Detection scratch: both capture phases have joined by here, so the
  // (unsynchronized) arena is touched by exactly this thread. The
  // thread-local fallback rewinds at each flight, keeping steady-state
  // allocator traffic O(1) per flight even when no arena was passed in.
  util::Arena* scratch = options.arena;
  if (scratch == nullptr) {
    thread_local util::Arena flight_arena;
    flight_arena.Reset();
    scratch = &flight_arena;
  }
  const DetectionResult detection =
      DetectPinning(baseline, mitm, exclusions, scratch);

  // Instrumented pass, only when pinning was observed.
  obs::EventScope frida_log = obs::ScopeFor(options.observer, platform,
                                            app.meta.app_id, "dynamic.frida");
  CircumventionRun frida;
  if (options.circumvent && detection.AppPins()) {
    const obs::Span span = obs::SpanFor(options.observer, "dynamic.frida",
                                        "phase", {{"app", app.meta.app_id}});
    obs::ScopedTimer timer(obs::PhaseHistogramOrNull(metrics, "phase.dynamic.frida"));
    util::Rng frida_rng = rng.Fork("frida");
    RunOptions frida_opts = mitm_opts;
    frida_opts.log = &frida_log;
    frida = RunWithPinningDisabled(app, world, device, proxy, frida_opts,
                                   frida_rng);
    frida_log.Emit(
        obs::Severity::kInfo, "frida.run",
        {{"hooked", static_cast<std::uint64_t>(frida.hooked_destinations.size())},
         {"unhookable",
          static_cast<std::uint64_t>(frida.unhookable_destinations.size())}});
  }

  // Differential verdicts: one divergence event per destination naming the
  // run pair's observations and the resulting rationale.
  obs::EventScope detect_log = obs::ScopeFor(options.observer, platform,
                                             app.meta.app_id, "dynamic.detect");
  const auto rationale = [](const DestinationVerdict& v) -> std::string_view {
    if (v.pinned) {
      return "used in baseline; every intercepted connection failed";
    }
    if (!v.used_baseline) return "not used in baseline run";
    if (v.used_mitm) return "application data flowed under interception";
    if (!v.seen_mitm) return "destination not contacted under interception";
    return "intercepted connections did not uniformly fail";
  };

  for (const DestinationVerdict& v : detection.verdicts) {
    DestinationReport dest;
    dest.hostname = v.hostname;
    dest.pinned = v.pinned;
    dest.used_baseline = v.used_baseline;

    // Weak-cipher advertisement, from baseline flows (§5.4 inspects the
    // ClientHello, which interception does not change).
    for (const net::Flow* f : baseline.FlowsTo(v.hostname)) {
      if (f->AdvertisesWeakCipher()) {
        dest.weak_cipher = true;
        break;
      }
    }

    // PII: unpinned destinations decrypt in the MITM run; pinned ones only
    // via successful instrumentation.
    dest.pii = DetectPiiForDestination(mitm, v.hostname, device.identity());
    const auto frida_pii =
        DetectPiiForDestination(frida.capture, v.hostname, device.identity());
    for (appmodel::PiiType t : frida_pii) {
      if (std::find(dest.pii.begin(), dest.pii.end(), t) == dest.pii.end()) {
        dest.pii.push_back(t);
      }
    }
    if (v.pinned) {
      for (const net::Flow& f : frida.capture.flows) {
        if (f.sni == v.hostname && f.decrypted_payload.has_value()) {
          dest.circumvented = true;
          break;
        }
      }
    }

    // Out-of-band chain fetch at the genuine destination (§5.3). Some hosts
    // refuse the fetch — those end up in Table 6's "Data Unavailable" bucket.
    if (const appmodel::ServerInfo* srv = world.Find(v.hostname)) {
      if (!srv->chain_fetch_unavailable) dest.served_chain = srv->endpoint.chain;
    }

    detect_log.Emit(obs::Severity::kDecision, "dynamic.divergence",
                    {{"host", v.hostname},
                     {"used_baseline", v.used_baseline},
                     {"seen_mitm", v.seen_mitm},
                     {"used_mitm", v.used_mitm},
                     {"all_failed_mitm", v.all_failed_mitm},
                     {"pinned", v.pinned},
                     {"rationale", rationale(v)}});
    if (dest.circumvented) {
      detect_log.Emit(obs::Severity::kDecision, "frida.circumvented",
                      {{"host", v.hostname}});
    }

    report.destinations.push_back(std::move(dest));
  }

  {
    std::string pinned_hosts;
    for (const std::string& host : report.PinnedDestinations()) {
      if (!pinned_hosts.empty()) pinned_hosts += ',';
      pinned_hosts += host;
    }
    detect_log.Emit(
        obs::Severity::kDecision, "dynamic.verdict",
        {{"pins", report.AppPins()},
         {"destinations", static_cast<std::uint64_t>(report.destinations.size())},
         {"pinned_hosts", pinned_hosts}});
  }

  obs::CounterOrNull(metrics, "dynamic.destinations")
      .Add(report.destinations.size());
  obs::CounterOrNull(metrics, "dynamic.pinned")
      .Add(report.PinnedDestinations().size());
  obs::CounterOrNull(metrics, "dynamic.circumvented")
      .Add(static_cast<std::uint64_t>(
          std::count_if(report.destinations.begin(), report.destinations.end(),
                        [](const DestinationReport& d) {
                          return d.circumvented;
                        })));
  return report;
}

}  // namespace pinscope::dynamicanalysis

// Study-scoped simulation fixtures (DESIGN.md §10).
//
// One study runs the dynamic pipeline for hundreds of apps, and before this
// layer existed every per-app invocation rebuilt the same immutable state
// from scratch: the proxy CA keypair, the platform root stores (copied
// twice per device), and a private forged-leaf cache that never got to
// amortize anything across apps. SimFixtures hoists all of it to study
// scope:
//
//   - one MitmProxy whose forged-leaf cache is shared by every app and
//     worker thread (sound because forged bytes depend only on the study
//     seed and the hostname — see net/mitm_proxy.h);
//   - immutable, shared_ptr-held root stores per platform (app-visible
//     store with the proxy CA installed, OS-service store without it);
//   - one sharded chain-validation memo consulted by every simulated
//     connection (see x509/validation_cache.h).
//
// Everything here is either immutable after construction or internally
// synchronized, so a single SimFixtures may serve all study worker threads.
// The caches are unobservable: study exports are byte-identical with and
// without fixtures.
#pragma once

#include <cstdint>
#include <memory>

#include "appmodel/app.h"
#include "dynamicanalysis/device.h"
#include "net/mitm_proxy.h"
#include "x509/root_store.h"
#include "x509/validation_cache.h"

namespace pinscope::dynamicanalysis {

/// Shared immutable fixtures + memo caches for one study's dynamic runs.
class SimFixtures {
 public:
  /// Builds fixtures for a study with the given pipeline seed (must match
  /// DynamicOptions::seed, or forged leaves will differ from what an
  /// unshared pipeline would produce).
  explicit SimFixtures(std::uint64_t seed = net::MitmProxy::kDefaultSeed);

  SimFixtures(const SimFixtures&) = delete;
  SimFixtures& operator=(const SimFixtures&) = delete;

  /// The study's shared intercepting proxy.
  [[nodiscard]] const net::MitmProxy& proxy() const { return *proxy_; }

  /// A device for `platform` that adopts the shared stores — cheap to make
  /// per app (two shared_ptr copies instead of two root-store copies).
  [[nodiscard]] DeviceEmulator MakeDevice(appmodel::Platform platform) const;

  /// The shared chain-validation memo (thread-safe).
  [[nodiscard]] x509::ValidationCache* validation_cache() const {
    return validation_cache_.get();
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Counters of the shared forged-leaf cache.
  [[nodiscard]] net::ForgedLeafCacheStats forged_cache_stats() const {
    return proxy_->ForgedCacheStats();
  }

  /// Counters of the shared validation memo.
  [[nodiscard]] x509::ValidationCacheStats validation_cache_stats() const {
    return validation_cache_->Stats();
  }

  /// Binds both shared caches' shard locks to the `lock.forged_leaf_cache.*`
  /// and `lock.validation_cache.*` metric families (obs/mutex.h), which the
  /// run autopsy's lock-wait attribution consumes. Null-safe; call before
  /// the study fans out across workers.
  void AttachMetrics(obs::MetricsRegistry* metrics) const {
    proxy_->forged_cache()->AttachMetrics(metrics);
    validation_cache_->AttachMetrics(metrics);
  }

 private:
  std::uint64_t seed_;
  std::unique_ptr<net::MitmProxy> proxy_;
  /// App-visible stores (catalog roots + the proxy CA).
  std::shared_ptr<const x509::RootStore> android_system_;
  std::shared_ptr<const x509::RootStore> ios_system_;
  /// OS-service stores (catalog roots only — user CAs are ignored).
  std::shared_ptr<const x509::RootStore> android_os_service_;
  std::shared_ptr<const x509::RootStore> ios_os_service_;
  std::unique_ptr<x509::ValidationCache> validation_cache_;
};

}  // namespace pinscope::dynamicanalysis

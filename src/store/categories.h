// Store categories and their dataset distributions (Table 1) plus the
// pinning-propensity distributions (Tables 4 & 5).
#pragma once

#include <string>
#include <vector>

#include "appmodel/platform.h"
#include "store/dataset.h"
#include "util/rng.h"

namespace pinscope::store {

/// Full category list for a platform's store (Play Store / App Store names).
[[nodiscard]] const std::vector<std::string>& Categories(appmodel::Platform p);

/// Translates an Android category name to its App Store counterpart (used
/// for the Common dataset, where one logical app carries one category).
[[nodiscard]] std::string ToIosCategory(const std::string& android_category);

/// Samples a category for a (non-pinning) app of the given dataset/platform,
/// following the Table 1 distribution.
[[nodiscard]] std::string SampleCategory(appmodel::Platform p, DatasetId d,
                                         util::Rng& rng);

/// Samples a category for a *pinning* app, following the Table 4 (Android) /
/// Table 5 (iOS) category mix — Finance-heavy.
[[nodiscard]] std::string SamplePinningCategory(appmodel::Platform p, util::Rng& rng);

}  // namespace pinscope::store

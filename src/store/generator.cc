#include "store/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "appmodel/android_package.h"
#include "appmodel/ios_package.h"
#include "appmodel/pii.h"
#include "appmodel/sdk_catalog.h"
#include "dynamicanalysis/device.h"
#include "store/categories.h"
#include "util/error.h"
#include "util/strings.h"

namespace pinscope::store {

std::string_view ConsistencyClassName(ConsistencyClass c) {
  switch (c) {
    case ConsistencyClass::kNotPinning: return "not-pinning";
    case ConsistencyClass::kConsistentIdentical: return "consistent-identical";
    case ConsistencyClass::kConsistentPartial: return "consistent-partial";
    case ConsistencyClass::kInconsistentBoth: return "inconsistent-both";
    case ConsistencyClass::kInconclusiveBoth: return "inconclusive-both";
    case ConsistencyClass::kAndroidOnlyInconsistent: return "android-only-inconsistent";
    case ConsistencyClass::kAndroidOnlyInconclusive: return "android-only-inconclusive";
    case ConsistencyClass::kIosOnlyInconsistent: return "ios-only-inconsistent";
    case ConsistencyClass::kIosOnlyInconclusive: return "ios-only-inconclusive";
  }
  throw util::Error("unknown ConsistencyClass");
}

namespace {

using appmodel::App;
using appmodel::DestinationBehavior;
using appmodel::Platform;

// --- Calibration constants (DESIGN.md §4) --------------------------------

// Which chain element a pin targets.
enum class PinTarget { kRoot, kIntermediate, kLeaf };

// Probability that a given destination's ClientHello advertises legacy (bad)
// suites, fitted so Table 8's app-level rates emerge.
double LegacyCipherProb(Platform p, DatasetId d, bool pinned_dest) {
  if (p == Platform::kAndroid) {
    if (pinned_dest) {
      switch (d) {
        case DatasetId::kCommon: return 0.15;
        case DatasetId::kPopular: return 0.002;
        case DatasetId::kRandom: return 0.0;
      }
    }
    switch (d) {
      case DatasetId::kCommon: return 0.019;
      case DatasetId::kPopular: return 0.052;
      case DatasetId::kRandom: return 0.0075;
    }
  } else {
    if (pinned_dest) {
      switch (d) {
        case DatasetId::kCommon: return 0.62;
        case DatasetId::kPopular: return 0.40;
        case DatasetId::kRandom: return 0.50;
      }
    }
    switch (d) {
      case DatasetId::kCommon: return 0.50;
      case DatasetId::kPopular: return 0.62;
      case DatasetId::kRandom: return 0.37;
    }
  }
  return 0.0;
}

// PII placeholder sampling fitted to Table 9.
std::string SamplePiiSuffix(Platform p, bool pinned_dest, util::Rng& rng) {
  std::string out;
  const double p_ad = pinned_dest ? (p == Platform::kIos ? 0.26 : 0.24)
                                  : (p == Platform::kIos ? 0.18 : 0.20);
  if (rng.Bernoulli(p_ad)) out += "&idfa={{ad_id}}";
  if (p == Platform::kIos) {
    if (!pinned_dest) {
      if (rng.Bernoulli(0.0094)) out += "&city={{city}}";
      if (rng.Bernoulli(0.0031)) out += "&region={{state}}";
      if (rng.Bernoulli(0.0004)) out += "&ll={{lat_long}}";
    }
  } else {
    if (pinned_dest) {
      if (rng.Bernoulli(0.010)) out += "&email={{email}}";
      if (rng.Bernoulli(0.010)) out += "&region={{state}}";
    } else {
      if (rng.Bernoulli(0.0052)) out += "&email={{email}}";
      if (rng.Bernoulli(0.0112)) out += "&region={{state}}";
      if (rng.Bernoulli(0.0045)) out += "&city={{city}}";
    }
  }
  return out;
}

// Unhookable-stack probability for pinned destinations (drives the §4.3
// circumvention rates: ≈51.5% hookable on Android, ≈66.2% on iOS).
double CustomStackProb(Platform p) {
  return p == Platform::kAndroid ? 0.49 : 0.365;
}

tls::TlsStack HookableStack(Platform p, util::Rng& rng) {
  if (p == Platform::kAndroid) {
    static const std::vector<tls::TlsStack> stacks = {
        tls::TlsStack::kOkHttp, tls::TlsStack::kAndroidPlatform,
        tls::TlsStack::kConscrypt, tls::TlsStack::kCronet};
    return rng.Pick(stacks);
  }
  static const std::vector<tls::TlsStack> stacks = {
      tls::TlsStack::kNsUrlSession, tls::TlsStack::kAfNetworking,
      tls::TlsStack::kAlamofire, tls::TlsStack::kCronet};
  return rng.Pick(stacks);
}

// Generic third-party hosts contacted by many apps, never pinned.
const std::vector<std::pair<std::string, std::string>>& NoiseHosts() {
  static const std::vector<std::pair<std::string, std::string>> hosts = {
      {"cdn.contentwave.net", "contentwave"},
      {"telemetry.mobilemetrics.io", "mobilemetrics"},
      {"api.pushrelay.com", "pushrelay"},
      {"img.adimagery.com", "adimagery"},
      {"static.fontsandicons.com", "fontsandicons"},
      {"events.sessionbeacon.io", "sessionbeacon"},
      {"api.weatherfeeds.net", "weatherfeeds"},
      {"social.sharegrid.com", "sharegrid"},
  };
  return hosts;
}

// --- Plans ----------------------------------------------------------------

struct DestPlan {
  std::string host;
  bool first_party = false;
  bool pinned = false;
  bool custom_trust = false;
  std::string owning_sdk;
  bool never_used = false;
  bool requires_interaction = false;
  PinTarget target = PinTarget::kIntermediate;
  tls::PinForm form = tls::PinForm::kSpkiSha256;
  bool embed_cert_file = false;  ///< Also ship the target cert as a file.
  bool rotate_leaf_reusing_key = false;  ///< §5.3.3 renewal scenario.
};

struct AppPlan {
  appmodel::AppMetadata meta;
  DatasetId dataset = DatasetId::kPopular;
  std::string brand;
  bool runtime_pinning = false;
  bool static_only = false;
  bool nsc = false;       ///< Android: ships an NSC.
  bool nsc_pins = false;  ///< Android: the NSC carries pin-sets.
  bool pins_all = false;
  std::vector<DestPlan> dests;
  std::vector<std::string> sdk_names;  ///< SDKs whose code ships in the package.
  std::vector<std::string> associated_domains;
};

}  // namespace

// --- The generator ---------------------------------------------------------
// (Named class at namespace scope so Ecosystem's friendship applies.)

class GeneratorImpl {
 public:
  explicit GeneratorImpl(const EcosystemConfig& config)
      : config_(config), rng_(config.seed) {
    eco_.world_ = appmodel::ServerWorld(config.seed ^ 0xabcdef);
  }

  Ecosystem Build();

 private:
  // Scales a full-size count; keeps at least 1 when the original is positive.
  [[nodiscard]] int S(int full) const {
    if (full <= 0) return 0;
    return std::max(1, static_cast<int>(std::lround(full * config_.scale)));
  }

  std::string MakeBrand();
  void ProvisionInfrastructure();

  // Builds one app from a plan; returns its index in the platform universe.
  std::size_t BuildApp(AppPlan plan, util::Rng& rng);

  // Fills pins/pin-material for a pinned destination plan (server must exist).
  void PreparePinnedDest(DestPlan& dp, util::Rng& rng);

  // Creates the behaviour entry for a destination plan.
  DestinationBehavior MakeBehavior(const DestPlan& dp, Platform p, DatasetId d,
                                   util::Rng& rng) const;

  // Plan factories.
  AppPlan NewAppPlan(Platform p, DatasetId d, bool pinning_category,
                     util::Rng& rng);
  void AddFirstParty(AppPlan& plan, int host_count, util::Rng& rng);
  void AddNoise(AppPlan& plan, util::Rng& rng);
  void AddSdk(AppPlan& plan, const appmodel::SdkInfo& sdk, bool pin_enabled,
              bool contact, util::Rng& rng);
  void AddPinningSdk(AppPlan& plan, Platform p, util::Rng& rng);
  void AddEmbeddingSdks(AppPlan& plan, Platform p, util::Rng& rng);
  void MakeFirstPartyPinner(AppPlan& plan, Platform p, util::Rng& rng);
  void ApplyNscPins(AppPlan& plan);

  // Dataset builders.
  void BuildCommon();
  void BuildPlatformSets(Platform p);
  std::pair<AppPlan, AppPlan> MakeCommonPlans(ConsistencyClass cls,
                                              util::Rng& rng);
  AppPlan MakePinningApp(Platform p, DatasetId d, std::string_view forced_sdk,
                         util::Rng& rng);
  AppPlan MakeStaticOnlyApp(Platform p, DatasetId d, util::Rng& rng);
  AppPlan MakeRegularApp(Platform p, DatasetId d, util::Rng& rng);

  // Post-pass: §5.3.3 key-reusing renewals + Table 6 "data unavailable".
  void ApplySpecialCases();

  EcosystemConfig config_;
  util::Rng rng_;
  Ecosystem eco_;
  std::set<std::string> used_brands_;
  int brand_counter_ = 0;

  // §5.3 special-case quotas, consumed by MakePinningApp.
  int pins_all_quota_android_ = 0;
  int pins_all_quota_ios_ = 0;
  int custom_pki_quota_android_ = 0;
  int custom_pki_quota_ios_ = 0;
  int self_signed_quota_android_ = 0;
  int self_signed_quota_ios_ = 0;

  // Hosts whose leaf certificate is renewed (key reused) after pins baked.
  std::set<std::string> rotate_hosts_;
};

std::string GeneratorImpl::MakeBrand() {
  static const std::vector<std::string> first = {
      "pixel", "swift", "nova", "blue", "lumen", "terra", "astro", "vivid",
      "echo",  "cobalt", "amber", "quill", "zephy", "orbit", "delta", "mint",
      "hyper", "prime", "cedar", "raven"};
  static const std::vector<std::string> second = {
      "budget", "chat",  "ride", "news",  "fit",   "pay",   "shop", "note",
      "cast",   "track", "wall", "dash",  "photo", "games", "bank", "food",
      "health", "study", "map",  "stream"};
  while (true) {
    std::string brand = rng_.Pick(first) + rng_.Pick(second);
    if (++brand_counter_ > 400) brand += std::to_string(brand_counter_);
    if (used_brands_.insert(brand).second) return brand;
  }
}

void GeneratorImpl::ProvisionInfrastructure() {
  auto& world = eco_.world_;
  // Apple background services.
  for (const std::string& host : dynamicanalysis::AppleBackgroundDomains()) {
    world.EnsureDefaultPki(host, "apple");
  }
  // SDK endpoints.
  for (const appmodel::SdkInfo& sdk : appmodel::SdkCatalog()) {
    for (const std::string& host : sdk.domains) {
      world.EnsureDefaultPki(host, sdk.organization);
    }
  }
  // Shared third-party noise hosts.
  for (const auto& [host, org] : NoiseHosts()) {
    world.EnsureDefaultPki(host, org);
  }
}

void GeneratorImpl::PreparePinnedDest(DestPlan& dp, util::Rng& rng) {
  dp.pinned = true;
  const appmodel::ServerInfo* srv = eco_.world_.Find(dp.host);
  if (srv == nullptr) throw util::Error("PreparePinnedDest: no server " + dp.host);

  const std::size_t depth = srv->endpoint.chain.size();
  if (depth == 1) {
    // Self-signed endpoint: the only thing to pin is the leaf itself, and
    // there is no issuer to renew under (§5.3.1's inflexible deployments).
    dp.target = PinTarget::kLeaf;
    dp.form = tls::PinForm::kSpkiSha256;
    dp.embed_cert_file = true;
    return;
  }
  if (rng.Bernoulli(0.73)) {
    // CA pin: root or intermediate.
    dp.target = (depth >= 3 && rng.Bernoulli(0.5)) ? PinTarget::kIntermediate
                                                   : PinTarget::kRoot;
  } else {
    dp.target = PinTarget::kLeaf;
  }

  if (dp.target == PinTarget::kLeaf) {
    // §5.3.3: 24/30 leaf pins are SPKI hashes; the rest embed raw certs and
    // actually compare public keys, surviving key-reusing renewals.
    if (rng.Bernoulli(0.8)) {
      dp.form = rng.Bernoulli(0.9) ? tls::PinForm::kSpkiSha256
                                   : tls::PinForm::kSpkiSha1;
    } else {
      dp.form = tls::PinForm::kPublicKey;
      dp.embed_cert_file = true;
      dp.rotate_leaf_reusing_key = rng.Bernoulli(0.8);
    }
  } else {
    dp.form = rng.Bernoulli(0.92) ? tls::PinForm::kSpkiSha256
                                  : tls::PinForm::kSpkiSha1;
    // Some apps additionally ship the CA certificate itself.
    dp.embed_cert_file = rng.Bernoulli(0.35);
  }
}

DestinationBehavior GeneratorImpl::MakeBehavior(const DestPlan& dp, Platform p,
                                                DatasetId d, util::Rng& rng) const {
  DestinationBehavior b;
  b.hostname = dp.host;
  b.custom_trust = dp.custom_trust;
  b.owning_sdk = dp.owning_sdk;
  b.never_used = dp.never_used;
  b.requires_interaction = dp.requires_interaction;
  b.redundant_connections = static_cast<int>(rng.UniformU64(0, 2));

  if (dp.pinned) {
    b.pinned = true;
    const appmodel::ServerInfo* srv = eco_.world_.Find(dp.host);
    const auto& chain = srv->endpoint.chain;
    std::size_t idx = 0;
    switch (dp.target) {
      case PinTarget::kLeaf: idx = 0; break;
      case PinTarget::kIntermediate: idx = std::min<std::size_t>(1, chain.size() - 1); break;
      case PinTarget::kRoot: idx = chain.size() - 1; break;
    }
    b.pins.push_back(tls::Pin::ForCertificate(chain[idx], dp.form));
    b.stack = rng.Bernoulli(CustomStackProb(p)) ? tls::TlsStack::kCustom
                                                : HookableStack(p, rng);
  } else {
    b.stack = HookableStack(p, rng);
  }

  b.cipher_offer = rng.Bernoulli(LegacyCipherProb(p, d, dp.pinned))
                       ? tls::LegacyCipherOffer()
                       : tls::ModernCipherOffer();

  // A genuine HTTP/1.1 request, so the PII analysis can parse it the way
  // mitmproxy scripts inspect decrypted flows.
  b.payload_template =
      "POST /v1/collect HTTP/1.1\r\nHost: " + dp.host +
      "\r\nUser-Agent: " + (p == Platform::kAndroid ? "okhttp/4.9" : "CFNetwork/1128") +
      "\r\nContent-Type: application/x-www-form-urlencoded\r\n\r\n" +
      "session=" + std::to_string(rng.UniformU64(1, 1'000'000'000)) +
      SamplePiiSuffix(p, dp.pinned, rng);
  return b;
}

// --- Plan factories ---------------------------------------------------------

AppPlan GeneratorImpl::NewAppPlan(Platform p, DatasetId d, bool pinning_category,
                                  util::Rng& rng) {
  AppPlan plan;
  plan.dataset = d;
  plan.brand = MakeBrand();
  plan.meta.platform = p;
  plan.meta.app_id = "com." + plan.brand + (p == Platform::kAndroid ? ".app" : ".ios");
  std::string display = plan.brand;
  display[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(display[0])));
  plan.meta.display_name = display;
  plan.meta.category = pinning_category ? SamplePinningCategory(p, rng)
                                        : SampleCategory(p, d, rng);
  plan.meta.developer_org = plan.brand;
  plan.meta.popularity_rank =
      d == DatasetId::kPopular ? rng.UniformInt(1, 1000) : rng.UniformInt(1000, 900000);
  return plan;
}

void GeneratorImpl::AddFirstParty(AppPlan& plan, int host_count, util::Rng& rng) {
  static const std::vector<std::string> prefixes = {"api", "www", "cdn", "events",
                                                    "mobile", "auth"};
  for (int i = 0; i < host_count && i < static_cast<int>(prefixes.size()); ++i) {
    const std::string host =
        prefixes[static_cast<std::size_t>(i)] + "." + plan.brand + ".com";
    eco_.world_.EnsureDefaultPki(host, plan.brand);
    DestPlan dp;
    dp.host = host;
    dp.first_party = true;
    dp.never_used = i > 0 && rng.Bernoulli(0.1);
    plan.dests.push_back(std::move(dp));
  }
}

void GeneratorImpl::AddNoise(AppPlan& plan, util::Rng& rng) {
  const int n = rng.UniformInt(1, 3);
  std::vector<std::size_t> picks =
      rng.SampleIndices(NoiseHosts().size(), static_cast<std::size_t>(n));
  for (std::size_t idx : picks) {
    DestPlan dp;
    dp.host = NoiseHosts()[idx].first;
    plan.dests.push_back(std::move(dp));
  }
  // Rarely, a destination hides behind a deeper code path that only UI
  // interaction triggers (§4.2.1's near-null interaction effect; §5.6's
  // missed-pinning limitation). Sampled on a dedicated stream.
  util::Rng irng = rng.Fork("interaction:" + plan.brand);
  if (irng.Bernoulli(0.12)) {
    DestPlan dp;
    dp.host = "deep." + plan.brand + ".com";
    dp.first_party = true;
    dp.requires_interaction = true;
    eco_.world_.EnsureDefaultPki(dp.host, plan.brand);
    const bool pinning_app = std::any_of(
        plan.dests.begin(), plan.dests.end(),
        [](const DestPlan& x) { return x.pinned; });
    if (pinning_app && irng.Bernoulli(0.15)) PreparePinnedDest(dp, irng);
    plan.dests.push_back(std::move(dp));
  }
}

void GeneratorImpl::AddSdk(AppPlan& plan, const appmodel::SdkInfo& sdk,
                           bool pin_enabled, bool contact, util::Rng& rng) {
  for (const std::string& existing : plan.sdk_names) {
    if (existing == sdk.name) return;  // already placed
  }
  plan.sdk_names.push_back(sdk.name);
  if (!contact) return;
  for (const std::string& host : sdk.domains) {
    DestPlan dp;
    dp.host = host;
    dp.owning_sdk = sdk.name;
    if (pin_enabled) PreparePinnedDest(dp, rng);
    plan.dests.push_back(std::move(dp));
  }
}

void GeneratorImpl::AddPinningSdk(AppPlan& plan, Platform p, util::Rng& rng) {
  std::vector<const appmodel::SdkInfo*> candidates;
  std::vector<double> weights;
  for (const appmodel::SdkInfo& sdk : appmodel::SdkCatalog()) {
    const bool available =
        p == Platform::kAndroid ? sdk.available_android : sdk.available_ios;
    const bool pins = p == Platform::kAndroid ? sdk.pins_android : sdk.pins_ios;
    const double w = p == Platform::kAndroid ? sdk.weight_android : sdk.weight_ios;
    if (available && pins && w > 0) {
      candidates.push_back(&sdk);
      weights.push_back(w);
    }
  }
  if (candidates.empty()) return;
  const appmodel::SdkInfo& sdk = *candidates[rng.WeightedIndex(weights)];
  AddSdk(plan, sdk, /*pin_enabled=*/true, /*contact=*/true, rng);
}

void GeneratorImpl::AddEmbeddingSdks(AppPlan& plan, Platform p, util::Rng& rng) {
  // Each cert-embedding SDK lands independently. The divisors are tuned so
  // that dormant placements here, plus the pinning-SDK placements made for
  // runtime pinners, produce Table 7's per-framework app counts. Apps that
  // draw no SDK still get static material via BuildApp's bundled-CA fallback
  // (which normalizes to a generic path and stays out of Table 7, like the
  // paper's discarded config.json-style paths).
  const std::vector<appmodel::SdkInfo> embedding =
      appmodel::SdksEmbeddingCertificates(p);
  const double divisor = p == Platform::kAndroid ? 1200.0 : 950.0;
  for (const appmodel::SdkInfo& sdk : embedding) {
    const double w = p == Platform::kAndroid ? sdk.weight_android : sdk.weight_ios;
    if (w <= 0) continue;
    if (rng.Bernoulli(std::min(0.5, w / divisor))) {
      // Dormant placement: code ships, endpoints contacted unpinned half the
      // time (library initialized but pinning disabled / outdated).
      AddSdk(plan, sdk, /*pin_enabled=*/false, /*contact=*/rng.Bernoulli(0.5), rng);
    }
  }
}

void GeneratorImpl::MakeFirstPartyPinner(AppPlan& plan, Platform, util::Rng& rng) {
  for (DestPlan& dp : plan.dests) {
    if (dp.first_party && !dp.pinned) PreparePinnedDest(dp, rng);
  }
}

void GeneratorImpl::ApplyNscPins(AppPlan& plan) {
  plan.nsc = true;
  plan.nsc_pins = true;
}

// --- App materialization ----------------------------------------------------

namespace {

std::string SanitizeHost(std::string_view host) {
  std::string out(host);
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

appmodel::CertFileFormat PickCertFormat(util::Rng& rng) {
  static const std::vector<appmodel::CertFileFormat> formats = {
      appmodel::CertFileFormat::kPem, appmodel::CertFileFormat::kDer,
      appmodel::CertFileFormat::kCrt, appmodel::CertFileFormat::kCer,
      appmodel::CertFileFormat::kCert};
  return rng.Pick(formats);
}

}  // namespace

std::size_t GeneratorImpl::BuildApp(AppPlan plan, util::Rng& rng) {
  const Platform p = plan.meta.platform;

  if (plan.pins_all) {
    for (DestPlan& dp : plan.dests) {
      if (!dp.pinned && !dp.never_used) PreparePinnedDest(dp, rng);
    }
  }

  App app;
  app.meta = plan.meta;
  std::vector<PinSite> pin_sites;
  for (std::size_t i = 0; i < plan.dests.size(); ++i) {
    const DestPlan& dp = plan.dests[i];
    // Each destination samples its behaviour from an independent stream, so
    // structural changes elsewhere never perturb the calibrated cipher/PII
    // distributions.
    util::Rng dest_rng = rng.Fork("dest:" + plan.meta.app_id + ":" + dp.host);
    app.behavior.destinations.push_back(
        MakeBehavior(dp, p, plan.dataset, dest_rng));
    if (dp.rotate_leaf_reusing_key) rotate_hosts_.insert(dp.host);
    // Remember where each pin anchors so snapshot churn can recompute it
    // after a renewal (same chain-element choice as MakeBehavior).
    if (app.behavior.destinations.back().pinned) {
      const auto& chain = eco_.world_.Find(dp.host)->endpoint.chain;
      std::size_t chain_index = 0;
      switch (dp.target) {
        case PinTarget::kLeaf: chain_index = 0; break;
        case PinTarget::kIntermediate:
          chain_index = std::min<std::size_t>(1, chain.size() - 1);
          break;
        case PinTarget::kRoot: chain_index = chain.size() - 1; break;
      }
      pin_sites.push_back({i, chain_index, dp.form});
    }
  }

  // iOS associated domains (§4.5: 66% of apps declare none; the rest average
  // ~4.8). Never a pinned host — OS verification traffic would otherwise
  // shadow the app's own pinning signal.
  if (p == Platform::kIos && rng.Bernoulli(0.34)) {
    // Associated domains are the developer's *web* properties (universal
    // links), distinct from the app's API endpoints.
    std::vector<std::string> assoc;
    static const std::vector<std::string> extras = {"links", "app", "get", "m",
                                                    "go", "web"};
    const std::size_t want = 3 + static_cast<std::size_t>(rng.UniformU64(0, 3));
    for (std::size_t i = 0; assoc.size() < want && i < extras.size(); ++i) {
      const std::string host = extras[i] + "." + plan.brand + ".com";
      eco_.world_.EnsureDefaultPki(host, plan.brand);
      assoc.push_back(host);
    }
    plan.associated_domains = assoc;
    app.behavior.associated_domains = assoc;
  }

  // --- Package materialization ---
  bool has_static_material = false;

  auto target_cert = [&](const DestPlan& dp) -> const x509::Certificate& {
    const appmodel::ServerInfo* srv = eco_.world_.Find(dp.host);
    const auto& chain = srv->endpoint.chain;
    switch (dp.target) {
      case PinTarget::kLeaf: return chain.front();
      case PinTarget::kIntermediate:
        return chain[std::min<std::size_t>(1, chain.size() - 1)];
      case PinTarget::kRoot: return chain.back();
    }
    return chain.front();
  };

  auto sdk_pin_string = [&](const appmodel::SdkInfo& sdk) {
    const appmodel::ServerInfo* srv = eco_.world_.Find(sdk.domains.front());
    const auto& chain = srv->endpoint.chain;
    const auto& cert = chain[std::min<std::size_t>(1, chain.size() - 1)];
    return tls::Pin::ForCertificate(cert, tls::PinForm::kSpkiSha256).ToPinString();
  };

  if (p == Platform::kAndroid) {
    appmodel::AndroidPackageBuilder builder(plan.meta);
    builder.AddAsset("assets/config.json",
                     "{\"brand\":\"" + plan.brand + "\",\"v\":2}");

    for (const std::string& name : plan.sdk_names) {
      const auto sdk = appmodel::FindSdk(name);
      if (!sdk.has_value()) continue;
      if (sdk->embeds_certificate) {
        builder.AddSmaliString(sdk->android_code_path, "PinningConfig.smali",
                               sdk_pin_string(*sdk));
        has_static_material = true;
      } else {
        builder.AddSmaliString(sdk->android_code_path, "ApiClient.smali",
                               "https://" + sdk->domains.front() + "/v2/events");
      }
    }

    std::vector<appmodel::NscDomainConfig> nsc_configs;
    for (std::size_t i = 0; i < plan.dests.size(); ++i) {
      const DestPlan& dp = plan.dests[i];
      const DestinationBehavior& db = app.behavior.destinations[i];
      if (db.pinned && dp.owning_sdk.empty()) {
        const std::string pin_string = db.pins.front().ToPinString();
        if (plan.nsc_pins && dp.first_party) {
          appmodel::NscDomainConfig cfg;
          cfg.domain = dp.host;
          cfg.include_subdomains = rng.Bernoulli(0.4);
          cfg.pin_strings = {pin_string};
          cfg.pin_expiration = "2022-06-01";
          nsc_configs.push_back(std::move(cfg));
        } else {
          builder.AddSmaliString("com/" + plan.brand + "/net",
                                 "CertificatePinner" + std::to_string(i) + ".smali",
                                 pin_string);
        }
        has_static_material = true;
      }
      if (dp.embed_cert_file) {
        builder.AddCertificateFile("res/raw", SanitizeHost(dp.host),
                                   target_cert(dp), PickCertFormat(rng));
        has_static_material = true;
      }
    }

    if (plan.nsc) {
      util::Rng nsc_rng = rng.Fork("nsc:" + plan.brand);
      appmodel::NscDocument doc;
      if (nsc_configs.empty()) {
        // NSC without pin-sets (cleartext/trust settings only).
        appmodel::NscDomainConfig cfg;
        cfg.domain = plan.brand + ".com";
        cfg.include_subdomains = true;
        // The Possemato et al. misconfigurations show up occasionally.
        cfg.override_pins = nsc_rng.Bernoulli(0.05);
        if (nsc_rng.Bernoulli(0.2)) cfg.cleartext_permitted = true;
        nsc_configs.push_back(std::move(cfg));
        if (nsc_rng.Bernoulli(0.3)) {
          doc.base.present = true;
          doc.base.cleartext_permitted = nsc_rng.Bernoulli(0.3);
          doc.base.trust_user_anchors = nsc_rng.Bernoulli(0.15);
        }
      }
      // Debug overrides trusting user CAs: a common development leftover.
      if (nsc_rng.Bernoulli(0.15)) {
        doc.debug_overrides.present = true;
        doc.debug_overrides.trust_user_anchors = true;
      }
      doc.domain_configs = std::move(nsc_configs);
      builder.WithNscDocument(doc);
    }

    if (plan.static_only && !has_static_material) {
      // Dormant material without any SDK: a bundled CA file.
      const auto& ca =
          x509::PublicCaCatalog::Instance().ByLabel("ca.globaltrust").certificate();
      builder.AddCertificateFile("assets", "ca_bundle", ca,
                                 appmodel::CertFileFormat::kPem);
      has_static_material = true;
    }

    // Some pinning apps carry native pinning code too.
    if (plan.runtime_pinning && rng.Bernoulli(0.15)) {
      for (const auto& db : app.behavior.destinations) {
        if (db.pinned) {
          builder.AddNativeLib("lib" + plan.brand + "net.so",
                               {db.pins.front().ToPinString()}, rng);
          break;
        }
      }
    }

    app.package = builder.Build();
  } else {
    appmodel::IosPackageBuilder builder(plan.meta);
    builder.AddResource("Assets.car", "ASSETCATALOG:" + plan.brand);
    builder.WithAssociatedDomains(plan.associated_domains);

    for (const std::string& name : plan.sdk_names) {
      const auto sdk = appmodel::FindSdk(name);
      if (!sdk.has_value()) continue;
      if (sdk->embeds_certificate) {
        builder.AddFrameworkStrings(sdk->ios_framework, {sdk_pin_string(*sdk)}, rng);
        has_static_material = true;
      } else {
        builder.AddFrameworkStrings(
            sdk->ios_framework, {"https://" + sdk->domains.front() + "/v2/events"},
            rng);
      }
    }

    for (std::size_t i = 0; i < plan.dests.size(); ++i) {
      const DestPlan& dp = plan.dests[i];
      const DestinationBehavior& db = app.behavior.destinations[i];
      if (db.pinned && dp.owning_sdk.empty()) {
        builder.AddMainBinaryString(db.pins.front().ToPinString());
        has_static_material = true;
      }
      if (dp.embed_cert_file) {
        builder.AddCertificateFile(SanitizeHost(dp.host), target_cert(dp),
                                   PickCertFormat(rng));
        has_static_material = true;
      }
    }

    if (plan.static_only && !has_static_material) {
      const auto& ca =
          x509::PublicCaCatalog::Instance().ByLabel("ca.digisign").certificate();
      builder.AddCertificateFile("bundled_ca", ca, appmodel::CertFileFormat::kCer);
      has_static_material = true;
    }

    builder.AddMainBinaryString("https://api." + plan.brand + ".com/v1");
    app.package = builder.Build(rng);
  }

  // --- Record truth & store ---
  AppTruth truth;
  truth.runtime_pinning = app.behavior.PinsAtRuntime();
  truth.static_only = plan.static_only;
  truth.nsc_pins = plan.nsc_pins;
  truth.pins_all_domains = plan.pins_all;

  if (p == Platform::kAndroid) {
    eco_.android_apps_.push_back(std::move(app));
    eco_.android_truth_.push_back(truth);
    eco_.android_pin_sites_.push_back(std::move(pin_sites));
    return eco_.android_apps_.size() - 1;
  }
  eco_.ios_apps_.push_back(std::move(app));
  eco_.ios_truth_.push_back(truth);
  eco_.ios_pin_sites_.push_back(std::move(pin_sites));
  return eco_.ios_apps_.size() - 1;
}

// --- Common dataset ---------------------------------------------------------

std::pair<AppPlan, AppPlan> GeneratorImpl::MakeCommonPlans(ConsistencyClass cls,
                                                           util::Rng& rng) {
  const bool pinning_category = cls != ConsistencyClass::kNotPinning;
  AppPlan a = NewAppPlan(Platform::kAndroid, DatasetId::kCommon, pinning_category, rng);
  AppPlan i;
  i.dataset = DatasetId::kCommon;
  i.brand = a.brand;
  i.meta = a.meta;
  i.meta.platform = Platform::kIos;
  i.meta.app_id = "com." + a.brand + ".ios";
  i.meta.category = ToIosCategory(a.meta.category);

  // A shared pool of first-party hosts; the consistency class decides which
  // platform contacts and pins which host.
  static const std::vector<std::string> prefixes = {"api", "www", "events", "auth"};
  std::vector<std::string> fp;
  for (const std::string& prefix : prefixes) {
    const std::string host = prefix + "." + a.brand + ".com";
    eco_.world_.EnsureDefaultPki(host, a.brand);
    fp.push_back(host);
  }

  auto add = [&](AppPlan& plan, std::size_t idx, bool pinned) {
    DestPlan dp;
    dp.host = fp[idx];
    dp.first_party = true;
    if (pinned) PreparePinnedDest(dp, rng);
    plan.dests.push_back(std::move(dp));
  };

  switch (cls) {
    case ConsistencyClass::kNotPinning:
      add(a, 0, false); add(i, 0, false);
      if (rng.Bernoulli(0.6)) { add(a, 1, false); add(i, 1, false); }
      break;
    case ConsistencyClass::kConsistentIdentical: {
      // Same pinned set on both platforms (usually one domain, sometimes two).
      add(a, 0, true); add(i, 0, true);
      if (rng.Bernoulli(0.4)) { add(a, 1, true); add(i, 1, true); }
      add(a, 2, false); add(i, 2, false);
      break;
    }
    case ConsistencyClass::kConsistentPartial:
      // One shared pinned domain; each side pins extras the other never sees.
      add(a, 0, true); add(i, 0, true);
      add(a, 1, true);              // Android-only extra (iOS never contacts)
      add(i, 2, true); add(i, 3, true);  // iOS-only extras
      break;
    case ConsistencyClass::kInconsistentBoth:
      if (rng.Bernoulli(0.4)) {
        // Overlapping pattern (the paper's Twitter row): both pin fp0;
        // Android also pins fp1, which iOS contacts unpinned.
        add(a, 0, true); add(i, 0, true);
        add(a, 1, true); add(i, 1, false);
      } else {
        // Disjoint pattern (TikTok/Jungle rows): each side's pinned domain is
        // observed unpinned on the other.
        add(a, 1, true); add(i, 1, false);
        add(i, 2, true); add(a, 2, false);
        add(a, 0, false); add(i, 0, false);
      }
      break;
    case ConsistencyClass::kInconclusiveBoth:
      // Each side pins a domain the other never contacts.
      add(a, 0, false); add(i, 0, false);
      add(a, 1, true);
      add(i, 2, true);
      break;
    case ConsistencyClass::kAndroidOnlyInconsistent:
      add(a, 0, true); add(i, 0, false);
      if (rng.Bernoulli(0.3)) { add(a, 1, true); add(i, 1, false); }
      break;
    case ConsistencyClass::kAndroidOnlyInconclusive:
      add(a, 1, true);
      add(a, 0, false); add(i, 0, false);
      break;
    case ConsistencyClass::kIosOnlyInconsistent:
      add(i, 0, true); add(a, 0, false);
      break;
    case ConsistencyClass::kIosOnlyInconclusive:
      add(i, 1, true);
      add(a, 0, false); add(i, 0, false);
      break;
  }

  // Shared ambient traffic: noise hosts + occasionally a non-pinning SDK.
  AddNoise(a, rng);
  AddNoise(i, rng);
  if (rng.Bernoulli(0.3)) {
    const auto fb = appmodel::FindSdk("Facebook");
    AddSdk(a, *fb, false, true, rng);
    AddSdk(i, *fb, false, true, rng);
  }

  a.runtime_pinning = std::any_of(a.dests.begin(), a.dests.end(),
                                  [](const DestPlan& d) { return d.pinned; });
  i.runtime_pinning = std::any_of(i.dests.begin(), i.dests.end(),
                                  [](const DestPlan& d) { return d.pinned; });
  return {std::move(a), std::move(i)};
}

void GeneratorImpl::BuildCommon() {
  Dataset common_a{DatasetId::kCommon, Platform::kAndroid, {}};
  Dataset common_i{DatasetId::kCommon, Platform::kIos, {}};

  struct ClassCount {
    ConsistencyClass cls;
    int count;
  };
  const std::vector<ClassCount> classes = {
      {ConsistencyClass::kConsistentIdentical, S(13)},
      {ConsistencyClass::kConsistentPartial, S(2)},
      {ConsistencyClass::kInconsistentBoth, S(6)},
      {ConsistencyClass::kInconclusiveBoth, S(6)},
      {ConsistencyClass::kAndroidOnlyInconsistent, S(10)},
      {ConsistencyClass::kAndroidOnlyInconclusive, S(10)},
      {ConsistencyClass::kIosOnlyInconsistent, S(7)},
      {ConsistencyClass::kIosOnlyInconclusive, S(15)},
  };
  int pinning_total = 0;
  for (const ClassCount& cc : classes) pinning_total += cc.count;
  const int total = std::max(S(575), pinning_total);

  int nsc_pin_quota = S(16);
  int a_static_quota = S(108);
  int i_static_quota = S(83);
  int nsc_plain_quota = S(20);

  auto build_pair = [&](ConsistencyClass cls) {
    util::Rng rng = rng_.Fork("common-pair:" + std::to_string(common_a.size()));
    auto [a, i] = MakeCommonPlans(cls, rng);

    const bool android_pins_fp = std::any_of(
        a.dests.begin(), a.dests.end(),
        [](const DestPlan& d) { return d.pinned && d.first_party; });
    if (android_pins_fp && nsc_pin_quota > 0) {
      ApplyNscPins(a);
      --nsc_pin_quota;
    }
    if (cls == ConsistencyClass::kNotPinning) {
      if (a_static_quota > 0) {
        a.static_only = true;
        AddEmbeddingSdks(a, Platform::kAndroid, rng);
        --a_static_quota;
      } else if (nsc_plain_quota > 0) {
        a.nsc = true;
        --nsc_plain_quota;
      }
      if (i_static_quota > 0) {
        i.static_only = true;
        AddEmbeddingSdks(i, Platform::kIos, rng);
        --i_static_quota;
      }
    }

    CommonPair pair;
    pair.cls = cls;
    pair.android_index = BuildApp(std::move(a), rng);
    pair.ios_index = BuildApp(std::move(i), rng);
    common_a.app_indices.push_back(pair.android_index);
    common_i.app_indices.push_back(pair.ios_index);
    eco_.pairs_.push_back(pair);
  };

  for (const ClassCount& cc : classes) {
    for (int n = 0; n < cc.count; ++n) build_pair(cc.cls);
  }
  for (int n = pinning_total; n < total; ++n) {
    build_pair(ConsistencyClass::kNotPinning);
  }

  eco_.datasets_.push_back(std::move(common_a));
  eco_.datasets_.push_back(std::move(common_i));
}

// --- Popular / Random datasets ----------------------------------------------

AppPlan GeneratorImpl::MakePinningApp(Platform p, DatasetId d,
                                      std::string_view forced_sdk,
                                      util::Rng& rng) {
  AppPlan plan = NewAppPlan(p, d, /*pinning_category=*/true, rng);
  AddFirstParty(plan, rng.UniformInt(1, 3), rng);

  if (!forced_sdk.empty()) {
    // The iOS-Random phenomenon: PayPal / Firestore SDKs pinning their own
    // endpoints inside otherwise unremarkable apps.
    const auto sdk = appmodel::FindSdk(forced_sdk);
    if (sdk.has_value()) AddSdk(plan, *sdk, /*pin_enabled=*/true, true, rng);
  } else {
    const double r = rng.UniformDouble();
    if (p == Platform::kAndroid) {
      if (r < 0.35) {
        // First-party pinner: Android apps that pin first-party pin all of it
        // (Figure 5a, one exception in the paper).
        MakeFirstPartyPinner(plan, p, rng);
        if (rng.Bernoulli(0.3)) AddPinningSdk(plan, p, rng);
      } else {
        AddPinningSdk(plan, p, rng);
      }
    } else {
      if (r < 0.35) {
        MakeFirstPartyPinner(plan, p, rng);
        if (rng.Bernoulli(0.3)) AddPinningSdk(plan, p, rng);
      } else if (r < 0.50) {
        // Partial first-party pinning (dark blue + dark green bars, Fig. 5b).
        for (DestPlan& dp : plan.dests) {
          if (dp.first_party) {
            PreparePinnedDest(dp, rng);
            break;
          }
        }
      } else {
        AddPinningSdk(plan, p, rng);
      }
    }
  }

  // §5.3.1 special deployments, consumed from quotas.
  int& custom_quota = p == Platform::kAndroid ? custom_pki_quota_android_
                                              : custom_pki_quota_ios_;
  if (custom_quota > 0) {
    --custom_quota;
    const std::string host = "internal." + plan.brand + ".com";
    eco_.world_.EnsureCustomPki(host, plan.brand);
    DestPlan dp;
    dp.host = host;
    dp.first_party = true;
    dp.custom_trust = true;
    PreparePinnedDest(dp, rng);
    plan.dests.push_back(std::move(dp));
  }
  int& self_signed_quota = p == Platform::kAndroid ? self_signed_quota_android_
                                                   : self_signed_quota_ios_;
  if (self_signed_quota > 0) {
    --self_signed_quota;
    const std::string host = "legacy." + plan.brand + ".com";
    // The paper found self-signed pinned certs valid for 27 and 10 years.
    eco_.world_.EnsureSelfSigned(host, plan.brand,
                                 p == Platform::kAndroid ? 27 : 10);
    DestPlan dp;
    dp.host = host;
    dp.first_party = true;
    dp.custom_trust = true;  // nothing else would trust it
    PreparePinnedDest(dp, rng);
    plan.dests.push_back(std::move(dp));
  }

  AddNoise(plan, rng);

  // Guarantee at least one pinned destination.
  const bool any_pinned = std::any_of(plan.dests.begin(), plan.dests.end(),
                                      [](const DestPlan& x) { return x.pinned; });
  if (!any_pinned) {
    for (DestPlan& dp : plan.dests) {
      if (dp.first_party) {
        PreparePinnedDest(dp, rng);
        break;
      }
    }
  }

  // A handful of apps pin everything they contact (§5.2: 5 on Android, 4 on
  // iOS).
  int& pins_all_quota = p == Platform::kAndroid ? pins_all_quota_android_
                                                : pins_all_quota_ios_;
  if (pins_all_quota > 0 && rng.Bernoulli(0.12)) {
    --pins_all_quota;
    plan.pins_all = true;
  }

  plan.runtime_pinning = true;
  return plan;
}

AppPlan GeneratorImpl::MakeStaticOnlyApp(Platform p, DatasetId d, util::Rng& rng) {
  AppPlan plan = NewAppPlan(p, d, /*pinning_category=*/false, rng);
  AddFirstParty(plan, rng.UniformInt(1, 2), rng);
  AddEmbeddingSdks(plan, p, rng);
  AddNoise(plan, rng);
  plan.static_only = true;
  return plan;
}

AppPlan GeneratorImpl::MakeRegularApp(Platform p, DatasetId d, util::Rng& rng) {
  AppPlan plan = NewAppPlan(p, d, /*pinning_category=*/false, rng);
  if (rng.Bernoulli(0.85)) AddFirstParty(plan, rng.UniformInt(1, 2), rng);
  for (const char* noise_sdk : {"Facebook", "Crashlane", "AdNetwork"}) {
    if (rng.Bernoulli(0.22)) {
      const auto sdk = appmodel::FindSdk(noise_sdk);
      const bool available = p == Platform::kAndroid ? sdk->available_android
                                                     : sdk->available_ios;
      if (available) AddSdk(plan, *sdk, false, true, rng);
    }
  }
  AddNoise(plan, rng);
  return plan;
}

void GeneratorImpl::BuildPlatformSets(Platform p) {
  const bool android = p == Platform::kAndroid;

  // --- Popular ---
  {
    Dataset popular{DatasetId::kPopular, p, {}};
    // §3 collisions: some Common apps reappear in the Popular listings.
    const Dataset& common = eco_.datasets_[android ? 0 : 1];
    const auto& truths = android ? eco_.android_truth_ : eco_.ios_truth_;
    int collisions = S(android ? 11 : 60);
    for (std::size_t idx : common.app_indices) {
      if (collisions == 0) break;
      if (!truths[idx].runtime_pinning && !truths[idx].static_only) {
        popular.app_indices.push_back(idx);
        --collisions;
      }
    }

    const int total = S(1000);
    int n_pin = S(android ? 67 : 114);
    int n_static = S(android ? 130 : 220);
    int nsc_pin = android ? S(18) : 0;
    int nsc_plain = android ? S(30) : 0;

    while (static_cast<int>(popular.app_indices.size()) < total) {
      util::Rng rng = rng_.Fork("popular:" + std::string(PlatformName(p)) + ":" +
                                std::to_string(popular.app_indices.size()));
      AppPlan plan;
      if (n_pin > 0) {
        --n_pin;
        plan = MakePinningApp(p, DatasetId::kPopular, "", rng);
        const bool pins_fp = std::any_of(
            plan.dests.begin(), plan.dests.end(),
            [](const DestPlan& x) { return x.pinned && x.first_party; });
        if (pins_fp && nsc_pin > 0) {
          ApplyNscPins(plan);
          --nsc_pin;
        }
      } else if (n_static > 0) {
        --n_static;
        plan = MakeStaticOnlyApp(p, DatasetId::kPopular, rng);
      } else {
        plan = MakeRegularApp(p, DatasetId::kPopular, rng);
        if (nsc_plain > 0) {
          plan.nsc = true;
          --nsc_plain;
        }
      }
      popular.app_indices.push_back(BuildApp(std::move(plan), rng));
    }
    eco_.datasets_.push_back(std::move(popular));
  }

  // --- Random ---
  {
    Dataset random{DatasetId::kRandom, p, {}};
    const int total = S(1000);
    int n_pin = S(android ? 9 : 25);
    int n_static = S(android ? 90 : 70);
    int nsc_pin = android ? S(6) : 0;
    int nsc_plain = android ? S(15) : 0;
    // The iOS-Random third-party pinning phenomenon (§5): PayPal in 10 apps,
    // Firestore in 5.
    int paypal = android ? 0 : S(10);
    int firestore = android ? 0 : S(5);

    while (static_cast<int>(random.app_indices.size()) < total) {
      util::Rng rng = rng_.Fork("random:" + std::string(PlatformName(p)) + ":" +
                                std::to_string(random.app_indices.size()));
      AppPlan plan;
      if (n_pin > 0) {
        --n_pin;
        std::string forced;
        if (paypal > 0) {
          forced = "Paypal";
          --paypal;
        } else if (firestore > 0) {
          forced = "Firestore";
          --firestore;
        }
        plan = MakePinningApp(p, DatasetId::kRandom, forced, rng);
        const bool pins_fp = std::any_of(
            plan.dests.begin(), plan.dests.end(),
            [](const DestPlan& x) { return x.pinned && x.first_party; });
        if (pins_fp && nsc_pin > 0) {
          ApplyNscPins(plan);
          --nsc_pin;
        }
      } else if (n_static > 0) {
        --n_static;
        plan = MakeStaticOnlyApp(p, DatasetId::kRandom, rng);
      } else {
        plan = MakeRegularApp(p, DatasetId::kRandom, rng);
        if (nsc_plain > 0) {
          plan.nsc = true;
          --nsc_plain;
        }
      }
      random.app_indices.push_back(BuildApp(std::move(plan), rng));
    }
    eco_.datasets_.push_back(std::move(random));
  }
}

// --- Post-pass & assembly ----------------------------------------------------

void GeneratorImpl::ApplySpecialCases() {
  // §5.3.3: servers renew leaves during the study while reusing keys; SPKI
  // and public-key pins keep matching, embedded certificate files go stale.
  for (const std::string& host : rotate_hosts_) {
    eco_.world_.RotateLeaf(host, /*reuse_key=*/true);
  }

  // Table 6 "Data Unavailable": some pinned destinations refuse the
  // out-of-band chain fetch.
  int a_quota = S(11);
  int i_quota = S(14);
  auto pinned_hosts = [](const std::vector<App>& apps) {
    std::set<std::string> hosts;
    for (const App& app : apps) {
      for (const auto& dest : app.behavior.destinations) {
        if (dest.pinned) hosts.insert(dest.hostname);
      }
    }
    return hosts;
  };
  const std::set<std::string> android_pinned = pinned_hosts(eco_.android_apps_);
  const std::set<std::string> ios_pinned = pinned_hosts(eco_.ios_apps_);
  auto mark = [&](const std::vector<App>& apps, int& quota,
                  const std::set<std::string>& other_platform_pinned) {
    for (const App& app : apps) {
      if (quota == 0) return;
      for (const auto& dest : app.behavior.destinations) {
        if (quota == 0) return;
        const appmodel::ServerInfo* srv = eco_.world_.Find(dest.hostname);
        // Mark only hosts pinned exclusively on this platform, so the quota
        // lands on the intended per-platform Table 6 bucket.
        if (dest.pinned && srv != nullptr && !srv->chain_fetch_unavailable &&
            dest.owning_sdk.empty() && !dest.custom_trust &&
            !other_platform_pinned.contains(dest.hostname)) {
          eco_.world_.MarkChainFetchUnavailable(dest.hostname);
          --quota;
        }
      }
    }
  };
  mark(eco_.android_apps_, a_quota, ios_pinned);
  mark(eco_.ios_apps_, i_quota, android_pinned);
}

Ecosystem GeneratorImpl::Build() {
  eco_.seed_ = config_.seed;
  pins_all_quota_android_ = S(5);
  pins_all_quota_ios_ = S(4);
  custom_pki_quota_android_ = S(4);
  custom_pki_quota_ios_ = S(1);
  self_signed_quota_android_ = S(1);
  self_signed_quota_ios_ = S(1);

  ProvisionInfrastructure();
  BuildCommon();
  BuildPlatformSets(Platform::kAndroid);
  BuildPlatformSets(Platform::kIos);
  ApplySpecialCases();

  eco_.world_.ExportOwnership(eco_.orgs_);
  eco_.world_.ExportToCtLog(eco_.ct_log_);
  return std::move(eco_);
}

// --- Ecosystem public API ----------------------------------------------------

Ecosystem Ecosystem::Generate(const EcosystemConfig& config) {
  GeneratorImpl generator(config);
  return generator.Build();
}

const std::vector<App>& Ecosystem::apps(Platform p) const {
  return p == Platform::kAndroid ? android_apps_ : ios_apps_;
}

const Dataset& Ecosystem::dataset(DatasetId id, Platform p) const {
  for (const Dataset& d : datasets_) {
    if (d.id == id && d.platform == p) return d;
  }
  throw util::Error("dataset not generated");
}

std::vector<const App*> Ecosystem::DatasetApps(DatasetId id, Platform p) const {
  const Dataset& d = dataset(id, p);
  const auto& universe = apps(p);
  std::vector<const App*> out;
  out.reserve(d.app_indices.size());
  for (std::size_t idx : d.app_indices) out.push_back(&universe[idx]);
  return out;
}

const AppTruth& Ecosystem::truth(Platform p, std::size_t index) const {
  return p == Platform::kAndroid ? android_truth_.at(index) : ios_truth_.at(index);
}

}  // namespace pinscope::store

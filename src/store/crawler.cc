#include "store/crawler.h"

#include <algorithm>

namespace pinscope::store {
namespace {

const appmodel::App* FindByAppId(const Ecosystem& eco, appmodel::Platform p,
                                 std::string_view app_id) {
  for (const appmodel::App& app : eco.apps(p)) {
    if (app.meta.app_id == app_id) return &app;
  }
  return nullptr;
}

std::vector<const appmodel::App*> ByCategorySorted(const Ecosystem& eco,
                                                   appmodel::Platform p,
                                                   std::string_view category) {
  std::vector<const appmodel::App*> out;
  for (const appmodel::App& app : eco.apps(p)) {
    if (app.meta.category == category) out.push_back(&app);
  }
  std::sort(out.begin(), out.end(),
            [](const appmodel::App* a, const appmodel::App* b) {
              return a->meta.popularity_rank < b->meta.popularity_rank;
            });
  return out;
}

}  // namespace

GPlayCli::GPlayCli(const Ecosystem& eco) : eco_(&eco) {}

std::optional<const appmodel::App*> GPlayCli::Download(std::string_view app_id) {
  ++stats_.requests;
  stats_.elapsed_ms += 1'500;  // one APK fetch
  const appmodel::App* app = FindByAppId(*eco_, appmodel::Platform::kAndroid, app_id);
  if (app == nullptr) return std::nullopt;
  return app;
}

ITunesGuiCrawler::ITunesGuiCrawler(const Ecosystem& eco, bool attended)
    : eco_(&eco), attended_(attended) {}

std::optional<const appmodel::App*> ITunesGuiCrawler::Download(
    std::string_view bundle_id) {
  ++stats_.requests;
  stats_.elapsed_ms += 9'000;  // GUI automation is slow
  // Appendix A: periodically the workflow wedges (re-authentication etc.).
  if (stats_.requests % 40 == 0) {
    if (!attended_) return std::nullopt;
    ++stats_.manual_interventions;
    stats_.elapsed_ms += 60'000;  // a human untangles iTunes
  }
  const appmodel::App* app = FindByAppId(*eco_, appmodel::Platform::kIos, bundle_id);
  if (app == nullptr) return std::nullopt;
  return app;
}

std::vector<const appmodel::App*> GooglePlayScraper::TopFree(
    std::string_view category) const {
  auto apps = ByCategorySorted(*eco_, appmodel::Platform::kAndroid, category);
  std::erase_if(apps, [](const appmodel::App* a) { return !a->meta.free; });
  return apps;
}

std::vector<const appmodel::App*> ITunesSearchApi::TopApps(
    std::string_view category) const {
  auto apps = ByCategorySorted(*eco_, appmodel::Platform::kIos, category);
  if (apps.size() > 100) apps.resize(100);  // API page cap
  return apps;
}

std::vector<AlternativeToCrawler::Listing> AlternativeToCrawler::PopularListings(
    int pages) {
  std::vector<Listing> out;
  const auto& pairs = eco_->common_pairs();
  const std::size_t want =
      std::min<std::size_t>(pairs.size(), static_cast<std::size_t>(pages) * 10);
  for (std::size_t i = 0; i < want; ++i) {
    const auto& android = eco_->apps(appmodel::Platform::kAndroid)[pairs[i].android_index];
    const auto& ios = eco_->apps(appmodel::Platform::kIos)[pairs[i].ios_index];
    out.push_back({android.meta.display_name, android.meta.app_id, ios.meta.app_id});
  }
  // §7: 1 page per second, contact details in the User-Agent.
  stats_.requests += pages;
  stats_.elapsed_ms += static_cast<std::int64_t>(pages) * 1'000;
  return out;
}

}  // namespace pinscope::store

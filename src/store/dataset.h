// Dataset identifiers (§3): Common, Popular, Random — per platform.
#pragma once

#include <string_view>
#include <vector>

#include "appmodel/platform.h"

namespace pinscope::store {

/// Which of the paper's three app collections a dataset is.
enum class DatasetId { kCommon, kPopular, kRandom };

/// All dataset ids in report order.
[[nodiscard]] inline const std::vector<DatasetId>& AllDatasets() {
  static const std::vector<DatasetId> all = {DatasetId::kCommon,
                                             DatasetId::kPopular,
                                             DatasetId::kRandom};
  return all;
}

/// Human-readable dataset name.
[[nodiscard]] constexpr std::string_view DatasetName(DatasetId d) {
  switch (d) {
    case DatasetId::kCommon: return "Common";
    case DatasetId::kPopular: return "Popular";
    case DatasetId::kRandom: return "Random";
  }
  return "?";
}

/// A dataset: indices into the per-platform app universe. The same app can
/// appear in several datasets (the §3 "collisions").
struct Dataset {
  DatasetId id = DatasetId::kCommon;
  appmodel::Platform platform = appmodel::Platform::kAndroid;
  std::vector<std::size_t> app_indices;

  [[nodiscard]] std::size_t size() const { return app_indices.size(); }
};

}  // namespace pinscope::store

// Deterministic store-snapshot churn (DESIGN.md §15).
//
// Models what happens to a crawled corpus between two collection epochs:
// servers renew leaf certificates (mostly reusing keys, per §5.3.3's
// observation that SPKI pins survive operational renewals), a fraction of
// apps ship store updates, and some updated apps rotate their baked-in pins
// to match the new chains. Everything an update does NOT touch goes stale
// exactly the way the paper observed: embedded certificate files keep their
// old bytes, and the CT log is not republished.
//
// Determinism: every decision draws from a child RNG forked off
// Rng(seed).Fork("snapshot:<n>") by a stable label (per-host "renew:<host>",
// per-app "update:<platform>:<index>"), so decisions are independent of
// iteration order and of each other — regenerating the ecosystem and
// replaying the same advances reproduces identical package bytes, behavior,
// and world state (tests/store/churn_test.cc).
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "appmodel/ios_package.h"
#include "store/generator.h"
#include "util/error.h"
#include "util/rng.h"

namespace pinscope::store {

namespace {

using appmodel::App;
using appmodel::Platform;

/// ReplaceText that also reaches inside FairPlay-encrypted binaries: the
/// generic byte-level pass cannot see ciphered strings, so encrypted files
/// are decrypted (keystream is bound to the bundle id), rewritten, and
/// re-encrypted. This is what a real developer rebuild does — the store
/// ships a freshly encrypted binary with the new pin inside.
std::size_t ReplaceAppText(App& app, const std::string& old_text,
                           const std::string& new_text) {
  std::size_t replaced = app.package.ReplaceText(old_text, new_text);
  std::vector<std::pair<std::string, util::Bytes>> rewritten;
  for (const auto& [path, contents] : app.package.files()) {
    if (!appmodel::IsFairPlayEncrypted(contents)) continue;
    const util::Bytes plain =
        appmodel::FairPlayDecrypt(contents, app.meta.app_id);
    std::string text(reinterpret_cast<const char*>(plain.data()), plain.size());
    std::size_t pos = 0;
    std::size_t local = 0;
    while ((pos = text.find(old_text, pos)) != std::string::npos) {
      text.replace(pos, old_text.size(), new_text);
      pos += new_text.size();
      ++local;
    }
    if (local == 0) continue;
    replaced += local;
    rewritten.emplace_back(
        path, appmodel::FairPlayEncrypt(util::ToBytes(text), app.meta.app_id));
  }
  for (auto& [path, contents] : rewritten) {
    app.package.Add(path, std::move(contents));
  }
  return replaced;
}

}  // namespace

SnapshotChurn Ecosystem::AdvanceSnapshot(const ChurnConfig& config) {
  ++snapshot_;
  SnapshotChurn churn;
  churn.snapshot = snapshot_;
  const util::Rng snap =
      util::Rng(seed_).Fork("snapshot:" + std::to_string(snapshot_));

  // --- 1. Server-side leaf renewals -----------------------------------------
  // Self-signed hosts never renew (RotateLeaf has no issuer to re-sign
  // under, and the paper's self-signed deployments ran 27- and 10-year
  // certificates — operationally frozen).
  std::set<std::string> renewed;
  for (const std::string& host : world_.Hostnames()) {
    const appmodel::ServerInfo* srv = world_.Find(host);
    if (srv->pki == appmodel::PkiType::kSelfSigned) continue;
    util::Rng host_rng = snap.Fork("renew:" + host);
    if (!host_rng.Bernoulli(config.host_renewal_rate)) continue;
    const bool reuse_key = host_rng.Bernoulli(config.key_reuse_prob);
    world_.RotateLeaf(host, reuse_key);
    renewed.insert(host);
    ++churn.hosts_renewed;
    if (reuse_key) ++churn.keys_reused;
  }

  // --- 2. App updates & pin rotations ---------------------------------------
  auto churn_platform = [&](Platform p, std::vector<App>& apps,
                            const std::vector<std::vector<PinSite>>& sites) {
    for (std::size_t idx = 0; idx < apps.size(); ++idx) {
      App& app = apps[idx];
      util::Rng app_rng =
          snap.Fork("update:" + std::string(appmodel::PlatformName(p)) + ":" +
                    std::to_string(idx));
      bool changed = false;
      if (app_rng.Bernoulli(config.app_update_rate)) {
        // A store update: new bytes even when nothing else changes (the
        // revision stamp), plus — sometimes — refreshed pins.
        app.package.AddText("META-INF/churn_revision.txt",
                            "snapshot=" + std::to_string(snapshot_) + "\n");
        ++churn.apps_updated;
        changed = true;
        if (app_rng.Bernoulli(config.pin_rotation_prob)) {
          for (const PinSite& site : sites[idx]) {
            appmodel::DestinationBehavior& db =
                app.behavior.destinations[site.dest_index];
            const appmodel::ServerInfo* srv = world_.Find(db.hostname);
            if (srv == nullptr) continue;
            const auto& chain = srv->endpoint.chain;
            const tls::Pin fresh = tls::Pin::ForCertificate(
                chain[std::min(site.chain_index, chain.size() - 1)], site.form);
            for (tls::Pin& pin : db.pins) {
              // Key-reusing renewals keep SPKI pins valid, so a "rotation"
              // there is a no-op — exactly the paper's point about why SPKI
              // pinning survives operations that break cert pinning.
              if (pin.form != site.form || pin == fresh) continue;
              ReplaceAppText(app, pin.ToPinString(), fresh.ToPinString());
              pin = fresh;
              ++churn.pins_rotated;
            }
          }
        }
      }
      // Apps contacting a renewed host re-enter the work list even without
      // an update: their dynamic results may change under the new chain.
      if (!changed) {
        for (const auto& db : app.behavior.destinations) {
          if (renewed.contains(db.hostname)) {
            changed = true;
            break;
          }
        }
      }
      if (changed) churn.changed_apps.emplace_back(p, idx);

      // Stale-pin census for the longitudinal table: behavior pins matching
      // no element of their destination's current chain.
      for (const auto& db : app.behavior.destinations) {
        if (!db.pinned) continue;
        const appmodel::ServerInfo* srv = world_.Find(db.hostname);
        if (srv == nullptr) continue;
        const auto& chain = srv->endpoint.chain;
        for (const tls::Pin& pin : db.pins) {
          const bool live = std::any_of(
              chain.begin(), chain.end(),
              [&](const x509::Certificate& c) { return pin.Matches(c); });
          if (!live) ++churn.stale_pins;
        }
      }
    }
  };
  churn_platform(Platform::kAndroid, android_apps_, android_pin_sites_);
  churn_platform(Platform::kIos, ios_apps_, ios_pin_sites_);
  return churn;
}

const std::vector<PinSite>& Ecosystem::pin_sites(appmodel::Platform p,
                                                 std::size_t index) const {
  const auto& sites =
      p == appmodel::Platform::kAndroid ? android_pin_sites_ : ios_pin_sites_;
  if (index >= sites.size()) throw util::Error("pin_sites: index out of range");
  return sites[index];
}

}  // namespace pinscope::store

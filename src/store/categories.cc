#include "store/categories.h"

#include <map>

#include "util/error.h"

namespace pinscope::store {
namespace {

const std::vector<std::string>& AndroidCategories() {
  static const std::vector<std::string> cats = {
      "Education",     "Games",        "Tools",         "Music",
      "Books",         "Business",     "Lifestyle",     "Entertainment",
      "Travel",        "Personalization", "Weather",    "Finance",
      "Shopping",      "Food & Drink", "Social",        "Productivity",
      "Communication", "Health",       "Photography",   "Dating",
      "Events",        "Comics",       "Automobile",    "Sports",
      "News",          "Maps",         "Video Players", "Art & Design",
      "Beauty",        "House & Home", "Libraries",     "Medical",
      "Parenting",     "Trivia"};
  return cats;
}

const std::vector<std::string>& IosCategories() {
  static const std::vector<std::string> cats = {
      "Games",         "Productivity",     "Business",      "Social Networking",
      "Photo & Video", "Education",        "Finance",       "Lifestyle",
      "Utilities",     "Entertainment",    "Health",        "Travel",
      "Shopping",      "Weather",          "Food & Drink",  "Navigation",
      "Books",         "Sports",           "Music",         "News",
      "Medical",       "Reference",        "Magazines",     "Developer Tools",
      "Graphics & Design", "Stickers"};
  return cats;
}

// A sparse weight table: (category → percent); the rest of the probability
// mass spreads uniformly over the unlisted categories.
using WeightTable = std::vector<std::pair<std::string, double>>;

std::string Sample(const WeightTable& table, const std::vector<std::string>& all,
                   util::Rng& rng) {
  double listed = 0.0;
  for (const auto& [_, w] : table) listed += w;
  const double rest = listed >= 100.0 ? 0.0 : 100.0 - listed;

  std::vector<std::string> unlisted;
  for (const std::string& c : all) {
    bool in_table = false;
    for (const auto& [name, _] : table) {
      if (name == c) {
        in_table = true;
        break;
      }
    }
    if (!in_table) unlisted.push_back(c);
  }

  std::vector<double> weights;
  weights.reserve(table.size() + 1);
  for (const auto& [_, w] : table) weights.push_back(w);
  if (!unlisted.empty()) weights.push_back(rest);

  const std::size_t idx = rng.WeightedIndex(weights);
  if (idx < table.size()) return table[idx].first;
  return rng.Pick(unlisted);
}

// --- Table 1 distributions ---------------------------------------------

const WeightTable& Table1(appmodel::Platform p, DatasetId d) {
  static const WeightTable android_random = {
      {"Education", 12}, {"Games", 12},        {"Tools", 6},
      {"Music", 6},      {"Books", 6},         {"Business", 5},
      {"Lifestyle", 5},  {"Entertainment", 4}, {"Travel", 4},
      {"Personalization", 4}};
  static const WeightTable android_popular = {
      {"Games", 36},   {"Weather", 2},      {"Finance", 2}, {"Shopping", 2},
      {"Entertainment", 2}, {"Food & Drink", 2}, {"Social", 2},
      {"Productivity", 2},  {"Photography", 2},  {"Music", 2}};
  static const WeightTable android_common = {
      {"Games", 18},  {"Productivity", 12}, {"Business", 7},
      {"Communication", 6}, {"Finance", 6},  {"Education", 5},
      {"Social", 5},  {"Health", 4},        {"Travel", 3},
      {"Lifestyle", 3}};
  static const WeightTable ios_random = {
      {"Games", 15},     {"Business", 11},     {"Education", 11},
      {"Food & Drink", 7}, {"Lifestyle", 7},   {"Utilities", 6},
      {"Entertainment", 4}, {"Health", 4},     {"Travel", 4},
      {"Shopping", 3}};
  static const WeightTable ios_popular = {
      {"Games", 21},        {"Photo & Video", 11}, {"Social Networking", 6},
      {"Education", 6},     {"Finance", 6},        {"Lifestyle", 5},
      {"Entertainment", 4}, {"Utilities", 4},      {"Productivity", 4},
      {"Weather", 4}};
  static const WeightTable ios_common = {
      {"Games", 18},    {"Productivity", 14},     {"Business", 8},
      {"Social Networking", 7}, {"Education", 6}, {"Finance", 6},
      {"Utilities", 5}, {"Photo & Video", 4},     {"Health", 3},
      {"Lifestyle", 3}};

  if (p == appmodel::Platform::kAndroid) {
    switch (d) {
      case DatasetId::kCommon: return android_common;
      case DatasetId::kPopular: return android_popular;
      case DatasetId::kRandom: return android_random;
    }
  } else {
    switch (d) {
      case DatasetId::kCommon: return ios_common;
      case DatasetId::kPopular: return ios_popular;
      case DatasetId::kRandom: return ios_random;
    }
  }
  throw util::Error("unknown platform/dataset");
}

// --- Tables 4 & 5: pinning-app category mixes ----------------------------

const WeightTable& PinningTable(appmodel::Platform p) {
  // Percentages derived from "No. of Apps" columns, with the remainder
  // flowing to unlisted categories.
  static const WeightTable android = {
      {"Finance", 22},     {"Social", 10},  {"Food & Drink", 3},
      {"Shopping", 5},     {"Travel", 4},   {"Events", 2},
      {"Dating", 2},       {"Comics", 2},   {"Automobile", 2},
      {"Weather", 2},      {"Games", 5},    {"Productivity", 5}};
  static const WeightTable ios = {
      {"Finance", 14},        {"Photo & Video", 9}, {"Shopping", 8},
      {"Social Networking", 7}, {"Lifestyle", 7},   {"Travel", 6},
      {"Food & Drink", 5},    {"Sports", 2},        {"Books", 2},
      {"Navigation", 1},      {"Games", 6},         {"Productivity", 5}};
  return p == appmodel::Platform::kAndroid ? android : ios;
}

}  // namespace

const std::vector<std::string>& Categories(appmodel::Platform p) {
  return p == appmodel::Platform::kAndroid ? AndroidCategories() : IosCategories();
}

std::string ToIosCategory(const std::string& android_category) {
  static const std::map<std::string, std::string> mapping = {
      {"Social", "Social Networking"},
      {"Photography", "Photo & Video"},
      {"Tools", "Utilities"},
      {"Communication", "Social Networking"},
      {"Personalization", "Utilities"},
      {"Video Players", "Photo & Video"},
      {"Maps", "Navigation"},
      {"Automobile", "Navigation"},
      {"Events", "Lifestyle"},
      {"Dating", "Lifestyle"},
      {"Comics", "Books"},
      {"Art & Design", "Graphics & Design"},
      {"Beauty", "Lifestyle"},
      {"House & Home", "Lifestyle"},
      {"Libraries", "Reference"},
      {"Parenting", "Lifestyle"},
      {"Trivia", "Games"}};
  const auto it = mapping.find(android_category);
  if (it != mapping.end()) return it->second;
  // Names shared by both stores pass through.
  for (const std::string& c : IosCategories()) {
    if (c == android_category) return c;
  }
  return "Lifestyle";
}

std::string SampleCategory(appmodel::Platform p, DatasetId d, util::Rng& rng) {
  return Sample(Table1(p, d), Categories(p), rng);
}

std::string SamplePinningCategory(appmodel::Platform p, util::Rng& rng) {
  return Sample(PinningTable(p), Categories(p), rng);
}

}  // namespace pinscope::store

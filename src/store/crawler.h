// App acquisition front-ends (§3 and Appendix A).
//
// Models the paper's collection tooling over the simulated stores: GPlayCLI
// for direct APK downloads, the semi-automated iTunes 12.6 GUI workflow for
// IPAs (which occasionally needs a human to re-authenticate — the reason the
// paper capped its iOS corpus), google-play-scraper / iTunes Search for
// popularity listings, and the rate-limited AlternativeTo crawl that links
// the two stores for the Common dataset.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/generator.h"

namespace pinscope::store {

/// Bookkeeping every crawler keeps (ethics §7: low rates, identifiable UA).
struct CrawlStats {
  int requests = 0;
  int manual_interventions = 0;   ///< iTunes re-auth fixes.
  std::int64_t elapsed_ms = 0;    ///< Simulated wall-clock spent crawling.
  std::string user_agent = "pinscope-research-crawler/1.0 (contact: research@example.edu)";
};

/// Direct APK downloader (GPlayCLI substitute).
class GPlayCli {
 public:
  explicit GPlayCli(const Ecosystem& eco);

  /// Downloads an app by package name; nullopt for unknown ids.
  [[nodiscard]] std::optional<const appmodel::App*> Download(std::string_view app_id);

  [[nodiscard]] const CrawlStats& stats() const { return stats_; }

 private:
  const Ecosystem* eco_;
  CrawlStats stats_;
};

/// Semi-automated iTunes 12.6 GUI downloader (Appendix A). Every ~40th
/// download needs a manual fix; in unattended mode those downloads fail.
class ITunesGuiCrawler {
 public:
  ITunesGuiCrawler(const Ecosystem& eco, bool attended);

  [[nodiscard]] std::optional<const appmodel::App*> Download(std::string_view bundle_id);

  [[nodiscard]] const CrawlStats& stats() const { return stats_; }

 private:
  const Ecosystem* eco_;
  bool attended_;
  CrawlStats stats_;
};

/// Top-free listings per category (google-play-scraper substitute).
class GooglePlayScraper {
 public:
  explicit GooglePlayScraper(const Ecosystem& eco) : eco_(&eco) {}

  /// Apps of `category` ordered by popularity rank.
  [[nodiscard]] std::vector<const appmodel::App*> TopFree(std::string_view category) const;

 private:
  const Ecosystem* eco_;
};

/// iTunes Search API substitute: returns at most 100 results per call.
class ITunesSearchApi {
 public:
  explicit ITunesSearchApi(const Ecosystem& eco) : eco_(&eco) {}

  [[nodiscard]] std::vector<const appmodel::App*> TopApps(std::string_view category) const;

 private:
  const Ecosystem* eco_;
};

/// AlternativeTo crawl: cross-store links for the Common dataset, rate
/// limited to 1 page/second as in §7.
class AlternativeToCrawler {
 public:
  struct Listing {
    std::string name;
    std::string android_app_id;
    std::string ios_app_id;
  };

  explicit AlternativeToCrawler(const Ecosystem& eco) : eco_(&eco) {}

  /// Crawls `pages` popularity-sorted pages (10 listings per page).
  [[nodiscard]] std::vector<Listing> PopularListings(int pages);

  [[nodiscard]] const CrawlStats& stats() const { return stats_; }

 private:
  const Ecosystem* eco_;
  CrawlStats stats_;
};

}  // namespace pinscope::store

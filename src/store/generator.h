// The calibrated ecosystem generator.
//
// Builds the entire measurement substrate the paper's pipeline ran against:
// a server-side Internet, an organization directory, a CT log, and the six
// app datasets (Common/Popular/Random × Android/iOS) with per-app behaviour
// profiles fitted to the paper's reported distributions (DESIGN.md §4).
//
// Ground truth lives in each App's behaviour and in the AppTruth records;
// the measurement pipeline never reads either — tests assert that measured
// results match the generated truth.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "appmodel/app.h"
#include "appmodel/server_world.h"
#include "net/party.h"
#include "store/dataset.h"
#include "x509/ct_log.h"

namespace pinscope::store {

/// Cross-platform pinning consistency classes for Common-dataset pairs
/// (§5.1 / Figures 2–4). Assigned as generation ground truth; the study
/// re-derives them from measurements.
enum class ConsistencyClass {
  kNotPinning,              ///< Pins on neither platform.
  kConsistentIdentical,     ///< Same pinned set on both platforms.
  kConsistentPartial,       ///< ≥1 shared pinned domain; extras unobservable.
  kInconsistentBoth,        ///< Pins on both; some domain pinned on one side
                            ///  observed unpinned on the other.
  kInconclusiveBoth,        ///< Pins on both; pinned sets never co-observed.
  kAndroidOnlyInconsistent, ///< Pins only on Android; iOS contacts unpinned.
  kAndroidOnlyInconclusive, ///< Pins only on Android; iOS never contacts.
  kIosOnlyInconsistent,     ///< Pins only on iOS; Android contacts unpinned.
  kIosOnlyInconclusive,     ///< Pins only on iOS; Android never contacts.
};

/// Human-readable class name.
[[nodiscard]] std::string_view ConsistencyClassName(ConsistencyClass c);

/// Per-app generation ground truth (test oracle; not read by the pipeline).
struct AppTruth {
  bool runtime_pinning = false;  ///< Pins at run time.
  bool static_only = false;      ///< Ships pin material but never enforces it.
  bool nsc_pins = false;         ///< Android: pins via Network Security Config.
  bool pins_all_domains = false; ///< Pins every destination it contacts.
};

/// One logical app present on both stores.
struct CommonPair {
  std::size_t android_index = 0;  ///< Index into apps(kAndroid).
  std::size_t ios_index = 0;      ///< Index into apps(kIos).
  ConsistencyClass cls = ConsistencyClass::kNotPinning;
};

/// Generation parameters.
struct EcosystemConfig {
  std::uint64_t seed = 42;
  /// Scales every dataset size and class count (1.0 = the paper's sizes:
  /// 575 common pairs, 1000 popular and 1000 random per platform). Use
  /// smaller values for fast tests; shapes survive down to roughly 0.1.
  double scale = 1.0;
};

/// The generated universe.
class Ecosystem {
 public:
  /// Generates deterministically from `config`.
  static Ecosystem Generate(const EcosystemConfig& config = {});

  [[nodiscard]] const appmodel::ServerWorld& world() const { return world_; }
  [[nodiscard]] const x509::CtLog& ct_log() const { return ct_log_; }
  [[nodiscard]] const net::OrganizationDirectory& organizations() const {
    return orgs_;
  }

  /// App universe for a platform (indices are stable).
  [[nodiscard]] const std::vector<appmodel::App>& apps(appmodel::Platform p) const;

  /// A dataset's member indices.
  [[nodiscard]] const Dataset& dataset(DatasetId id, appmodel::Platform p) const;

  /// All apps of one dataset (resolved from indices).
  [[nodiscard]] std::vector<const appmodel::App*> DatasetApps(
      DatasetId id, appmodel::Platform p) const;

  /// Ground truth for an app.
  [[nodiscard]] const AppTruth& truth(appmodel::Platform p, std::size_t index) const;

  /// The Common dataset's cross-platform links with their truth classes.
  [[nodiscard]] const std::vector<CommonPair>& common_pairs() const {
    return pairs_;
  }

 private:
  friend class GeneratorImpl;
  Ecosystem() : world_(0) {}

  appmodel::ServerWorld world_;
  x509::CtLog ct_log_;
  net::OrganizationDirectory orgs_;
  std::vector<appmodel::App> android_apps_;
  std::vector<appmodel::App> ios_apps_;
  std::vector<AppTruth> android_truth_;
  std::vector<AppTruth> ios_truth_;
  std::vector<Dataset> datasets_;  // 6 entries
  std::vector<CommonPair> pairs_;
};

}  // namespace pinscope::store

// The calibrated ecosystem generator.
//
// Builds the entire measurement substrate the paper's pipeline ran against:
// a server-side Internet, an organization directory, a CT log, and the six
// app datasets (Common/Popular/Random × Android/iOS) with per-app behaviour
// profiles fitted to the paper's reported distributions (DESIGN.md §4).
//
// Ground truth lives in each App's behaviour and in the AppTruth records;
// the measurement pipeline never reads either — tests assert that measured
// results match the generated truth.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "appmodel/app.h"
#include "appmodel/server_world.h"
#include "net/party.h"
#include "store/dataset.h"
#include "tls/pinning.h"
#include "x509/ct_log.h"

namespace pinscope::store {

/// Cross-platform pinning consistency classes for Common-dataset pairs
/// (§5.1 / Figures 2–4). Assigned as generation ground truth; the study
/// re-derives them from measurements.
enum class ConsistencyClass {
  kNotPinning,              ///< Pins on neither platform.
  kConsistentIdentical,     ///< Same pinned set on both platforms.
  kConsistentPartial,       ///< ≥1 shared pinned domain; extras unobservable.
  kInconsistentBoth,        ///< Pins on both; some domain pinned on one side
                            ///  observed unpinned on the other.
  kInconclusiveBoth,        ///< Pins on both; pinned sets never co-observed.
  kAndroidOnlyInconsistent, ///< Pins only on Android; iOS contacts unpinned.
  kAndroidOnlyInconclusive, ///< Pins only on Android; iOS never contacts.
  kIosOnlyInconsistent,     ///< Pins only on iOS; Android contacts unpinned.
  kIosOnlyInconclusive,     ///< Pins only on iOS; Android never contacts.
};

/// Human-readable class name.
[[nodiscard]] std::string_view ConsistencyClassName(ConsistencyClass c);

/// Per-app generation ground truth (test oracle; not read by the pipeline).
struct AppTruth {
  bool runtime_pinning = false;  ///< Pins at run time.
  bool static_only = false;      ///< Ships pin material but never enforces it.
  bool nsc_pins = false;         ///< Android: pins via Network Security Config.
  bool pins_all_domains = false; ///< Pins every destination it contacts.
};

/// One logical app present on both stores.
struct CommonPair {
  std::size_t android_index = 0;  ///< Index into apps(kAndroid).
  std::size_t ios_index = 0;      ///< Index into apps(kIos).
  ConsistencyClass cls = ConsistencyClass::kNotPinning;
};

/// Generation parameters.
struct EcosystemConfig {
  std::uint64_t seed = 42;
  /// Scales every dataset size and class count (1.0 = the paper's sizes:
  /// 575 common pairs, 1000 popular and 1000 random per platform). Use
  /// smaller values for fast tests; shapes survive down to roughly 0.1.
  double scale = 1.0;
};

/// Where one pin anchors on its destination's served chain — recorded at
/// generation time so snapshot churn can recompute the pin after a leaf
/// renewal (chain element + form fully determine the fresh pin).
struct PinSite {
  std::size_t dest_index = 0;   ///< Index into app.behavior.destinations.
  std::size_t chain_index = 0;  ///< Chain element pinned (0 = leaf).
  tls::PinForm form = tls::PinForm::kSpkiSha256;
};

/// Store-churn parameters for one snapshot advance (rates chosen to mirror
/// §5.3.3's observations: most renewals reuse keys, most updates keep pins).
struct ChurnConfig {
  double host_renewal_rate = 0.06;  ///< Hosts renewing their leaf.
  double key_reuse_prob = 0.7;      ///< Renewals keeping the old SPKI.
  double app_update_rate = 0.08;    ///< Apps shipping a store update.
  double pin_rotation_prob = 0.6;   ///< Updated pinned apps refreshing pins.
};

/// What one AdvanceSnapshot changed — a row of the longitudinal table, plus
/// the changed-app set incremental re-analysis consumes.
struct SnapshotChurn {
  int snapshot = 0;            ///< The snapshot number just produced.
  std::size_t hosts_renewed = 0;
  std::size_t keys_reused = 0; ///< Renewals that kept the old key.
  std::size_t apps_updated = 0;
  std::size_t pins_rotated = 0;
  /// Behavior pins that match no element of their destination's *current*
  /// chain (the §5.3.3 breakage: cert pins across a fresh-key renewal).
  std::size_t stale_pins = 0;
  /// Every app whose analysis inputs changed this snapshot: updated apps
  /// plus apps contacting a renewed host. Superset of result changes — the
  /// incremental work list.
  std::vector<std::pair<appmodel::Platform, std::size_t>> changed_apps;
};

/// The generated universe.
class Ecosystem {
 public:
  /// Generates deterministically from `config`.
  static Ecosystem Generate(const EcosystemConfig& config = {});

  [[nodiscard]] const appmodel::ServerWorld& world() const { return world_; }
  [[nodiscard]] const x509::CtLog& ct_log() const { return ct_log_; }
  [[nodiscard]] const net::OrganizationDirectory& organizations() const {
    return orgs_;
  }

  /// App universe for a platform (indices are stable).
  [[nodiscard]] const std::vector<appmodel::App>& apps(appmodel::Platform p) const;

  /// A dataset's member indices.
  [[nodiscard]] const Dataset& dataset(DatasetId id, appmodel::Platform p) const;

  /// All apps of one dataset (resolved from indices).
  [[nodiscard]] std::vector<const appmodel::App*> DatasetApps(
      DatasetId id, appmodel::Platform p) const;

  /// Ground truth for an app.
  [[nodiscard]] const AppTruth& truth(appmodel::Platform p, std::size_t index) const;

  /// The Common dataset's cross-platform links with their truth classes.
  [[nodiscard]] const std::vector<CommonPair>& common_pairs() const {
    return pairs_;
  }

  /// Advances the store snapshot one epoch of deterministic churn
  /// (store/churn.cc): seeded leaf renewals (key-reusing or fresh-key,
  /// skipping self-signed hosts — their decades-long certs never renew),
  /// seeded app updates, and pin rotations in updated apps whose pins went
  /// stale. Embedded certificate files are deliberately left stale (§5.3.3)
  /// and the CT log is not republished. Fully determined by (generation
  /// seed, snapshot number, config): regenerating an ecosystem and replaying
  /// the same advances reproduces identical bytes.
  SnapshotChurn AdvanceSnapshot(const ChurnConfig& config = {});

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Snapshot number: 0 = as generated, +1 per AdvanceSnapshot.
  [[nodiscard]] int snapshot() const { return snapshot_; }

  /// Pin anchor sites for one app (parallel to its pinned destinations).
  [[nodiscard]] const std::vector<PinSite>& pin_sites(appmodel::Platform p,
                                                      std::size_t index) const;

 private:
  friend class GeneratorImpl;
  Ecosystem() : world_(0) {}

  appmodel::ServerWorld world_;
  x509::CtLog ct_log_;
  net::OrganizationDirectory orgs_;
  std::vector<appmodel::App> android_apps_;
  std::vector<appmodel::App> ios_apps_;
  std::vector<AppTruth> android_truth_;
  std::vector<AppTruth> ios_truth_;
  std::vector<Dataset> datasets_;  // 6 entries
  std::vector<CommonPair> pairs_;
  std::uint64_t seed_ = 0;
  int snapshot_ = 0;
  std::vector<std::vector<PinSite>> android_pin_sites_;
  std::vector<std::vector<PinSite>> ios_pin_sites_;
};

}  // namespace pinscope::store

#include "crypto/hmac.h"

namespace pinscope::crypto {
namespace {
constexpr std::size_t kBlockSize = 64;
}

Sha256Digest HmacSha256(const util::Bytes& key, const util::Bytes& message) {
  util::Bytes k = key;
  if (k.size() > kBlockSize) {
    const Sha256Digest d = Sha256(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlockSize, 0);

  util::Bytes inner_msg;
  inner_msg.reserve(kBlockSize + message.size());
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner_msg.push_back(static_cast<std::uint8_t>(k[i] ^ 0x36));
  }
  inner_msg.insert(inner_msg.end(), message.begin(), message.end());
  const Sha256Digest inner_digest = Sha256(inner_msg);

  util::Bytes outer_msg;
  outer_msg.reserve(kBlockSize + inner_digest.size());
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    outer_msg.push_back(static_cast<std::uint8_t>(k[i] ^ 0x5c));
  }
  outer_msg.insert(outer_msg.end(), inner_digest.begin(), inner_digest.end());
  return Sha256(outer_msg);
}

Sha256Digest HmacSha256(std::string_view key, std::string_view message) {
  return HmacSha256(util::ToBytes(key), util::ToBytes(message));
}

}  // namespace pinscope::crypto

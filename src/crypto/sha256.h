// SHA-256 (FIPS 180-4). Implemented from scratch for deterministic, offline use.
//
// SHA-256 over the SubjectPublicKeyInfo is the canonical pin digest in HPKP
// (RFC 7469), OkHttp's CertificatePinner, and Android Network Security
// Configurations — all formats this toolkit detects.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace pinscope::crypto {

/// 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Computes SHA-256 over `data`.
[[nodiscard]] Sha256Digest Sha256(const util::Bytes& data);

/// Computes SHA-256 over a string's characters.
[[nodiscard]] Sha256Digest Sha256(std::string_view data);

/// Digest as a byte buffer (for codecs).
[[nodiscard]] util::Bytes ToBytes(const Sha256Digest& d);

namespace internal {

/// The portable (pure C++) implementation, bypassing any hardware fast
/// path. Exposed so tests can assert the accelerated and portable paths
/// agree byte for byte on the machine they actually run on.
[[nodiscard]] Sha256Digest Sha256Portable(std::string_view data);

/// True when Sha256() dispatches to the SHA-NI accelerated block function.
[[nodiscard]] bool Sha256UsesHardware();

}  // namespace internal

}  // namespace pinscope::crypto

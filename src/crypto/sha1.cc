#include "crypto/sha1.h"

#include <cstring>

namespace pinscope::crypto {
namespace {

std::uint32_t Rotl32(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

struct Sha1State {
  std::uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                        0xC3D2E1F0u};

  void ProcessBlock(const std::uint8_t* p) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<std::uint32_t>(p[i * 4]) << 24 |
             static_cast<std::uint32_t>(p[i * 4 + 1]) << 16 |
             static_cast<std::uint32_t>(p[i * 4 + 2]) << 8 |
             static_cast<std::uint32_t>(p[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl32(b, 30);
      b = a;
      a = tmp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

Sha1Digest Compute(const std::uint8_t* data, std::size_t len) {
  Sha1State st;
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) st.ProcessBlock(data + i);

  std::uint8_t block[128] = {};
  const std::size_t rest = len - i;
  if (rest > 0) std::memcpy(block, data + i, rest);
  block[rest] = 0x80;
  const std::size_t padded = rest + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
  for (int j = 0; j < 8; ++j) {
    block[padded - 8 + static_cast<std::size_t>(j)] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * j));
  }
  st.ProcessBlock(block);
  if (padded == 128) st.ProcessBlock(block + 64);

  Sha1Digest out{};
  for (int j = 0; j < 5; ++j) {
    out[static_cast<std::size_t>(j * 4)] = static_cast<std::uint8_t>(st.h[j] >> 24);
    out[static_cast<std::size_t>(j * 4 + 1)] = static_cast<std::uint8_t>(st.h[j] >> 16);
    out[static_cast<std::size_t>(j * 4 + 2)] = static_cast<std::uint8_t>(st.h[j] >> 8);
    out[static_cast<std::size_t>(j * 4 + 3)] = static_cast<std::uint8_t>(st.h[j]);
  }
  return out;
}

}  // namespace

Sha1Digest Sha1(const util::Bytes& data) { return Compute(data.data(), data.size()); }

Sha1Digest Sha1(std::string_view data) {
  return Compute(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

util::Bytes ToBytes(const Sha1Digest& d) { return util::Bytes(d.begin(), d.end()); }

}  // namespace pinscope::crypto

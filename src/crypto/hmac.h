// HMAC-SHA256 (RFC 2104).
//
// The TLS simulator derives per-connection "encryption" keystreams and finished
// verifiers from HMAC so that record payloads are deterministic functions of
// the handshake inputs without real key exchange.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace pinscope::crypto {

/// HMAC-SHA256 of `message` under `key`.
[[nodiscard]] Sha256Digest HmacSha256(const util::Bytes& key,
                                      const util::Bytes& message);

/// Convenience overload for string keys/messages.
[[nodiscard]] Sha256Digest HmacSha256(std::string_view key, std::string_view message);

}  // namespace pinscope::crypto

// Shared runtime CPU-feature dispatch for the SIMD hot paths.
//
// Every accelerated kernel in the tree (the SHA-NI SHA-256 block function,
// the multi-literal scan prefilter) asks this one helper which instruction
// sets it may use, so feature detection, env kill-switches, and the
// portable-fallback policy live in a single place instead of being
// re-derived per kernel.
//
// Kill-switches (read from the environment):
//   PINSCOPE_NO_SIMD   — force the portable scalar path everywhere.
//   PINSCOPE_NO_AVX2   — cap vector scanning at SSE2 (AVX2 stays unused).
//   PINSCOPE_NO_SHANI  — disable the SHA extensions path.
//
// SimdLevel() re-reads the environment on every call (CPUID results are
// cached; getenv is cheap), so tests can flip a knob with setenv and have
// objects *constructed afterwards* — e.g. a Scanner and its compiled
// prefilter — dispatch differently within one process. The SIMD and
// portable paths are required to be byte-for-byte equivalent; `ctest -L
// simd` proves it at the study-export level.
#pragma once

namespace pinscope::crypto::cpu {

/// Vector-scan tiers for the byte-scanning kernels, best first.
enum class SimdLevel {
  kAvx2,      ///< 32-byte lanes (x86 AVX2).
  kSse2,      ///< 16-byte lanes (x86-64 baseline).
  kPortable,  ///< Scalar fallback; always available.
};

/// Human-readable tier name ("avx2", "sse2", "portable").
[[nodiscard]] const char* SimdLevelName(SimdLevel level);

/// The best vector tier the host supports *and* the environment allows.
/// Non-x86 builds always report kPortable.
[[nodiscard]] SimdLevel DetectSimdLevel();

/// True when the SHA-256 SHA-NI block function may be used (hardware
/// support present and neither PINSCOPE_NO_SHANI nor PINSCOPE_NO_SIMD set).
[[nodiscard]] bool ShaNiAllowed();

}  // namespace pinscope::crypto::cpu

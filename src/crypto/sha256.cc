#include "crypto/sha256.h"

#include <cstring>

#include "crypto/cpu.h"

// The x86 SHA extensions path: compiled per-function via target attributes
// (no global -march requirement) and selected at runtime via the shared
// crypto/cpu dispatch helper, so one binary serves both old and new
// machines. Content-hash scan caching (see staticanalysis/scan_cache.h)
// hashes every corpus byte, which promoted SHA-256 from a per-pin nicety
// to a scan-throughput bottleneck.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PINSCOPE_SHA256_X86_SHANI 1
#include <immintrin.h>
#else
#define PINSCOPE_SHA256_X86_SHANI 0
#endif

namespace pinscope::crypto {
namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t Rotr32(std::uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }

void ProcessBlocksScalar(std::uint32_t h[8], const std::uint8_t* p,
                         std::size_t blocks) {
  for (; blocks > 0; --blocks, p += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<std::uint32_t>(p[i * 4]) << 24 |
             static_cast<std::uint32_t>(p[i * 4 + 1]) << 16 |
             static_cast<std::uint32_t>(p[i * 4 + 2]) << 8 |
             static_cast<std::uint32_t>(p[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
}

#if PINSCOPE_SHA256_X86_SHANI

// Two rounds per _mm_sha256rnds2_epu32; the working variables live in the
// (ABEF, CDGH) register split the instruction expects. Follows the layout
// of Intel's reference sequence for the SHA extensions.
__attribute__((target("sha,sse4.1,ssse3"))) void ProcessBlocksShaNi(
    std::uint32_t h[8], const std::uint8_t* p, std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xb1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1b);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xf0);       // CDGH

  while (blocks-- > 0) {
    const __m128i save0 = state0;
    const __m128i save1 = state1;

    auto k4 = [](int i) {
      return _mm_set_epi64x(
          static_cast<long long>((static_cast<std::uint64_t>(kK[i + 3]) << 32) |
                                 kK[i + 2]),
          static_cast<long long>((static_cast<std::uint64_t>(kK[i + 1]) << 32) |
                                 kK[i]));
    };

    // m[s & 3] holds schedule words W[4s..4s+3]; each 4-round step s
    // consumes its segment, pre-expands the next one (alignr supplies the
    // W[t-7] lane, msg2 finishes it), and feeds msg1 the segment whose raw
    // value is no longer needed. msg2 must precede msg1 within a step: the
    // alignr reads m[(s-1) & 3] before msg1 overwrites it.
    __m128i m[4];
    for (int j = 0; j < 4; ++j) {
      m[j] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * j)),
          kShuffle);
    }
#if defined(__clang__)
#pragma unroll
#else
#pragma GCC unroll 16
#endif
    for (int s = 0; s < 16; ++s) {
      const __m128i msg = _mm_add_epi32(m[s & 3], k4(s * 4));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      state0 =
          _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0e));
      if (s >= 3 && s <= 14) {
        m[(s + 1) & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(m[(s + 1) & 3],
                          _mm_alignr_epi8(m[s & 3], m[(s + 3) & 3], 4)),
            m[s & 3]);
      }
      if (s >= 1 && s <= 12) {
        m[(s + 3) & 3] = _mm_sha256msg1_epu32(m[(s + 3) & 3], m[s & 3]);
      }
    }

    state0 = _mm_add_epi32(state0, save0);
    state1 = _mm_add_epi32(state1, save1);
    p += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1b);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xb1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xf0);       // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);          // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[4]), state1);
}

#endif  // PINSCOPE_SHA256_X86_SHANI

void ProcessBlocks(std::uint32_t h[8], const std::uint8_t* p,
                   std::size_t blocks) {
#if PINSCOPE_SHA256_X86_SHANI
  if (cpu::ShaNiAllowed()) {
    ProcessBlocksShaNi(h, p, blocks);
    return;
  }
#endif
  ProcessBlocksScalar(h, p, blocks);
}

using BlockFn = void (*)(std::uint32_t[8], const std::uint8_t*, std::size_t);

Sha256Digest Compute(const std::uint8_t* data, std::size_t len, BlockFn blocks) {
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  const std::size_t full = len / 64;
  blocks(h, data, full);
  const std::size_t i = full * 64;

  std::uint8_t block[128] = {};
  const std::size_t rest = len - i;
  if (rest > 0) std::memcpy(block, data + i, rest);
  block[rest] = 0x80;
  const std::size_t padded = rest + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
  for (int j = 0; j < 8; ++j) {
    block[padded - 8 + static_cast<std::size_t>(j)] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * j));
  }
  blocks(h, block, padded / 64);

  Sha256Digest out{};
  for (int j = 0; j < 8; ++j) {
    out[static_cast<std::size_t>(j * 4)] = static_cast<std::uint8_t>(h[j] >> 24);
    out[static_cast<std::size_t>(j * 4 + 1)] = static_cast<std::uint8_t>(h[j] >> 16);
    out[static_cast<std::size_t>(j * 4 + 2)] = static_cast<std::uint8_t>(h[j] >> 8);
    out[static_cast<std::size_t>(j * 4 + 3)] = static_cast<std::uint8_t>(h[j]);
  }
  return out;
}

}  // namespace

Sha256Digest Sha256(const util::Bytes& data) {
  return Compute(data.data(), data.size(), ProcessBlocks);
}

Sha256Digest Sha256(std::string_view data) {
  return Compute(reinterpret_cast<const std::uint8_t*>(data.data()), data.size(),
                 ProcessBlocks);
}

util::Bytes ToBytes(const Sha256Digest& d) { return util::Bytes(d.begin(), d.end()); }

namespace internal {

Sha256Digest Sha256Portable(std::string_view data) {
  return Compute(reinterpret_cast<const std::uint8_t*>(data.data()), data.size(),
                 ProcessBlocksScalar);
}

bool Sha256UsesHardware() {
#if PINSCOPE_SHA256_X86_SHANI
  return cpu::ShaNiAllowed();
#else
  return false;
#endif
}

}  // namespace internal

}  // namespace pinscope::crypto

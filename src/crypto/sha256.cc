#include "crypto/sha256.h"

#include <cstring>

namespace pinscope::crypto {
namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t Rotr32(std::uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }

struct Sha256State {
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  void ProcessBlock(const std::uint8_t* p) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<std::uint32_t>(p[i * 4]) << 24 |
             static_cast<std::uint32_t>(p[i * 4 + 1]) << 16 |
             static_cast<std::uint32_t>(p[i * 4 + 2]) << 8 |
             static_cast<std::uint32_t>(p[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
};

Sha256Digest Compute(const std::uint8_t* data, std::size_t len) {
  Sha256State st;
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) st.ProcessBlock(data + i);

  std::uint8_t block[128] = {};
  const std::size_t rest = len - i;
  if (rest > 0) std::memcpy(block, data + i, rest);
  block[rest] = 0x80;
  const std::size_t padded = rest + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
  for (int j = 0; j < 8; ++j) {
    block[padded - 8 + static_cast<std::size_t>(j)] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * j));
  }
  st.ProcessBlock(block);
  if (padded == 128) st.ProcessBlock(block + 64);

  Sha256Digest out{};
  for (int j = 0; j < 8; ++j) {
    out[static_cast<std::size_t>(j * 4)] = static_cast<std::uint8_t>(st.h[j] >> 24);
    out[static_cast<std::size_t>(j * 4 + 1)] = static_cast<std::uint8_t>(st.h[j] >> 16);
    out[static_cast<std::size_t>(j * 4 + 2)] = static_cast<std::uint8_t>(st.h[j] >> 8);
    out[static_cast<std::size_t>(j * 4 + 3)] = static_cast<std::uint8_t>(st.h[j]);
  }
  return out;
}

}  // namespace

Sha256Digest Sha256(const util::Bytes& data) {
  return Compute(data.data(), data.size());
}

Sha256Digest Sha256(std::string_view data) {
  return Compute(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

util::Bytes ToBytes(const Sha256Digest& d) { return util::Bytes(d.begin(), d.end()); }

}  // namespace pinscope::crypto

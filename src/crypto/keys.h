// Simulated asymmetric keypairs and signatures.
//
// The toolkit does not need real public-key math: pinning semantics only
// require that (a) each key has a stable SubjectPublicKeyInfo encoding that
// can be hashed into a pin, and (b) a signature verifies iff it was produced
// over the same message by the same keypair. We model a keypair as 32 bytes
// of deterministic key material; "signing" is HMAC over the message. This is
// a *structural* signature — sufficient for measurement semantics, documented
// as a substitution in DESIGN.md.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace pinscope::crypto {

/// Public-key algorithm label carried in the SPKI encoding.
enum class KeyAlgorithm {
  kRsa2048,
  kRsa4096,
  kEcdsaP256,
};

/// Human-readable algorithm name (as it appears in serialized SPKI blobs).
[[nodiscard]] std::string_view KeyAlgorithmName(KeyAlgorithm a);

/// A simulated keypair. Value type; equality means "the same key".
class KeyPair {
 public:
  /// Generates a fresh keypair from `rng`.
  static KeyPair Generate(util::Rng& rng, KeyAlgorithm alg = KeyAlgorithm::kRsa2048);

  /// Derives a keypair deterministically from a label (used for well-known CA
  /// keys so root stores are stable across runs).
  static KeyPair FromLabel(std::string_view label,
                           KeyAlgorithm alg = KeyAlgorithm::kRsa2048);

  /// Algorithm of this key.
  [[nodiscard]] KeyAlgorithm algorithm() const { return alg_; }

  /// The DER-like SubjectPublicKeyInfo encoding of the public key. This is the
  /// blob whose SHA-1/SHA-256 digest forms a pin.
  [[nodiscard]] const util::Bytes& SubjectPublicKeyInfo() const { return spki_; }

  /// SHA-256 of the SPKI (the canonical modern pin).
  [[nodiscard]] Sha256Digest SpkiSha256() const;

  /// SHA-1 of the SPKI (legacy pin form).
  [[nodiscard]] Sha1Digest SpkiSha1() const;

  /// Signs `message` with the private half.
  [[nodiscard]] util::Bytes Sign(const util::Bytes& message) const;

  /// Verifies that `signature` was produced by this key over `message`.
  [[nodiscard]] bool Verify(const util::Bytes& message,
                            const util::Bytes& signature) const;

  friend bool operator==(const KeyPair&, const KeyPair&) = default;

 private:
  KeyPair(KeyAlgorithm alg, util::Bytes material);

  KeyAlgorithm alg_;
  util::Bytes material_;  // 32 bytes of key material (public == private half)
  util::Bytes spki_;      // cached SPKI encoding
};

}  // namespace pinscope::crypto

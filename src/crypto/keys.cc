#include "crypto/keys.h"

#include "crypto/hmac.h"
#include "util/error.h"
#include "util/hex.h"

namespace pinscope::crypto {

std::string_view KeyAlgorithmName(KeyAlgorithm a) {
  switch (a) {
    case KeyAlgorithm::kRsa2048:
      return "rsaEncryption-2048";
    case KeyAlgorithm::kRsa4096:
      return "rsaEncryption-4096";
    case KeyAlgorithm::kEcdsaP256:
      return "ecdsa-p256";
  }
  throw util::Error("unknown KeyAlgorithm");
}

KeyPair::KeyPair(KeyAlgorithm alg, util::Bytes material)
    : alg_(alg), material_(std::move(material)) {
  // SPKI layout: "SPKI:" <alg> ":" <hex key material>. A textual DER stand-in;
  // what matters is that it is a stable, hashable function of the public key.
  std::string enc = "SPKI:";
  enc += KeyAlgorithmName(alg_);
  enc += ':';
  enc += util::HexEncode(material_);
  spki_ = util::ToBytes(enc);
}

KeyPair KeyPair::Generate(util::Rng& rng, KeyAlgorithm alg) {
  util::Bytes material(32);
  for (auto& b : material) {
    b = static_cast<std::uint8_t>(rng.UniformU64(0, 255));
  }
  return KeyPair(alg, std::move(material));
}

KeyPair KeyPair::FromLabel(std::string_view label, KeyAlgorithm alg) {
  const Sha256Digest d = Sha256(std::string("pinscope-key:") + std::string(label));
  return KeyPair(alg, util::Bytes(d.begin(), d.end()));
}

Sha256Digest KeyPair::SpkiSha256() const { return Sha256(spki_); }

Sha1Digest KeyPair::SpkiSha1() const {
  return Sha1(util::ToString(spki_));
}

util::Bytes KeyPair::Sign(const util::Bytes& message) const {
  const Sha256Digest mac = HmacSha256(material_, message);
  return util::Bytes(mac.begin(), mac.end());
}

bool KeyPair::Verify(const util::Bytes& message, const util::Bytes& signature) const {
  const util::Bytes expected = Sign(message);
  return expected == signature;
}

}  // namespace pinscope::crypto

#include "crypto/cpu.h"

#include <cstdlib>

namespace pinscope::crypto::cpu {
namespace {

bool EnvSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

bool HostHasAvx2() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

bool HostHasShaNi() {
  static const bool supported = __builtin_cpu_supports("sha") &&
                                __builtin_cpu_supports("sse4.1") &&
                                __builtin_cpu_supports("ssse3");
  return supported;
}

SimdLevel HostSimdLevel() {
  if (EnvSet("PINSCOPE_NO_SIMD")) return SimdLevel::kPortable;
  if (!EnvSet("PINSCOPE_NO_AVX2") && HostHasAvx2()) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;  // x86-64 baseline, always present
}

bool HostShaNiAllowed() {
  if (EnvSet("PINSCOPE_NO_SIMD") || EnvSet("PINSCOPE_NO_SHANI")) return false;
  return HostHasShaNi();
}

#else

SimdLevel HostSimdLevel() { return SimdLevel::kPortable; }
bool HostShaNiAllowed() { return false; }

#endif

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kPortable:
      return "portable";
  }
  return "unknown";
}

SimdLevel DetectSimdLevel() { return HostSimdLevel(); }

bool ShaNiAllowed() { return HostShaNiAllowed(); }

}  // namespace pinscope::crypto::cpu

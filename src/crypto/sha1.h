// SHA-1 (FIPS 180-4). Implemented from scratch for deterministic, offline use.
//
// SHA-1 is cryptographically broken for collision resistance, but the paper's
// static analysis must recognize legacy "sha1/<base64>" pin syntax, so the
// toolkit supports computing and matching SHA-1 SPKI digests.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace pinscope::crypto {

/// 20-byte SHA-1 digest.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Computes SHA-1 over `data`.
[[nodiscard]] Sha1Digest Sha1(const util::Bytes& data);

/// Computes SHA-1 over a string's characters.
[[nodiscard]] Sha1Digest Sha1(std::string_view data);

/// Digest as a byte buffer (for codecs).
[[nodiscard]] util::Bytes ToBytes(const Sha1Digest& d);

}  // namespace pinscope::crypto

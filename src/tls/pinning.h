// Pin representation and evaluation.
//
// §2.1: a pinned certificate is a developer-specified certificate that must be
// present in the served chain. Pins come in several on-disk forms (whole
// certificate, SPKI SHA-1/SHA-256 hash, raw public key); all are matched
// against *any* element of the chain (leaf, intermediate, or root).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "x509/certificate.h"

namespace pinscope::tls {

/// How a pin is expressed in app code/metadata.
enum class PinForm {
  kSpkiSha256,   ///< "sha256/<base64>" — NSC, OkHttp, HPKP syntax.
  kSpkiSha1,     ///< "sha1/<base64>" — legacy syntax.
  kCertificate,  ///< Full certificate embedded (DER/PEM fingerprint match).
  kPublicKey,    ///< Raw SubjectPublicKeyInfo comparison.
};

/// Name of a pin form (for reports).
[[nodiscard]] std::string_view PinFormName(PinForm f);

/// A single pin.
struct Pin {
  PinForm form = PinForm::kSpkiSha256;
  /// Digest or raw bytes, depending on `form`:
  /// kSpkiSha256→32B, kSpkiSha1→20B, kCertificate→32B DER fingerprint,
  /// kPublicKey→SPKI bytes.
  util::Bytes material;

  friend bool operator==(const Pin&, const Pin&) = default;

  /// True if `cert` satisfies this pin.
  [[nodiscard]] bool Matches(const x509::Certificate& cert) const;

  /// Builds a pin of the given form from a certificate.
  [[nodiscard]] static Pin ForCertificate(const x509::Certificate& cert, PinForm form);

  /// The "sha256/AAAA..." (or "sha1/...") textual spelling used in configs and
  /// code. kCertificate/kPublicKey forms render as sha256 of their material.
  [[nodiscard]] std::string ToPinString() const;

  /// Parses "sha256/<base64>" / "sha1/<base64>". Returns nullopt on any
  /// malformed input (wrong digest length, bad base64).
  [[nodiscard]] static std::optional<Pin> FromPinString(std::string_view s);
};

/// Pins that apply to one domain pattern.
struct DomainPinRule {
  std::string pattern;          ///< Exact host or "*.example.com".
  bool include_subdomains = false;  ///< NSC-style subtree flag.
  std::vector<Pin> pins;

  /// True if this rule covers `hostname`.
  [[nodiscard]] bool AppliesTo(std::string_view hostname) const;
};

/// The pinning policy a client (app) carries: an ordered rule list.
class PinPolicy {
 public:
  /// Adds a rule. Later rules do not override earlier ones; a host is pinned
  /// if *any* rule that applies carries pins (matching the conservative union
  /// semantics real stacks implement when multiple pinning layers coexist).
  void AddRule(DomainPinRule rule);

  [[nodiscard]] const std::vector<DomainPinRule>& rules() const { return rules_; }
  [[nodiscard]] bool empty() const { return rules_.empty(); }

  /// All pins applicable to `hostname` (empty ⇒ host not pinned).
  [[nodiscard]] std::vector<Pin> PinsFor(std::string_view hostname) const;

  /// True if `hostname` has at least one applicable pin.
  [[nodiscard]] bool IsPinned(std::string_view hostname) const;

  /// Pin check: passes iff the host is unpinned, or some chain element
  /// satisfies some applicable pin.
  [[nodiscard]] bool Evaluate(std::string_view hostname,
                              const x509::CertificateChain& chain) const;

 private:
  std::vector<DomainPinRule> rules_;
};

}  // namespace pinscope::tls

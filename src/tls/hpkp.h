// HTTP Public Key Pinning (RFC 7469) header parsing.
//
// §2.1 contrasts app pinning with the (now obsolete) web mechanism: HPKP let
// a site declare pins in a `Public-Key-Pins` response header, trusting the
// first connection and requiring a backup pin. The toolkit parses the header
// both as historical reference and because HPKP's "pin-sha256" syntax is one
// of the on-disk pin spellings the static scanner encounters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tls/pinning.h"

namespace pinscope::tls {

/// A parsed Public-Key-Pins (or -Report-Only) header.
struct HpkpHeader {
  std::vector<Pin> pins;            ///< Parsed pin-sha256 directives.
  std::int64_t max_age_seconds = 0; ///< Required by RFC 7469 (except report-only).
  bool include_subdomains = false;
  std::string report_uri;
  bool report_only = false;

  /// RFC 7469 validity: a header is enforceable only with ≥2 pins (pin +
  /// backup) and a max-age (unless report-only).
  [[nodiscard]] bool Enforceable() const {
    return pins.size() >= 2 && (report_only || max_age_seconds > 0);
  }

  /// Converts the header into a client-side pin rule for `host`, honoring
  /// includeSubdomains. The first-seen-trust caveat (§2.1) is the caller's
  /// problem, exactly as it was the web's.
  [[nodiscard]] DomainPinRule ToRule(std::string_view host) const;
};

/// Parses the value of a `Public-Key-Pins[-Report-Only]` header, e.g.
///   pin-sha256="base64=="; pin-sha256="..."; max-age=5184000;
///   includeSubDomains; report-uri="https://example.net/pkp-report"
/// Returns std::nullopt when no well-formed pin-sha256 directive is present.
[[nodiscard]] std::optional<HpkpHeader> ParseHpkpHeader(std::string_view value,
                                                        bool report_only = false);

}  // namespace pinscope::tls

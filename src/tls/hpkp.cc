#include "tls/hpkp.h"

#include "util/strings.h"

namespace pinscope::tls {

DomainPinRule HpkpHeader::ToRule(std::string_view host) const {
  DomainPinRule rule;
  rule.pattern = std::string(host);
  rule.include_subdomains = include_subdomains;
  rule.pins = pins;
  return rule;
}

namespace {

// Strips optional double quotes.
std::string_view Unquote(std::string_view v) {
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    return v.substr(1, v.size() - 2);
  }
  return v;
}

}  // namespace

std::optional<HpkpHeader> ParseHpkpHeader(std::string_view value, bool report_only) {
  HpkpHeader header;
  header.report_only = report_only;

  for (const std::string& raw : util::Split(value, ';')) {
    const std::string_view directive = util::Trim(raw);
    if (directive.empty()) continue;

    const std::size_t eq = directive.find('=');
    const std::string_view key =
        util::Trim(eq == std::string_view::npos ? directive : directive.substr(0, eq));
    const std::string_view val =
        eq == std::string_view::npos
            ? std::string_view{}
            : Unquote(util::Trim(directive.substr(eq + 1)));

    const std::string key_lower = util::ToLower(key);
    if (key_lower == "pin-sha256") {
      if (auto pin = Pin::FromPinString("sha256/" + std::string(val))) {
        header.pins.push_back(std::move(*pin));
      }
    } else if (key_lower == "max-age") {
      header.max_age_seconds = std::strtoll(std::string(val).c_str(), nullptr, 10);
    } else if (key_lower == "includesubdomains") {
      header.include_subdomains = true;
    } else if (key_lower == "report-uri") {
      header.report_uri = std::string(val);
    }
    // Unknown directives are ignored per RFC 7469 §2.1.
  }

  if (header.pins.empty()) return std::nullopt;
  return header;
}

}  // namespace pinscope::tls

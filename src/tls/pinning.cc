#include "tls/pinning.h"

#include <algorithm>

#include "util/base64.h"
#include "util/error.h"
#include "util/strings.h"

namespace pinscope::tls {

std::string_view PinFormName(PinForm f) {
  switch (f) {
    case PinForm::kSpkiSha256: return "spki-sha256";
    case PinForm::kSpkiSha1: return "spki-sha1";
    case PinForm::kCertificate: return "certificate";
    case PinForm::kPublicKey: return "public-key";
  }
  throw util::Error("unknown PinForm");
}

bool Pin::Matches(const x509::Certificate& cert) const {
  switch (form) {
    case PinForm::kSpkiSha256: {
      const auto d = cert.SpkiSha256();
      return material == util::Bytes(d.begin(), d.end());
    }
    case PinForm::kSpkiSha1: {
      const auto d = cert.SpkiSha1();
      return material == util::Bytes(d.begin(), d.end());
    }
    case PinForm::kCertificate: {
      const auto d = cert.FingerprintSha256();
      return material == util::Bytes(d.begin(), d.end());
    }
    case PinForm::kPublicKey:
      return material == cert.spki();
  }
  return false;
}

Pin Pin::ForCertificate(const x509::Certificate& cert, PinForm form) {
  Pin pin;
  pin.form = form;
  switch (form) {
    case PinForm::kSpkiSha256: {
      const auto d = cert.SpkiSha256();
      pin.material.assign(d.begin(), d.end());
      break;
    }
    case PinForm::kSpkiSha1: {
      const auto d = cert.SpkiSha1();
      pin.material.assign(d.begin(), d.end());
      break;
    }
    case PinForm::kCertificate: {
      const auto d = cert.FingerprintSha256();
      pin.material.assign(d.begin(), d.end());
      break;
    }
    case PinForm::kPublicKey:
      pin.material = cert.spki();
      break;
  }
  return pin;
}

std::string Pin::ToPinString() const {
  switch (form) {
    case PinForm::kSpkiSha1:
      return "sha1/" + util::Base64Encode(material);
    case PinForm::kSpkiSha256:
      return "sha256/" + util::Base64Encode(material);
    case PinForm::kCertificate:
      return "sha256/" + util::Base64Encode(material);
    case PinForm::kPublicKey: {
      const auto d = crypto::Sha256(material);
      return "sha256/" + util::Base64Encode(util::Bytes(d.begin(), d.end()));
    }
  }
  throw util::Error("unknown PinForm");
}

std::optional<Pin> Pin::FromPinString(std::string_view s) {
  PinForm form;
  std::string_view body;
  if (util::StartsWith(s, "sha256/")) {
    form = PinForm::kSpkiSha256;
    body = s.substr(7);
  } else if (util::StartsWith(s, "sha1/")) {
    form = PinForm::kSpkiSha1;
    body = s.substr(5);
  } else {
    return std::nullopt;
  }
  const auto material = util::Base64Decode(body);
  if (!material) return std::nullopt;
  const std::size_t want = form == PinForm::kSpkiSha256 ? 32 : 20;
  if (material->size() != want) return std::nullopt;
  Pin pin;
  pin.form = form;
  pin.material = *material;
  return pin;
}

bool DomainPinRule::AppliesTo(std::string_view hostname) const {
  if (x509::HostnameMatchesPattern(hostname, pattern)) return true;
  if (include_subdomains) {
    // NSC semantics: the rule domain itself plus any depth of subdomains.
    if (hostname == pattern) return true;
    return util::EndsWith(hostname, "." + pattern);
  }
  return false;
}

void PinPolicy::AddRule(DomainPinRule rule) {
  // Dedupe within the rule once at insertion (first occurrence kept), so
  // per-connection evaluation never re-runs the quadratic scan.
  std::vector<Pin> unique;
  unique.reserve(rule.pins.size());
  for (Pin& pin : rule.pins) {
    if (std::find(unique.begin(), unique.end(), pin) == unique.end()) {
      unique.push_back(std::move(pin));
    }
  }
  rule.pins = std::move(unique);
  rules_.push_back(std::move(rule));
}

std::vector<Pin> PinPolicy::PinsFor(std::string_view hostname) const {
  // Fast path: a single applicable rule needs no cross-rule union — its pin
  // list is already deduplicated (AddRule). This is the overwhelmingly
  // common shape: one DomainPinRule per pinned destination.
  const DomainPinRule* only = nullptr;
  bool multiple = false;
  for (const DomainPinRule& rule : rules_) {
    if (!rule.AppliesTo(hostname)) continue;
    if (only != nullptr) {
      multiple = true;
      break;
    }
    only = &rule;
  }
  if (!multiple) return only != nullptr ? only->pins : std::vector<Pin>{};

  std::vector<Pin> out;
  for (const DomainPinRule& rule : rules_) {
    if (!rule.AppliesTo(hostname)) continue;
    for (const Pin& pin : rule.pins) {
      if (std::find(out.begin(), out.end(), pin) == out.end()) out.push_back(pin);
    }
  }
  return out;
}

bool PinPolicy::IsPinned(std::string_view hostname) const {
  // No pin-set materialization: pinned iff some applicable rule carries pins.
  for (const DomainPinRule& rule : rules_) {
    if (!rule.pins.empty() && rule.AppliesTo(hostname)) return true;
  }
  return false;
}

bool PinPolicy::Evaluate(std::string_view hostname,
                         const x509::CertificateChain& chain) const {
  // Match straight off the rules — no union vector per connection. A pin
  // duplicated across rules is matched at most twice, which is cheaper than
  // deduplicating on every evaluation.
  bool pinned = false;
  for (const DomainPinRule& rule : rules_) {
    if (rule.pins.empty() || !rule.AppliesTo(hostname)) continue;
    pinned = true;
    for (const Pin& pin : rule.pins) {
      for (const x509::Certificate& cert : chain) {
        if (pin.Matches(cert)) return true;
      }
    }
  }
  return !pinned;
}

}  // namespace pinscope::tls

// TLS protocol versions.
#pragma once

#include <string_view>

namespace pinscope::tls {

/// Protocol versions the simulation negotiates. Ordered so that comparison
/// operators express "newer than".
enum class TlsVersion {
  kTls10,
  kTls11,
  kTls12,
  kTls13,
};

/// Wire-style name, e.g. "TLSv1.3".
[[nodiscard]] constexpr std::string_view TlsVersionName(TlsVersion v) {
  switch (v) {
    case TlsVersion::kTls10: return "TLSv1.0";
    case TlsVersion::kTls11: return "TLSv1.1";
    case TlsVersion::kTls12: return "TLSv1.2";
    case TlsVersion::kTls13: return "TLSv1.3";
  }
  return "TLS?";
}

}  // namespace pinscope::tls

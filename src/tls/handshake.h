// TLS connection simulation.
//
// Produces a packet-level trace (`Record` sequence) of one TLS connection
// between a configured client and a server endpoint, optionally with a
// substituted (intercepted) chain. The traces carry exactly the observables
// the paper's dynamic detector consumes: wire content types, record lengths,
// alerts, and TCP closure flags — with TLS 1.3's record disguise applied.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "tls/cipher_suites.h"
#include "tls/pinning.h"
#include "tls/record.h"
#include "tls/version.h"
#include "util/clock.h"
#include "util/rng.h"
#include "x509/root_store.h"
#include "x509/validation.h"
#include "x509/validation_cache.h"

namespace pinscope::tls {

/// Identifier of the TLS implementation a client links. Drives the
/// instrumentation layer: hooks exist only for well-known stacks (§4.3).
enum class TlsStack {
  kOkHttp,          ///< Android: OkHttp CertificatePinner.
  kAndroidPlatform, ///< Android: platform TrustManager / NSC engine.
  kConscrypt,       ///< Android: Conscrypt provider used directly.
  kNsUrlSession,    ///< iOS: NSURLSession / Secure Transport.
  kAfNetworking,    ///< iOS: AFNetworking's security policy.
  kAlamofire,       ///< iOS: Alamofire ServerTrustManager.
  kCronet,          ///< Either: Chromium network stack.
  kCustom,          ///< Statically linked custom stack — not hookable.
};

/// Human-readable stack name.
[[nodiscard]] std::string_view TlsStackName(TlsStack s);

/// Client-side TLS configuration, the app-controlled half of a connection.
struct ClientTlsConfig {
  /// Trust anchors (typically the OS store, possibly with a proxy CA added by
  /// the test harness, or a custom-PKI store bundled by the app).
  const x509::RootStore* root_store = nullptr;
  /// The app's pinning policy (empty ⇒ no pinning).
  PinPolicy pins;
  /// Suites advertised in the ClientHello (ordered by preference).
  std::vector<CipherSuiteId> offered_ciphers = ModernCipherOffer();
  /// Protocol version bounds the client supports.
  TlsVersion min_version = TlsVersion::kTls10;
  TlsVersion max_version = TlsVersion::kTls13;
  /// Whether this stack re-runs certificate validation and pin evaluation on
  /// session resumption. Stacks that skip it expose the resumption pin-bypass
  /// class (pins checked only on full handshakes).
  bool revalidates_on_resumption = true;
  /// Whether the stack keeps a session cache. When false, NewSessionTicket
  /// still appears on the wire (the server sends it regardless), but the
  /// outcome carries no ticket — sparing the per-connection copy of the
  /// presented chain for callers that never resume.
  bool store_session_tickets = true;
  /// Certificate-validation behavior (broken validators set flags to false).
  x509::ValidationOptions validation;
  /// Optional chain-validation memo shared across connections (study-scoped
  /// fixture; see x509/validation_cache.h). Null ⇒ validate directly. The
  /// cache is unobservable: outcomes are byte-identical with or without it.
  x509::ValidationCache* validation_cache = nullptr;
  /// Optional metrics registry: each simulated connection counts one
  /// handshake plus its completed/failed/resumed disposition. Purely
  /// observational — never read by the simulation (DESIGN.md §11).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional decision-journal scope (the per-phase scope of the app being
  /// run). Connections emit x509 validation failures — with the full
  /// failure-cause chain — and pin mismatches here. Emission happens at this
  /// call site, never inside the (memoized) validator, so the journal is
  /// identical with or without a validation cache (DESIGN.md §12).
  obs::EventScope* log = nullptr;
  /// Which implementation performs validation/pinning.
  TlsStack stack = TlsStack::kAndroidPlatform;
};

/// A server the simulation can connect to.
struct ServerEndpoint {
  std::string hostname;
  x509::CertificateChain chain;   ///< Leaf first.
  TlsVersion min_version = TlsVersion::kTls10;
  TlsVersion max_version = TlsVersion::kTls13;
  std::vector<CipherSuiteId> ciphers = ModernCipherOffer();
  bool issues_session_tickets = true;
};

/// A resumption ticket handed out by a completed handshake. Carries the
/// chain presented at issue time — what a non-revalidating stack implicitly
/// keeps trusting.
struct SessionTicket {
  std::string hostname;
  TlsVersion version = TlsVersion::kTls13;
  x509::CertificateChain chain_at_issue;
};

/// Why a connection did not reach (or use) the application-data phase.
enum class FailureReason {
  kNone,
  kProtocolVersion,   ///< No common protocol version.
  kNoCommonCipher,    ///< No mutually supported suite.
  kCertificateInvalid,///< Path validation failed.
  kPinMismatch,       ///< Pin evaluation failed.
};

/// Human-readable failure-reason name.
[[nodiscard]] std::string_view FailureReasonName(FailureReason r);

/// How the TCP connection ended.
enum class Closure {
  kOpen,        ///< Left open at capture end.
  kCleanFin,    ///< Orderly shutdown (FIN exchange).
  kClientReset, ///< Client sent TCP RST.
};

/// Payload the client would send once the handshake succeeds.
struct AppPayload {
  /// Plaintext request body (inspected by PII analysis when decryptable).
  std::string plaintext;
  /// Number of application-data records used to carry it (≥1 when plaintext
  /// is non-empty).
  int client_records = 1;
};

/// Complete result of a simulated connection.
struct ConnectionOutcome {
  bool handshake_complete = false;
  bool application_data_sent = false;  ///< Ground truth "used".
  FailureReason failure = FailureReason::kNone;
  TlsVersion version = TlsVersion::kTls13;
  std::optional<CipherSuiteId> negotiated_cipher;
  std::vector<CipherSuiteId> offered_ciphers;
  x509::ValidationResult validation;
  bool pin_pass = true;
  std::vector<Record> records;
  Closure closure = Closure::kCleanFin;
  /// Plaintext the client transmitted (ground truth; observers only get it
  /// when they can decrypt).
  std::string plaintext_sent;
  /// Ticket for later resumption (set on completed handshakes against
  /// ticket-issuing servers).
  std::optional<SessionTicket> ticket;
  /// True if this connection resumed a previous session (no cert flight).
  bool resumed = false;
};

/// Simulates one connection. `presented_chain` is what the client actually
/// sees — the server's own chain normally, or an interceptor's re-signed
/// chain under MITM. `now` drives expiry checks; `rng` jitters record sizes.
[[nodiscard]] ConnectionOutcome SimulateConnection(
    const ClientTlsConfig& client, const ServerEndpoint& server,
    const x509::CertificateChain& presented_chain, const AppPayload& payload,
    util::SimTime now, util::Rng& rng);

/// Convenience wrapper: connect directly to the server (no interception).
[[nodiscard]] ConnectionOutcome SimulateDirectConnection(
    const ClientTlsConfig& client, const ServerEndpoint& server,
    const AppPayload& payload, util::SimTime now, util::Rng& rng);

/// Resumes a session with `ticket` against the *genuine* server (an
/// interceptor cannot produce a valid PSK binder, so resumption under MITM
/// falls back to a full handshake — simulate that with SimulateConnection).
/// No certificate flight occurs; whether pins/validation re-run depends on
/// `client.revalidates_on_resumption`. Re-validation happens against the
/// chain cached in the ticket, exactly like real stacks that cache the
/// peer's verified chain with the session.
[[nodiscard]] ConnectionOutcome SimulateResumedConnection(
    const ClientTlsConfig& client, const ServerEndpoint& server,
    const SessionTicket& ticket, const AppPayload& payload, util::SimTime now,
    util::Rng& rng);

}  // namespace pinscope::tls

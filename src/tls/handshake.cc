#include "tls/handshake.h"

#include <algorithm>

#include "util/error.h"

namespace pinscope::tls {

std::string_view TlsStackName(TlsStack s) {
  switch (s) {
    case TlsStack::kOkHttp: return "okhttp";
    case TlsStack::kAndroidPlatform: return "android-platform";
    case TlsStack::kConscrypt: return "conscrypt";
    case TlsStack::kNsUrlSession: return "nsurlsession";
    case TlsStack::kAfNetworking: return "afnetworking";
    case TlsStack::kAlamofire: return "alamofire";
    case TlsStack::kCronet: return "cronet";
    case TlsStack::kCustom: return "custom";
  }
  throw util::Error("unknown TlsStack");
}

std::string_view FailureReasonName(FailureReason r) {
  switch (r) {
    case FailureReason::kNone: return "none";
    case FailureReason::kProtocolVersion: return "protocol-version";
    case FailureReason::kNoCommonCipher: return "no-common-cipher";
    case FailureReason::kCertificateInvalid: return "certificate-invalid";
    case FailureReason::kPinMismatch: return "pin-mismatch";
  }
  throw util::Error("unknown FailureReason");
}

namespace {

// Emits a record and advances the per-connection clock a few milliseconds.
class TraceBuilder {
 public:
  explicit TraceBuilder(util::Rng& rng) : rng_(rng) {
    // A full handshake + data exchange emits ~a dozen records; one upfront
    // reservation replaces the vector's doubling reallocations.
    records_.reserve(16);
  }

  void Emit(Direction dir, ContentType wire, ContentType actual,
            std::uint32_t length,
            AlertDescription alert = AlertDescription::kCloseNotify) {
    Record r;
    r.direction = dir;
    r.wire_type = wire;
    r.actual_type = actual;
    r.wire_length = length;
    r.alert = alert;
    r.at_ms = clock_ms_;
    clock_ms_ += static_cast<std::int64_t>(rng_.UniformU64(1, 12));
    records_.push_back(r);
  }

  [[nodiscard]] std::vector<Record> Take() { return std::move(records_); }

  util::Rng& rng() { return rng_; }

 private:
  util::Rng& rng_;
  std::vector<Record> records_;
  std::int64_t clock_ms_ = 0;
};

std::optional<TlsVersion> NegotiateVersion(const ClientTlsConfig& client,
                                           const ServerEndpoint& server) {
  const TlsVersion candidate = std::min(client.max_version, server.max_version);
  if (candidate < client.min_version || candidate < server.min_version) {
    return std::nullopt;
  }
  return candidate;
}

std::optional<CipherSuiteId> NegotiateCipher(
    const std::vector<CipherSuiteId>& offered,
    const std::vector<CipherSuiteId>& supported, TlsVersion version) {
  for (CipherSuiteId id : offered) {
    const CipherSuiteInfo& info = CipherSuite(id);
    if (version < info.min_version || version > info.max_version) continue;
    if (std::find(supported.begin(), supported.end(), id) != supported.end()) {
      return id;
    }
  }
  return std::nullopt;
}

// Approximate wire size of the server's certificate flight.
std::uint32_t ChainFlightLength(const x509::CertificateChain& chain,
                                util::Rng& rng) {
  std::uint32_t len = 400;
  for (const auto& cert : chain) {
    len += static_cast<std::uint32_t>(cert.DerSize()) + 96;
  }
  return len + static_cast<std::uint32_t>(rng.UniformU64(0, 64));
}

// A data record length guaranteed to differ from the encrypted-alert length,
// so the simulated wire matches real stacks (app data is never a 24-byte
// record in practice: headers + padding + tag exceed it).
std::uint32_t DataRecordLength(std::size_t payload_bytes, util::Rng& rng) {
  const std::uint32_t base =
      48 + static_cast<std::uint32_t>(std::min<std::size_t>(payload_bytes, 12'000));
  return base + static_cast<std::uint32_t>(rng.UniformU64(0, 256));
}

void EmitClientAbort(TraceBuilder& tb, TlsVersion version, AlertDescription alert) {
  if (version == TlsVersion::kTls13) {
    // Encrypted alert: disguised as application data, characteristic length.
    tb.Emit(Direction::kClientToServer, ContentType::kApplicationData,
            ContentType::kAlert, kEncryptedAlertWireLength, alert);
  } else {
    tb.Emit(Direction::kClientToServer, ContentType::kAlert, ContentType::kAlert,
            7, alert);
  }
}

// Counts one handshake and its disposition. Observational only: the counter
// values never feed the simulation or its RNG streams.
void RecordHandshake(obs::MetricsRegistry* metrics,
                     const ConnectionOutcome& out) {
  if (metrics == nullptr) return;
  metrics->counter("tls.handshakes").Increment();
  if (out.resumed) metrics->counter("tls.resumptions").Increment();
  if (out.handshake_complete) {
    metrics->counter("tls.handshakes_completed").Increment();
  } else {
    metrics->counter("tls.handshakes_failed").Increment();
  }
}

ConnectionOutcome SimulateConnectionImpl(
    const ClientTlsConfig& client, const ServerEndpoint& server,
    const x509::CertificateChain& presented_chain, const AppPayload& payload,
    util::SimTime now, util::Rng& rng) {
  if (client.root_store == nullptr) {
    throw util::Error("ClientTlsConfig.root_store must be set");
  }

  ConnectionOutcome out;
  out.offered_ciphers = client.offered_ciphers;

  TraceBuilder tb(rng);

  // --- ClientHello ---
  tb.Emit(Direction::kClientToServer, ContentType::kHandshake,
          ContentType::kHandshake,
          220 + static_cast<std::uint32_t>(rng.UniformU64(0, 120)));

  const auto version = NegotiateVersion(client, server);
  if (!version.has_value()) {
    out.failure = FailureReason::kProtocolVersion;
    tb.Emit(Direction::kServerToClient, ContentType::kAlert, ContentType::kAlert,
            7, AlertDescription::kProtocolVersion);
    out.records = tb.Take();
    out.closure = Closure::kCleanFin;
    return out;
  }
  out.version = *version;

  const auto cipher =
      NegotiateCipher(client.offered_ciphers, server.ciphers, *version);
  if (!cipher.has_value()) {
    out.failure = FailureReason::kNoCommonCipher;
    tb.Emit(Direction::kServerToClient, ContentType::kAlert, ContentType::kAlert,
            7, AlertDescription::kHandshakeFailure);
    out.records = tb.Take();
    out.closure = Closure::kCleanFin;
    return out;
  }
  out.negotiated_cipher = cipher;

  // --- Server flight ---
  if (*version == TlsVersion::kTls13) {
    // ServerHello in the clear, then EncryptedExtensions/Certificate/Finished
    // disguised as application data.
    tb.Emit(Direction::kServerToClient, ContentType::kHandshake,
            ContentType::kHandshake, 122);
    tb.Emit(Direction::kServerToClient, ContentType::kApplicationData,
            ContentType::kHandshake, ChainFlightLength(presented_chain, tb.rng()));
  } else {
    tb.Emit(Direction::kServerToClient, ContentType::kHandshake,
            ContentType::kHandshake, ChainFlightLength(presented_chain, tb.rng()));
  }

  // --- Client certificate processing ---
  out.validation = x509::CachedValidateChain(client.validation_cache,
                                             presented_chain, server.hostname,
                                             now, *client.root_store,
                                             client.validation);
  if (!out.validation.ok()) {
    out.failure = FailureReason::kCertificateInvalid;
    obs::EmitTo(client.log, obs::Severity::kDecision, "x509.validation_failed",
                {{"host", server.hostname},
                 {"status", x509::ValidationStatusName(out.validation.status)},
                 {"cause", x509::DescribeValidationFailure(out.validation,
                                                           presented_chain)}});
    EmitClientAbort(tb, *version,
                    out.validation.status == x509::ValidationStatus::kUntrustedRoot
                        ? AlertDescription::kUnknownCa
                        : AlertDescription::kBadCertificate);
    out.records = tb.Take();
    out.closure = Closure::kClientReset;
    return out;
  }

  out.pin_pass = client.pins.Evaluate(server.hostname, presented_chain);
  if (!out.pin_pass) {
    out.failure = FailureReason::kPinMismatch;
    obs::EmitTo(client.log, obs::Severity::kDecision, "tls.pin_mismatch",
                {{"host", server.hostname},
                 {"stack", TlsStackName(client.stack)}});
    EmitClientAbort(tb, *version, AlertDescription::kBadCertificate);
    out.records = tb.Take();
    out.closure = Closure::kClientReset;
    return out;
  }

  // --- Client completes the handshake ---
  if (*version == TlsVersion::kTls13) {
    // Client Finished, disguised as application data.
    tb.Emit(Direction::kClientToServer, ContentType::kApplicationData,
            ContentType::kHandshake, 74);
  } else {
    tb.Emit(Direction::kClientToServer, ContentType::kChangeCipherSpec,
            ContentType::kChangeCipherSpec, 6);
    tb.Emit(Direction::kClientToServer, ContentType::kHandshake,
            ContentType::kHandshake, 45);
    tb.Emit(Direction::kServerToClient, ContentType::kChangeCipherSpec,
            ContentType::kChangeCipherSpec, 6);
    tb.Emit(Direction::kServerToClient, ContentType::kHandshake,
            ContentType::kHandshake, 45);
  }
  out.handshake_complete = true;

  // --- Application data ---
  if (!payload.plaintext.empty()) {
    const int n = std::max(1, payload.client_records);
    const std::size_t per_record = payload.plaintext.size() / static_cast<std::size_t>(n) + 1;
    for (int i = 0; i < n; ++i) {
      tb.Emit(Direction::kClientToServer, ContentType::kApplicationData,
              ContentType::kApplicationData, DataRecordLength(per_record, tb.rng()));
    }
    tb.Emit(Direction::kServerToClient, ContentType::kApplicationData,
            ContentType::kApplicationData, DataRecordLength(600, tb.rng()));
    out.application_data_sent = true;
    out.plaintext_sent = payload.plaintext;
  }

  // --- Session ticket ---
  if (server.issues_session_tickets) {
    if (client.store_session_tickets) {
      SessionTicket ticket;
      ticket.hostname = server.hostname;
      ticket.version = *version;
      ticket.chain_at_issue = presented_chain;
      out.ticket = std::move(ticket);
    }
    if (*version == TlsVersion::kTls13) {
      // NewSessionTicket rides in the encrypted stream.
      tb.Emit(Direction::kServerToClient, ContentType::kApplicationData,
              ContentType::kHandshake, 201);
    }
  }

  // --- Orderly shutdown ---
  if (*version == TlsVersion::kTls13) {
    tb.Emit(Direction::kClientToServer, ContentType::kApplicationData,
            ContentType::kAlert, kEncryptedAlertWireLength,
            AlertDescription::kCloseNotify);
  } else {
    tb.Emit(Direction::kClientToServer, ContentType::kAlert, ContentType::kAlert,
            7, AlertDescription::kCloseNotify);
  }
  out.records = tb.Take();
  out.closure = Closure::kCleanFin;
  return out;
}

ConnectionOutcome SimulateResumedConnectionImpl(const ClientTlsConfig& client,
                                                const ServerEndpoint& server,
                                                const SessionTicket& ticket,
                                                const AppPayload& payload,
                                                util::SimTime now,
                                                util::Rng& rng) {
  if (client.root_store == nullptr) {
    throw util::Error("ClientTlsConfig.root_store must be set");
  }
  ConnectionOutcome out;
  out.offered_ciphers = client.offered_ciphers;
  out.resumed = true;

  TraceBuilder tb(rng);
  // ClientHello with a PSK; a mismatched ticket makes the server fall back —
  // callers model that as a fresh SimulateDirectConnection.
  tb.Emit(Direction::kClientToServer, ContentType::kHandshake,
          ContentType::kHandshake,
          290 + static_cast<std::uint32_t>(rng.UniformU64(0, 60)));
  if (ticket.hostname != server.hostname) {
    throw util::Error("SimulateResumedConnection: ticket/server mismatch");
  }

  const auto version = NegotiateVersion(client, server);
  if (!version.has_value() || *version != ticket.version) {
    out.failure = FailureReason::kProtocolVersion;
    tb.Emit(Direction::kServerToClient, ContentType::kAlert, ContentType::kAlert,
            7, AlertDescription::kProtocolVersion);
    out.records = tb.Take();
    return out;
  }
  out.version = *version;
  const auto cipher =
      NegotiateCipher(client.offered_ciphers, server.ciphers, *version);
  if (!cipher.has_value()) {
    out.failure = FailureReason::kNoCommonCipher;
    tb.Emit(Direction::kServerToClient, ContentType::kAlert, ContentType::kAlert,
            7, AlertDescription::kHandshakeFailure);
    out.records = tb.Take();
    return out;
  }
  out.negotiated_cipher = cipher;

  // ServerHello accepting the PSK — no certificate flight at all.
  tb.Emit(Direction::kServerToClient, ContentType::kHandshake,
          ContentType::kHandshake, 128);

  if (client.revalidates_on_resumption) {
    // Careful stacks re-check the cached chain and pins (OkHttp re-runs its
    // CertificatePinner against the session's peer certificates).
    out.validation = x509::CachedValidateChain(
        client.validation_cache, ticket.chain_at_issue, server.hostname, now,
        *client.root_store, client.validation);
    if (!out.validation.ok()) {
      out.failure = FailureReason::kCertificateInvalid;
      obs::EmitTo(client.log, obs::Severity::kDecision, "x509.validation_failed",
                  {{"host", server.hostname},
                   {"resumed", true},
                   {"status", x509::ValidationStatusName(out.validation.status)},
                   {"cause", x509::DescribeValidationFailure(
                                 out.validation, ticket.chain_at_issue)}});
      EmitClientAbort(tb, *version, AlertDescription::kBadCertificate);
      out.records = tb.Take();
      out.closure = Closure::kClientReset;
      return out;
    }
    out.pin_pass = client.pins.Evaluate(server.hostname, ticket.chain_at_issue);
    if (!out.pin_pass) {
      out.failure = FailureReason::kPinMismatch;
      obs::EmitTo(client.log, obs::Severity::kDecision, "tls.pin_mismatch",
                  {{"host", server.hostname},
                   {"resumed", true},
                   {"stack", TlsStackName(client.stack)}});
      EmitClientAbort(tb, *version, AlertDescription::kBadCertificate);
      out.records = tb.Take();
      out.closure = Closure::kClientReset;
      return out;
    }
  }

  if (*version == TlsVersion::kTls13) {
    tb.Emit(Direction::kClientToServer, ContentType::kApplicationData,
            ContentType::kHandshake, 74);  // Finished
  } else {
    tb.Emit(Direction::kClientToServer, ContentType::kChangeCipherSpec,
            ContentType::kChangeCipherSpec, 6);
    tb.Emit(Direction::kClientToServer, ContentType::kHandshake,
            ContentType::kHandshake, 45);
  }
  out.handshake_complete = true;

  if (!payload.plaintext.empty()) {
    const int n = std::max(1, payload.client_records);
    const std::size_t per_record =
        payload.plaintext.size() / static_cast<std::size_t>(n) + 1;
    for (int i = 0; i < n; ++i) {
      tb.Emit(Direction::kClientToServer, ContentType::kApplicationData,
              ContentType::kApplicationData, DataRecordLength(per_record, tb.rng()));
    }
    tb.Emit(Direction::kServerToClient, ContentType::kApplicationData,
            ContentType::kApplicationData, DataRecordLength(600, tb.rng()));
    out.application_data_sent = true;
    out.plaintext_sent = payload.plaintext;
  }

  if (*version == TlsVersion::kTls13) {
    tb.Emit(Direction::kClientToServer, ContentType::kApplicationData,
            ContentType::kAlert, kEncryptedAlertWireLength,
            AlertDescription::kCloseNotify);
  } else {
    tb.Emit(Direction::kClientToServer, ContentType::kAlert, ContentType::kAlert,
            7, AlertDescription::kCloseNotify);
  }
  out.records = tb.Take();
  out.closure = Closure::kCleanFin;
  return out;
}

}  // namespace

ConnectionOutcome SimulateConnection(const ClientTlsConfig& client,
                                     const ServerEndpoint& server,
                                     const x509::CertificateChain& presented_chain,
                                     const AppPayload& payload, util::SimTime now,
                                     util::Rng& rng) {
  ConnectionOutcome out =
      SimulateConnectionImpl(client, server, presented_chain, payload, now, rng);
  RecordHandshake(client.metrics, out);
  return out;
}

ConnectionOutcome SimulateResumedConnection(const ClientTlsConfig& client,
                                            const ServerEndpoint& server,
                                            const SessionTicket& ticket,
                                            const AppPayload& payload,
                                            util::SimTime now, util::Rng& rng) {
  ConnectionOutcome out =
      SimulateResumedConnectionImpl(client, server, ticket, payload, now, rng);
  RecordHandshake(client.metrics, out);
  return out;
}

ConnectionOutcome SimulateDirectConnection(const ClientTlsConfig& client,
                                           const ServerEndpoint& server,
                                           const AppPayload& payload,
                                           util::SimTime now, util::Rng& rng) {
  return SimulateConnection(client, server, server.chain, payload, now, rng);
}

}  // namespace pinscope::tls

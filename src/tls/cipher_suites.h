// Cipher-suite registry and the weak-cipher taxonomy of §5.4.
//
// The paper flags connections that *advertise* support for bad cipher suites
// (DES, 3DES, RC4, EXPORT-grade) in the ClientHello. The registry carries the
// IANA-style identifiers plus the classification used by the Table 8 bench.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "tls/version.h"

namespace pinscope::tls {

/// Identifiers for the cipher suites the simulation knows about. Values match
/// the IANA TLS Cipher Suite registry where applicable.
enum class CipherSuiteId : std::uint16_t {
  // TLS 1.3 suites.
  kTlsAes128GcmSha256 = 0x1301,
  kTlsAes256GcmSha384 = 0x1302,
  kTlsChacha20Poly1305Sha256 = 0x1303,
  // Modern TLS 1.2 ECDHE suites.
  kEcdheRsaAes128GcmSha256 = 0xC02F,
  kEcdheRsaAes256GcmSha384 = 0xC030,
  kEcdheEcdsaAes128GcmSha256 = 0xC02B,
  kEcdheRsaChacha20 = 0xCCA8,
  // CBC-era but not classified "bad" by the paper's list.
  kRsaAes128CbcSha = 0x002F,
  kRsaAes256CbcSha = 0x0035,
  // Bad suites (the §5.4 list: DES, 3DES, RC4, EXPORT).
  kRsaDesCbcSha = 0x0009,
  kRsa3DesEdeCbcSha = 0x000A,
  kEcdheRsa3DesEdeCbcSha = 0xC012,
  kRsaRc4128Sha = 0x0005,
  kRsaRc4128Md5 = 0x0004,
  kRsaExportRc440Md5 = 0x0003,
  kRsaExportDes40CbcSha = 0x0008,
};

/// Static description of one suite.
struct CipherSuiteInfo {
  CipherSuiteId id;
  std::string_view name;      ///< IANA-style name.
  bool weak;                  ///< True for DES/3DES/RC4/EXPORT suites.
  TlsVersion min_version;     ///< Earliest version the suite applies to.
  TlsVersion max_version;     ///< Latest version the suite applies to.
};

/// Full registry (fixed order, suitable for iteration in reports).
[[nodiscard]] const std::vector<CipherSuiteInfo>& CipherSuiteRegistry();

/// Lookup by id; throws util::Error for unknown ids.
[[nodiscard]] const CipherSuiteInfo& CipherSuite(CipherSuiteId id);

/// True if the id is a DES/3DES/RC4/EXPORT suite.
[[nodiscard]] bool IsWeakCipher(CipherSuiteId id);

/// True if any offered suite is weak — the paper's per-connection predicate.
[[nodiscard]] bool AdvertisesWeakCipher(const std::vector<CipherSuiteId>& offered);

/// A modern, hardened ClientHello offer (TLS 1.3 + ECDHE GCM).
[[nodiscard]] std::vector<CipherSuiteId> ModernCipherOffer();

/// A permissive legacy offer that still includes bad suites (what §5.4 finds
/// in the majority of iOS connections).
[[nodiscard]] std::vector<CipherSuiteId> LegacyCipherOffer();

}  // namespace pinscope::tls

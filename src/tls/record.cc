#include "tls/record.h"

#include <algorithm>

namespace pinscope::tls {

std::string_view ContentTypeName(ContentType t) {
  switch (t) {
    case ContentType::kChangeCipherSpec: return "change_cipher_spec";
    case ContentType::kAlert: return "alert";
    case ContentType::kHandshake: return "handshake";
    case ContentType::kApplicationData: return "application_data";
  }
  return "unknown";
}

std::size_t CountWireType(const std::vector<Record>& records, Direction dir,
                          ContentType t) {
  return static_cast<std::size_t>(
      std::count_if(records.begin(), records.end(), [&](const Record& r) {
        return r.direction == dir && r.wire_type == t;
      }));
}

}  // namespace pinscope::tls

// TLS record model.
//
// The dynamic detector never sees plaintext; it classifies connections from
// record-level observables (§4.2.2). Each record therefore carries both its
// *wire* content type — what a passive observer sees — and its *actual* type,
// which for TLS 1.3 differs: all encrypted records are disguised as
// "application data" to reduce middlebox breakage. Detector code must only
// consult the wire view; tests enforce that the heuristics work despite the
// disguise.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace pinscope::tls {

/// RFC 8446 content types (wire values).
enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// Who sent a record.
enum class Direction { kClientToServer, kServerToClient };

/// Alert descriptions used by the simulation.
enum class AlertDescription : std::uint8_t {
  kCloseNotify = 0,
  kHandshakeFailure = 40,
  kBadCertificate = 42,
  kCertificateUnknown = 46,
  kProtocolVersion = 70,
  kUnknownCa = 48,
};

/// Length on the wire of an encrypted TLS 1.3 alert record (2 alert bytes +
/// content-type byte + 16-byte AEAD tag + 5-byte header). The paper's second
/// TLS 1.3 heuristic compares record lengths against this constant.
inline constexpr std::uint32_t kEncryptedAlertWireLength = 24;

/// One TLS record as captured on the wire.
struct Record {
  Direction direction = Direction::kClientToServer;
  /// What a capture shows. For encrypted TLS 1.3 records this is always
  /// kApplicationData regardless of the true content.
  ContentType wire_type = ContentType::kHandshake;
  /// Ground truth (available to the simulator and to "decrypting" observers
  /// such as a successful MITM, never to the passive detector).
  ContentType actual_type = ContentType::kHandshake;
  /// Total record length on the wire, header included.
  std::uint32_t wire_length = 0;
  /// For actual alerts: the description byte.
  AlertDescription alert = AlertDescription::kCloseNotify;
  /// Milliseconds since connection start when the record was sent.
  std::int64_t at_ms = 0;
};

/// Human-readable content-type name.
[[nodiscard]] std::string_view ContentTypeName(ContentType t);

/// Counts records of the given wire type in `records` sent by `dir`.
[[nodiscard]] std::size_t CountWireType(const std::vector<Record>& records,
                                        Direction dir, ContentType t);

}  // namespace pinscope::tls

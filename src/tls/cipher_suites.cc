#include "tls/cipher_suites.h"

#include <algorithm>

#include "util/error.h"

namespace pinscope::tls {

const std::vector<CipherSuiteInfo>& CipherSuiteRegistry() {
  static const std::vector<CipherSuiteInfo> registry = {
      {CipherSuiteId::kTlsAes128GcmSha256, "TLS_AES_128_GCM_SHA256", false,
       TlsVersion::kTls13, TlsVersion::kTls13},
      {CipherSuiteId::kTlsAes256GcmSha384, "TLS_AES_256_GCM_SHA384", false,
       TlsVersion::kTls13, TlsVersion::kTls13},
      {CipherSuiteId::kTlsChacha20Poly1305Sha256, "TLS_CHACHA20_POLY1305_SHA256",
       false, TlsVersion::kTls13, TlsVersion::kTls13},
      {CipherSuiteId::kEcdheRsaAes128GcmSha256,
       "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", false, TlsVersion::kTls12,
       TlsVersion::kTls12},
      {CipherSuiteId::kEcdheRsaAes256GcmSha384,
       "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384", false, TlsVersion::kTls12,
       TlsVersion::kTls12},
      {CipherSuiteId::kEcdheEcdsaAes128GcmSha256,
       "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256", false, TlsVersion::kTls12,
       TlsVersion::kTls12},
      {CipherSuiteId::kEcdheRsaChacha20,
       "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256", false, TlsVersion::kTls12,
       TlsVersion::kTls12},
      {CipherSuiteId::kRsaAes128CbcSha, "TLS_RSA_WITH_AES_128_CBC_SHA", false,
       TlsVersion::kTls10, TlsVersion::kTls12},
      {CipherSuiteId::kRsaAes256CbcSha, "TLS_RSA_WITH_AES_256_CBC_SHA", false,
       TlsVersion::kTls10, TlsVersion::kTls12},
      {CipherSuiteId::kRsaDesCbcSha, "TLS_RSA_WITH_DES_CBC_SHA", true,
       TlsVersion::kTls10, TlsVersion::kTls12},
      {CipherSuiteId::kRsa3DesEdeCbcSha, "TLS_RSA_WITH_3DES_EDE_CBC_SHA", true,
       TlsVersion::kTls10, TlsVersion::kTls12},
      {CipherSuiteId::kEcdheRsa3DesEdeCbcSha,
       "TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA", true, TlsVersion::kTls10,
       TlsVersion::kTls12},
      {CipherSuiteId::kRsaRc4128Sha, "TLS_RSA_WITH_RC4_128_SHA", true,
       TlsVersion::kTls10, TlsVersion::kTls12},
      {CipherSuiteId::kRsaRc4128Md5, "TLS_RSA_WITH_RC4_128_MD5", true,
       TlsVersion::kTls10, TlsVersion::kTls12},
      {CipherSuiteId::kRsaExportRc440Md5, "TLS_RSA_EXPORT_WITH_RC4_40_MD5", true,
       TlsVersion::kTls10, TlsVersion::kTls11},
      {CipherSuiteId::kRsaExportDes40CbcSha,
       "TLS_RSA_EXPORT_WITH_DES40_CBC_SHA", true, TlsVersion::kTls10,
       TlsVersion::kTls11},
  };
  return registry;
}

const CipherSuiteInfo& CipherSuite(CipherSuiteId id) {
  for (const CipherSuiteInfo& info : CipherSuiteRegistry()) {
    if (info.id == id) return info;
  }
  throw util::Error("unknown cipher suite id");
}

bool IsWeakCipher(CipherSuiteId id) { return CipherSuite(id).weak; }

bool AdvertisesWeakCipher(const std::vector<CipherSuiteId>& offered) {
  return std::any_of(offered.begin(), offered.end(),
                     [](CipherSuiteId id) { return IsWeakCipher(id); });
}

std::vector<CipherSuiteId> ModernCipherOffer() {
  return {CipherSuiteId::kTlsAes128GcmSha256,
          CipherSuiteId::kTlsAes256GcmSha384,
          CipherSuiteId::kTlsChacha20Poly1305Sha256,
          CipherSuiteId::kEcdheRsaAes128GcmSha256,
          CipherSuiteId::kEcdheRsaAes256GcmSha384,
          CipherSuiteId::kEcdheRsaChacha20};
}

std::vector<CipherSuiteId> LegacyCipherOffer() {
  return {CipherSuiteId::kTlsAes128GcmSha256,
          CipherSuiteId::kEcdheRsaAes128GcmSha256,
          CipherSuiteId::kRsaAes128CbcSha,
          CipherSuiteId::kRsaAes256CbcSha,
          CipherSuiteId::kRsa3DesEdeCbcSha,
          CipherSuiteId::kEcdheRsa3DesEdeCbcSha,
          CipherSuiteId::kRsaRc4128Sha};
}

}  // namespace pinscope::tls

#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace pinscope::util {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool EndsWithIgnoreCase(std::string_view s, std::string_view suffix) {
  if (s.size() < suffix.size()) return false;
  const std::size_t off = s.size() - suffix.size();
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[off + i])) !=
        std::tolower(static_cast<unsigned char>(suffix[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Percent(double ratio, int digits) {
  return FormatDouble(ratio * 100.0, digits) + "%";
}

}  // namespace pinscope::util

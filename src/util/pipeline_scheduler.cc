#include "util/pipeline_scheduler.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/error.h"
#include "util/parallel.h"

namespace pinscope::util {

void SchedulerFaultPlan::Set(std::size_t stage, std::size_t item, Fault fault) {
  Cell& cell = faults_[{stage, item}];
  cell.delay = fault.delay;
  cell.remaining_failures.store(fault.fail_times, std::memory_order_relaxed);
}

void SchedulerFaultPlan::MaybeInject(std::size_t stage, std::size_t item) const {
  const auto it = faults_.find({stage, item});
  if (it == faults_.end()) return;
  const Cell& cell = it->second;
  if (cell.delay.count() > 0) std::this_thread::sleep_for(cell.delay);
  // fetch_sub admits exactly fail_times throws even when attempts race.
  if (cell.remaining_failures.load(std::memory_order_relaxed) > 0 &&
      cell.remaining_failures.fetch_sub(1, std::memory_order_relaxed) > 0) {
    throw Error("injected fault: stage " + std::to_string(stage) + ", item " +
                std::to_string(item));
  }
}

namespace {

/// A ready task: run `stage` of `item`.
struct Task {
  std::size_t item = 0;
  std::size_t stage = 0;
};

/// Everything one run's workers share.
struct Run {
  const std::vector<PipelineStage>* stages = nullptr;
  const PipelineOptions* options = nullptr;
  std::size_t n = 0;

  BoundedMpmcQueue<Task> queue;
  std::atomic<std::size_t> completed{0};
  std::atomic<std::uint64_t> backpressure{0};
  std::atomic<std::uint64_t> retries{0};

  /// Cached metric handles (null-safe no-ops without a registry).
  obs::Counter tasks_counter;
  obs::Counter backpressure_counter;
  obs::Counter retries_counter;
  obs::Counter failures_counter;
  obs::Histogram depth_histogram;

  /// Timeline label ids, one per stage (empty without a timeline).
  std::vector<std::uint32_t> stage_labels;

  Run(std::size_t n_items, std::size_t capacity,
      obs::MetricsRegistry* metrics)
      : n(n_items), queue(capacity, metrics) {}

  [[nodiscard]] obs::Timeline* timeline() const { return options->timeline; }

  [[nodiscard]] std::uint64_t KeyFor(std::size_t item) const {
    return options->timeline_key ? options->timeline_key(item)
                                 : static_cast<std::uint64_t>(item);
  }
};

/// Interns every stage name once so workers record labels, not strings.
void PrepareTimeline(Run& run) {
  obs::Timeline* timeline = run.timeline();
  if (timeline == nullptr) return;
  run.stage_labels.reserve(run.stages->size());
  for (const PipelineStage& stage : *run.stages) {
    run.stage_labels.push_back(timeline->InternStage(stage.name));
  }
  timeline->MarkRunStart();
}

/// Records the whole attempt loop of (item, stage) as one kStage interval
/// on `worker` when a timeline rides along. Mirrors StageHook semantics:
/// injected delays and retries count as time inside the stage.
class StageIntervalScope {
 public:
  StageIntervalScope(Run& run, const Task& task, int worker)
      : timeline_(run.timeline()) {
    if (timeline_ == nullptr) return;
    worker_ = static_cast<std::uint32_t>(worker);
    key_ = run.KeyFor(task.item);
    label_ = run.stage_labels[task.stage];
    start_us_ = timeline_->NowUs();
  }
  StageIntervalScope(const StageIntervalScope&) = delete;
  StageIntervalScope& operator=(const StageIntervalScope&) = delete;
  ~StageIntervalScope() {
    if (timeline_ == nullptr) return;
    timeline_->RecordStage(worker_, key_, label_, start_us_,
                           timeline_->NowUs());
  }

 private:
  obs::Timeline* timeline_;
  std::uint32_t worker_ = 0;
  std::uint64_t key_ = 0;
  std::uint32_t label_ = 0;
  std::int64_t start_us_ = 0;
};

/// Runs one stage attempt chain for a task; returns true when the stage
/// (eventually) succeeded, false when it failed after retries (failure
/// recorded in `sink`).
bool RunStageGuarded(Run& run, const Task& task, int worker,
                     std::vector<StageFailure>& sink) {
  const PipelineStage& stage = (*run.stages)[task.stage];
  const int max_retries = std::max(run.options->max_stage_retries, 0);
  const StageHook& hook = run.options->stage_hook;
  const StageIntervalScope interval(run, task, worker);
  if (hook) hook(task.item, task.stage, StageEvent::kBegin);
  std::string message;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) {
      run.retries.fetch_add(1, std::memory_order_relaxed);
      run.retries_counter.Increment();
    }
    try {
      if (run.options->faults != nullptr) {
        run.options->faults->MaybeInject(task.stage, task.item);
      }
      const obs::Span span =
          run.options->trace == nullptr
              ? obs::Span()
              : obs::Span(run.options->trace,
                          std::string(run.options->trace_label) + "." +
                              stage.name,
                          "sched", {{"item", std::to_string(task.item)}});
      stage.body(task.item);
      run.tasks_counter.Increment();
      if (hook) hook(task.item, task.stage, StageEvent::kEnd);
      return true;
    } catch (const std::exception& e) {
      message = e.what();
    } catch (...) {
      message = "unknown exception";
    }
  }
  sink.push_back({task.item, task.stage, stage.name, std::move(message)});
  run.failures_counter.Increment();
  if (hook) hook(task.item, task.stage, StageEvent::kFailed);
  return false;
}

/// Marks one item's chain finished (success or failure); the last completion
/// closes the queue so blocked poppers drain out.
void CompleteItem(Run& run) {
  if (run.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == run.n) {
    run.queue.Close();
  }
}

/// Pushes a ready task without ever blocking: on a full queue the *caller*
/// runs the continuation, which is what bounds in-flight work. Returns the
/// task to run inline, if any.
std::optional<Task> PushOrKeep(Run& run, Task task) {
  if (run.queue.TryPush(task)) {
    run.depth_histogram.Record(static_cast<double>(run.queue.Size()));
    return std::nullopt;
  }
  run.backpressure.fetch_add(1, std::memory_order_relaxed);
  run.backpressure_counter.Increment();
  return task;
}

/// Executes `first` and all of its inline continuations, advancing the item
/// through its chain until a push succeeds, the chain ends, or a stage fails.
void DrainChain(Run& run, Task first, int worker,
                std::vector<StageFailure>& sink) {
  Task task = first;
  for (;;) {
    if (!RunStageGuarded(run, task, worker, sink)) {
      CompleteItem(run);  // failed: remaining stages are skipped
      return;
    }
    if (task.stage + 1 == run.stages->size()) {
      CompleteItem(run);
      return;
    }
    const std::optional<Task> inline_task =
        PushOrKeep(run, {task.item, task.stage + 1});
    if (!inline_task.has_value()) return;  // someone else continues the chain
    task = *inline_task;
  }
}

/// Pops the next task, timing any blocked wait into the worker's timeline
/// lane: a wait that eventually yielded a task is queue starvation, a wait
/// that observed the close is the tail join. The ambient pause keeps a
/// contended queue mutex inside the timed wait from double-counting as
/// kLockWait.
std::optional<Task> PopTimed(Run& run, int worker) {
  obs::Timeline* timeline = run.timeline();
  if (timeline == nullptr) return run.queue.Pop();
  std::optional<Task> task = run.queue.TryPop();
  if (task.has_value()) return task;
  const obs::TimelineAmbientPause pause;
  const std::int64_t start = timeline->NowUs();
  task = run.queue.Pop();
  timeline->RecordIdle(static_cast<std::uint32_t>(worker),
                       task.has_value() ? obs::IntervalKind::kQueueStarved
                                        : obs::IntervalKind::kTailJoin,
                       start, timeline->NowUs());
  return task;
}

void WorkerLoop(Run& run, int worker, std::vector<StageFailure>& sink) {
  const obs::TimelineWorkerScope ambient(
      run.timeline(), static_cast<std::uint32_t>(worker));
  const obs::Span span =
      run.options->trace == nullptr
          ? obs::Span()
          : obs::Span(run.options->trace,
                      std::string(run.options->trace_label) + ".worker",
                      "sched", {{"worker", std::to_string(worker)}});
  while (const std::optional<Task> task = PopTimed(run, worker)) {
    DrainChain(run, *task, worker, sink);
  }
}

/// Blocking seed push with backpressure timing on the submitter's lane
/// (worker 0): a full queue at seed time means every worker is busy and
/// the buffer is at capacity — classic upstream backpressure.
void SeedPush(Run& run, Task task) {
  obs::Timeline* timeline = run.timeline();
  if (timeline == nullptr) {
    run.queue.Push(task);
  } else if (!run.queue.TryPush(task)) {
    const obs::TimelineAmbientPause pause;
    const std::int64_t start = timeline->NowUs();
    run.queue.Push(task);
    timeline->RecordIdle(0, obs::IntervalKind::kBackpressure, start,
                         timeline->NowUs());
  }
  run.depth_histogram.Record(static_cast<double>(run.queue.Size()));
}

}  // namespace

PipelineResult RunPipeline(std::size_t n,
                           const std::vector<PipelineStage>& stages,
                           const PipelineOptions& options) {
  PipelineResult result;
  if (n == 0 || stages.empty()) return result;

  const int workers = ResolveThreads(options.threads, n);

  if (workers <= 1) {
    // Inline serial path: the chain order is the only ordering there is.
    Run run(n, 1, options.metrics);
    run.stages = &stages;
    run.options = &options;
    PrepareTimeline(run);
    if (options.metrics != nullptr) {
      run.tasks_counter = options.metrics->counter("sched.tasks");
      run.retries_counter = options.metrics->counter("sched.retries");
      run.failures_counter = options.metrics->counter("sched.failures");
    }
    {
      const obs::TimelineWorkerScope ambient(options.timeline, 0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t s = 0; s < stages.size(); ++s) {
          if (!RunStageGuarded(run, {i, s}, 0, result.failures)) break;
        }
      }
    }
    result.retries = run.retries.load(std::memory_order_relaxed);
    if (options.metrics != nullptr) {
      // Keep the metric surface identical to the threaded path: an inline
      // run has no ready queue, so its peak depth is 0.
      options.metrics->gauge("sched.queue_peak_depth").Set(0);
    }
    if (options.timeline != nullptr) options.timeline->MarkRunEnd();
    return result;
  }

  const std::size_t depth =
      options.queue_depth > 0
          ? options.queue_depth
          : std::max<std::size_t>(2 * static_cast<std::size_t>(workers), 2);
  Run run(n, depth, options.metrics);
  run.stages = &stages;
  run.options = &options;
  PrepareTimeline(run);
  if (options.metrics != nullptr) {
    run.tasks_counter = options.metrics->counter("sched.tasks");
    run.backpressure_counter =
        options.metrics->counter("sched.backpressure_inline");
    run.retries_counter = options.metrics->counter("sched.retries");
    run.failures_counter = options.metrics->counter("sched.failures");
    run.depth_histogram = options.metrics->histogram(
        "sched.queue_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  }

  // Every worker collects failures privately; merged and sorted below so the
  // reported failure set is independent of scheduling.
  std::vector<std::vector<StageFailure>> per_worker(
      static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&run, &per_worker, w] {
      WorkerLoop(run, w, per_worker[static_cast<std::size_t>(w)]);
    });
  }

  // Seed stage 0 for every item, in item order (FIFO per stage). Blocking
  // pushes are safe here: workers always return to Pop, and the queue cannot
  // close before the last seed lands (an unseeded item is never complete).
  // With a timeline the submitter's blocked pushes are timed as worker 0's
  // backpressure (it becomes worker 0 right after the seeds).
  {
    const obs::TimelineWorkerScope ambient(options.timeline, 0);
    for (std::size_t i = 0; i < n; ++i) {
      SeedPush(run, {i, 0});
    }
  }
  // All seeds in: the submitter becomes worker 0 until the run drains.
  WorkerLoop(run, 0, per_worker[0]);
  for (std::thread& t : pool) t.join();

  for (auto& sink : per_worker) {
    result.failures.insert(result.failures.end(),
                           std::make_move_iterator(sink.begin()),
                           std::make_move_iterator(sink.end()));
  }
  std::sort(result.failures.begin(), result.failures.end(),
            [](const StageFailure& a, const StageFailure& b) {
              return a.item != b.item ? a.item < b.item : a.stage < b.stage;
            });
  result.peak_queue_depth = run.queue.PeakSize();
  result.backpressure_inline_runs =
      run.backpressure.load(std::memory_order_relaxed);
  result.retries = run.retries.load(std::memory_order_relaxed);
  if (options.metrics != nullptr) {
    options.metrics->gauge("sched.queue_peak_depth")
        .Set(result.peak_queue_depth);
  }
  if (options.timeline != nullptr) options.timeline->MarkRunEnd();
  return result;
}

}  // namespace pinscope::util

// Byte-buffer primitives shared across the toolkit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pinscope::util {

/// Raw byte buffer. Used for certificate bodies, TLS record payloads and
/// file contents inside app packages.
using Bytes = std::vector<std::uint8_t>;

/// Copies a string's characters into a byte buffer (no encoding applied).
[[nodiscard]] inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Reinterprets a byte buffer as text. The buffer is copied verbatim; callers
/// must know the bytes are printable.
[[nodiscard]] inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Appends the contents of `src` to `dst`.
inline void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Appends the characters of `src` to `dst`.
inline void Append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace pinscope::util

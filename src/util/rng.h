// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the toolkit (corpus sampling, certificate
// serial numbers, payload jitter) draws from an explicitly seeded `Rng`, so
// that every experiment in the paper reproduction regenerates bit-identically.
// The generator is xoshiro256** seeded via splitmix64 — fast, high quality,
// and fully specified here (no reliance on implementation-defined std
// distributions).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace pinscope::util {

/// Deterministic random source. Copyable; copies continue the same stream
/// independently, which is handy for forking per-app substreams.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed) { Reseed(seed); }

  /// Derives an independent child generator from this one and a label. Used
  /// to give each app / module its own stream so that adding a draw in one
  /// place does not perturb every later decision.
  [[nodiscard]] Rng Fork(std::string_view label) const;

  /// Re-seeds in place.
  void Reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformU64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires a non-empty vector with a positive sum.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// Picks a uniformly random element of `v`. Requires non-empty `v`.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    if (v.empty()) throw Error("Rng::Pick on empty vector");
    return v[static_cast<std::size_t>(UniformU64(0, v.size() - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformU64(0, i));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k clamped to n), in random
  /// order. Used for corpus subset selection.
  [[nodiscard]] std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k);

  /// Random lowercase alphanumeric identifier of length `len`.
  [[nodiscard]] std::string Identifier(std::size_t len);

 private:
  std::uint64_t s_[4] = {};
};

/// Stable 64-bit FNV-1a hash of a string; used to derive fork seeds and
/// content-addressed identifiers.
[[nodiscard]] std::uint64_t StableHash64(std::string_view s);

}  // namespace pinscope::util

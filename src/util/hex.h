// Lowercase hexadecimal encoding/decoding.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace pinscope::util {

/// Encodes `data` as lowercase hex (two characters per byte).
[[nodiscard]] std::string HexEncode(const Bytes& data);

/// Decodes a hex string (either case). Returns std::nullopt on odd length or
/// any non-hex character.
[[nodiscard]] std::optional<Bytes> HexDecode(std::string_view hex);

/// True if every character of `s` is a hex digit.
[[nodiscard]] bool IsHexString(std::string_view s);

}  // namespace pinscope::util

// Simulated time.
//
// The dynamic-analysis pipeline reasons about "30 seconds of capture", TLS
// certificate validity windows and install/settle delays. All of that runs on
// simulated time so experiments are instantaneous and reproducible.
#pragma once

#include <cstdint>

namespace pinscope::util {

/// Milliseconds since the simulation epoch.
using SimTime = std::int64_t;

/// Days expressed in milliseconds.
constexpr SimTime kMillisPerSecond = 1000;
constexpr SimTime kMillisPerDay = 86'400'000;
constexpr SimTime kMillisPerYear = 365 * kMillisPerDay;

/// The simulation epoch corresponds to 2021-01-01T00:00:00Z, roughly when the
/// paper's crawls began; certificate validity windows are expressed around it.
constexpr SimTime kStudyEpoch = 0;

/// A monotonically advancing simulated clock.
class SimClock {
 public:
  explicit SimClock(SimTime start = kStudyEpoch) : now_(start) {}

  /// Current simulated time.
  [[nodiscard]] SimTime Now() const { return now_; }

  /// Advances the clock. Negative advances are ignored (time is monotonic).
  void Advance(SimTime millis) {
    if (millis > 0) now_ += millis;
  }

 private:
  SimTime now_;
};

}  // namespace pinscope::util

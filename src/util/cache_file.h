// Versioned on-disk container for persistent caches (DESIGN.md §15).
//
// Both persistent caches (the static-scan cache and the chain-validation
// memo) serialize through this one container so the durability rules live in
// a single place:
//
//   - Header: magic, a per-cache kind tag, a format version, the payload
//     size, and an FNV-1a checksum of the payload. Any mismatch — wrong
//     kind, unknown version, truncated file, flipped payload byte — makes
//     ReadCacheFile return nullopt, and the caller starts cold. A cache
//     file can make a run slower, never wrong, and never crash it.
//   - Atomic write-replace: WriteCacheFile writes a unique temporary next
//     to the destination and std::rename()s it into place, so concurrent
//     writers into one --cache-dir are last-writer-wins and readers never
//     observe a torn file. (Callers serialize entries in sorted key order,
//     which makes equal caches produce equal bytes — so "last writer" is
//     unobservable when the writers analyzed the same corpus.)
//
// The checksum guards against corruption, not adversaries; a cache dir is
// local scratch state with the same trust level as the build tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace pinscope::util {

/// Writes `payload` under a versioned, checksummed header and atomically
/// replaces `path`. Returns false on any I/O failure (callers treat that as
/// "cache not persisted", never as an error).
bool WriteCacheFile(const std::string& path, std::uint32_t kind,
                    std::uint32_t version, const Bytes& payload);

/// Reads `path`, verifies magic + kind + version + size + checksum, and
/// returns the payload. nullopt on a missing, foreign, version-mismatched,
/// truncated, or corrupt file — the cold-start signal.
[[nodiscard]] std::optional<Bytes> ReadCacheFile(const std::string& path,
                                                 std::uint32_t kind,
                                                 std::uint32_t version);

// --- Little-endian payload codec helpers -----------------------------------
// Shared by the cache serializers so both payload formats are trivially
// byte-stable across platforms.

void AppendU8(Bytes& out, std::uint8_t v);
void AppendU32(Bytes& out, std::uint32_t v);
void AppendU64(Bytes& out, std::uint64_t v);
void AppendI64(Bytes& out, std::int64_t v);
/// Length-prefixed (u32) string.
void AppendString(Bytes& out, std::string_view s);
/// Length-prefixed (u32) blob.
void AppendBlob(Bytes& out, const Bytes& b);

/// Sequential payload reader. Every accessor returns a zero value once a
/// read has run past the end; check ok() (and AtEnd()) after decoding.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(&data) {}

  [[nodiscard]] std::uint8_t U8();
  [[nodiscard]] std::uint32_t U32();
  [[nodiscard]] std::uint64_t U64();
  [[nodiscard]] std::int64_t I64();
  [[nodiscard]] std::string String();
  [[nodiscard]] Bytes Blob();
  /// Copies exactly `n` raw bytes into `dst`.
  bool Raw(std::uint8_t* dst, std::size_t n);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool AtEnd() const { return pos_ == data_->size(); }

 private:
  const Bytes* data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pinscope::util

// Barrier-free pipelined scheduling for per-item stage chains.
//
// `RunPipeline(n, stages, options)` runs every item of [0, n) through an
// ordered chain of stages (the per-item DAG path: stage k+1 depends on
// stage k of the same item, and on nothing else), with a pool of workers
// pulling ready tasks from one bounded MPMC queue. Because the only edges
// are within an item's own chain, item N can be in its last stage while
// item N+1 is still in its first — no corpus-wide barrier between stages.
//
// Determinism contract: identical to util/parallel.h — a stage body must
// write only per-item state and derive any RNG from the study seed plus the
// item identity. Under that contract the results are invariant to worker
// count, queue depth, and completion order, so the pipelined schedule is a
// pure throughput knob (tests/core/sched_equivalence_test.cc proves the
// study's exports, journal, and run reports are byte-identical to the
// phase-barrier schedule).
//
// Deadlock discipline: workers never block pushing a successor task — when
// the ready queue is full they run the continuation inline instead (counted
// as backpressure). Only the submitting thread uses blocking pushes, and it
// joins the worker pool once every seed task is in. Workers therefore only
// ever block popping from an empty queue, which the last completion closes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/mutex.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace pinscope::util {

/// Bounded multi-producer multi-consumer FIFO queue. Push blocks while the
/// queue is full, Pop blocks while it is empty; Close() wakes everyone —
/// blocked pushers give up, poppers drain the remaining items and then see
/// end-of-stream. Per-stage order is exactly submission order (FIFO).
///
/// With a registry, the queue's lock doubles as a contention probe: waits
/// surface as `lock.sched.queue.contended` / `.wait_us` (obs/mutex.h), the
/// direct measurement behind ROADMAP item 3d's lock-contention question.
template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity,
                            obs::MetricsRegistry* metrics = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity),
        mu_(metrics, "sched.queue"),
        size_gauge_(metrics == nullptr ? obs::Gauge()
                                       : metrics->gauge("sched.queue_size")) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Blocks until there is room (or the queue closes). Returns false — and
  /// drops the item — only when the queue was closed.
  bool Push(T item) {
    std::unique_lock<obs::TrackedMutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    PushLocked(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<obs::TrackedMutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      PushLocked(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once the queue is closed
  /// *and* drained (in-flight items are never lost to a close).
  std::optional<T> Pop() {
    std::unique_lock<obs::TrackedMutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    return PopLocked();
  }

  /// Non-blocking pop: nullopt when nothing is queued right now.
  std::optional<T> TryPop() {
    std::lock_guard<obs::TrackedMutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    return PopLocked();
  }

  /// No further pushes succeed; blocked pushers and poppers wake up.
  void Close() {
    {
      std::lock_guard<obs::TrackedMutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t Size() const {
    std::lock_guard<obs::TrackedMutex> lock(mu_);
    return items_.size();
  }

  /// High-water mark of Size() over the queue's lifetime.
  [[nodiscard]] std::size_t PeakSize() const {
    std::lock_guard<obs::TrackedMutex> lock(mu_);
    return peak_;
  }

 private:
  void PushLocked(T item) {
    items_.push_back(std::move(item));
    if (items_.size() > peak_) peak_ = items_.size();
    // Live depth gauge — what the telemetry sampler reads between snapshots
    // (the histogram above only materializes post-mortem).
    size_gauge_.Set(items_.size());
  }

  T PopLocked() {
    T item = std::move(items_.front());
    items_.pop_front();
    size_gauge_.Set(items_.size());
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable obs::TrackedMutex mu_;
  obs::Gauge size_gauge_;
  std::condition_variable_any not_full_;
  std::condition_variable_any not_empty_;
  std::deque<T> items_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

/// One stage of the per-item chain.
struct PipelineStage {
  /// Short name used for span labels, metric families, and failure messages
  /// ("static", "dynamic", "verdict", ...).
  std::string name;
  /// Runs the stage for one item. Must only touch per-item state.
  std::function<void(std::size_t item)> body;
};

/// Test-only fault injection for the scheduler (tests/core/sched_fault_test).
/// Faults fire at stage *entry* — before the stage body runs — so an
/// injected failure never leaves partial per-item state (journal events,
/// half-written reports) behind, and a retried stage replays from scratch.
/// Configure with Set() before the run (not thread-safe); MaybeInject is
/// called concurrently by workers and is safe.
class SchedulerFaultPlan {
 public:
  struct Fault {
    /// Sleep this long at stage entry (a "slow app").
    std::chrono::milliseconds delay{0};
    /// Throw for this many attempts before letting the stage run (a
    /// "transiently failing app"; make it huge for a permanent failure).
    int fail_times = 0;
  };

  /// Arms a fault for stage `stage` of item `item`.
  void Set(std::size_t stage, std::size_t item, Fault fault);

  /// Applies any armed fault for (stage, item): sleeps, then throws
  /// util::Error("injected fault ...") while failures remain.
  void MaybeInject(std::size_t stage, std::size_t item) const;

 private:
  struct Cell {
    std::chrono::milliseconds delay{0};
    mutable std::atomic<int> remaining_failures{0};
  };
  std::map<std::pair<std::size_t, std::size_t>, Cell> faults_;
};

/// What a StageHook observes about one (item, stage) execution.
enum class StageEvent {
  kBegin,   ///< Entering the attempt loop (before fault injection / body).
  kEnd,     ///< The stage succeeded (possibly after retries).
  kFailed,  ///< Retries exhausted; the item's remaining stages are skipped.
};

/// Optional observability callback around each stage's whole attempt loop.
/// Wraps fault injection too — an injected delay counts as time inside the
/// stage, which is exactly what a straggler watchdog must see. Called
/// concurrently by workers; must be thread-safe and cheap. Purely
/// observational: never consulted by the scheduler.
using StageHook =
    std::function<void(std::size_t item, std::size_t stage, StageEvent event)>;

/// Knobs for one pipelined run.
struct PipelineOptions {
  /// Worker threads: 0 = hardware concurrency, 1 = run inline on the caller
  /// (no threads, no queue), N = at most N workers.
  int threads = 0;
  /// Capacity of the ready-task queue; 0 = automatic (2× the worker count).
  /// Smaller depths trade scheduling freedom for bounded buffering — any
  /// value ≥ 1 produces identical results.
  std::size_t queue_depth = 0;
  /// Re-run a stage this many times after it throws before recording the
  /// failure. Retries replay the whole stage, so bodies must be idempotent
  /// per attempt (the study stages are: they overwrite their slot).
  int max_stage_retries = 0;
  /// Test-only fault injection (see SchedulerFaultPlan).
  const SchedulerFaultPlan* faults = nullptr;
  /// Optional trace sink: one "<label>.worker" span per worker plus one
  /// "<label>.<stage>" span per stage execution. Purely observational.
  obs::TraceSink* trace = nullptr;
  /// Span/metric prefix.
  const char* trace_label = "sched";
  /// Optional metrics: `sched.tasks` / `sched.backpressure_inline` /
  /// `sched.retries` / `sched.failures` counters, a `sched.queue_depth`
  /// histogram sampled at every enqueue, and a `sched.queue_peak_depth`
  /// gauge. Purely observational (never consulted by the scheduler).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional per-stage observability hook (see StageHook).
  StageHook stage_hook;
  /// Optional bounded interval timeline (obs/timeline.h): one kStage
  /// interval per stage attempt loop, idle intervals for queue waits /
  /// backpressure / tail join, and ambient lock-wait attribution while a
  /// worker runs. Purely observational — never consulted by the scheduler —
  /// and O(workers · cap) memory regardless of n.
  obs::Timeline* timeline = nullptr;
  /// Maps an item index to the stable 64-bit identity stage intervals carry
  /// (the study drivers pass TelemetryKey: platform rank in the top bits,
  /// universe index below). Defaults to the item index itself.
  std::function<std::uint64_t(std::size_t item)> timeline_key;
};

/// One failed stage of one item. Later stages of that item do not run.
struct StageFailure {
  std::size_t item = 0;
  std::size_t stage = 0;
  std::string stage_name;
  std::string message;
};

/// What a pipelined run observed. Failures are sorted by (item, stage), so
/// the error surface is as deterministic as the results.
struct PipelineResult {
  std::vector<StageFailure> failures;
  /// High-water mark of the ready queue (0 for inline runs).
  std::size_t peak_queue_depth = 0;
  /// Continuations run inline because the queue was full (backpressure).
  std::uint64_t backpressure_inline_runs = 0;
  /// Stage attempts beyond the first (only with max_stage_retries > 0).
  std::uint64_t retries = 0;
};

/// Runs every item of [0, n) through `stages` in order, overlapping items
/// freely. Exceptions escaping a stage (after retries) are collected per
/// item — never thrown — so one failing item cannot abort its siblings;
/// the item's remaining stages are skipped.
[[nodiscard]] PipelineResult RunPipeline(std::size_t n,
                                         const std::vector<PipelineStage>& stages,
                                         const PipelineOptions& options = {});

}  // namespace pinscope::util

// Small string utilities used across parsers and report renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pinscope::util {

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
[[nodiscard]] bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `s` ends with `suffix`, comparing ASCII case-insensitively.
/// Allocation-free — the scanner's per-file suffix check runs on the static
/// hot path, where a lowercase copy of every path is measurable churn.
[[nodiscard]] bool EndsWithIgnoreCase(std::string_view s, std::string_view suffix);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view Trim(std::string_view s);

/// True if `needle` occurs in `haystack`.
[[nodiscard]] bool Contains(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string ReplaceAll(std::string_view s, std::string_view from,
                                     std::string_view to);

/// Formats a double with `digits` decimal places (locale-independent).
[[nodiscard]] std::string FormatDouble(double v, int digits);

/// Formats a ratio as a percentage string, e.g. Percent(0.0817, 2) == "8.17%".
[[nodiscard]] std::string Percent(double ratio, int digits = 1);

}  // namespace pinscope::util

// Bump-pointer arena for per-flight scratch (DESIGN.md §14).
//
// One dynamic-analysis flight (a capture pair plus its differential
// detection) builds thousands of short-lived nodes — detector aggregation
// maps, per-destination scratch — all with identical lifetime: they die
// together when the flight's report is assembled. An Arena turns that churn
// into pointer bumps over a few large blocks, and Reset() recycles the
// blocks for the next flight, so steady-state allocator traffic is O(1) per
// flight instead of O(nodes).
//
// Threading: an Arena is deliberately NOT synchronized. The dynamic pipeline
// runs its two capture phases on worker threads (DynamicOptions::
// parallel_phases); the arena must only be touched after those phases join —
// detection and report assembly are single-threaded, which is exactly where
// the scratch lives. Sharing one Arena across concurrently-running flights
// is a data race; give each flight its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace pinscope::util {

/// Chained-block bump allocator. Individual deallocation is a no-op; memory
/// is reclaimed wholesale by Reset() or destruction.
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t) per block guarantee — larger alignments are
  /// honored by over-allocating). Never returns nullptr; zero-byte requests
  /// yield a valid one-past pointer.
  void* Allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Drops every allocation at once. The largest block is retained and
  /// rewound so a steady-state caller (one Reset per flight) stops touching
  /// the global allocator entirely; the rest are returned to it.
  void Reset();

  /// Bytes handed out since construction or the last Reset().
  [[nodiscard]] std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Blocks currently owned (diagnostic; ≥1 once anything was allocated).
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Makes `cur_` point into a fresh block with at least `bytes` of room.
  void AddBlock(std::size_t bytes);

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t bytes_allocated_ = 0;
};

/// std::allocator-compatible adapter. A null arena falls back to the global
/// allocator, so container types can be arena-parameterized unconditionally
/// and opt in only when a flight provides one. Arena-backed deallocate() is
/// a no-op — memory returns on Arena::Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator<U>& b) {
    return a.arena_ == b.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace pinscope::util

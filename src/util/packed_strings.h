// Fixed-arity string packing (the StaticConcatenatedStrings idiom).
//
// N logically-separate strings stored in ONE backing buffer with an array of
// end offsets, instead of N std::string members. For structs that live in
// large numbers (certificate names, TLS metadata), this collapses N heap
// allocations / 32-byte string headers into one buffer + N*sizeof(Offset)
// bytes of offsets, keeps the parts contiguous in cache, and makes moves a
// single string move. Parts are returned as std::string_view into the
// buffer; views are invalidated by any set().
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pinscope::util {

template <std::size_t N, typename Offset = std::uint32_t>
class PackedStrings {
  static_assert(N > 0, "PackedStrings needs at least one part");

 public:
  /// The i-th part. The view aliases the backing buffer: valid until the
  /// next set() on this object (or its destruction/move).
  [[nodiscard]] std::string_view operator[](std::size_t i) const {
    const Offset s = Start(i);
    return std::string_view(buf_.data() + s, ends_[i] - s);
  }

  /// Replaces the i-th part. `value` may alias this object's own buffer
  /// (e.g. copying one part into another); a detached copy is taken first.
  void set(std::size_t i, std::string_view value) {
    const char* base = buf_.data();
    if (value.data() >= base && value.data() < base + buf_.size()) {
      const std::string detached(value);
      set(i, std::string_view(detached));
      return;
    }
    const Offset s = Start(i);
    const Offset e = ends_[i];
    if (value.empty()) {
      buf_.erase(s, static_cast<std::size_t>(e - s));
    } else {
      buf_.replace(s, static_cast<std::size_t>(e - s), value.data(),
                   value.size());
    }
    const auto delta = static_cast<std::ptrdiff_t>(value.size()) -
                       static_cast<std::ptrdiff_t>(e - s);
    for (std::size_t j = i; j < N; ++j) {
      ends_[j] = static_cast<Offset>(static_cast<std::ptrdiff_t>(ends_[j]) +
                                     delta);
    }
  }

  /// Summed length of all parts (== backing buffer size).
  [[nodiscard]] std::size_t total_size() const {
    return static_cast<std::size_t>(ends_[N - 1]);
  }

  /// True when every part is empty.
  [[nodiscard]] bool empty() const { return buf_.empty(); }

  static constexpr std::size_t size() { return N; }

  // The (buffer, offsets) representation is canonical — equal parts imply
  // byte-identical members — so defaulted comparisons are exact.
  friend bool operator==(const PackedStrings&, const PackedStrings&) = default;

 private:
  [[nodiscard]] Offset Start(std::size_t i) const {
    return i == 0 ? Offset{0} : ends_[i - 1];
  }

  std::string buf_;
  std::array<Offset, N> ends_{};
};

}  // namespace pinscope::util

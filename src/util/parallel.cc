#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace pinscope::util {

namespace {

std::string FormatFailures(const std::vector<IndexFailure>& failures) {
  std::string msg = "ParallelFor: " + std::to_string(failures.size()) +
                    " index(es) threw:";
  const std::size_t shown = std::min<std::size_t>(failures.size(), 3);
  for (std::size_t i = 0; i < shown; ++i) {
    msg += " [" + std::to_string(failures[i].index) + "] " +
           failures[i].message + ";";
  }
  if (failures.size() > shown) msg += " ...";
  return msg;
}

}  // namespace

ParallelError::ParallelError(std::vector<IndexFailure> failures)
    : Error(FormatFailures(failures)), failures_(std::move(failures)) {}

int ResolveThreads(int requested, std::size_t n) {
  if (n == 0) return 0;
  std::size_t t;
  if (requested <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = hw == 0 ? 1 : hw;
  } else {
    t = static_cast<std::size_t>(requested);
  }
  return static_cast<int>(std::min(t, n));
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 const ParallelOptions& options) {
  if (n == 0) return;
  const std::size_t grain = std::max<std::size_t>(options.grain, 1);
  const int workers = ResolveThreads(options.threads, n);

  // Every index runs exactly once even when siblings throw, so the failure
  // set (and all per-index output) is independent of scheduling.
  auto guarded = [&](std::size_t i, std::vector<IndexFailure>& sink) {
    try {
      body(i);
    } catch (const std::exception& e) {
      sink.push_back({i, e.what()});
    } catch (...) {
      sink.push_back({i, "unknown exception"});
    }
  };

  std::vector<IndexFailure> failures;
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) guarded(i, failures);
  } else {
    std::atomic<std::size_t> cursor{0};
    std::vector<std::vector<IndexFailure>> per_worker(
        static_cast<std::size_t>(workers));
    auto drain = [&](int w) {
      auto& sink = per_worker[static_cast<std::size_t>(w)];
      const obs::Span span =
          options.trace == nullptr
              ? obs::Span()
              : obs::Span(options.trace,
                          std::string(options.trace_label) + ".worker",
                          "parallel", {{"worker", std::to_string(w)}});
      for (;;) {
        const std::size_t begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + grain, n);
        for (std::size_t i = begin; i < end; ++i) guarded(i, sink);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers) - 1);
    for (int w = 1; w < workers; ++w) pool.emplace_back(drain, w);
    drain(0);  // the caller participates instead of idling
    for (std::thread& t : pool) t.join();

    for (const auto& sink : per_worker) {
      failures.insert(failures.end(), sink.begin(), sink.end());
    }
    std::sort(failures.begin(), failures.end(),
              [](const IndexFailure& a, const IndexFailure& b) {
                return a.index < b.index;
              });
  }

  if (!failures.empty()) throw ParallelError(std::move(failures));
}

}  // namespace pinscope::util

#include "util/arena.h"

#include <algorithm>
#include <cstring>

namespace pinscope::util {

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(std::max<std::size_t>(block_bytes, 64)) {}

void Arena::AddBlock(std::size_t bytes) {
  Block block;
  block.size = std::max(block_bytes_, bytes);
  block.data = std::make_unique<std::byte[]>(block.size);
  cur_ = block.data.get();
  end_ = cur_ + block.size;
  blocks_.push_back(std::move(block));
}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  // new[] storage is max_align_t-aligned, so aligning the bump pointer
  // suffices for any align up to that; larger requests over-allocate and
  // round up inside the padded region.
  const std::size_t pad = align > alignof(std::max_align_t)
                              ? align - alignof(std::max_align_t)
                              : 0;
  auto aligned = [align](std::byte* p) {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<std::byte*>((addr + align - 1) & ~(align - 1));
  };
  std::byte* p = cur_ == nullptr ? nullptr : aligned(cur_);
  if (p == nullptr || p + bytes > end_) {
    AddBlock(bytes + pad + alignof(std::max_align_t));
    p = aligned(cur_);
  }
  cur_ = p + bytes;
  bytes_allocated_ += bytes;
  return p;
}

void Arena::Reset() {
  bytes_allocated_ = 0;
  if (blocks_.empty()) return;
  // Keep only the largest block: after a warm-up flight it is big enough for
  // the steady state, and rewinding it makes the next flight allocation-free.
  auto largest = std::max_element(
      blocks_.begin(), blocks_.end(),
      [](const Block& a, const Block& b) { return a.size < b.size; });
  Block keep = std::move(*largest);
  blocks_.clear();
  cur_ = keep.data.get();
  end_ = cur_ + keep.size;
  blocks_.push_back(std::move(keep));
}

}  // namespace pinscope::util

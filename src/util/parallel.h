// Deterministic fork-join parallelism for per-app work units.
//
// `ParallelFor(n, body)` runs body(0) … body(n-1) across a small pool of
// worker threads that claim index chunks from a shared atomic cursor.
// Determinism contract: the body must write only per-index state and must
// seed any RNG from the study seed plus the index (never from shared stream
// position). Under that contract results are invariant to scheduling, so the
// thread count is a pure throughput knob — `threads=1` and `threads=N`
// produce byte-identical studies (tests/core/parallel_study_test.cc).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/trace.h"
#include "util/error.h"

namespace pinscope::util {

/// Knobs for one parallel loop.
struct ParallelOptions {
  /// Worker threads: 0 = std::thread::hardware_concurrency(), 1 = run inline
  /// on the caller (no threads spawned), N = at most N workers.
  int threads = 0;
  /// Indices claimed per cursor fetch; raise for very small bodies so the
  /// atomic does not dominate.
  std::size_t grain = 1;
  /// Optional trace sink: each worker records one span ("<trace_label>.
  /// worker", arg "worker" = index) covering its drain of the loop. Purely
  /// observational — never consulted by the loop logic (DESIGN.md §11).
  obs::TraceSink* trace = nullptr;
  /// Span-name prefix for the worker spans above.
  const char* trace_label = "parallel";
};

/// One failed index of a parallel loop.
struct IndexFailure {
  std::size_t index = 0;
  std::string message;
};

/// Aggregate failure of a parallel loop. Every index runs to completion even
/// when siblings throw; the failures are collected and reported here sorted
/// by index, so the error is as deterministic as the results.
class ParallelError : public Error {
 public:
  explicit ParallelError(std::vector<IndexFailure> failures);

  [[nodiscard]] const std::vector<IndexFailure>& failures() const {
    return failures_;
  }

 private:
  std::vector<IndexFailure> failures_;
};

/// Number of workers a loop over `n` items will actually use (never more
/// than `n`; never 0 for non-empty ranges, even if hardware_concurrency is
/// unknown).
[[nodiscard]] int ResolveThreads(int requested, std::size_t n);

/// Runs body(i) for every i in [0, n). Exceptions escaping the body are
/// aggregated into one ParallelError (sorted by index) thrown after the loop
/// drains. Nested calls are safe: each invocation owns its worker threads.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 const ParallelOptions& options = {});

/// Maps i → fn(i) into an index-ordered vector — the merge point that makes
/// parallel results identical to serial ones regardless of completion order.
/// The result type must be default-constructible.
template <typename Fn>
[[nodiscard]] auto ParallelMap(std::size_t n, Fn&& fn,
                               const ParallelOptions& options = {})
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  std::vector<std::decay_t<decltype(fn(std::size_t{}))>> out(n);
  ParallelFor(n, [&](std::size_t i) { out[i] = fn(i); }, options);
  return out;
}

}  // namespace pinscope::util

#include "util/rng.h"

#include <algorithm>
#include <numeric>

namespace pinscope::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

Rng Rng::Fork(std::string_view label) const {
  // Mix the current state (without advancing it) with the label hash.
  const std::uint64_t mix = s_[0] ^ Rotl(s_[1], 13) ^ Rotl(s_[2], 29) ^ s_[3];
  return Rng(mix ^ StableHash64(label));
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw Error("Rng::UniformU64: lo > hi");
  const std::uint64_t span = hi - lo + 1;  // span==0 means the full 2^64 range
  if (span == 0) return NextU64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return lo + v % span;
}

int Rng::UniformInt(int lo, int hi) {
  if (lo > hi) throw Error("Rng::UniformInt: lo > hi");
  return lo + static_cast<int>(UniformU64(0, static_cast<std::uint64_t>(hi - lo)));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return UniformDouble() < p;
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  if (weights.empty()) throw Error("Rng::WeightedIndex: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw Error("Rng::WeightedIndex: non-positive total weight");
  double target = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::SampleIndices(std::size_t n, std::size_t k) {
  k = std::min(k, n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(UniformU64(0, n - 1 - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::string Rng::Identifier(std::size_t len) {
  static constexpr std::string_view kChars = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kChars[static_cast<std::size_t>(UniformU64(0, kChars.size() - 1))]);
  }
  return out;
}

std::uint64_t StableHash64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace pinscope::util

#include "util/hex.h"

#include <array>
#include <cctype>

namespace pinscope::util {
namespace {

constexpr std::array<char, 16> kDigits = {'0', '1', '2', '3', '4', '5', '6', '7',
                                          '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};

int NibbleValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HexEncode(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = NibbleValue(hex[i]);
    const int lo = NibbleValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

bool IsHexString(std::string_view s) {
  for (char c : s) {
    if (NibbleValue(c) < 0) return false;
  }
  return !s.empty();
}

}  // namespace pinscope::util

#include "util/cache_file.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace pinscope::util {

namespace {

constexpr std::uint32_t kMagic = 0x46435350;  // "PSCF" little-endian.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;

/// FNV-1a 64-bit over the payload: an integrity (not security) check that
/// catches truncation and bit rot without pulling crypto into util.
std::uint64_t Checksum(const Bytes& payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : payload) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void AppendHeader(Bytes& out, std::uint32_t kind, std::uint32_t version,
                  const Bytes& payload) {
  AppendU32(out, kMagic);
  AppendU32(out, kind);
  AppendU32(out, version);
  AppendU64(out, payload.size());
  AppendU64(out, Checksum(payload));
}

}  // namespace

void AppendU8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void AppendU32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void AppendU64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void AppendI64(Bytes& out, std::int64_t v) {
  AppendU64(out, static_cast<std::uint64_t>(v));
}

void AppendString(Bytes& out, std::string_view s) {
  AppendU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void AppendBlob(Bytes& out, const Bytes& b) {
  AppendU32(out, static_cast<std::uint32_t>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

std::uint8_t ByteReader::U8() {
  std::uint8_t v = 0;
  Raw(&v, 1);
  return v;
}

std::uint32_t ByteReader::U32() {
  std::uint8_t raw[4] = {};
  Raw(raw, sizeof(raw));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::U64() {
  std::uint8_t raw[8] = {};
  Raw(raw, sizeof(raw));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
  return v;
}

std::int64_t ByteReader::I64() { return static_cast<std::int64_t>(U64()); }

std::string ByteReader::String() {
  const std::uint32_t n = U32();
  if (!ok_ || data_->size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_->data() + pos_), n);
  pos_ += n;
  return s;
}

Bytes ByteReader::Blob() {
  const std::uint32_t n = U32();
  if (!ok_ || data_->size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  Bytes b(data_->begin() + static_cast<std::ptrdiff_t>(pos_),
          data_->begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

bool ByteReader::Raw(std::uint8_t* dst, std::size_t n) {
  if (!ok_ || data_->size() - pos_ < n) {
    ok_ = false;
    std::memset(dst, 0, n);
    return false;
  }
  std::memcpy(dst, data_->data() + pos_, n);
  pos_ += n;
  return true;
}

bool WriteCacheFile(const std::string& path, std::uint32_t kind,
                    std::uint32_t version, const Bytes& payload) {
  Bytes file;
  file.reserve(kHeaderBytes + payload.size());
  AppendHeader(file, kind, version, payload);
  Append(file, payload);

  // Unique temp name per writer so two studies saving into one cache dir
  // never scribble on the same in-progress file; rename() then publishes
  // whole files only.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(counter.fetch_add(1)) + "." +
                          std::to_string(reinterpret_cast<std::uintptr_t>(&counter));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(file.data(), 1, file.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != file.size() || !flushed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Bytes> ReadCacheFile(const std::string& path, std::uint32_t kind,
                                   std::uint32_t version) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  Bytes file;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    file.insert(file.end(), buf, buf + n);
  }
  std::fclose(f);

  if (file.size() < kHeaderBytes) return std::nullopt;
  ByteReader header(file);
  if (header.U32() != kMagic) return std::nullopt;
  if (header.U32() != kind) return std::nullopt;
  if (header.U32() != version) return std::nullopt;
  const std::uint64_t payload_size = header.U64();
  const std::uint64_t checksum = header.U64();
  if (file.size() - kHeaderBytes != payload_size) return std::nullopt;
  Bytes payload(file.begin() + kHeaderBytes, file.end());
  if (Checksum(payload) != checksum) return std::nullopt;
  return payload;
}

}  // namespace pinscope::util

#include "util/base64.h"

#include <array>

namespace pinscope::util {
namespace {

constexpr std::string_view kAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> BuildReverse() {
  std::array<int, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[static_cast<std::size_t>(i)])] = i;
  }
  return rev;
}

const std::array<int, 256>& Reverse() {
  static const std::array<int, 256> rev = BuildReverse();
  return rev;
}

}  // namespace

std::string Base64Encode(const Bytes& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                            static_cast<std::uint32_t>(data[i + 1]) << 8 |
                            static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(kAlphabet[n >> 18 & 0x3f]);
    out.push_back(kAlphabet[n >> 12 & 0x3f]);
    out.push_back(kAlphabet[n >> 6 & 0x3f]);
    out.push_back(kAlphabet[n & 0x3f]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[n >> 18 & 0x3f]);
    out.push_back(kAlphabet[n >> 12 & 0x3f]);
    out.append("==");
  } else if (rest == 2) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                            static_cast<std::uint32_t>(data[i + 1]) << 8;
    out.push_back(kAlphabet[n >> 18 & 0x3f]);
    out.push_back(kAlphabet[n >> 12 & 0x3f]);
    out.push_back(kAlphabet[n >> 6 & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> Base64Decode(std::string_view text) {
  // Strip padding.
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);
  Bytes out;
  out.reserve(text.size() * 3 / 4);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const int v = Reverse()[static_cast<unsigned char>(c)];
    if (v < 0) return std::nullopt;
    acc = acc << 6 | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>(acc >> bits & 0xff));
    }
  }
  // A single leftover sextet cannot encode a byte; reject streams like "A".
  if (text.size() % 4 == 1) return std::nullopt;
  return out;
}

bool IsBase64String(std::string_view s) {
  if (s.empty()) return false;
  std::size_t pad = 0;
  while (!s.empty() && s.back() == '=') {
    s.remove_suffix(1);
    ++pad;
  }
  if (pad > 2) return false;
  for (char c : s) {
    if (Reverse()[static_cast<unsigned char>(c)] < 0) return false;
  }
  return true;
}

}  // namespace pinscope::util

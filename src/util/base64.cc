#include "util/base64.h"

#include <array>

namespace pinscope::util {
namespace {

constexpr std::string_view kAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> BuildReverse() {
  std::array<int, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[static_cast<std::size_t>(i)])] = i;
  }
  return rev;
}

const std::array<int, 256>& Reverse() {
  static const std::array<int, 256> rev = BuildReverse();
  return rev;
}

}  // namespace

std::string Base64Encode(const Bytes& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                            static_cast<std::uint32_t>(data[i + 1]) << 8 |
                            static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(kAlphabet[n >> 18 & 0x3f]);
    out.push_back(kAlphabet[n >> 12 & 0x3f]);
    out.push_back(kAlphabet[n >> 6 & 0x3f]);
    out.push_back(kAlphabet[n & 0x3f]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[n >> 18 & 0x3f]);
    out.push_back(kAlphabet[n >> 12 & 0x3f]);
    out.append("==");
  } else if (rest == 2) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                            static_cast<std::uint32_t>(data[i + 1]) << 8;
    out.push_back(kAlphabet[n >> 18 & 0x3f]);
    out.push_back(kAlphabet[n >> 12 & 0x3f]);
    out.push_back(kAlphabet[n >> 6 & 0x3f]);
    out.push_back('=');
  }
  return out;
}

bool Base64DecodeInto(std::string_view text, Bytes& out) {
  // Strip padding.
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);
  // A single leftover sextet cannot encode a byte; reject streams like "A".
  if (text.size() % 4 == 1) return false;
  // Decoded length is exact, so size once and write through a raw pointer —
  // this decoder runs for every certificate of every bundle scanned, where
  // per-byte push_back capacity checks were measurable.
  out.resize(text.size() * 3 / 4);
  const std::array<int, 256>& rev = Reverse();  // hoist the static-local guard
  const auto at = [&](std::size_t i) {
    return rev[static_cast<unsigned char>(text[i])];
  };
  std::uint8_t* dst = out.data();
  std::size_t i = 0;
  for (; i + 4 <= text.size(); i += 4) {
    const int v0 = at(i), v1 = at(i + 1), v2 = at(i + 2), v3 = at(i + 3);
    if ((v0 | v1 | v2 | v3) < 0) return false;
    const std::uint32_t n = static_cast<std::uint32_t>(v0) << 18 |
                            static_cast<std::uint32_t>(v1) << 12 |
                            static_cast<std::uint32_t>(v2) << 6 |
                            static_cast<std::uint32_t>(v3);
    dst[0] = static_cast<std::uint8_t>(n >> 16);
    dst[1] = static_cast<std::uint8_t>(n >> 8 & 0xff);
    dst[2] = static_cast<std::uint8_t>(n & 0xff);
    dst += 3;
  }
  const std::size_t rest = text.size() - i;  // 0, 2 or 3 after the %4 check
  if (rest == 2) {
    const int v0 = at(i), v1 = at(i + 1);
    if ((v0 | v1) < 0) return false;
    *dst = static_cast<std::uint8_t>(v0 << 2 | v1 >> 4);
  } else if (rest == 3) {
    const int v0 = at(i), v1 = at(i + 1), v2 = at(i + 2);
    if ((v0 | v1 | v2) < 0) return false;
    dst[0] = static_cast<std::uint8_t>(v0 << 2 | v1 >> 4);
    dst[1] = static_cast<std::uint8_t>((v1 & 0xf) << 4 | v2 >> 2);
  }
  return true;
}

std::optional<Bytes> Base64Decode(std::string_view text) {
  Bytes out;
  if (!Base64DecodeInto(text, out)) return std::nullopt;
  return out;
}

bool IsBase64String(std::string_view s) {
  if (s.empty()) return false;
  std::size_t pad = 0;
  while (!s.empty() && s.back() == '=') {
    s.remove_suffix(1);
    ++pad;
  }
  if (pad > 2) return false;
  const std::array<int, 256>& rev = Reverse();
  for (char c : s) {
    if (rev[static_cast<unsigned char>(c)] < 0) return false;
  }
  return true;
}

}  // namespace pinscope::util

// Error handling primitives.
//
// Subsystem boundaries throw `Error`; hot paths return std::optional and let
// the caller decide whether absence is exceptional.
#pragma once

#include <stdexcept>
#include <string>

namespace pinscope::util {

/// Base exception for all pinscope failures (parse errors, protocol
/// violations, corpus misconfiguration). Carries a human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input blob (NSC XML, plist, PEM, package container) cannot
/// be decoded.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

}  // namespace pinscope::util

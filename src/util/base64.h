// RFC 4648 base64 encoding/decoding (standard alphabet, '=' padding).
//
// Used for PEM certificate bodies and SubjectPublicKeyInfo pin hashes, whose
// on-the-wire forms the static analyzer greps for.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace pinscope::util {

/// Encodes `data` with the standard base64 alphabet and padding.
[[nodiscard]] std::string Base64Encode(const Bytes& data);

/// Decodes standard base64. Accepts unpadded input; rejects whitespace and
/// characters outside the alphabet. Returns std::nullopt on malformed input.
[[nodiscard]] std::optional<Bytes> Base64Decode(std::string_view text);

/// As above, but decodes into `out` (resized to the exact decoded length) so
/// hot loops can reuse one buffer's capacity across calls. Returns false on
/// malformed input, in which case `out` holds unspecified contents.
bool Base64DecodeInto(std::string_view text, Bytes& out);

/// True if `s` consists solely of base64 alphabet characters (optionally
/// followed by '=' padding) — the character class the paper's pin regex uses.
[[nodiscard]] bool IsBase64String(std::string_view s);

}  // namespace pinscope::util

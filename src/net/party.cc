#include "net/party.h"

#include "net/hostname.h"
#include "util/error.h"

namespace pinscope::net {

std::string_view PartyName(Party p) {
  switch (p) {
    case Party::kFirst: return "first-party";
    case Party::kThird: return "third-party";
    case Party::kUnknown: return "unknown";
  }
  throw util::Error("unknown Party");
}

void OrganizationDirectory::Register(std::string registrable_domain,
                                     std::string organization) {
  owners_[std::move(registrable_domain)] = std::move(organization);
}

std::optional<std::string> OrganizationDirectory::OwnerOf(
    std::string_view hostname) const {
  const auto it = owners_.find(RegistrableDomain(hostname));
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

Party OrganizationDirectory::Attribute(std::string_view app_organization,
                                       std::string_view hostname) const {
  const auto owner = OwnerOf(hostname);
  if (!owner.has_value()) return Party::kUnknown;
  return *owner == app_organization ? Party::kFirst : Party::kThird;
}

Party OrganizationDirectory::PartyOrThird(std::string_view app_organization,
                                          std::string_view hostname) const {
  const Party p = Attribute(app_organization, hostname);
  return p == Party::kUnknown ? Party::kThird : p;
}

}  // namespace pinscope::net

#include "net/mitm_proxy.h"

namespace pinscope::net {
namespace {

x509::DistinguishedName ProxyCaName() {
  x509::DistinguishedName dn;
  dn.common_name = "mitmproxy";
  dn.organization = "mitmproxy";
  dn.country = "US";
  return dn;
}

}  // namespace

MitmProxy::MitmProxy(std::string ca_label)
    : ca_(x509::CertificateIssuer::SelfSignedRoot(
          ca_label, ProxyCaName(), util::kStudyEpoch - util::kMillisPerYear,
          util::kStudyEpoch + 10 * util::kMillisPerYear)) {}

const x509::Certificate& MitmProxy::CaCertificate() const {
  return ca_.certificate();
}

InterceptResult MitmProxy::Intercept(const tls::ClientTlsConfig& client,
                                     const tls::ServerEndpoint& server,
                                     const tls::AppPayload& payload,
                                     util::SimTime now, util::Rng& rng) {
  auto it = forged_cache_.find(server.hostname);
  if (it == forged_cache_.end()) {
    x509::IssueSpec spec;
    spec.subject.common_name = server.hostname;
    spec.subject.organization = "mitmproxy";
    spec.san_dns = {server.hostname};
    spec.not_before = util::kStudyEpoch - util::kMillisPerDay;
    spec.not_after = util::kStudyEpoch + util::kMillisPerYear;
    x509::CertificateChain forged = {ca_.Issue(spec, rng), ca_.certificate()};
    it = forged_cache_.emplace(server.hostname, std::move(forged)).first;
  }

  InterceptResult result;
  result.outcome =
      tls::SimulateConnection(client, server, it->second, payload, now, rng);
  result.decrypted = result.outcome.application_data_sent;
  return result;
}

}  // namespace pinscope::net

#include "net/mitm_proxy.h"

#include "obs/log.h"
#include "obs/metrics.h"

namespace pinscope::net {
namespace {

x509::DistinguishedName ProxyCaName() {
  x509::DistinguishedName dn;
  dn.set_common_name("mitmproxy");
  dn.set_organization("mitmproxy");
  dn.set_country("US");
  return dn;
}

util::Rng LeafBaseRng(std::uint64_t seed, const std::string& ca_label) {
  return util::Rng(seed).Fork("mitm.forged-leaf|" + ca_label);
}

}  // namespace

MitmProxy::MitmProxy(std::string ca_label, std::uint64_t seed,
                     std::shared_ptr<ForgedLeafCache> forged)
    : ca_(x509::CertificateIssuer::SelfSignedRoot(
          ca_label, ProxyCaName(), util::kStudyEpoch - util::kMillisPerYear,
          util::kStudyEpoch + 10 * util::kMillisPerYear)),
      leaf_rng_(LeafBaseRng(seed, ca_label)),
      forged_(forged != nullptr ? std::move(forged)
                                : std::make_shared<ForgedLeafCache>()) {}

const x509::Certificate& MitmProxy::CaCertificate() const {
  return ca_.certificate();
}

std::shared_ptr<const x509::CertificateChain> MitmProxy::ForgedChainFor(
    const std::string& hostname) const {
  if (auto cached = forged_->Find(hostname)) return cached;

  x509::IssueSpec spec;
  spec.subject.set_common_name(hostname);
  spec.subject.set_organization("mitmproxy");
  spec.san_dns = {hostname};
  spec.not_before = util::kStudyEpoch - util::kMillisPerDay;
  spec.not_after = util::kStudyEpoch + util::kMillisPerYear;
  // The leaf key comes from a per-hostname fork of the proxy's base stream,
  // so the forged bytes are identical no matter which app, thread, or
  // interception ordering triggers this miss — racing inserts below deposit
  // the same chain and first-wins resolves them invisibly.
  util::Rng leaf_rng = leaf_rng_.Fork(hostname);
  x509::CertificateChain forged = {ca_.Issue(spec, leaf_rng),
                                   ca_.certificate()};
  return forged_->Insert(hostname, std::move(forged));
}

InterceptResult MitmProxy::Intercept(const tls::ClientTlsConfig& client,
                                     const tls::ServerEndpoint& server,
                                     const tls::AppPayload& payload,
                                     util::SimTime now, util::Rng& rng) const {
  const std::shared_ptr<const x509::CertificateChain> forged =
      ForgedChainFor(server.hostname);

  InterceptResult result;
  result.outcome =
      tls::SimulateConnection(client, server, *forged, payload, now, rng);
  result.decrypted = result.outcome.application_data_sent;
  obs::CounterOrNull(client.metrics, "net.intercepts").Increment();
  if (result.decrypted) {
    obs::CounterOrNull(client.metrics, "net.intercepts_decrypted").Increment();
  }
  // Per-flow intercept outcome for the decision journal — the MITM half of
  // the differential evidence. Attributed to the intercepted client's scope
  // (the proxy itself is a study-wide shared fixture).
  obs::EmitTo(client.log, obs::Severity::kDecision, "mitm.intercept",
              {{"host", server.hostname},
               {"decrypted", result.decrypted},
               {"failure", tls::FailureReasonName(result.outcome.failure)}});
  return result;
}

}  // namespace pinscope::net

// Study-wide forged-leaf chain cache.
//
// mitmproxy keeps a per-process certificate cache so each SNI is forged
// once; at study scale the same hostnames recur across *apps* (shared SDK
// endpoints, CDNs), so pinscope hoists that cache to study scope: one
// sharded hostname → forged-chain map shared by every app and worker
// thread. This is sound because forged-leaf bytes are a pure function of
// (CA label, study seed, hostname) — see MitmProxy, which derives issuance
// randomness from a stable per-hostname fork instead of any caller stream —
// so every would-be issuer deposits identical bytes.
//
// Thread safety & determinism mirror staticanalysis/scan_cache.h: per-shard
// mutexes, first-insert-wins, shared_ptr entries so readers never copy a
// chain.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/mutex.h"
#include "x509/certificate.h"

namespace pinscope::net {

/// Monotonic counters describing a cache's lifetime (snapshot).
struct ForgedLeafCacheStats {
  std::size_t lookups = 0;  ///< Interceptions that consulted the cache.
  std::size_t hits = 0;     ///< Interceptions served a cached chain.
  std::size_t misses = 0;   ///< Hostnames that had to be forged.
  std::size_t entries = 0;  ///< Distinct hostnames stored.

  [[nodiscard]] double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Thread-safe, deterministic hostname → forged-chain map. One instance can
/// be shared by every MitmProxy view of a study.
class ForgedLeafCache {
 public:
  explicit ForgedLeafCache(std::size_t shard_count = kDefaultShards);

  ForgedLeafCache(const ForgedLeafCache&) = delete;
  ForgedLeafCache& operator=(const ForgedLeafCache&) = delete;

  /// Looks up the forged chain for `hostname`. Counts one lookup; nullptr on
  /// miss.
  [[nodiscard]] std::shared_ptr<const x509::CertificateChain> Find(
      std::string_view hostname);

  /// Deposits a forged chain (first insert wins) and returns the resident
  /// entry — racing forgers all observe one canonical chain (their inputs
  /// are identical, so so are their bytes).
  std::shared_ptr<const x509::CertificateChain> Insert(
      std::string_view hostname, x509::CertificateChain chain);

  /// Counter snapshot (approximate while interceptions are in flight).
  [[nodiscard]] ForgedLeafCacheStats Stats() const;

  /// Binds every shard's lock to the `lock.<name>.contended` /
  /// `lock.<name>.wait_us` family (obs/mutex.h) so the run autopsy's
  /// idle-time attribution covers this cache. Null-safe; call before the
  /// cache is shared across workers.
  void AttachMetrics(obs::MetricsRegistry* metrics,
                     std::string_view name = "forged_leaf_cache") {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      shards_[s].mu.Attach(metrics, name);
    }
  }

  static constexpr std::size_t kDefaultShards = 16;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Shard {
    obs::TrackedMutex mu;
    std::unordered_map<std::string,
                       std::shared_ptr<const x509::CertificateChain>,
                       StringHash, std::equal_to<>>
        map;
  };

  Shard& ShardFor(std::string_view hostname) {
    return shards_[StringHash{}(hostname) % shard_count_];
  }

  const std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::size_t> lookups_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> entries_{0};
};

}  // namespace pinscope::net

// A minimal HTTP/1.1 request model.
//
// App payloads in the simulation are real HTTP requests; the PII analysis
// (§4.4) parses them the way the paper's mitmproxy scripts inspect decrypted
// flows — URL query parameters, headers, and form bodies — instead of only
// grepping raw bytes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pinscope::net {

/// One parsed HTTP request.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< Request target incl. query ("/v1/collect?x=1").
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Path part of the target (before '?').
  [[nodiscard]] std::string Path() const;

  /// Decoded key/value pairs from the query string.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> QueryParams() const;

  /// Decoded key/value pairs from an x-www-form-urlencoded body.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> FormParams() const;

  /// First header value with the given (case-insensitive) name.
  [[nodiscard]] std::optional<std::string> Header(std::string_view name) const;

  /// Serializes back to wire format (CRLF line endings, blank line, body).
  [[nodiscard]] std::string Serialize() const;

  /// Parses a serialized request. Returns nullopt when the request line is
  /// malformed; tolerates missing headers/body.
  [[nodiscard]] static std::optional<HttpRequest> Parse(std::string_view raw);
};

/// Splits "a=1&b=2" into decoded pairs (no %-decoding: the simulation never
/// emits escapes).
[[nodiscard]] std::vector<std::pair<std::string, std::string>> ParseFormEncoded(
    std::string_view text);

}  // namespace pinscope::net

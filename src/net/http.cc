#include "net/http.h"

#include "util/strings.h"

namespace pinscope::net {

std::vector<std::pair<std::string, std::string>> ParseFormEncoded(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> out;
  if (text.empty()) return out;
  for (const std::string& piece : util::Split(text, '&')) {
    if (piece.empty()) continue;
    const std::size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(piece, "");
    } else {
      out.emplace_back(piece.substr(0, eq), piece.substr(eq + 1));
    }
  }
  return out;
}

std::string HttpRequest::Path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::vector<std::pair<std::string, std::string>> HttpRequest::QueryParams() const {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return {};
  return ParseFormEncoded(std::string_view(target).substr(q + 1));
}

std::vector<std::pair<std::string, std::string>> HttpRequest::FormParams() const {
  const auto type = Header("content-type");
  if (!type.has_value() ||
      !util::Contains(util::ToLower(*type), "x-www-form-urlencoded")) {
    return {};
  }
  return ParseFormEncoded(body);
}

std::optional<std::string> HttpRequest::Header(std::string_view name) const {
  const std::string want = util::ToLower(name);
  for (const auto& [key, value] : headers) {
    if (util::ToLower(key) == want) return value;
  }
  return std::nullopt;
}

std::string HttpRequest::Serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  for (const auto& [key, value] : headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::optional<HttpRequest> HttpRequest::Parse(std::string_view raw) {
  // Split head from body at the blank line.
  std::string_view head = raw;
  std::string_view body;
  if (const std::size_t sep = raw.find("\r\n\r\n"); sep != std::string_view::npos) {
    head = raw.substr(0, sep);
    body = raw.substr(sep + 4);
  }

  HttpRequest req;
  bool first_line = true;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;

    if (first_line) {
      first_line = false;
      const std::vector<std::string> parts = util::Split(line, ' ');
      // Request-line: exactly method SP target SP version, HTTP version tag.
      if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
          !util::StartsWith(parts[2], "HTTP/")) {
        return std::nullopt;
      }
      req.method = parts[0];
      req.target = parts[1];
      req.version = parts[2];
      continue;
    }
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    req.headers.emplace_back(std::string(util::Trim(line.substr(0, colon))),
                             std::string(util::Trim(line.substr(colon + 1))));
  }
  req.body = std::string(body);
  return req;
}

}  // namespace pinscope::net

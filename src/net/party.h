// First-/third-party attribution of destinations.
//
// §5.2: "We divide domains contacted by an app into first and third party,
// attributing each domain for an app using various points of information
// (whois data, certificate subject names, etc.)". The simulation's whois
// substitute is an organization directory mapping registrable domains to the
// organizations that operate them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace pinscope::net {

/// Whether a destination belongs to the app's own operator.
enum class Party { kFirst, kThird, kUnknown };

/// Human-readable party name.
[[nodiscard]] std::string_view PartyName(Party p);

/// Registry of domain ownership (whois substitute). Keys are registrable
/// domains; values are organization identifiers.
class OrganizationDirectory {
 public:
  /// Registers `registrable_domain` as operated by `organization`.
  /// Re-registration overwrites (latest record wins, like whois updates).
  void Register(std::string registrable_domain, std::string organization);

  /// Organization operating the registrable domain of `hostname`, if known.
  [[nodiscard]] std::optional<std::string> OwnerOf(std::string_view hostname) const;

  /// Attribution: kFirst if `hostname`'s owner equals `app_organization`,
  /// kThird if it is some other known organization, kUnknown otherwise.
  /// The paper treats unknown-ownership destinations conservatively as third
  /// party; `PartyOrThird` applies that collapse.
  [[nodiscard]] Party Attribute(std::string_view app_organization,
                                std::string_view hostname) const;

  /// Attribution with kUnknown collapsed to kThird.
  [[nodiscard]] Party PartyOrThird(std::string_view app_organization,
                                   std::string_view hostname) const;

  /// Number of registered domains.
  [[nodiscard]] std::size_t size() const { return owners_.size(); }

 private:
  std::map<std::string, std::string> owners_;
};

}  // namespace pinscope::net

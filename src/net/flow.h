// Captured TLS flows — what the dynamic pipeline's "pcap" contains.
//
// A Flow is the passive observer's view of one TLS connection: SNI, record
// trace, closure flags, and ClientHello metadata. Plaintext only appears when
// an active component (MITM proxy with an accepted certificate, or the
// instrumentation layer) managed to decrypt the session.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tls/cipher_suites.h"
#include "tls/handshake.h"
#include "tls/record.h"

namespace pinscope::net {

/// What generated a flow on the device.
enum class FlowOrigin {
  kApp,               ///< Traffic from the app under test.
  kOsBackground,      ///< Platform services (iOS: apple.com, icloud.com, ...).
  kAssociatedDomains, ///< iOS associated-domain verification (§4.5).
};

/// One captured TLS connection.
struct Flow {
  std::string sni;                 ///< Server Name Indication (may be empty).
  FlowOrigin origin = FlowOrigin::kApp;
  std::int64_t start_ms = 0;       ///< Capture-relative start time.
  tls::TlsVersion version = tls::TlsVersion::kTls13;
  std::vector<tls::CipherSuiteId> offered_ciphers;
  std::optional<tls::CipherSuiteId> negotiated_cipher;
  std::vector<tls::Record> records;
  tls::Closure closure = tls::Closure::kCleanFin;
  /// Filled only when an active observer could decrypt the session.
  std::optional<std::string> decrypted_payload;

  /// True if the flow advertises any §5.4 "bad" cipher suite.
  [[nodiscard]] bool AdvertisesWeakCipher() const {
    return tls::AdvertisesWeakCipher(offered_ciphers);
  }
};

/// A device capture: every flow observed during one app test run.
struct Capture {
  std::vector<Flow> flows;

  /// Distinct non-empty SNI values, sorted.
  [[nodiscard]] std::vector<std::string> Destinations() const;

  /// Flows whose SNI equals `sni`.
  [[nodiscard]] std::vector<const Flow*> FlowsTo(std::string_view sni) const;

  /// Fraction of flows with a non-empty SNI (the paper reports 99%).
  [[nodiscard]] double SniCoverage() const;
};

/// Builds a Flow from a simulated connection outcome.
[[nodiscard]] Flow FlowFromOutcome(std::string sni,
                                   const tls::ConnectionOutcome& outcome,
                                   std::int64_t start_ms, FlowOrigin origin,
                                   bool observer_decrypted);

/// Consuming overload for freshly-simulated outcomes: steals the record
/// trace, cipher offer, and plaintext instead of copying them (the record
/// vector is the flow's dominant allocation).
[[nodiscard]] Flow FlowFromOutcome(std::string sni,
                                   tls::ConnectionOutcome&& outcome,
                                   std::int64_t start_ms, FlowOrigin origin,
                                   bool observer_decrypted);

}  // namespace pinscope::net

#include "net/forged_leaf_cache.h"

#include <utility>

namespace pinscope::net {

ForgedLeafCache::ForgedLeafCache(std::size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

std::shared_ptr<const x509::CertificateChain> ForgedLeafCache::Find(
    std::string_view hostname) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(hostname);
  std::shared_ptr<const x509::CertificateChain> found;
  {
    std::lock_guard<obs::TrackedMutex> lock(shard.mu);
    const auto it = shard.map.find(hostname);
    if (it != shard.map.end()) found = it->second;
  }
  if (found != nullptr) hits_.fetch_add(1, std::memory_order_relaxed);
  return found;
}

std::shared_ptr<const x509::CertificateChain> ForgedLeafCache::Insert(
    std::string_view hostname, x509::CertificateChain chain) {
  auto entry =
      std::make_shared<const x509::CertificateChain>(std::move(chain));
  Shard& shard = ShardFor(hostname);
  std::lock_guard<obs::TrackedMutex> lock(shard.mu);
  const auto [it, inserted] =
      shard.map.try_emplace(std::string(hostname), std::move(entry));
  if (inserted) entries_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

ForgedLeafCacheStats ForgedLeafCache::Stats() const {
  ForgedLeafCacheStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = stats.lookups - stats.hits;
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pinscope::net

#include "net/hostname.h"

#include <array>
#include <cctype>

#include "util/strings.h"

namespace pinscope::net {
namespace {

// Two-label public suffixes checked before the generic one-label rule.
constexpr std::array<std::string_view, 8> kTwoLabelSuffixes = {
    "co.uk", "com.au", "co.jp", "com.br", "co.in", "com.cn", "co.kr", "org.uk"};

bool IsTwoLabelSuffix(std::string_view s) {
  for (std::string_view suffix : kTwoLabelSuffixes) {
    if (s == suffix) return true;
  }
  return false;
}

}  // namespace

std::string RegistrableDomain(std::string_view hostname) {
  const std::vector<std::string> labels = util::Split(hostname, '.');
  const std::size_t n = labels.size();
  if (n <= 2) return std::string(hostname);

  const std::string last_two = labels[n - 2] + "." + labels[n - 1];
  if (IsTwoLabelSuffix(last_two)) {
    return labels[n - 3] + "." + last_two;
  }
  return last_two;
}

bool IsSubdomainOf(std::string_view hostname, std::string_view domain) {
  if (hostname == domain) return true;
  return util::EndsWith(hostname, "." + std::string(domain));
}

bool LooksLikeHostname(std::string_view s) {
  if (s.empty() || s.size() > 253) return false;
  bool saw_dot = false;
  char prev = '.';
  for (char c : s) {
    if (c == '.') {
      if (prev == '.') return false;  // empty label
      saw_dot = true;
    } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                 std::isdigit(static_cast<unsigned char>(c)) || c == '-')) {
      return false;
    }
    prev = c;
  }
  return saw_dot && prev != '.';
}

}  // namespace pinscope::net

#include "net/flow.h"

#include <algorithm>
#include <set>

namespace pinscope::net {

std::vector<std::string> Capture::Destinations() const {
  std::set<std::string> unique;
  for (const Flow& f : flows) {
    if (!f.sni.empty()) unique.insert(f.sni);
  }
  return std::vector<std::string>(unique.begin(), unique.end());
}

std::vector<const Flow*> Capture::FlowsTo(std::string_view sni) const {
  std::vector<const Flow*> out;
  for (const Flow& f : flows) {
    if (f.sni == sni) out.push_back(&f);
  }
  return out;
}

double Capture::SniCoverage() const {
  if (flows.empty()) return 0.0;
  const auto with_sni = std::count_if(flows.begin(), flows.end(),
                                      [](const Flow& f) { return !f.sni.empty(); });
  return static_cast<double>(with_sni) / static_cast<double>(flows.size());
}

Flow FlowFromOutcome(std::string sni, const tls::ConnectionOutcome& outcome,
                     std::int64_t start_ms, FlowOrigin origin,
                     bool observer_decrypted) {
  Flow f;
  f.sni = std::move(sni);
  f.origin = origin;
  f.start_ms = start_ms;
  f.version = outcome.version;
  f.offered_ciphers = outcome.offered_ciphers;
  f.negotiated_cipher = outcome.negotiated_cipher;
  f.records = outcome.records;
  f.closure = outcome.closure;
  if (observer_decrypted && outcome.application_data_sent) {
    f.decrypted_payload = outcome.plaintext_sent;
  }
  return f;
}

}  // namespace pinscope::net

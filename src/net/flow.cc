#include "net/flow.h"

#include <algorithm>

namespace pinscope::net {

std::vector<std::string> Capture::Destinations() const {
  // sort+unique over one vector instead of a node-per-host std::set: same
  // sorted-distinct contract, no per-insert allocations.
  std::vector<std::string> out;
  out.reserve(flows.size());
  for (const Flow& f : flows) {
    if (!f.sni.empty()) out.push_back(f.sni);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<const Flow*> Capture::FlowsTo(std::string_view sni) const {
  std::vector<const Flow*> out;
  for (const Flow& f : flows) {
    if (f.sni == sni) out.push_back(&f);
  }
  return out;
}

double Capture::SniCoverage() const {
  if (flows.empty()) return 0.0;
  const auto with_sni = std::count_if(flows.begin(), flows.end(),
                                      [](const Flow& f) { return !f.sni.empty(); });
  return static_cast<double>(with_sni) / static_cast<double>(flows.size());
}

Flow FlowFromOutcome(std::string sni, const tls::ConnectionOutcome& outcome,
                     std::int64_t start_ms, FlowOrigin origin,
                     bool observer_decrypted) {
  return FlowFromOutcome(std::move(sni), tls::ConnectionOutcome(outcome),
                         start_ms, origin, observer_decrypted);
}

Flow FlowFromOutcome(std::string sni, tls::ConnectionOutcome&& outcome,
                     std::int64_t start_ms, FlowOrigin origin,
                     bool observer_decrypted) {
  Flow f;
  f.sni = std::move(sni);
  f.origin = origin;
  f.start_ms = start_ms;
  f.version = outcome.version;
  f.offered_ciphers = std::move(outcome.offered_ciphers);
  f.negotiated_cipher = outcome.negotiated_cipher;
  f.records = std::move(outcome.records);
  f.closure = outcome.closure;
  if (observer_decrypted && outcome.application_data_sent) {
    f.decrypted_payload = std::move(outcome.plaintext_sent);
  }
  return f;
}

}  // namespace pinscope::net

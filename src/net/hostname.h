// Hostname utilities: registrable-domain (eTLD+1) extraction.
//
// Party attribution (§5.2, Figure 5) groups destinations by registrable
// domain before mapping them to organizations. We embed a compact public
// suffix list covering the suffixes the simulated ecosystem uses.
#pragma once

#include <string>
#include <string_view>

namespace pinscope::net {

/// Returns the registrable domain (eTLD+1) of `hostname`, e.g.
/// "api.cdn.example.co.uk" → "example.co.uk". Returns `hostname` unchanged if
/// it already is a registrable domain or cannot be split.
[[nodiscard]] std::string RegistrableDomain(std::string_view hostname);

/// True if `hostname` equals `domain` or is a subdomain of it.
[[nodiscard]] bool IsSubdomainOf(std::string_view hostname, std::string_view domain);

/// Syntactic validity check used by parsers (labels of [a-z0-9-], dots).
[[nodiscard]] bool LooksLikeHostname(std::string_view s);

}  // namespace pinscope::net

// Monkey-in-the-middle proxy (mitmproxy substitute).
//
// The proxy terminates the client's TLS connection with a chain it forges on
// the fly for the requested SNI, signed by its own CA. Test devices have that
// CA installed in their OS store, so unpinned apps accept the forged chain and
// the proxy observes plaintext; pinned (or custom-PKI) connections abort —
// exactly the differential the §4.2.2 detector keys on.
//
// Forged-leaf determinism: the leaf key for a hostname is drawn from a stream
// forked per hostname off a base seeded by (study seed, CA label) — never
// from the caller's rng. Forged bytes therefore depend only on (CA label,
// seed, hostname), not on app order, thread interleaving, or how many
// interceptions came first, which is what lets one forged-leaf cache be
// shared across every app and worker of a study (see forged_leaf_cache.h and
// DESIGN.md §10).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/forged_leaf_cache.h"
#include "tls/handshake.h"
#include "util/rng.h"
#include "x509/issuer.h"

namespace pinscope::net {

/// Result of proxying one connection.
struct InterceptResult {
  tls::ConnectionOutcome outcome;  ///< Client-side connection as captured.
  bool decrypted = false;          ///< Proxy observed application plaintext.
};

/// An intercepting TLS proxy with a deterministic CA identity.
class MitmProxy {
 public:
  /// Default leaf-issuance seed; matches DynamicOptions::seed so standalone
  /// proxies forge the same bytes as a default-configured pipeline.
  static constexpr std::uint64_t kDefaultSeed = 0x9e3779b9;

  /// Creates a proxy whose CA key derives from `ca_label` (stable across
  /// runs) and whose forged-leaf keys derive from (`seed`, `ca_label`,
  /// hostname). When `forged` is non-null the proxy shares that forged-leaf
  /// cache (the study-scoped fixture); otherwise it owns a private one.
  explicit MitmProxy(std::string ca_label = "mitmproxy",
                     std::uint64_t seed = kDefaultSeed,
                     std::shared_ptr<ForgedLeafCache> forged = nullptr);

  /// The proxy's CA certificate — install this in a device's root store to
  /// emulate the paper's test-device setup.
  [[nodiscard]] const x509::Certificate& CaCertificate() const;

  /// Intercepts a connection from `client` to `server`: forges a leaf for the
  /// server's hostname, presents [forged-leaf, proxy-CA], and reports whether
  /// plaintext was recovered. Forged leaves are cached per hostname, like
  /// mitmproxy's certificate cache; the cache is internally synchronized, so
  /// a shared proxy may intercept from many threads at once. `rng` only
  /// jitters the simulated wire trace — it never feeds issuance. Interception
  /// counters are recorded against `client.metrics` (when set) rather than
  /// proxy state, so one shared proxy can serve studies with different
  /// observers.
  [[nodiscard]] InterceptResult Intercept(const tls::ClientTlsConfig& client,
                                          const tls::ServerEndpoint& server,
                                          const tls::AppPayload& payload,
                                          util::SimTime now,
                                          util::Rng& rng) const;

  /// The forged chain this proxy presents for `hostname` (forging it now if
  /// never intercepted). Exposed for the determinism regression tests.
  [[nodiscard]] std::shared_ptr<const x509::CertificateChain> ForgedChainFor(
      const std::string& hostname) const;

  /// Counters of the (possibly shared) forged-leaf cache.
  [[nodiscard]] ForgedLeafCacheStats ForgedCacheStats() const {
    return forged_->Stats();
  }

  /// The (possibly shared) forged-leaf cache itself — exposed so study-level
  /// owners can bind its shard locks to contention metrics
  /// (ForgedLeafCache::AttachMetrics).
  [[nodiscard]] ForgedLeafCache* forged_cache() const { return forged_.get(); }

 private:
  x509::CertificateIssuer ca_;
  /// Base stream for leaf keys; Fork(hostname) (a const operation) yields
  /// the per-hostname issuance stream.
  util::Rng leaf_rng_;
  std::shared_ptr<ForgedLeafCache> forged_;
};

}  // namespace pinscope::net

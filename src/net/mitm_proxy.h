// Monkey-in-the-middle proxy (mitmproxy substitute).
//
// The proxy terminates the client's TLS connection with a chain it forges on
// the fly for the requested SNI, signed by its own CA. Test devices have that
// CA installed in their OS store, so unpinned apps accept the forged chain and
// the proxy observes plaintext; pinned (or custom-PKI) connections abort —
// exactly the differential the §4.2.2 detector keys on.
#pragma once

#include <map>
#include <string>

#include "tls/handshake.h"
#include "util/rng.h"
#include "x509/issuer.h"

namespace pinscope::net {

/// Result of proxying one connection.
struct InterceptResult {
  tls::ConnectionOutcome outcome;  ///< Client-side connection as captured.
  bool decrypted = false;          ///< Proxy observed application plaintext.
};

/// An intercepting TLS proxy with a deterministic CA identity.
class MitmProxy {
 public:
  /// Creates a proxy whose CA key derives from `ca_label` (stable across runs).
  explicit MitmProxy(std::string ca_label = "mitmproxy");

  /// The proxy's CA certificate — install this in a device's root store to
  /// emulate the paper's test-device setup.
  [[nodiscard]] const x509::Certificate& CaCertificate() const;

  /// Intercepts a connection from `client` to `server`: forges a leaf for the
  /// server's hostname, presents [forged-leaf, proxy-CA], and reports whether
  /// plaintext was recovered. Forged leaves are cached per hostname, like
  /// mitmproxy's certificate cache.
  [[nodiscard]] InterceptResult Intercept(const tls::ClientTlsConfig& client,
                                          const tls::ServerEndpoint& server,
                                          const tls::AppPayload& payload,
                                          util::SimTime now, util::Rng& rng);

 private:
  x509::CertificateIssuer ca_;
  std::map<std::string, x509::CertificateChain> forged_cache_;
};

}  // namespace pinscope::net

#include "stats/chi_square.h"

#include <cmath>

namespace pinscope::stats {

double ChiSquareSurvivalDf1(double x) {
  if (x <= 0.0) return 1.0;
  // For one degree of freedom, P(X² > x) = erfc(sqrt(x/2)).
  return std::erfc(std::sqrt(x / 2.0));
}

ChiSquareResult ChiSquareTest(const Contingency2x2& t) {
  ChiSquareResult out;
  const double n = static_cast<double>(t.Total());
  const double row1 = static_cast<double>(t.a + t.b);
  const double row2 = static_cast<double>(t.c + t.d);
  const double col1 = static_cast<double>(t.a + t.c);
  const double col2 = static_cast<double>(t.b + t.d);
  if (n <= 0 || row1 <= 0 || row2 <= 0 || col1 <= 0 || col2 <= 0) {
    return out;  // degenerate margins: test undefined
  }
  const double det = static_cast<double>(t.a) * static_cast<double>(t.d) -
                     static_cast<double>(t.b) * static_cast<double>(t.c);
  out.statistic = n * det * det / (row1 * row2 * col1 * col2);
  out.p_value = ChiSquareSurvivalDf1(out.statistic);
  out.valid = true;
  return out;
}

}  // namespace pinscope::stats

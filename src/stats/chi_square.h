// Chi-square test of independence for 2x2 contingency tables.
//
// §5.5 compares PII prevalence in pinned vs non-pinned destinations and
// highlights differences with p < 0.05 under this exact test.
#pragma once

#include <cstdint>

namespace pinscope::stats {

/// A 2x2 contingency table:
///            outcome+   outcome-
///  group A      a          b
///  group B      c          d
struct Contingency2x2 {
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t d = 0;

  [[nodiscard]] std::int64_t Total() const { return a + b + c + d; }
};

/// Test result.
struct ChiSquareResult {
  double statistic = 0.0;  ///< Pearson X² with 1 degree of freedom.
  double p_value = 1.0;
  bool valid = false;      ///< False when a margin is zero (test undefined).

  /// Significance at the paper's threshold.
  [[nodiscard]] bool Significant(double alpha = 0.05) const {
    return valid && p_value < alpha;
  }
};

/// Pearson chi-square test of independence (df = 1, no Yates correction —
/// matching scipy.stats.chi2_contingency(correction=False)).
[[nodiscard]] ChiSquareResult ChiSquareTest(const Contingency2x2& table);

/// Survival function of the chi-square distribution with 1 df.
[[nodiscard]] double ChiSquareSurvivalDf1(double x);

}  // namespace pinscope::stats

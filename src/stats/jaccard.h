// Jaccard similarity between string sets.
//
// §5.1 compares the pinned-domain sets of an app's Android and iOS builds
// with Jaccard indices, and pinned-vs-unpinned sets with one-sided overlap
// percentages.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace pinscope::stats {

/// |A∩B| / |A∪B|; defined as 1 when both sets are empty.
[[nodiscard]] double JaccardIndex(const std::set<std::string>& a,
                                  const std::set<std::string>& b);

/// Convenience overload over vectors (deduplicated internally).
[[nodiscard]] double JaccardIndex(const std::vector<std::string>& a,
                                  const std::vector<std::string>& b);

/// Fraction of `a`'s elements present in `b`; 0 when `a` is empty.
/// (§5.1's "percentage of pinned domains on one platform found as not pinned
/// on the other".)
[[nodiscard]] double OverlapFraction(const std::set<std::string>& a,
                                     const std::set<std::string>& b);

/// Intersection of two sets.
[[nodiscard]] std::set<std::string> Intersect(const std::set<std::string>& a,
                                              const std::set<std::string>& b);

}  // namespace pinscope::stats

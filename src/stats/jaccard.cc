#include "stats/jaccard.h"

#include <algorithm>

namespace pinscope::stats {

std::set<std::string> Intersect(const std::set<std::string>& a,
                                const std::set<std::string>& b) {
  std::set<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

double JaccardIndex(const std::set<std::string>& a, const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const std::size_t inter = Intersect(a, b).size();
  const std::size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardIndex(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  return JaccardIndex(std::set<std::string>(a.begin(), a.end()),
                      std::set<std::string>(b.begin(), b.end()));
}

double OverlapFraction(const std::set<std::string>& a,
                       const std::set<std::string>& b) {
  if (a.empty()) return 0.0;
  return static_cast<double>(Intersect(a, b).size()) /
         static_cast<double>(a.size());
}

}  // namespace pinscope::stats

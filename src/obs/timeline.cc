#include "obs/timeline.h"

#include <algorithm>
#include <chrono>

namespace pinscope::obs {

namespace {

/// The ambient (timeline, worker) binding TrackedMutex waits report into.
/// One per thread; WorkerScope/AmbientPause save and restore it.
struct Ambient {
  Timeline* timeline = nullptr;
  std::uint32_t worker = 0;
};

thread_local Ambient g_ambient;

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view IntervalKindName(IntervalKind kind) {
  switch (kind) {
    case IntervalKind::kStage:
      return "stage";
    case IntervalKind::kQueueStarved:
      return "queue_starved";
    case IntervalKind::kBackpressure:
      return "backpressure";
    case IntervalKind::kLockWait:
      return "lock_wait";
    case IntervalKind::kTailJoin:
      return "tail_join";
  }
  return "?";
}

/// One worker's half of the timeline: exact totals plus the sampled
/// reservoir. The lane mutex only ever contends with post-run readers —
/// each worker thread owns its lane during the run (lock waits from other
/// threads' ambient recording target their own lanes).
struct Timeline::Lane {
  std::mutex mu;
  TimelineWorkerTotals totals;
  std::vector<TimelineInterval> samples;
  std::uint64_t rng;

  explicit Lane(std::uint64_t seed) : rng(seed | 1) {}

  /// Offers one interval: exact accumulation always, reservoir keep/replace
  /// per algorithm R with a per-lane LCG (deterministic, allocation-free
  /// once the reservoir is full).
  void Offer(const TimelineInterval& interval, std::size_t cap) {
    std::lock_guard<std::mutex> lock(mu);
    const double us = static_cast<double>(interval.duration_us());
    switch (interval.kind) {
      case IntervalKind::kStage:
        totals.busy_us += us;
        ++totals.stage_count;
        break;
      case IntervalKind::kQueueStarved:
        totals.queue_starved_us += us;
        break;
      case IntervalKind::kBackpressure:
        totals.backpressure_us += us;
        break;
      case IntervalKind::kLockWait:
        totals.lock_wait_us += us;
        break;
      case IntervalKind::kTailJoin:
        totals.tail_join_us += us;
        break;
    }
    if (totals.intervals_seen == 0 || interval.start_us < totals.first_us) {
      totals.first_us = interval.start_us;
    }
    totals.last_us = std::max(totals.last_us, interval.end_us);
    ++totals.intervals_seen;
    if (cap == 0) return;
    if (samples.size() < cap) {
      samples.push_back(interval);
      return;
    }
    // Reservoir: keep with probability cap/n, replacing a uniform slot.
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t r = (rng >> 16) % totals.intervals_seen;
    if (r < cap) samples[static_cast<std::size_t>(r)] = interval;
  }
};

Timeline::Timeline(TimelineOptions options)
    : options_(options), epoch_ns_(SteadyNowNs()) {}

Timeline::~Timeline() {
  for (std::atomic<Lane*>& slot : lanes_) {
    delete slot.load(std::memory_order_acquire);
  }
}

Timeline::Lane& Timeline::LaneFor(std::uint32_t worker) {
  const std::size_t index = std::min<std::size_t>(worker, kMaxLanes - 1);
  Lane* lane = lanes_[index].load(std::memory_order_acquire);
  if (lane != nullptr) return *lane;
  std::lock_guard<std::mutex> lock(grow_mu_);
  lane = lanes_[index].load(std::memory_order_relaxed);
  if (lane == nullptr) {
    // Seed the lane's reservoir LCG from its index only: deterministic
    // given the same interval sequence, distinct across lanes.
    lane = new Lane(0x9e3779b97f4a7c15ULL ^ (index * 0xff51afd7ed558ccdULL));
    lanes_[index].store(lane, std::memory_order_release);
  }
  return *lane;
}

std::uint32_t Timeline::InternStage(std::string_view name) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  for (std::size_t i = 0; i < stage_names_.size(); ++i) {
    if (stage_names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  stage_names_.emplace_back(name);
  return static_cast<std::uint32_t>(stage_names_.size() - 1);
}

void Timeline::MarkRunStart() {
  run_start_us_.store(NowUs(), std::memory_order_release);
}

void Timeline::MarkRunEnd() {
  run_end_us_.store(NowUs(), std::memory_order_release);
}

void Timeline::RecordStage(std::uint32_t worker, std::uint64_t key,
                           std::uint32_t label, std::int64_t start_us,
                           std::int64_t end_us) {
  TimelineInterval interval;
  interval.start_us = start_us;
  interval.end_us = std::max(end_us, start_us);
  interval.key = key;
  interval.label = label;
  interval.worker = worker;
  interval.kind = IntervalKind::kStage;
  LaneFor(worker).Offer(interval, options_.per_worker_cap);
}

void Timeline::RecordIdle(std::uint32_t worker, IntervalKind kind,
                          std::int64_t start_us, std::int64_t end_us) {
  TimelineInterval interval;
  interval.start_us = start_us;
  interval.end_us = std::max(end_us, start_us);
  interval.worker = worker;
  interval.kind = kind;
  LaneFor(worker).Offer(interval, options_.per_worker_cap);
}

void Timeline::RecordLockWait(std::uint32_t worker, std::string_view lock_name,
                              std::int64_t wait_us) {
  std::uint32_t label = 0;
  {
    std::lock_guard<std::mutex> lock(grow_mu_);
    std::size_t i = 0;
    for (; i < lock_names_.size(); ++i) {
      if (lock_names_[i] == lock_name) break;
    }
    if (i == lock_names_.size()) lock_names_.emplace_back(lock_name);
    label = static_cast<std::uint32_t>(i);
  }
  const std::int64_t end = NowUs();
  TimelineInterval interval;
  interval.start_us = std::max<std::int64_t>(end - std::max<std::int64_t>(wait_us, 0), 0);
  interval.end_us = end;
  interval.label = label;
  interval.worker = worker;
  interval.kind = IntervalKind::kLockWait;
  LaneFor(worker).Offer(interval, options_.per_worker_cap);
}

std::int64_t Timeline::NowUs() const {
  return (SteadyNowNs() - epoch_ns_) / 1000;
}

std::int64_t Timeline::RunStartUs() const {
  const std::int64_t marked = run_start_us_.load(std::memory_order_acquire);
  if (marked >= 0) return marked;
  std::int64_t first = 0;
  bool any = false;
  for (std::size_t w = 0; w < kMaxLanes; ++w) {
    Lane* lane = lanes_[w].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    std::lock_guard<std::mutex> lock(lane->mu);
    if (lane->totals.intervals_seen == 0) continue;
    if (!any || lane->totals.first_us < first) first = lane->totals.first_us;
    any = true;
  }
  return first;
}

std::int64_t Timeline::RunEndUs() const {
  const std::int64_t marked = run_end_us_.load(std::memory_order_acquire);
  if (marked >= 0) return marked;
  std::int64_t last = 0;
  for (std::size_t w = 0; w < kMaxLanes; ++w) {
    Lane* lane = lanes_[w].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    std::lock_guard<std::mutex> lock(lane->mu);
    last = std::max(last, lane->totals.last_us);
  }
  return last;
}

std::size_t Timeline::WorkerCount() const {
  std::size_t count = 0;
  for (std::size_t w = 0; w < kMaxLanes; ++w) {
    if (lanes_[w].load(std::memory_order_acquire) != nullptr) count = w + 1;
  }
  return count;
}

TimelineWorkerTotals Timeline::TotalsFor(std::size_t worker) const {
  if (worker >= kMaxLanes) return {};
  Lane* lane = lanes_[worker].load(std::memory_order_acquire);
  if (lane == nullptr) return {};
  std::lock_guard<std::mutex> lock(lane->mu);
  return lane->totals;
}

std::vector<TimelineInterval> Timeline::SamplesFor(std::size_t worker) const {
  if (worker >= kMaxLanes) return {};
  Lane* lane = lanes_[worker].load(std::memory_order_acquire);
  if (lane == nullptr) return {};
  std::vector<TimelineInterval> out;
  {
    std::lock_guard<std::mutex> lock(lane->mu);
    out = lane->samples;
  }
  std::sort(out.begin(), out.end(),
            [](const TimelineInterval& a, const TimelineInterval& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.end_us < b.end_us;
            });
  return out;
}

std::size_t Timeline::SampleCount() const {
  std::size_t count = 0;
  for (std::size_t w = 0; w < kMaxLanes; ++w) {
    Lane* lane = lanes_[w].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    std::lock_guard<std::mutex> lock(lane->mu);
    count += lane->samples.size();
  }
  return count;
}

std::uint64_t Timeline::IntervalsSeen() const {
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < kMaxLanes; ++w) {
    Lane* lane = lanes_[w].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    std::lock_guard<std::mutex> lock(lane->mu);
    count += lane->totals.intervals_seen;
  }
  return count;
}

std::string_view Timeline::StageName(std::uint32_t label) const {
  std::lock_guard<std::mutex> lock(grow_mu_);
  if (label >= stage_names_.size()) return "?";
  return stage_names_[label];
}

std::string_view Timeline::LockName(std::uint32_t label) const {
  std::lock_guard<std::mutex> lock(grow_mu_);
  if (label >= lock_names_.size()) return "?";
  return lock_names_[label];
}

std::size_t Timeline::StageCount() const {
  std::lock_guard<std::mutex> lock(grow_mu_);
  return stage_names_.size();
}

std::size_t Timeline::LockNameCount() const {
  std::lock_guard<std::mutex> lock(grow_mu_);
  return lock_names_.size();
}

std::size_t Timeline::ReservoirCapacityBytes() const {
  std::size_t lanes = 0;
  for (std::size_t w = 0; w < kMaxLanes; ++w) {
    if (lanes_[w].load(std::memory_order_acquire) != nullptr) ++lanes;
  }
  return lanes * options_.per_worker_cap * sizeof(TimelineInterval);
}

TimelineWorkerScope::TimelineWorkerScope(Timeline* timeline,
                                         std::uint32_t worker)
    : prev_timeline_(g_ambient.timeline), prev_worker_(g_ambient.worker) {
  g_ambient.timeline = timeline;
  g_ambient.worker = worker;
}

TimelineWorkerScope::~TimelineWorkerScope() {
  g_ambient.timeline = prev_timeline_;
  g_ambient.worker = prev_worker_;
}

TimelineAmbientPause::TimelineAmbientPause()
    : prev_timeline_(g_ambient.timeline), prev_worker_(g_ambient.worker) {
  g_ambient.timeline = nullptr;
}

TimelineAmbientPause::~TimelineAmbientPause() {
  g_ambient.timeline = prev_timeline_;
  g_ambient.worker = prev_worker_;
}

// Declared in obs/mutex.h: routes a contended TrackedMutex wait to the
// thread's ambient timeline lane, if any.
void RecordAmbientLockWait(std::string_view lock_name, std::int64_t wait_us) {
  if (g_ambient.timeline == nullptr) return;
  g_ambient.timeline->RecordLockWait(g_ambient.worker, lock_name, wait_us);
}

}  // namespace pinscope::obs

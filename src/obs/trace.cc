#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <tuple>

namespace pinscope::obs {

namespace {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

TraceSink::TraceSink()
    : origin_(std::chrono::steady_clock::now()),
      shards_(std::make_unique<Shard[]>(kShards)) {}

std::int64_t TraceSink::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

std::uint32_t TraceSink::CurrentTid() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(tid_mu_);
  const auto it = tids_.find(self);
  if (it != tids_.end()) return it->second;
  const auto next = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(self, next);
  return next;
}

void TraceSink::Add(TraceEvent event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::size_t cap = max_events_.load(std::memory_order_relaxed);
  if (cap != 0 &&
      admitted_.fetch_add(1, std::memory_order_relaxed) >= cap) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard =
      shards_[std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.events.push_back(std::move(event));
}

std::size_t TraceSink::EventCount() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    n += shards_[s].events.size();
  }
  return n;
}

std::string TraceSink::ToJson() const {
  std::vector<TraceEvent> events;
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    events.insert(events.end(), shards_[s].events.begin(),
                  shards_[s].events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.ts_us, a.tid, a.name) <
                     std::tie(b.ts_us, b.tid, b.name);
            });

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"";
    out += Escape(e.name);
    out += "\", \"cat\": \"";
    out += Escape(e.category);
    out += "\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"ts\": ";
    out += std::to_string(e.ts_us);
    out += ", \"dur\": ";
    out += std::to_string(e.dur_us);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += '"';
        out += Escape(e.args[i].first);
        out += "\": \"";
        out += Escape(e.args[i].second);
        out += '"';
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "],\n" : "\n],\n";
  out += "\"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Span::Span(TraceSink* sink, std::string name, std::string category,
           std::vector<std::pair<std::string, std::string>> args)
    : sink_(sink),
      name_(std::move(name)),
      category_(std::move(category)),
      args_(std::move(args)),
      start_us_(sink != nullptr ? sink->NowUs() : 0) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    sink_ = other.sink_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    args_ = std::move(other.args_);
    start_us_ = other.start_us_;
    other.sink_ = nullptr;
  }
  return *this;
}

void Span::End() {
  if (sink_ == nullptr) return;
  TraceSink* sink = sink_;
  sink_ = nullptr;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.tid = sink->CurrentTid();
  event.ts_us = start_us_;
  event.dur_us = sink->NowUs() - start_us_;
  event.args = std::move(args_);
  sink->Add(std::move(event));
}

}  // namespace pinscope::obs

#include "obs/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <utility>

#include "obs/process.h"

namespace pinscope::obs {

namespace {

bool HasSuffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

std::optional<ProgressMode> ParseProgressMode(std::string_view name) {
  if (name == "off") return ProgressMode::kOff;
  if (name == "plain") return ProgressMode::kPlain;
  if (name == "tty") return ProgressMode::kTty;
  return std::nullopt;
}

Telemetry::Telemetry(MetricsRegistry* metrics, TelemetryOptions options)
    : metrics_(metrics),
      options_(std::move(options)),
      start_(Clock::now()),
      events_(Severity::kInfo),
      event_scope_(&events_, "", "", "telemetry") {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

Telemetry::~Telemetry() { Stop(); }

void Telemetry::Start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  start_ = Clock::now();
  if (!options_.heartbeat_path.empty()) {
    heartbeat_ = std::fopen(options_.heartbeat_path.c_str(), "wb");
  }
  if (options_.interval_ms > 0) {
    sampler_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(stop_mu_);
      for (;;) {
        // wait_for returns true only when Stop() raised `stopping_` — the
        // final frame is then taken by Stop() itself, after the join.
        if (stop_cv_.wait_for(lock,
                              std::chrono::milliseconds(options_.interval_ms),
                              [this] { return stopping_; })) {
          return;
        }
        lock.unlock();
        Tick();
        lock.lock();
      }
    });
  }
}

void Telemetry::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  Tick();  // final frame: progress reaches 100%, surfaces get closing state
  if (tty_line_open_) {
    std::fputc('\n', progress_out());
    std::fflush(progress_out());
    tty_line_open_ = false;
  }
  if (heartbeat_ != nullptr) {
    std::fclose(heartbeat_);
    heartbeat_ = nullptr;
  }
  started_ = false;
}

void Telemetry::AddTotal(std::size_t n) {
  total_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
}

void Telemetry::OnStageStart(std::uint64_t key, std::string_view platform,
                             std::string_view app_id, std::string_view stage) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  InflightCell& cell = inflight_[key];
  cell.platform.assign(platform);
  cell.app_id.assign(app_id);
  cell.stage.assign(stage);
  cell.since = Clock::now();
}

void Telemetry::OnStageEnd(std::uint64_t key, std::string_view stage) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  ++stage_done_[std::string(stage)];
  const auto it = inflight_.find(key);
  // Only clear if the chain is still in *this* stage — a later stage may
  // already have re-registered the key on another worker.
  if (it != inflight_.end() && it->second.stage == stage) inflight_.erase(it);
}

void Telemetry::OnItemDone(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  done_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<StragglerRow> Telemetry::Stragglers(std::size_t k) const {
  const Clock::time_point now = Clock::now();
  std::vector<StragglerRow> rows;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    rows.reserve(inflight_.size());
    for (const auto& [key, cell] : inflight_) {
      (void)key;
      StragglerRow row;
      row.platform = cell.platform;
      row.app_id = cell.app_id;
      row.stage = cell.stage;
      row.elapsed_ms =
          std::chrono::duration<double, std::milli>(now - cell.since).count();
      rows.push_back(std::move(row));
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const StragglerRow& a, const StragglerRow& b) {
                     return a.elapsed_ms > b.elapsed_ms;
                   });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

TelemetryFrame Telemetry::CaptureFrame(const MetricsSnapshot* snapshot) {
  TelemetryFrame frame;
  frame.tick = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  frame.elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  frame.done = done_.load(std::memory_order_relaxed);
  frame.done_delta = frame.done - last_done_;
  frame.total = total_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    frame.inflight = inflight_.size();
    frame.stage_done = stage_done_;
  }
  if (snapshot != nullptr) {
    auto gauge = [&](const char* name) -> std::uint64_t {
      const auto it = snapshot->gauges.find(name);
      return it == snapshot->gauges.end() ? 0 : it->second;
    };
    frame.rss_bytes = gauge("process.rss_bytes");
    frame.peak_rss_bytes = gauge("process.peak_rss_bytes");
    frame.queue_depth = gauge("sched.queue_size");
    for (const auto& [name, value] : snapshot->counters) {
      const auto it = last_counters_.find(name);
      const std::uint64_t prev = it == last_counters_.end() ? 0 : it->second;
      if (value > prev) frame.counter_deltas.emplace(name, value - prev);
    }
    last_counters_ = snapshot->counters;
  } else {
    frame.rss_bytes = ReadCurrentRssBytes().value_or(0);
    frame.peak_rss_bytes = ReadPeakRssBytes().value_or(0);
  }
  return frame;
}

void Telemetry::RunWatchdog(const TelemetryFrame& frame) {
  if (frame.done_delta > 0 || frame.inflight == 0) {
    if (!watchdog_armed_ && frame.done_delta > 0) {
      event_scope_.Emit(Severity::kInfo, "telemetry.resume",
                        {{"after_stalled_ticks", stalled_ticks_},
                         {"done", frame.done}});
    }
    stalled_ticks_ = 0;
    watchdog_armed_ = true;
    return;
  }
  ++stalled_ticks_;
  if (!watchdog_armed_ ||
      stalled_ticks_ < static_cast<std::uint64_t>(
                           std::max(options_.stall_ticks, 1))) {
    return;
  }
  watchdog_armed_ = false;  // re-arms only once progress resumes
  watchdog_fires_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<StragglerRow> rows =
      Stragglers(options_.straggler_top_k);
  std::vector<LogField> fields;
  fields.push_back({"stalled_ticks", LogValue(stalled_ticks_)});
  fields.push_back({"inflight", LogValue(frame.inflight)});
  fields.push_back({"done", LogValue(frame.done)});
  fields.push_back({"total", LogValue(frame.total)});
  if (!rows.empty()) {
    fields.push_back({"straggler_platform", LogValue(rows.front().platform)});
    fields.push_back({"straggler_app", LogValue(rows.front().app_id)});
    fields.push_back({"straggler_stage", LogValue(rows.front().stage)});
    fields.push_back({"straggler_elapsed_ms",
                      LogValue(rows.front().elapsed_ms)});
  }
  event_scope_.Emit(Severity::kWarn, "telemetry.stall", std::move(fields));
  RenderStragglerTable(rows);
}

void Telemetry::WriteHeartbeat(const TelemetryFrame& frame,
                               const MetricsSnapshot* snapshot) {
  if (heartbeat_ == nullptr) return;
  std::string line = "{\"tick\": " + std::to_string(frame.tick) +
                     ", \"elapsed_ms\": " + JsonNum(frame.elapsed_ms) +
                     ", \"done\": " + std::to_string(frame.done) +
                     ", \"total\": " + std::to_string(frame.total) +
                     ", \"delta\": " + std::to_string(frame.done_delta) +
                     ", \"rss_bytes\": " + std::to_string(frame.rss_bytes) +
                     ", \"peak_rss_bytes\": " +
                     std::to_string(frame.peak_rss_bytes) +
                     ", \"queue_depth\": " + std::to_string(frame.queue_depth) +
                     ", \"inflight\": " + std::to_string(frame.inflight) +
                     ", \"stalled_ticks\": " +
                     std::to_string(frame.stalled_ticks);
  line += ", \"stages\": {";
  bool first = true;
  for (const auto& [stage, count] : frame.stage_done) {
    if (!first) line += ", ";
    first = false;
    line += "\"" + stage + "\": " + std::to_string(count);
  }
  line += "}";
  if (snapshot != nullptr) {
    line += ", \"phases\": {";
    first = true;
    for (const auto& [name, h] : snapshot->histograms) {
      if (name.rfind("phase.", 0) != 0 || h.count == 0) continue;
      if (!first) line += ", ";
      first = false;
      line += "\"" + name + "\": {\"count\": " + std::to_string(h.count) +
              ", \"p50_us\": " + JsonNum(h.Quantile(0.50)) +
              ", \"p90_us\": " + JsonNum(h.Quantile(0.90)) +
              ", \"p99_us\": " + JsonNum(h.Quantile(0.99)) + "}";
    }
    line += "}";
  }
  line += "}\n";
  std::fputs(line.c_str(), heartbeat_);
  std::fflush(heartbeat_);
}

void Telemetry::WriteLiveMetrics(const MetricsSnapshot& snapshot) {
  if (options_.metrics_path.empty()) return;
  const std::string body = HasSuffix(options_.metrics_path, ".prom")
                               ? WriteMetricsOpenMetrics(snapshot)
                               : WriteMetricsJson(snapshot);
  // tmp + rename: a scraper (or the future daemon's file server) reading
  // the path never sees a torn snapshot.
  const std::string tmp = options_.metrics_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  std::fputs(body.c_str(), f);
  std::fclose(f);
  std::rename(tmp.c_str(), options_.metrics_path.c_str());
}

void Telemetry::RenderProgress(const TelemetryFrame& frame) {
  if (options_.progress == ProgressMode::kOff) return;
  const double rate =
      frame.elapsed_ms > 0.0 ? frame.done * 1000.0 / frame.elapsed_ms : 0.0;
  char head[256];
  if (frame.total > 0) {
    std::snprintf(head, sizeof(head),
                  "[pinscope] t+%.1fs %" PRIu64 "/%" PRIu64
                  " apps (%.1f%%) %.0f/s",
                  frame.elapsed_ms / 1000.0, frame.done, frame.total,
                  100.0 * static_cast<double>(frame.done) /
                      static_cast<double>(frame.total),
                  rate);
  } else {
    std::snprintf(head, sizeof(head),
                  "[pinscope] t+%.1fs %" PRIu64 " apps %.0f/s",
                  frame.elapsed_ms / 1000.0, frame.done, rate);
  }
  std::string line = head;
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                " | rss %.1f MiB | queue %" PRIu64 " | inflight %" PRIu64,
                frame.rss_bytes / (1024.0 * 1024.0), frame.queue_depth,
                frame.inflight);
  line += tail;
  for (const auto& [stage, count] : frame.stage_done) {
    line += " | " + stage + " " + std::to_string(count);
  }
  if (frame.stalled_ticks > 0) {
    line += " | stalled x" + std::to_string(frame.stalled_ticks);
  }
  std::FILE* out = progress_out();
  if (options_.progress == ProgressMode::kTty) {
    std::fprintf(out, "\r\x1b[K%s", line.c_str());
    tty_line_open_ = true;
  } else {
    std::fprintf(out, "%s\n", line.c_str());
  }
  std::fflush(out);
}

void Telemetry::RenderStragglerTable(const std::vector<StragglerRow>& rows) {
  std::FILE* out = progress_out();
  if (tty_line_open_) {
    std::fputc('\n', out);
    tty_line_open_ = false;
  }
  std::fprintf(out,
               "[pinscope] watchdog: no chain completed for %" PRIu64
               " ticks; %zu chains in flight\n",
               stalled_ticks_, rows.size());
  for (const StragglerRow& row : rows) {
    std::fprintf(out, "[pinscope]   straggler %-8s %-32s %-10s %8.0f ms\n",
                 row.platform.c_str(), row.app_id.c_str(), row.stage.c_str(),
                 row.elapsed_ms);
  }
  std::fflush(out);
}

void Telemetry::Tick() {
  // Re-publish the process gauges first so this frame (and the live
  // snapshot) carry current values instead of the previous tick's.
  PublishRss(metrics_);
  std::optional<MetricsSnapshot> snapshot;
  if (metrics_ != nullptr) snapshot = metrics_->Snapshot();
  const MetricsSnapshot* snap = snapshot ? &*snapshot : nullptr;

  TelemetryFrame frame = CaptureFrame(snap);
  RunWatchdog(frame);
  frame.stalled_ticks = stalled_ticks_;
  last_done_ = frame.done;

  {
    std::lock_guard<std::mutex> lock(frames_mu_);
    frames_.push_back(frame);
    while (frames_.size() > options_.ring_capacity) frames_.pop_front();
  }

  WriteHeartbeat(frame, snap);
  if (snap != nullptr) WriteLiveMetrics(*snap);
  RenderProgress(frame);
}

std::vector<TelemetryFrame> Telemetry::Frames() const {
  std::lock_guard<std::mutex> lock(frames_mu_);
  return {frames_.begin(), frames_.end()};
}

std::string Telemetry::TimelineJson() const {
  const std::vector<TelemetryFrame> frames = Frames();
  std::string out = "[";
  bool first = true;
  for (const TelemetryFrame& f : frames) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"tick\": " + std::to_string(f.tick) +
           ", \"t_ms\": " + JsonNum(f.elapsed_ms) +
           ", \"done\": " + std::to_string(f.done) +
           ", \"rss_bytes\": " + std::to_string(f.rss_bytes) +
           ", \"queue_depth\": " + std::to_string(f.queue_depth) +
           ", \"inflight\": " + std::to_string(f.inflight) + "}";
  }
  out += first ? "]" : "\n  ]";
  return out;
}

}  // namespace pinscope::obs

// Chrome trace_event tracing for the study pipeline (DESIGN.md §11).
//
// A TraceSink collects complete-duration events ("ph":"X") that render
// directly in chrome://tracing / Perfetto: one study-level span, one span
// per ParallelFor worker, one per app, and one per pipeline phase
// (baseline, mitm, frida). Span is the RAII recorder; a default-constructed
// Span is a no-op, so call sites stay unconditional when tracing is off.
//
// Thread safety mirrors the study caches: events land in 16-way sharded
// vectors (shard chosen per thread, per-shard mutex) and are merged, sorted
// by timestamp, only at serialization time. Timestamps are wall-clock
// microseconds since sink construction — schedule-dependent by nature, which
// is why trace output lives outside every exported study byte (the
// determinism contract in obs/metrics.h covers this sink too).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pinscope::obs {

/// One complete-duration trace event.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint32_t tid = 0;      ///< Sink-assigned stable per-thread id.
  std::int64_t ts_us = 0;     ///< Start, µs since sink construction.
  std::int64_t dur_us = 0;
  /// Rendered into the event's "args" object (string values only).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe collector of trace events for one run.
class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Microseconds elapsed since construction.
  [[nodiscard]] std::int64_t NowUs() const;

  /// Stable small id for the calling thread (assigned first-seen).
  [[nodiscard]] std::uint32_t CurrentTid();

  /// Deposits one event (tid already set by the caller, normally via Span).
  void Add(TraceEvent event);

  /// Turns span collection off (or back on). Spans built against a disabled
  /// sink still time themselves but Add() drops the event (silently — see
  /// set_max_events for the counted variant), so memory stays constant. The
  /// sink retains ~a few hundred bytes per recorded span, which is fine for
  /// one study but linear in corpus size; firehose streaming runs
  /// (DESIGN.md §15) bound the sink with set_max_events instead of turning
  /// it off outright.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Caps retained events: once `max` events have been admitted, further
  /// Add() calls are dropped and counted (DroppedCount) instead of growing
  /// memory — the head of the run survives, the firehose tail does not.
  /// 0 = unlimited (default). Set before the run starts; the cap is
  /// enforced with a relaxed admission counter that only advances while a
  /// cap is in effect.
  void set_max_events(std::size_t max) {
    max_events_.store(max, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t max_events() const {
    return max_events_.load(std::memory_order_relaxed);
  }

  /// Events dropped by the max_events cap (never counts set_enabled(false)
  /// suppression, which is an explicit opt-out rather than an overflow).
  /// Surfaced as the `trace.dropped_events` gauge when nonzero.
  [[nodiscard]] std::size_t DroppedCount() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Events recorded so far (approximate while spans are open).
  [[nodiscard]] std::size_t EventCount() const;

  /// Serializes everything as Chrome trace JSON ({"traceEvents": [...]}),
  /// events sorted by (ts, tid, name). Load the file in chrome://tracing or
  /// https://ui.perfetto.dev.
  [[nodiscard]] std::string ToJson() const;

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  std::chrono::steady_clock::time_point origin_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> max_events_{0};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> dropped_{0};
  std::unique_ptr<Shard[]> shards_;

  mutable std::mutex tid_mu_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

/// RAII span: records one complete event covering its lifetime. Movable
/// (the moved-from span records nothing); End() closes early.
class Span {
 public:
  Span() = default;
  Span(TraceSink* sink, std::string name, std::string category,
       std::vector<std::pair<std::string, std::string>> args = {});

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;

  ~Span() { End(); }

  /// Records the event now instead of at destruction (idempotent).
  void End();

 private:
  TraceSink* sink_ = nullptr;
  std::string name_;
  std::string category_;
  std::vector<std::pair<std::string, std::string>> args_;
  std::int64_t start_us_ = 0;
};

}  // namespace pinscope::obs

#include "obs/process.h"

#include <cstdio>
#include <cstring>

namespace pinscope::obs {

namespace {

/// Reads one "Field:  12345 kB" line from /proc/self/status as bytes.
std::optional<std::uint64_t> ReadStatusFieldBytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return std::nullopt;
  const std::size_t field_len = std::strlen(field);
  std::optional<std::uint64_t> bytes;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + field_len, "%llu", &kb) == 1) {
      bytes = static_cast<std::uint64_t>(kb) * 1024;
    }
    break;
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

std::optional<std::uint64_t> ReadPeakRssBytes() {
  // "VmHWM:     12345 kB" — the lifetime high-water mark of the resident
  // set, which is exactly the bound the streaming contract makes claims
  // about (instantaneous VmRSS would miss transient spikes).
  return ReadStatusFieldBytes("VmHWM:");
}

std::optional<std::uint64_t> ReadCurrentRssBytes() {
  return ReadStatusFieldBytes("VmRSS:");
}

void PublishPeakRss(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  if (const std::optional<std::uint64_t> peak = ReadPeakRssBytes()) {
    metrics->gauge("process.peak_rss_bytes").Set(*peak);
  }
}

void PublishRss(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  PublishPeakRss(metrics);
  if (const std::optional<std::uint64_t> rss = ReadCurrentRssBytes()) {
    metrics->gauge("process.rss_bytes").Set(*rss);
  }
}

}  // namespace pinscope::obs

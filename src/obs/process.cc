#include "obs/process.h"

#include <cstdio>
#include <cstring>

namespace pinscope::obs {

std::optional<std::uint64_t> ReadPeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return std::nullopt;
  std::optional<std::uint64_t> peak;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // "VmHWM:     12345 kB" — the lifetime high-water mark of the resident
    // set, which is exactly the bound the streaming contract makes claims
    // about (instantaneous VmRSS would miss transient spikes).
    if (std::strncmp(line, "VmHWM:", 6) != 0) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + 6, "%llu", &kb) == 1) {
      peak = static_cast<std::uint64_t>(kb) * 1024;
    }
    break;
  }
  std::fclose(f);
  return peak;
}

void PublishPeakRss(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  if (const std::optional<std::uint64_t> peak = ReadPeakRssBytes()) {
    metrics->gauge("process.peak_rss_bytes").Set(*peak);
  }
}

}  // namespace pinscope::obs

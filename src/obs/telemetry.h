// Live run telemetry: the flight recorder and its three surfaces
// (DESIGN.md §16).
//
// Everything in src/obs before this header is *post-mortem*: metrics,
// traces, and the decision journal materialize after the run ends. A
// Telemetry instance adds the in-flight view: a background sampler thread
// that every tick (default 250 ms) captures one bounded ring-buffer frame —
// MetricsRegistry counter deltas, current/peak VmRSS, scheduler queue depth,
// per-stage completion counts, in-flight chain count — and drives three
// live surfaces off that frame stream:
//
//   (a) a progress renderer (`--progress=tty|plain|off`) plus a
//       machine-readable heartbeat JSONL (`--heartbeat-out`): one JSON
//       object per tick with monotone `tick`/`done` fields and bounded-error
//       p50/p90/p99 for every `phase.*` histogram;
//   (b) a live metrics snapshot (`--metrics-out` refreshed per tick instead
//       of once at exit): written to `<path>.tmp` and atomically renamed
//       into place, so a scraper (or the future pinscope-as-a-service
//       daemon) never reads a torn file. A `.prom` suffix selects the
//       OpenMetrics text format, anything else the JSON format;
//   (c) a stall watchdog: when no chain completes for `stall_ticks`
//       consecutive ticks while work is in flight, it emits one
//       obs::EventLog warn event naming the top straggler (app, stage,
//       elapsed) and renders a top-K straggler table on the progress
//       stream. It re-arms only after progress resumes, so one stall fires
//       exactly once.
//
// Determinism contract: telemetry is pure observability, one level *more*
// excluded than metrics — its frames are wall-clock samples and explicitly
// outside the determinism contract, and its watchdog events live in the
// Telemetry's own EventLog channel, never the study's decision journal.
// Exports, journal, and run reports are byte-identical with telemetry on or
// off (`ctest -L telemetry`).
//
// Threading: worker threads call the OnStage*/OnItemDone hooks (cheap,
// one small mutex); exactly one thread — the internal sampler, or a test
// driving manual mode — calls Tick(). Start()/Stop() bracket the run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"

namespace pinscope::obs {

/// How the live progress line is rendered.
enum class ProgressMode {
  kOff,    ///< No progress output (heartbeat/live-metrics still run).
  kPlain,  ///< One full line per tick — pipeable, the transcript format.
  kTty,    ///< One carriage-return-rewritten status line (interactive).
};

/// Parses "off" | "plain" | "tty" (the exact --progress spellings).
[[nodiscard]] std::optional<ProgressMode> ParseProgressMode(
    std::string_view name);

/// Knobs for one Telemetry instance. Defaults match the CLI defaults.
struct TelemetryOptions {
  /// Sampler period. <= 0 selects manual mode: Start() spawns no thread and
  /// the owner drives Tick() itself (how the unit tests make ticks
  /// deterministic).
  int interval_ms = 250;
  ProgressMode progress = ProgressMode::kOff;
  /// When non-empty: appended with one heartbeat JSON line per tick.
  std::string heartbeat_path;
  /// When non-empty: atomically write-replaced with a full metrics snapshot
  /// per tick (`.prom` suffix = OpenMetrics text, otherwise JSON).
  std::string metrics_path;
  /// Flight-recorder ring capacity in frames; older frames are dropped.
  std::size_t ring_capacity = 512;
  /// Watchdog threshold: consecutive ticks without a chain completion (while
  /// chains are in flight) before the stall event fires.
  int stall_ticks = 8;
  /// Rows in the rendered straggler table.
  std::size_t straggler_top_k = 5;
  /// Progress/straggler output stream; nullptr = stderr.
  std::FILE* progress_stream = nullptr;
};

/// One flight-recorder frame: the between-ticks delta view of the run.
struct TelemetryFrame {
  std::uint64_t tick = 0;       ///< 1-based tick index (monotone).
  double elapsed_ms = 0.0;      ///< Wall time since Start().
  std::uint64_t done = 0;       ///< Chains completed so far (monotone).
  std::uint64_t done_delta = 0; ///< Chains completed during this tick.
  std::uint64_t total = 0;      ///< Expected chains (0 = unknown).
  std::uint64_t rss_bytes = 0;  ///< Current VmRSS (0 where unavailable).
  std::uint64_t peak_rss_bytes = 0;  ///< VmHWM (0 where unavailable).
  std::uint64_t queue_depth = 0;     ///< sched.queue_size gauge sample.
  std::uint64_t inflight = 0;        ///< Chains currently inside a stage.
  std::uint64_t stalled_ticks = 0;   ///< Watchdog counter at frame time.
  /// Cumulative per-stage completion counts ("hydrate", "static", ...).
  std::map<std::string, std::uint64_t> stage_done;
  /// Registry counters that moved during this tick (name → increment).
  std::map<std::string, std::uint64_t> counter_deltas;
};

/// One row of the straggler table: a chain currently stuck inside a stage.
struct StragglerRow {
  std::string platform;
  std::string app_id;
  std::string stage;
  double elapsed_ms = 0.0;  ///< Time spent inside the current stage.
};

/// Composes the in-flight tracking key the study wiring uses: platform rank
/// (0 = android, 1 = ios) in the high bits, universe index in the low.
[[nodiscard]] constexpr std::uint64_t TelemetryKey(int platform_rank,
                                                   std::size_t index) {
  return (static_cast<std::uint64_t>(platform_rank) << 48) |
         static_cast<std::uint64_t>(index);
}

/// The live-run sampler. Construct over the run's MetricsRegistry (nullable
/// — frames then carry only telemetry-local fields), Start() before the
/// study, Stop() after. All hooks are thread-safe; see the header comment
/// for the Tick() single-caller rule.
class Telemetry {
 public:
  explicit Telemetry(MetricsRegistry* metrics, TelemetryOptions options = {});
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;
  ~Telemetry();

  /// Opens the heartbeat file and spawns the sampler thread (unless in
  /// manual mode). Idempotent.
  void Start();

  /// Takes one final tick, joins the sampler, finishes the tty line, and
  /// closes the heartbeat file. Idempotent; the destructor calls it.
  void Stop();

  /// Adds to the expected chain total (drives the progress percentage).
  void AddTotal(std::size_t n);

  /// Marks `key`'s chain as inside `stage` (overwrites any previous stage —
  /// a chain is in exactly one stage at a time).
  void OnStageStart(std::uint64_t key, std::string_view platform,
                    std::string_view app_id, std::string_view stage);

  /// Marks `stage` finished for `key`: bumps the stage completion count and
  /// clears the chain's in-flight stage entry.
  void OnStageEnd(std::uint64_t key, std::string_view stage);

  /// Marks `key`'s whole chain finished (success or failure) — the
  /// completion signal the watchdog and progress meter consume.
  void OnItemDone(std::uint64_t key);

  /// Captures one frame and refreshes every surface. Called by the sampler
  /// thread; call directly (single-threaded) in manual mode.
  void Tick();

  /// Flight-recorder contents, oldest first (bounded by ring_capacity).
  [[nodiscard]] std::vector<TelemetryFrame> Frames() const;

  /// Ticks taken so far (>= Frames().size(); the ring forgets, this doesn't).
  [[nodiscard]] std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// Times the stall watchdog has fired.
  [[nodiscard]] std::uint64_t watchdog_fires() const {
    return watchdog_fires_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t done() const {
    return done_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// The telemetry event channel (stall warns, resume notes). Deliberately
  /// separate from the study's decision journal so an attached journal stays
  /// byte-identical telemetry on or off.
  [[nodiscard]] const EventLog& events() const { return events_; }

  /// Current in-flight chains ordered by time-in-stage, longest first,
  /// truncated to `k`.
  [[nodiscard]] std::vector<StragglerRow> Stragglers(std::size_t k) const;

  /// The recorded frames as a JSON array (tick, elapsed_ms, done, rss,
  /// queue depth) — what bench_stream embeds into BENCH_stream.json so the
  /// flat-RSS claim is a curve, not a single number.
  [[nodiscard]] std::string TimelineJson() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct InflightCell {
    std::string platform;
    std::string app_id;
    std::string stage;
    Clock::time_point since;
  };

  /// Builds the frame for this tick (everything except surfaces).
  TelemetryFrame CaptureFrame(const MetricsSnapshot* snapshot);
  void RunWatchdog(const TelemetryFrame& frame);
  void WriteHeartbeat(const TelemetryFrame& frame,
                      const MetricsSnapshot* snapshot);
  void WriteLiveMetrics(const MetricsSnapshot& snapshot);
  void RenderProgress(const TelemetryFrame& frame);
  void RenderStragglerTable(const std::vector<StragglerRow>& rows);
  [[nodiscard]] std::FILE* progress_out() const {
    return options_.progress_stream != nullptr ? options_.progress_stream
                                               : stderr;
  }

  MetricsRegistry* metrics_;
  TelemetryOptions options_;

  // In-flight tracking (hooks).
  mutable std::mutex inflight_mu_;
  std::map<std::uint64_t, InflightCell> inflight_;
  std::map<std::string, std::uint64_t> stage_done_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> total_{0};

  // Flight recorder.
  mutable std::mutex frames_mu_;
  std::deque<TelemetryFrame> frames_;
  std::atomic<std::uint64_t> ticks_{0};

  // Sampler state (Tick()-thread only).
  Clock::time_point start_;
  std::uint64_t last_done_ = 0;
  std::map<std::string, std::uint64_t> last_counters_;
  std::uint64_t stalled_ticks_ = 0;
  bool watchdog_armed_ = true;
  std::atomic<std::uint64_t> watchdog_fires_{0};
  bool tty_line_open_ = false;

  // Surfaces.
  EventLog events_;
  EventScope event_scope_;
  std::FILE* heartbeat_ = nullptr;

  // Sampler thread.
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread sampler_;
};

/// Null-safe hook wrappers: study wiring stays unconditional when no
/// telemetry is attached, mirroring the Counter/Histogram handle idiom.
inline void TelemetryAddTotal(Telemetry* t, std::size_t n) {
  if (t != nullptr) t->AddTotal(n);
}
inline void TelemetryItemDone(Telemetry* t, std::uint64_t key) {
  if (t != nullptr) t->OnItemDone(key);
}

/// RAII stage marker: OnStageStart at construction, OnStageEnd at scope
/// exit (exceptions included, so a failing stage never leaks an in-flight
/// entry). Null telemetry = no-op.
class StageWatch {
 public:
  StageWatch() = default;
  StageWatch(Telemetry* telemetry, std::uint64_t key, std::string_view platform,
             std::string_view app_id, std::string_view stage)
      : telemetry_(telemetry), key_(key), stage_(stage) {
    if (telemetry_ != nullptr) {
      telemetry_->OnStageStart(key_, platform, app_id, stage_);
    }
  }
  StageWatch(const StageWatch&) = delete;
  StageWatch& operator=(const StageWatch&) = delete;
  ~StageWatch() {
    if (telemetry_ != nullptr) telemetry_->OnStageEnd(key_, stage_);
  }

 private:
  Telemetry* telemetry_ = nullptr;
  std::uint64_t key_ = 0;
  std::string stage_;
};

}  // namespace pinscope::obs

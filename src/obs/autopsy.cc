#include "obs/autopsy.h"

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pinscope::obs {

namespace {

/// All sampled stage intervals, globally indexed, plus per-worker and
/// per-item views for predecessor lookup.
struct StageGraph {
  std::vector<TimelineInterval> intervals;  ///< kStage only.
  /// Indices into `intervals` per worker, sorted by end_us ascending.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_worker;
  /// Indices into `intervals` per item key, sorted by end_us ascending.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_key;
};

StageGraph BuildStageGraph(const Timeline& timeline) {
  StageGraph graph;
  for (std::size_t w = 0; w < timeline.WorkerCount(); ++w) {
    for (const TimelineInterval& interval : timeline.SamplesFor(w)) {
      if (interval.kind != IntervalKind::kStage) continue;
      graph.intervals.push_back(interval);
    }
  }
  for (std::size_t i = 0; i < graph.intervals.size(); ++i) {
    graph.by_worker[graph.intervals[i].worker].push_back(i);
    graph.by_key[graph.intervals[i].key].push_back(i);
  }
  const auto by_end = [&](std::size_t a, std::size_t b) {
    const TimelineInterval& ia = graph.intervals[a];
    const TimelineInterval& ib = graph.intervals[b];
    return ia.end_us != ib.end_us ? ia.end_us < ib.end_us
                                  : ia.start_us < ib.start_us;
  };
  for (auto& [worker, list] : graph.by_worker) std::sort(list.begin(), list.end(), by_end);
  for (auto& [key, list] : graph.by_key) std::sort(list.begin(), list.end(), by_end);
  return graph;
}

/// The latest-ending interval in `list` (sorted by end) that ends at or
/// before `start_us` and is not `self`. npos when none.
std::size_t LatestBefore(const StageGraph& graph,
                         const std::vector<std::size_t>& list,
                         std::int64_t start_us, std::size_t self) {
  std::size_t best = static_cast<std::size_t>(-1);
  // Binary search for the last end_us <= start_us, then skip self.
  std::size_t lo = 0, hi = list.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (graph.intervals[list[mid]].end_us <= start_us) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (std::size_t i = lo; i-- > 0;) {
    if (list[i] != self) {
      best = list[i];
      break;
    }
  }
  return best;
}

/// Walks the binding-constraint chain back from the globally last-ending
/// stage interval: at each step the predecessor is whichever of the chain
/// edge (same item, previous stage) and the worker edge (same worker,
/// previous interval) finished later — the dependency that actually gated
/// this interval's start.
std::vector<CriticalSegment> CriticalPath(const Timeline& timeline,
                                          const StageGraph& graph) {
  std::vector<CriticalSegment> path;
  if (graph.intervals.empty()) return path;
  std::size_t cur = 0;
  for (std::size_t i = 1; i < graph.intervals.size(); ++i) {
    if (graph.intervals[i].end_us > graph.intervals[cur].end_us) cur = i;
  }
  const std::size_t npos = static_cast<std::size_t>(-1);
  for (std::size_t steps = 0; steps <= graph.intervals.size(); ++steps) {
    const TimelineInterval& interval = graph.intervals[cur];
    CriticalSegment segment;
    segment.key = interval.key;
    segment.stage = std::string(timeline.StageName(interval.label));
    segment.worker = interval.worker;
    segment.start_us = interval.start_us;
    segment.end_us = interval.end_us;
    path.push_back(std::move(segment));

    const std::size_t chain_pred = LatestBefore(
        graph, graph.by_key.at(interval.key), interval.start_us, cur);
    const std::size_t worker_pred = LatestBefore(
        graph, graph.by_worker.at(interval.worker), interval.start_us, cur);
    std::size_t next = npos;
    if (chain_pred != npos && worker_pred != npos) {
      next = graph.intervals[chain_pred].end_us >=
                     graph.intervals[worker_pred].end_us
                 ? chain_pred
                 : worker_pred;
    } else if (chain_pred != npos) {
      next = chain_pred;
    } else if (worker_pred != npos) {
      next = worker_pred;
    }
    if (next == npos) break;
    cur = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<WorkerBreakdown> BreakdownWorkers(const Timeline& timeline,
                                              double wall_us) {
  std::vector<WorkerBreakdown> out;
  for (std::size_t w = 0; w < timeline.WorkerCount(); ++w) {
    const TimelineWorkerTotals totals = timeline.TotalsFor(w);
    if (totals.intervals_seen == 0) continue;
    WorkerBreakdown row;
    row.worker = static_cast<std::uint32_t>(w);
    // Stage time includes any in-stage lock waits; moving them to their own
    // bucket keeps the rows a partition of the wall clock.
    row.busy_us = std::max(0.0, totals.busy_us - totals.lock_wait_us);
    row.queue_starved_us = totals.queue_starved_us;
    row.backpressure_us = totals.backpressure_us;
    row.lock_wait_us = totals.lock_wait_us;
    row.tail_join_us = totals.tail_join_us;
    row.stage_count = totals.stage_count;
    row.other_us = wall_us - row.attributed_us();
    out.push_back(row);
  }
  return out;
}

std::vector<SlowItem> SlowestItems(const Timeline& timeline,
                                   const StageGraph& graph,
                                   std::size_t top_k) {
  struct Acc {
    double total_us = 0;
    std::map<std::uint32_t, double> by_label;
  };
  std::unordered_map<std::uint64_t, Acc> acc;
  for (const TimelineInterval& interval : graph.intervals) {
    Acc& a = acc[interval.key];
    const double us = static_cast<double>(interval.duration_us());
    a.total_us += us;
    a.by_label[interval.label] += us;
  }
  std::vector<SlowItem> out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    SlowItem item;
    item.key = key;
    item.total_us = a.total_us;
    for (const auto& [label, us] : a.by_label) {
      item.stages.emplace_back(std::string(timeline.StageName(label)), us);
    }
    out.push_back(std::move(item));
  }
  std::sort(out.begin(), out.end(), [](const SlowItem& a, const SlowItem& b) {
    return a.total_us != b.total_us ? a.total_us > b.total_us : a.key < b.key;
  });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<LockProfile> JoinLocks(const MetricsSnapshot* metrics) {
  std::vector<LockProfile> out;
  if (metrics == nullptr) return out;
  constexpr std::string_view kPrefix = "lock.";
  constexpr std::string_view kWait = ".wait_us";
  for (const auto& [name, h] : metrics->histograms) {
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (name.size() < kWait.size() ||
        name.compare(name.size() - kWait.size(), kWait.size(), kWait) != 0) {
      continue;
    }
    LockProfile profile;
    profile.name =
        name.substr(kPrefix.size(), name.size() - kPrefix.size() - kWait.size());
    profile.total_wait_us = h.sum;
    profile.p99_wait_us = h.Quantile(0.99);
    const auto counter =
        metrics->counters.find(std::string(kPrefix) + profile.name + ".contended");
    if (counter != metrics->counters.end()) profile.contended = counter->second;
    if (profile.contended == 0 && profile.total_wait_us <= 0) continue;
    out.push_back(std::move(profile));
  }
  std::sort(out.begin(), out.end(), [](const LockProfile& a, const LockProfile& b) {
    return a.total_wait_us != b.total_wait_us ? a.total_wait_us > b.total_wait_us
                                              : a.name < b.name;
  });
  return out;
}

}  // namespace

Autopsy Analyze(const Timeline& timeline, const MetricsSnapshot* metrics,
                const AutopsyOptions& options) {
  Autopsy autopsy;
  const std::int64_t start = timeline.RunStartUs();
  const std::int64_t end = timeline.RunEndUs();
  autopsy.wall_us = static_cast<double>(std::max<std::int64_t>(end - start, 0));
  autopsy.workers = timeline.WorkerCount();
  autopsy.intervals_seen = timeline.IntervalsSeen();
  autopsy.intervals_sampled = timeline.SampleCount();
  autopsy.sampled = autopsy.intervals_seen >
                    static_cast<std::uint64_t>(autopsy.intervals_sampled);

  const StageGraph graph = BuildStageGraph(timeline);
  autopsy.critical_path = CriticalPath(timeline, graph);
  for (const CriticalSegment& segment : autopsy.critical_path) {
    autopsy.critical_path_us += static_cast<double>(segment.duration_us());
  }
  autopsy.worker_breakdown = BreakdownWorkers(timeline, autopsy.wall_us);
  autopsy.slowest = SlowestItems(timeline, graph, options.top_k);
  autopsy.locks = JoinLocks(metrics);
  return autopsy;
}

std::string WriteFoldedStacks(const Timeline& timeline,
                              const ItemResolver& resolver) {
  // Aggregate sampled stage time by (item, stage), then render the folded
  // frame `platform;app;stage weight` flamegraph tooling expects. Lines are
  // sorted so equal timelines fold to identical bytes.
  std::map<std::string, double> folded;
  for (std::size_t w = 0; w < timeline.WorkerCount(); ++w) {
    for (const TimelineInterval& interval : timeline.SamplesFor(w)) {
      if (interval.kind != IntervalKind::kStage) continue;
      const ItemLabel label =
          resolver ? resolver(interval.key) : FallbackLabel(interval.key);
      std::string frame = label.platform;
      frame += ';';
      frame += label.app;
      frame += ';';
      frame += timeline.StageName(interval.label);
      folded[frame] += static_cast<double>(interval.duration_us());
    }
  }
  std::string out;
  for (const auto& [frame, us] : folded) {
    out += frame;
    out += ' ';
    out += std::to_string(static_cast<std::int64_t>(us));
    out += '\n';
  }
  return out;
}

ItemLabel FallbackLabel(std::uint64_t key) {
  return {"item", std::to_string(key)};
}

}  // namespace pinscope::obs

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>

namespace pinscope::obs {

namespace internal {

std::size_t ThisThreadShard() {
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shard;
}

void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramCell::HistogramCell(std::vector<double> bucket_bounds)
    : bounds(std::move(bucket_bounds)),
      buckets(std::make_unique<std::atomic<std::uint64_t>[]>(bounds.size() + 1)),
      min(std::numeric_limits<double>::infinity()),
      max(-std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i <= bounds.size(); ++i) buckets[i] = 0;
}

void HistogramCell::Record(double value) {
  // First bucket whose upper bound covers the value; past-the-end = overflow.
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  buckets[index].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum, value);
  AtomicMinDouble(min, value);
  AtomicMaxDouble(max, value);
}

}  // namespace internal

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double prev = static_cast<double>(below);
    below += buckets[i];
    if (static_cast<double>(below) < target) continue;
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = i < bounds.size() ? bounds[i] : max;
    const double fraction =
        (target - prev) / static_cast<double>(buckets[i]);
    return std::clamp(lower + (upper - lower) * fraction, min, max);
  }
  return max;  // unreachable for consistent snapshots; safe fallback
}

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<internal::CounterCell>())
             .first;
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::make_unique<internal::GaugeCell>())
             .first;
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = DefaultDurationBoundsUs();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<internal::HistogramCell>(std::move(bounds)))
             .first;
  }
  return Histogram(it->second.get());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace(name, cell->Sum());
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace(name, cell->value.load(std::memory_order_relaxed));
  }
  for (const auto& [name, cell] : histograms_) {
    HistogramSnapshot h;
    h.bounds = cell->bounds;
    h.buckets.resize(cell->bounds.size() + 1);
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] = cell->buckets[i].load(std::memory_order_relaxed);
      h.count += h.buckets[i];
    }
    h.sum = cell->sum.load(std::memory_order_relaxed);
    if (h.count > 0) {
      h.min = cell->min.load(std::memory_order_relaxed);
      h.max = cell->max.load(std::memory_order_relaxed);
    }
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

const std::vector<double>& MetricsRegistry::DefaultDurationBoundsUs() {
  static const std::vector<double> bounds = {
      50,      100,     250,       500,       1'000,     2'500,
      5'000,   10'000,  25'000,    50'000,    100'000,   250'000,
      500'000, 1'000'000, 2'500'000, 5'000'000};
  return bounds;
}

const std::vector<double>& MetricsRegistry::Log2DurationBoundsUs() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (int e = 4; e <= 26; ++e) {  // 16 µs .. ~67 s
      b.push_back(static_cast<double>(std::uint64_t{1} << e));
    }
    return b;
  }();
  return bounds;
}

namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string WriteMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += JsonEscape(name);
    out += "\": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += JsonEscape(name);
    out += "\": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += JsonEscape(name);
    out += "\": {\"count\": ";
    out += std::to_string(h.count);
    out += ", \"sum\": ";
    out += JsonNumber(h.sum);
    out += ", \"min\": ";
    out += JsonNumber(h.count > 0 ? h.min : 0.0);
    out += ", \"max\": ";
    out += JsonNumber(h.count > 0 ? h.max : 0.0);
    out += ", \"mean\": ";
    out += JsonNumber(h.Mean());
    out += ",\n      \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < h.bounds.size() ? JsonNumber(h.bounds[i]) : "\"inf\"";
      out += ", \"count\": ";
      out += std::to_string(h.buckets[i]);
      out += "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

/// OpenMetrics metric name: `pinscope_` + name with every non-alphanumeric
/// character folded to '_'.
std::string OpenMetricsName(std::string_view name) {
  std::string out = "pinscope_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// OpenMetrics float rendering: integral values print without a fraction,
/// everything else with the shortest %g form. Deterministic either way.
std::string OpenMetricsNumber(double v) {
  if (!std::isfinite(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

}  // namespace

std::string WriteMetricsOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = OpenMetricsName(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = OpenMetricsName(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string metric = OpenMetricsName(name);
    out += "# TYPE " + metric + " histogram\n";
    // Prometheus buckets are cumulative; ours are per-interval.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? OpenMetricsNumber(h.bounds[i]) : "+Inf";
      out += metric + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_sum " + OpenMetricsNumber(h.sum) + "\n";
    out += metric + "_count " + std::to_string(h.count) + "\n";
    if (h.count > 0) {
      // Derived percentile gauges (OpenMetrics histograms have no native
      // quantile series): bucket-interpolated, bounded-error with log2
      // bounds. Separate families, so each needs its own TYPE line.
      for (const auto& [suffix, q] :
           {std::pair<const char*, double>{"_p50", 0.50},
            {"_p90", 0.90},
            {"_p99", 0.99}}) {
        out += "# TYPE " + metric + suffix + " gauge\n";
        out += metric + suffix + " " + OpenMetricsNumber(h.Quantile(q)) + "\n";
      }
    }
  }
  out += "# EOF\n";
  return out;
}

std::string WritePhaseBreakdownJson(const MetricsSnapshot& snapshot,
                                    std::string_view prefix) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += JsonEscape(name);
    out += "\": {\"count\": ";
    out += std::to_string(h.count);
    out += ", \"total_ms\": ";
    out += JsonNumber(h.sum / 1000.0);
    out += ", \"mean_ms\": ";
    out += JsonNumber(h.Mean() / 1000.0);
    out += ", \"max_ms\": ";
    out += JsonNumber((h.count > 0 ? h.max : 0.0) / 1000.0);
    out += "}";
  }
  out += first ? "}" : "\n  }";
  return out;
}

namespace {

std::string PercentOf(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(part) / static_cast<double>(whole));
  return buf;
}

std::string Millis(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1000.0);
  return buf;
}

}  // namespace

std::string RenderSummary(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[384];

  // Cache families (published as gauges "cache.<family>.<field>") render as
  // one unified table — the replacement for the per-cache bespoke printfs.
  std::map<std::string, std::map<std::string, std::uint64_t>> caches;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind("cache.", 0) != 0) continue;
    const std::size_t dot = name.find('.', 6);
    if (dot == std::string::npos) continue;
    caches[name.substr(6, dot - 6)][name.substr(dot + 1)] = value;
  }
  if (!caches.empty()) {
    out += "caches:\n";
    for (const auto& [family, fields] : caches) {
      auto field = [&](const char* key) -> std::uint64_t {
        const auto it = fields.find(key);
        return it == fields.end() ? 0 : it->second;
      };
      const std::uint64_t lookups = field("lookups");
      const std::uint64_t hits = field("hits");
      std::snprintf(line, sizeof(line),
                    "  %-12s %8llu lookups  %8llu hits (%s)  %7llu entries\n",
                    family.c_str(), static_cast<unsigned long long>(lookups),
                    static_cast<unsigned long long>(hits),
                    PercentOf(hits, lookups).c_str(),
                    static_cast<unsigned long long>(field("entries")));
      out += line;
    }
  }

  bool header = false;
  for (const auto& [name, h] : snapshot.histograms) {
    if (name.rfind("phase.", 0) != 0 || h.count == 0) continue;
    if (!header) {
      out += "phases (wall time):\n";
      header = true;
    }
    std::snprintf(
        line, sizeof(line),
        "  %-24s %8llu x  total %12s  mean %10s  p50 %10s  p90 %10s  "
        "p99 %10s  max %10s\n",
        name.c_str() + 6, static_cast<unsigned long long>(h.count),
        Millis(h.sum).c_str(), Millis(h.Mean()).c_str(),
        Millis(h.Quantile(0.50)).c_str(), Millis(h.Quantile(0.90)).c_str(),
        Millis(h.Quantile(0.99)).c_str(), Millis(h.max).c_str());
    out += line;
  }

  header = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (!header) {
      out += "counters:\n";
      header = true;
    }
    std::snprintf(line, sizeof(line), "  %-36s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  return out;
}

}  // namespace pinscope::obs

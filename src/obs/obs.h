// The study observer: one MetricsRegistry + one TraceSink, threaded through
// the pipeline as a single nullable pointer (DESIGN.md §11).
//
// Every layer that records observability takes an `Observer*` (or, at the
// leaves, a bare `MetricsRegistry*`) defaulting to nullptr; the null-safe
// helpers below collapse the "is observability on?" branch into handle
// construction, so instrumented code reads the same either way.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pinscope::obs {

/// Owns the metrics registry and trace sink for one run, and optionally
/// carries the decision journal (owned by the caller — its min severity is
/// chosen at construction, e.g. from --log-level). Internally synchronized
/// throughout; share one instance across all study workers.
class Observer {
 public:
  Observer() = default;
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TraceSink& trace() { return trace_; }
  [[nodiscard]] const TraceSink& trace() const { return trace_; }

  /// Attaches (or detaches, with nullptr) the decision journal. Attaching a
  /// journal never changes exported study bytes (DESIGN.md §12).
  void set_log(EventLog* log) { log_ = log; }
  [[nodiscard]] EventLog* log() const { return log_; }

 private:
  MetricsRegistry metrics_;
  TraceSink trace_;
  EventLog* log_ = nullptr;
};

/// Null-safe accessors: leaf layers (tls, x509, net, device) take a bare
/// MetricsRegistry* — these bridge from the optional observer.
[[nodiscard]] inline MetricsRegistry* MetricsOf(Observer* observer) {
  return observer == nullptr ? nullptr : &observer->metrics();
}
[[nodiscard]] inline TraceSink* TraceOf(Observer* observer) {
  return observer == nullptr ? nullptr : &observer->trace();
}
[[nodiscard]] inline EventLog* LogOf(Observer* observer) {
  return observer == nullptr ? nullptr : observer->log();
}

/// Null-safe handle/RAII factories.
[[nodiscard]] inline Counter CounterFor(Observer* observer,
                                        std::string_view name) {
  return CounterOrNull(MetricsOf(observer), name);
}
[[nodiscard]] inline Histogram HistogramFor(Observer* observer,
                                            std::string_view name) {
  return HistogramOrNull(MetricsOf(observer), name);
}
/// Journal scope for one (platform, app, phase) — the no-op scope when the
/// observer (or its journal) is absent. Use one scope per phase per thread.
[[nodiscard]] inline EventScope ScopeFor(Observer* observer,
                                         std::string platform,
                                         std::string app_id,
                                         std::string phase) {
  return EventScope(LogOf(observer), std::move(platform), std::move(app_id),
                    std::move(phase));
}
[[nodiscard]] inline Span SpanFor(
    Observer* observer, std::string name, std::string category,
    std::vector<std::pair<std::string, std::string>> args = {}) {
  return observer == nullptr
             ? Span()
             : Span(&observer->trace(), std::move(name), std::move(category),
                    std::move(args));
}

}  // namespace pinscope::obs

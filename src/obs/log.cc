#include "obs/log.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>
#include <tuple>

namespace pinscope::obs {

namespace {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kDecision: return "decision";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

std::optional<Severity> ParseSeverity(std::string_view name) {
  if (name == "debug") return Severity::kDebug;
  if (name == "info") return Severity::kInfo;
  if (name == "decision") return Severity::kDecision;
  if (name == "warn") return Severity::kWarn;
  if (name == "error") return Severity::kError;
  return std::nullopt;
}

std::string LogValue::RenderJson() const {
  switch (type_) {
    case Type::kString: return '"' + Escape(str_) + '"';
    case Type::kInt: return std::to_string(int_);
    case Type::kUint: return std::to_string(uint_);
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
  }
  return "null";
}

const LogValue* FindField(const LogEvent& event, std::string_view key) {
  for (const LogField& f : event.fields) {
    if (f.key == key) return &f.value;
  }
  return nullptr;
}

EventLog::EventLog(Severity min_severity)
    : min_severity_(min_severity), shards_(std::make_unique<Shard[]>(kShards)) {}

void EventLog::Add(LogEvent event) {
  Shard& shard =
      shards_[std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.events.push_back(std::move(event));
}

std::size_t EventLog::EventCount() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    n += shards_[s].events.size();
  }
  return n;
}

std::string EventLog::RenderJsonLine(const LogEvent& event) {
  std::string out = "{\"platform\": \"";
  out += Escape(event.platform);
  out += "\", \"app\": \"";
  out += Escape(event.app_id);
  out += "\", \"phase\": \"";
  out += Escape(event.phase);
  out += "\", \"seq\": ";
  out += std::to_string(event.seq);
  out += ", \"severity\": \"";
  out += SeverityName(event.severity);
  out += "\", \"event\": \"";
  out += Escape(event.name);
  out += '"';
  if (!event.fields.empty()) {
    out += ", \"fields\": {";
    for (std::size_t i = 0; i < event.fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"';
      out += Escape(event.fields[i].key);
      out += "\": ";
      out += event.fields[i].value.RenderJson();
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::vector<LogEvent> EventLog::SortedEvents() const {
  std::vector<LogEvent> events;
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    events.insert(events.end(), shards_[s].events.begin(),
                  shards_[s].events.end());
  }
  // Sort by logical keys only. The rendered line breaks the (rare) tie of
  // two same-identity scopes reusing a sequence number, keeping the order
  // total and schedule-independent.
  struct Keyed {
    LogEvent event;
    std::string line;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(events.size());
  for (LogEvent& e : events) {
    std::string line = RenderJsonLine(e);
    keyed.push_back(Keyed{std::move(e), std::move(line)});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    return std::tie(a.event.platform, a.event.app_id, a.event.phase,
                    a.event.seq, a.line) <
           std::tie(b.event.platform, b.event.app_id, b.event.phase,
                    b.event.seq, b.line);
  });
  events.clear();
  for (Keyed& k : keyed) events.push_back(std::move(k.event));
  return events;
}

std::string EventLog::ToJsonl() const {
  std::string out;
  for (const LogEvent& e : SortedEvents()) {
    out += RenderJsonLine(e);
    out += '\n';
  }
  return out;
}

void EventScope::Emit(Severity severity, std::string_view name,
                      std::vector<LogField> fields) {
  // Allocate the sequence number before filtering: a journal captured at a
  // higher min severity must be a byte-exact subsequence of the full one.
  const std::uint32_t seq = next_seq_++;
  if (log_ == nullptr || !log_->Enabled(severity)) return;
  LogEvent event;
  event.platform = platform_;
  event.app_id = app_id_;
  event.phase = phase_;
  event.seq = seq;
  event.severity = severity;
  event.name = std::string(name);
  event.fields = std::move(fields);
  log_->Add(event);
}

}  // namespace pinscope::obs

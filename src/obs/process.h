// Process-level resource observability.
//
// The streaming-study work (DESIGN.md §15) is a peak-memory contract:
// bounded RSS no matter the corpus size. That contract needs a witness, so
// this header reads the process's peak resident set ("high-water mark") and
// publishes it as the `process.peak_rss_bytes` gauge — in --metrics-out
// files and embedded in every BENCH_*.json. The live-telemetry work (§16)
// adds the instantaneous view: `process.rss_bytes` (VmRSS), re-published on
// every telemetry tick so the live .prom snapshot and heartbeat carry a
// current value rather than one sampled at exit.
#pragma once

#include <cstdint>
#include <optional>

#include "obs/metrics.h"

namespace pinscope::obs {

/// Peak resident-set size of the current process in bytes, read from
/// /proc/self/status (the VmHWM line) on Linux. nullopt where procfs is
/// unavailable — callers render that as JSON null, never as zero.
[[nodiscard]] std::optional<std::uint64_t> ReadPeakRssBytes();

/// Current resident-set size of the process in bytes, read from
/// /proc/self/status (the VmRSS line). nullopt where procfs is unavailable.
[[nodiscard]] std::optional<std::uint64_t> ReadCurrentRssBytes();

/// Publishes ReadPeakRssBytes() as the `process.peak_rss_bytes` gauge.
/// No-op when `metrics` is null or the platform cannot report a peak.
void PublishPeakRss(MetricsRegistry* metrics);

/// Publishes both RSS gauges: `process.rss_bytes` (current VmRSS) and
/// `process.peak_rss_bytes` (VmHWM). Gauges are last-write-wins, so calling
/// this every telemetry tick is idempotent and cheap. No-op on null.
void PublishRss(MetricsRegistry* metrics);

}  // namespace pinscope::obs

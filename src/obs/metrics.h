// Unified metrics for the study pipeline (DESIGN.md §11).
//
// Every layer of the pipeline — static scanner, dynamic pipeline, MITM
// proxy, TLS handshakes, x509 validation, and the three study caches —
// records into one MetricsRegistry of named counters, gauges, and
// fixed-bucket histograms instead of keeping its own ad-hoc stats surface.
// The registry is thread-safe the same way the study caches are: hot-path
// writes land in 16-way sharded atomics (shard chosen per thread) and are
// merged only when a snapshot is read, so parallel workers almost never
// touch the same cache line.
//
// Determinism contract: metrics are pure observability. Counter values and
// timer durations never feed a seeded RNG, never enter exported study bytes,
// and are excluded from every cache key — studies export byte-identical
// results with or without a registry attached (`ctest -L obs`). Wall-clock
// durations recorded by ScopedTimer are of course schedule-dependent; that
// is precisely why they live here and nowhere else.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pinscope::obs {

class MetricsRegistry;

namespace internal {

/// Shards hot-path writes so parallel workers rarely share a cache line.
constexpr std::size_t kShards = 16;

/// Stable per-thread shard index.
[[nodiscard]] std::size_t ThisThreadShard();

struct CounterCell {
  std::atomic<std::uint64_t> shards[kShards] = {};

  void Add(std::uint64_t n) {
    shards[ThisThreadShard()].fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Sum() const {
    std::uint64_t total = 0;
    for (const auto& s : shards) total += s.load(std::memory_order_relaxed);
    return total;
  }
};

struct GaugeCell {
  std::atomic<std::uint64_t> value{0};
};

/// Lock-free add for pre-C++20-library atomics: a plain CAS loop.
void AtomicAddDouble(std::atomic<double>& a, double v);
void AtomicMinDouble(std::atomic<double>& a, double v);
void AtomicMaxDouble(std::atomic<double>& a, double v);

struct HistogramCell {
  explicit HistogramCell(std::vector<double> bucket_bounds);

  void Record(double value);

  /// Upper bucket bounds, ascending; an implicit overflow bucket follows.
  const std::vector<double> bounds;
  /// bounds.size() + 1 buckets; bucket i counts values ≤ bounds[i] (and
  /// greater than bounds[i-1]); the last bucket counts everything above
  /// bounds.back().
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  std::atomic<double> sum{0.0};
  std::atomic<double> min;
  std::atomic<double> max;
};

}  // namespace internal

/// Handle to a named monotonic counter. Copyable, trivially cheap; a
/// default-constructed handle is a no-op sink, which is how call sites stay
/// unconditional when no registry is attached.
class Counter {
 public:
  Counter() = default;

  void Add(std::uint64_t n) {
    if (cell_ != nullptr) cell_->Add(n);
  }
  void Increment() { Add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(internal::CounterCell* cell) : cell_(cell) {}
  internal::CounterCell* cell_ = nullptr;
};

/// Handle to a named gauge (last-write-wins value — used for snapshot-style
/// facts like cache entry counts, where re-publishing must be idempotent).
class Gauge {
 public:
  Gauge() = default;

  void Set(std::uint64_t v) {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(internal::GaugeCell* cell) : cell_(cell) {}
  internal::GaugeCell* cell_ = nullptr;
};

/// Handle to a named fixed-bucket histogram. Null handle = no-op.
class Histogram {
 public:
  Histogram() = default;

  void Record(double value) {
    if (cell_ != nullptr) cell_->Record(value);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(internal::HistogramCell* cell) : cell_(cell) {}
  internal::HistogramCell* cell_ = nullptr;
};

/// Merged read-side view of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< Upper bounds, ascending.
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0.
  double max = 0.0;

  [[nodiscard]] double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Bucket-interpolated quantile estimate, q in [0, 1]. Linear within the
  /// selected bucket (first bucket's lower edge is 0, the overflow bucket's
  /// upper edge is the recorded max), clamped to [min, max] so estimates
  /// never leave the observed range. With log2 bounds the relative error is
  /// bounded by one octave — see Log2DurationBoundsUs(). 0 when empty.
  [[nodiscard]] double Quantile(double q) const;
};

/// Merged read-side view of a whole registry. Maps are sorted by name, so
/// any serialization of a snapshot is deterministic given the same totals.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Thread-safe registry of named metrics. Handle creation takes a mutex
/// (rare — call sites cache handles); recording through a handle is
/// lock-free sharded-atomic work. One instance serves a whole study.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Gets or creates the counter named `name`.
  [[nodiscard]] Counter counter(std::string_view name);

  /// Gets or creates the gauge named `name`.
  [[nodiscard]] Gauge gauge(std::string_view name);

  /// Gets or creates a histogram. `bounds` must be ascending; empty means
  /// DefaultDurationBoundsUs(). Bounds are fixed at creation — later calls
  /// with different bounds return the existing histogram unchanged.
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<double> bounds = {});

  /// Merged snapshot (approximate while writers are in flight; exact once
  /// the parallel loops have joined).
  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Default histogram bounds for wall durations in microseconds: roughly
  /// exponential from 50 µs to 5 s, 16 buckets plus overflow.
  [[nodiscard]] static const std::vector<double>& DefaultDurationBoundsUs();

  /// Log2-bucketed duration bounds in microseconds: powers of two from
  /// 2^4 (16 µs) through 2^26 (~67 s), 23 buckets plus overflow. Adjacent
  /// bounds differ by exactly 2x, so a bucket-interpolated Quantile() is
  /// never off by more than one octave — the bounded-error contract the
  /// phase.* percentiles advertise.
  [[nodiscard]] static const std::vector<double>& Log2DurationBoundsUs();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<internal::CounterCell>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<internal::GaugeCell>, std::less<>>
      gauges_;
  std::map<std::string, std::unique_ptr<internal::HistogramCell>, std::less<>>
      histograms_;
};

/// Null-safe handle factories for optional registries.
[[nodiscard]] inline Counter CounterOrNull(MetricsRegistry* registry,
                                           std::string_view name) {
  return registry == nullptr ? Counter() : registry->counter(name);
}
[[nodiscard]] inline Histogram HistogramOrNull(MetricsRegistry* registry,
                                               std::string_view name) {
  return registry == nullptr ? Histogram() : registry->histogram(name);
}

/// The handle factory for `phase.*` latency histograms: log2 bounds, so the
/// summary/heartbeat/OpenMetrics percentiles carry the bounded-error
/// guarantee. Null registry = no-op handle, like HistogramOrNull.
[[nodiscard]] inline Histogram PhaseHistogramOrNull(MetricsRegistry* registry,
                                                    std::string_view name) {
  return registry == nullptr
             ? Histogram()
             : registry->histogram(name,
                                   MetricsRegistry::Log2DurationBoundsUs());
}

/// RAII wall timer: records the scope's elapsed microseconds into a
/// histogram on destruction. A default-constructed (or null-histogram)
/// timer records nothing.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  explicit ScopedTimer(Histogram histogram)
      : histogram_(histogram),
        armed_(true),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Records now instead of at scope exit (idempotent).
  void Stop() {
    if (!armed_) return;
    armed_ = false;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Histogram histogram_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// Serializes a snapshot as JSON (the `--metrics-out` format): counters and
/// gauges as name → value objects, histograms with bucket arrays and
/// sum/min/max/mean. Deterministic given the same snapshot.
[[nodiscard]] std::string WriteMetricsJson(const MetricsSnapshot& snapshot);

/// Serializes a snapshot in the OpenMetrics / Prometheus text exposition
/// format (the `--metrics-out=<path>.prom` format): dotted metric names are
/// sanitized to underscores and prefixed `pinscope_`, counters gain the
/// `_total` suffix, histograms render cumulative `_bucket{le="..."}` series
/// plus `_sum`/`_count` and (when non-empty) derived `_p50`/`_p90`/`_p99`
/// gauges, and the document ends with `# EOF`. Deterministic given the same
/// snapshot.
[[nodiscard]] std::string WriteMetricsOpenMetrics(const MetricsSnapshot& snapshot);

/// Serializes the histograms whose names start with `prefix` as a compact
/// JSON object of per-phase totals (ms) — the breakdown the bench harnesses
/// embed into their BENCH_*.json.
[[nodiscard]] std::string WritePhaseBreakdownJson(
    const MetricsSnapshot& snapshot, std::string_view prefix = "phase.");

/// Renders the end-of-run `--summary` table: counters, derived cache
/// hit-rates (from `cache.<name>.lookups/hits/...` gauge families), and
/// per-phase wall-time totals.
[[nodiscard]] std::string RenderSummary(const MetricsSnapshot& snapshot);

}  // namespace pinscope::obs

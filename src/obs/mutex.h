// Mutex-contention probe (ROADMAP item 3d).
//
// TrackedMutex wraps std::mutex and surfaces contention into the unified
// metrics layer as a `lock.<name>.contended` counter (lock() calls that
// found the mutex held) and a `lock.<name>.wait_us` histogram (how long
// those calls waited). The uncontended path is one try_lock — no clock
// read, no metric write — so tracking costs nothing where it matters.
//
// Determinism contract: identical to the rest of obs — the probe never
// feeds scheduling decisions or exported bytes; a TrackedMutex without a
// registry behaves exactly like std::mutex (DESIGN.md §11).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace pinscope::obs {

/// Routes one contended-lock wait to the calling thread's ambient timeline
/// lane, if a TimelineWorkerScope is active (no-op otherwise). Defined in
/// obs/timeline.cc; declared here so the hot mutex header need not pull in
/// the timeline types.
void RecordAmbientLockWait(std::string_view lock_name, std::int64_t wait_us);

/// A Lockable std::mutex wrapper with contention metrics. Works with
/// std::lock_guard / std::unique_lock / std::condition_variable_any.
/// Default-constructed (or null-registry) instances record nothing.
class TrackedMutex {
 public:
  TrackedMutex() = default;
  TrackedMutex(MetricsRegistry* metrics, std::string_view name) {
    Attach(metrics, name);
  }
  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  /// Binds the probe to `lock.<name>.*` metrics. Null-safe; must happen
  /// before the mutex is shared between threads (handles are written
  /// without synchronization). The name is retained either way so the
  /// timeline's per-worker lock-wait attribution can label the wait even
  /// when no registry is attached.
  void Attach(MetricsRegistry* metrics, std::string_view name) {
    name_ = std::string(name);
    const std::string prefix = "lock." + name_;
    contended_ = CounterOrNull(metrics, prefix + ".contended");
    wait_us_ = HistogramOrNull(metrics, prefix + ".wait_us");
  }

  void lock() {
    if (mu_.try_lock()) return;  // uncontended: no clock read
    contended_.Increment();
    const auto start = std::chrono::steady_clock::now();
    mu_.lock();
    const auto waited = std::chrono::steady_clock::now() - start;
    const double waited_us =
        std::chrono::duration<double, std::micro>(waited).count();
    wait_us_.Record(waited_us);
    RecordAmbientLockWait(name_.empty() ? std::string_view("mutex") : name_,
                          static_cast<std::int64_t>(waited_us));
  }

  [[nodiscard]] bool try_lock() { return mu_.try_lock(); }

  void unlock() { mu_.unlock(); }

  /// The name Attach bound (empty until attached).
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::mutex mu_;
  std::string name_;
  Counter contended_;
  Histogram wait_us_;
};

}  // namespace pinscope::obs

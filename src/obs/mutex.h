// Mutex-contention probe (ROADMAP item 3d).
//
// TrackedMutex wraps std::mutex and surfaces contention into the unified
// metrics layer as a `lock.<name>.contended` counter (lock() calls that
// found the mutex held) and a `lock.<name>.wait_us` histogram (how long
// those calls waited). The uncontended path is one try_lock — no clock
// read, no metric write — so tracking costs nothing where it matters.
//
// Determinism contract: identical to the rest of obs — the probe never
// feeds scheduling decisions or exported bytes; a TrackedMutex without a
// registry behaves exactly like std::mutex (DESIGN.md §11).
#pragma once

#include <chrono>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace pinscope::obs {

/// A Lockable std::mutex wrapper with contention metrics. Works with
/// std::lock_guard / std::unique_lock / std::condition_variable_any.
/// Default-constructed (or null-registry) instances record nothing.
class TrackedMutex {
 public:
  TrackedMutex() = default;
  TrackedMutex(MetricsRegistry* metrics, std::string_view name) {
    Attach(metrics, name);
  }
  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  /// Binds the probe to `lock.<name>.*` metrics. Null-safe; must happen
  /// before the mutex is shared between threads (handles are written
  /// without synchronization).
  void Attach(MetricsRegistry* metrics, std::string_view name) {
    const std::string prefix = "lock." + std::string(name);
    contended_ = CounterOrNull(metrics, prefix + ".contended");
    wait_us_ = HistogramOrNull(metrics, prefix + ".wait_us");
  }

  void lock() {
    if (mu_.try_lock()) return;  // uncontended: no clock read
    contended_.Increment();
    const auto start = std::chrono::steady_clock::now();
    mu_.lock();
    const auto waited = std::chrono::steady_clock::now() - start;
    wait_us_.Record(
        std::chrono::duration<double, std::micro>(waited).count());
  }

  [[nodiscard]] bool try_lock() { return mu_.try_lock(); }

  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
  Counter contended_;
  Histogram wait_us_;
};

}  // namespace pinscope::obs

// Deterministic structured event journal for the study pipeline
// (DESIGN.md §12).
//
// An EventLog collects *decision events* — which static rule fired, which
// config pin-set was parsed, why a chain failed validation, which run pair
// diverged — so every exported verdict can be traced back to the evidence
// that produced it. Unlike the trace sink, the journal is part of the
// determinism contract: its JSONL export is stably ordered by logical keys
// (platform, app id, phase, sequence-within-scope), never wall-clock, so the
// bytes are identical across thread counts and across runs.
//
// Thread safety mirrors MetricsRegistry/TraceSink: events land in 16-way
// sharded vectors (shard chosen per thread, per-shard mutex) and are merged
// and sorted only at serialization time. Emission goes through an EventScope
// — one scope per (platform, app, phase), used by exactly one thread — whose
// local sequence counter provides the within-scope order. A default
// constructed EventScope is a no-op, so call sites stay unconditional when
// journaling is off.
//
// Severity filtering never reorders: the scope allocates a sequence number
// for every Emit() *before* the min-severity check, so a journal captured at
// a higher level is a byte-exact subsequence of the full journal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pinscope::obs {

/// Event severity, ordered. kDecision sits above kInfo so a journal captured
/// at `decision` keeps exactly the verdict-attributing events plus warnings
/// and errors.
enum class Severity {
  kDebug,
  kInfo,
  kDecision,
  kWarn,
  kError,
};

/// Lowercase severity label ("debug", "info", "decision", "warn", "error").
[[nodiscard]] std::string_view SeverityName(Severity s);

/// Parses a severity label (the exact SeverityName spellings). Returns
/// nullopt for anything else — callers reject bad --log-level values.
[[nodiscard]] std::optional<Severity> ParseSeverity(std::string_view name);

/// Typed field value. Implicitly constructible from the types call sites
/// actually pass so emission reads as a brace list of key/value pairs.
class LogValue {
 public:
  enum class Type { kString, kInt, kUint, kBool, kDouble };

  LogValue(std::string v) : type_(Type::kString), str_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  LogValue(std::string_view v) : type_(Type::kString), str_(v) {}        // NOLINT(google-explicit-constructor)
  LogValue(const char* v) : type_(Type::kString), str_(v) {}             // NOLINT(google-explicit-constructor)
  LogValue(bool v) : type_(Type::kBool), bool_(v) {}                     // NOLINT(google-explicit-constructor)
  LogValue(int v) : type_(Type::kInt), int_(v) {}                        // NOLINT(google-explicit-constructor)
  LogValue(std::int64_t v) : type_(Type::kInt), int_(v) {}               // NOLINT(google-explicit-constructor)
  LogValue(std::uint64_t v) : type_(Type::kUint), uint_(v) {}            // NOLINT(google-explicit-constructor)
  LogValue(double v) : type_(Type::kDouble), double_(v) {}               // NOLINT(google-explicit-constructor)

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] const std::string& AsString() const { return str_; }
  [[nodiscard]] std::int64_t AsInt() const { return int_; }
  [[nodiscard]] std::uint64_t AsUint() const { return uint_; }
  [[nodiscard]] bool AsBool() const { return bool_; }
  [[nodiscard]] double AsDouble() const { return double_; }

  /// JSON rendering of the value alone (strings escaped and quoted; numbers
  /// and booleans bare). Deterministic — no locale, no float wobble.
  [[nodiscard]] std::string RenderJson() const;

 private:
  Type type_;
  std::string str_;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  bool bool_ = false;
  double double_ = 0.0;
};

/// One named field of an event.
struct LogField {
  std::string key;
  LogValue value;
};

/// One journal entry. Ordering keys are the scope identity plus `seq`;
/// wall-clock never appears.
struct LogEvent {
  std::string platform;  ///< "android", "ios", or "" for study-level events.
  std::string app_id;    ///< Package / bundle id ("" for study-level events).
  std::string phase;     ///< "static", "dynamic.mitm", "dynamic.detect", ...
  std::uint32_t seq = 0; ///< Emission index within the scope (filter-stable).
  Severity severity = Severity::kInfo;
  std::string name;      ///< Event type, e.g. "nsc.pin_set".
  std::vector<LogField> fields;
};

/// Finds a field by key (first match) or returns nullptr.
[[nodiscard]] const LogValue* FindField(const LogEvent& event,
                                        std::string_view key);

/// Thread-safe deterministic event journal for one run.
class EventLog {
 public:
  explicit EventLog(Severity min_severity = Severity::kInfo);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  [[nodiscard]] Severity min_severity() const { return min_severity_; }
  [[nodiscard]] bool Enabled(Severity s) const { return s >= min_severity_; }

  /// Deposits one event (severity already admitted by the caller, normally
  /// an EventScope).
  void Add(LogEvent event);

  /// Events recorded so far (approximate while workers are running).
  [[nodiscard]] std::size_t EventCount() const;

  /// Merged events sorted by (platform, app_id, phase, seq), with the
  /// rendered line as the final tiebreak so the order is total even if two
  /// scopes share an identity.
  [[nodiscard]] std::vector<LogEvent> SortedEvents() const;

  /// One JSON object per line, sorted as SortedEvents(). Byte-identical
  /// across thread counts for a deterministic study.
  [[nodiscard]] std::string ToJsonl() const;

  /// Renders one event as its JSONL line (no trailing newline).
  [[nodiscard]] static std::string RenderJsonLine(const LogEvent& event);

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::vector<LogEvent> events;
  };

  Severity min_severity_;
  std::unique_ptr<Shard[]> shards_;
};

/// Emission handle for one (platform, app, phase) scope. Owned and used by a
/// single thread; the local sequence counter orders its events. Default
/// constructed (or built over a null log) scopes drop everything but still
/// count sequence numbers, keeping filtered journals subsequence-exact.
class EventScope {
 public:
  EventScope() = default;
  EventScope(EventLog* log, std::string platform, std::string app_id,
             std::string phase)
      : log_(log),
        platform_(std::move(platform)),
        app_id_(std::move(app_id)),
        phase_(std::move(phase)) {}

  EventScope(const EventScope&) = delete;
  EventScope& operator=(const EventScope&) = delete;
  EventScope(EventScope&&) noexcept = default;
  EventScope& operator=(EventScope&&) noexcept = default;

  [[nodiscard]] EventLog* log() const { return log_; }

  /// Emits one event. The sequence number is allocated unconditionally —
  /// before the severity check — so raising min_severity filters lines
  /// without renumbering the survivors.
  void Emit(Severity severity, std::string_view name,
            std::vector<LogField> fields = {});

 private:
  EventLog* log_ = nullptr;
  std::string platform_;
  std::string app_id_;
  std::string phase_;
  std::uint32_t next_seq_ = 0;
};

/// Null-safe pointer emission for leaf layers (tls, net, device) that carry
/// a bare `EventScope*` the way they carry a bare `MetricsRegistry*`.
inline void EmitTo(EventScope* scope, Severity severity, std::string_view name,
                   std::vector<LogField> fields = {}) {
  if (scope != nullptr) scope->Emit(severity, name, std::move(fields));
}

}  // namespace pinscope::obs

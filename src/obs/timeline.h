// Bounded, streaming-safe interval timeline (ROADMAP item 3 · DESIGN §17).
//
// The run autopsy (obs/autopsy.h) needs *intervals* — who ran what, when,
// on which worker — which the flat metrics layer cannot answer and the
// O(corpus) TraceSink cannot afford on a 10⁵-app stream. The Timeline is
// the middle ground: every interval updates exact per-worker accumulators
// (busy/idle bucket totals — O(workers) memory, never sampled away), and a
// per-worker reservoir keeps at most `per_worker_cap` whole intervals for
// structural analysis (critical path, folded stacks). Memory is therefore
// O(workers · cap) no matter how many apps stream through; below the cap
// the sample is exhaustive, above it it is a uniform reservoir (algorithm
// R with a per-lane deterministic LCG).
//
// Determinism contract: identical to the rest of obs — the timeline is
// fed from the scheduler but never consulted by it; attaching one must not
// change a single exported byte (tests/core/autopsy_equivalence_test.cc).
//
// Lock-wait attribution: the scheduler registers each worker thread with
// an ambient thread-local scope (TimelineWorkerScope); any TrackedMutex
// that loses a race while such a scope is active reports its wait here via
// RecordAmbientLockWait (declared in obs/mutex.h, defined in timeline.cc),
// which is how per-worker lock-wait time lands in the idle breakdown
// without the caches knowing anything about workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pinscope::obs {

/// What one recorded interval was spent on. kStage is busy time; the rest
/// are the idle-attribution taxonomy (DESIGN §17).
enum class IntervalKind : std::uint8_t {
  kStage,         ///< Running a stage body (attempt loop, incl. retries).
  kQueueStarved,  ///< Blocked popping an empty ready queue; a task arrived.
  kBackpressure,  ///< Blocked pushing a full ready queue (submitter only).
  kLockWait,      ///< Waiting on a contended TrackedMutex.
  kTailJoin,      ///< Final blocked pop that observed queue close.
};

/// Number of IntervalKind values (array sizing).
inline constexpr std::size_t kIntervalKindCount = 5;

/// Short lower-case label ("stage", "queue_starved", ...).
[[nodiscard]] std::string_view IntervalKindName(IntervalKind kind);

/// One sampled interval. `key` is the caller-defined 64-bit item identity
/// for kStage intervals (the study drivers use TelemetryKey: platform rank
/// in the top bits, universe index below); `label` indexes the timeline's
/// interned stage names (kStage) or lock names (kLockWait), 0 elsewhere.
struct TimelineInterval {
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  std::uint64_t key = 0;
  std::uint32_t label = 0;
  std::uint32_t worker = 0;
  IntervalKind kind = IntervalKind::kStage;

  [[nodiscard]] std::int64_t duration_us() const { return end_us - start_us; }
};

/// Exact (never sampled) per-worker totals, all in microseconds.
struct TimelineWorkerTotals {
  double busy_us = 0;           ///< kStage time (includes in-stage lock waits).
  double queue_starved_us = 0;  ///< kQueueStarved time.
  double backpressure_us = 0;   ///< kBackpressure time.
  double lock_wait_us = 0;      ///< kLockWait time (ambient TrackedMutex).
  double tail_join_us = 0;      ///< kTailJoin time.
  std::uint64_t stage_count = 0;      ///< kStage intervals offered.
  std::uint64_t intervals_seen = 0;   ///< All intervals offered (reservoir n).
  std::int64_t first_us = 0;          ///< Earliest interval start (0 if none).
  std::int64_t last_us = 0;           ///< Latest interval end.
};

struct TimelineOptions {
  /// Reservoir capacity per worker lane. The default comfortably holds every
  /// interval of paper-scale runs (≈5.3k apps × 3-4 stages spread over many
  /// workers) while capping a 10⁵-app stream at ~256 KiB per worker.
  std::size_t per_worker_cap = 8192;
};

/// See file comment. Recording methods are thread-safe (per-lane locking);
/// registration (InternStage) and snapshotting are expected from the
/// run-owning thread before/after the workers exist.
class Timeline {
 public:
  explicit Timeline(TimelineOptions options = {});
  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;
  ~Timeline();

  /// Interns a stage name; returns the label id RecordStage expects.
  /// Idempotent per name. Call before the workers start.
  std::uint32_t InternStage(std::string_view name);

  /// Marks the run's wall-clock bounds (scheduler entry/exit). MarkRunEnd
  /// is idempotent; without these the analysis falls back to the recorded
  /// interval extrema.
  void MarkRunStart();
  void MarkRunEnd();

  /// Records one stage-body execution on `worker`.
  void RecordStage(std::uint32_t worker, std::uint64_t key, std::uint32_t label,
                   std::int64_t start_us, std::int64_t end_us);

  /// Records one idle interval (kQueueStarved / kBackpressure / kTailJoin).
  void RecordIdle(std::uint32_t worker, IntervalKind kind, std::int64_t start_us,
                  std::int64_t end_us);

  /// Records a contended-lock wait ending now on `worker` (interning
  /// `lock_name` on first use; safe from any thread).
  void RecordLockWait(std::uint32_t worker, std::string_view lock_name,
                      std::int64_t wait_us);

  /// Microseconds since construction — the clock every interval is on.
  [[nodiscard]] std::int64_t NowUs() const;

  // --- Post-run inspection (call after workers quiesce). -------------------

  /// Run bounds: [start, end] in timeline microseconds. Falls back to the
  /// interval extrema when Mark* was never called.
  [[nodiscard]] std::int64_t RunStartUs() const;
  [[nodiscard]] std::int64_t RunEndUs() const;

  /// Workers that recorded anything (lane indices are worker ids, dense
  /// from 0).
  [[nodiscard]] std::size_t WorkerCount() const;

  /// Exact totals for `worker` (zeroes for an idle lane).
  [[nodiscard]] TimelineWorkerTotals TotalsFor(std::size_t worker) const;

  /// Sampled intervals of `worker`, sorted by (start, end). Exhaustive when
  /// the lane saw at most `per_worker_cap` intervals.
  [[nodiscard]] std::vector<TimelineInterval> SamplesFor(
      std::size_t worker) const;

  /// Total sampled intervals across lanes (≤ WorkerCount() · cap).
  [[nodiscard]] std::size_t SampleCount() const;

  /// Total intervals offered across lanes.
  [[nodiscard]] std::uint64_t IntervalsSeen() const;

  /// Interned stage/lock name for a label id ("?" when out of range).
  [[nodiscard]] std::string_view StageName(std::uint32_t label) const;
  [[nodiscard]] std::string_view LockName(std::uint32_t label) const;
  [[nodiscard]] std::size_t StageCount() const;
  [[nodiscard]] std::size_t LockNameCount() const;

  /// Upper bound of bytes the interval reservoirs can ever hold for the
  /// lanes allocated so far — constant in corpus size (the ring-bound test
  /// asserts it is identical for a 10× larger stream).
  [[nodiscard]] std::size_t ReservoirCapacityBytes() const;

  [[nodiscard]] std::size_t per_worker_cap() const {
    return options_.per_worker_cap;
  }

 private:
  struct Lane;

  /// Worker ids at or above this clamp into the last lane (far beyond any
  /// real pool; keeps the lane table a fixed array of atomic pointers so
  /// the record path never takes a shared lock).
  static constexpr std::size_t kMaxLanes = 512;

  Lane& LaneFor(std::uint32_t worker);
  void Offer(std::uint32_t worker, const TimelineInterval& interval);

  TimelineOptions options_;

  std::atomic<Lane*> lanes_[kMaxLanes] = {};
  mutable std::mutex grow_mu_;  ///< Guards lane allocation + name tables.
  std::vector<std::string> stage_names_;
  std::vector<std::string> lock_names_;

  std::atomic<std::int64_t> run_start_us_{-1};
  std::atomic<std::int64_t> run_end_us_{-1};
  std::int64_t epoch_ns_ = 0;  ///< steady_clock at construction (ns ticks).
};

/// RAII ambient-worker registration: while alive on a thread, contended
/// TrackedMutex waits on that thread are attributed to (timeline, worker).
/// Null timeline = no-op. Nesting restores the previous ambient on exit.
class TimelineWorkerScope {
 public:
  TimelineWorkerScope(Timeline* timeline, std::uint32_t worker);
  TimelineWorkerScope(const TimelineWorkerScope&) = delete;
  TimelineWorkerScope& operator=(const TimelineWorkerScope&) = delete;
  ~TimelineWorkerScope();

 private:
  Timeline* prev_timeline_;
  std::uint32_t prev_worker_;
};

/// RAII suppression of ambient lock-wait recording: the scheduler wraps its
/// own timed queue waits with this so a contended queue mutex inside a
/// kQueueStarved/kBackpressure interval is not double-counted as kLockWait.
class TimelineAmbientPause {
 public:
  TimelineAmbientPause();
  TimelineAmbientPause(const TimelineAmbientPause&) = delete;
  TimelineAmbientPause& operator=(const TimelineAmbientPause&) = delete;
  ~TimelineAmbientPause();

 private:
  Timeline* prev_timeline_;
  std::uint32_t prev_worker_;
};

}  // namespace pinscope::obs

// Post-hoc causal run profiler (DESIGN §17).
//
// The autopsy answers "why was this run slow?" from a finished Timeline:
//
//  * Critical path — the longest dependency-respecting chain of stage
//    intervals. Two dependency kinds exist on the pipelined scheduler:
//    chain edges (stage k+1 of an item needs stage k of the same item) and
//    worker edges (an interval needs its worker to be free). Walking back
//    from the last-ending interval and always following whichever
//    predecessor finished *later* (the binding constraint) yields the
//    app+stage segments whose durations sum to ≈ wall-clock.
//  * Idle attribution — per worker, where non-busy time went: queue-starved
//    / backpressure-inline / lock-wait / tail-join (exact accumulator
//    buckets, never sampled), plus the unattributed residual.
//  * Folded stacks — `platform;app;stage weight_us` lines for standard
//    flamegraph tooling (--folded-out).
//
// All inputs are observational; running an autopsy never changes a byte of
// any export (tests/core/autopsy_equivalence_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"

namespace pinscope::obs {

/// Resolves a stage interval's 64-bit item key to human labels. The study
/// drivers key intervals by TelemetryKey (platform rank << 48 | universe
/// index); the CLI resolves those against the live ecosystem. A null
/// resolver falls back to "item" / the decimal key.
struct ItemLabel {
  std::string platform;  ///< "android" / "ios" / "item".
  std::string app;       ///< App id, or the decimal key.
};
using ItemResolver = std::function<ItemLabel(std::uint64_t key)>;

/// One segment of the critical path, in run order.
struct CriticalSegment {
  std::uint64_t key = 0;      ///< Item identity (see ItemResolver).
  std::string stage;          ///< Stage name.
  std::uint32_t worker = 0;   ///< Worker that ran it.
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;

  [[nodiscard]] std::int64_t duration_us() const { return end_us - start_us; }
};

/// Where one worker's wall-clock went, all in microseconds. busy excludes
/// the lock waits recorded inside stages so the buckets partition the wall
/// (lock_wait counts them once, on their own row).
struct WorkerBreakdown {
  std::uint32_t worker = 0;
  double busy_us = 0;
  double queue_starved_us = 0;
  double backpressure_us = 0;
  double lock_wait_us = 0;
  double tail_join_us = 0;
  double other_us = 0;  ///< wall − everything above (loop overhead, ramp-up).
  std::uint64_t stage_count = 0;

  [[nodiscard]] double attributed_us() const {
    return busy_us + queue_starved_us + backpressure_us + lock_wait_us +
           tail_join_us;
  }
};

/// One `lock.<name>` family joined from the metrics snapshot.
struct LockProfile {
  std::string name;
  std::uint64_t contended = 0;
  double total_wait_us = 0;
  double p99_wait_us = 0;
};

/// One slow item: stage-time sum over the sampled intervals.
struct SlowItem {
  std::uint64_t key = 0;
  double total_us = 0;
  /// (stage name, µs) pairs in stage order.
  std::vector<std::pair<std::string, double>> stages;
};

struct AutopsyOptions {
  std::size_t top_k = 10;  ///< Critical-path segments / slow items reported.
};

/// The full post-mortem. `sampled` warns that interval-derived sections
/// (critical path, slow items, folded stacks) saw a uniform sample, not
/// every interval; the per-worker buckets are exact regardless.
struct Autopsy {
  double wall_us = 0;
  std::size_t workers = 0;
  std::uint64_t intervals_seen = 0;
  std::size_t intervals_sampled = 0;
  bool sampled = false;

  std::vector<CriticalSegment> critical_path;  ///< Run order (first → last).
  double critical_path_us = 0;                 ///< Sum of segment durations.

  std::vector<WorkerBreakdown> worker_breakdown;  ///< By worker id.
  std::vector<SlowItem> slowest;                  ///< Descending total_us.
  std::vector<LockProfile> locks;                 ///< Descending wait time.
};

/// Analyzes a finished timeline. `metrics` (optional) supplies the
/// `lock.*` families for the contention table. Thread-compatible: call
/// after the run's workers have quiesced.
[[nodiscard]] Autopsy Analyze(const Timeline& timeline,
                              const MetricsSnapshot* metrics = nullptr,
                              const AutopsyOptions& options = {});

/// Folded-stack lines (`platform;app;stage weight_us\n`, sorted) aggregated
/// over the timeline's sampled stage intervals — feed to flamegraph.pl or
/// speedscope. Null resolver = decimal keys.
[[nodiscard]] std::string WriteFoldedStacks(const Timeline& timeline,
                                            const ItemResolver& resolver = {});

/// The fallback labeling WriteFoldedStacks and the reports use without a
/// resolver: {"item", "<key>"}.
[[nodiscard]] ItemLabel FallbackLabel(std::uint64_t key);

}  // namespace pinscope::obs

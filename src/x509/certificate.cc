#include "x509/certificate.h"

#include "util/error.h"
#include "util/hex.h"
#include "util/strings.h"

namespace pinscope::x509 {
namespace {

constexpr std::string_view kMagic = "PSCERT.v1";

void AppendField(std::string& out, std::string_view key, std::string_view value) {
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('\n');
}

}  // namespace

Certificate::Certificate(CertificateData data) : data_(std::move(data)) {
  if (data_.serial_hex.empty()) throw util::Error("certificate requires a serial");
}

const util::Bytes& Certificate::TbsBytes() const {
  std::call_once(digests_->tbs_once, [this] {
    std::string out;
    out.append(kMagic);
    out.push_back('\n');
    AppendField(out, "serial", data_.serial_hex);
    AppendField(out, "subject", data_.subject.ToString());
    AppendField(out, "issuer", data_.issuer.ToString());
    AppendField(out, "not_before", std::to_string(data_.not_before));
    AppendField(out, "not_after", std::to_string(data_.not_after));
    AppendField(out, "san", util::Join(data_.san_dns, "|"));
    AppendField(out, "ca", data_.is_ca ? "1" : "0");
    if (data_.path_len.has_value()) {
      AppendField(out, "pathlen", std::to_string(*data_.path_len));
    }
    AppendField(out, "spki", util::ToString(data_.spki));
    digests_->tbs = util::ToBytes(out);
  });
  return digests_->tbs;
}

util::Bytes Certificate::DerBytes() const {
  util::Bytes out = TbsBytes();
  util::Append(out, "sig=" + util::HexEncode(data_.signature) + "\n");
  return out;
}

std::size_t Certificate::DerSize() const {
  // DerBytes() is the TBS plus "sig=<hex>\n": 5 framing bytes and two hex
  // characters per signature byte.
  return TbsBytes().size() + 5 + 2 * data_.signature.size();
}

std::optional<Certificate> Certificate::ParseDer(const util::Bytes& der) {
  const std::string text = util::ToString(der);
  const std::vector<std::string> lines = util::Split(text, '\n');
  if (lines.empty() || lines[0] != kMagic) return std::nullopt;

  CertificateData data;
  bool saw_serial = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string_view key = std::string_view(line).substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "serial") {
      data.serial_hex = value;
      saw_serial = true;
    } else if (key == "subject") {
      data.subject = DistinguishedName::Parse(value);
    } else if (key == "issuer") {
      data.issuer = DistinguishedName::Parse(value);
    } else if (key == "not_before") {
      data.not_before = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "not_after") {
      data.not_after = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "san") {
      if (!value.empty()) data.san_dns = util::Split(value, '|');
    } else if (key == "ca") {
      data.is_ca = value == "1";
    } else if (key == "pathlen") {
      data.path_len = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "spki") {
      data.spki = util::ToBytes(value);
    } else if (key == "sig") {
      const auto sig = util::HexDecode(value);
      if (!sig) return std::nullopt;
      data.signature = *sig;
    } else {
      return std::nullopt;  // unknown field: treat as corruption
    }
  }
  if (!saw_serial || data.spki.empty()) return std::nullopt;
  return Certificate(std::move(data));
}

const Certificate::DigestCache& Certificate::Digests() const {
  std::call_once(digests_->once, [this] {
    digests_->fingerprint = crypto::Sha256(DerBytes());
    digests_->spki_sha256 = crypto::Sha256(data_.spki);
    digests_->spki_sha1 = crypto::Sha1(data_.spki);
  });
  return *digests_;
}

const crypto::Sha256Digest& Certificate::FingerprintSha256() const {
  return Digests().fingerprint;
}

const crypto::Sha256Digest& Certificate::SpkiSha256() const {
  return Digests().spki_sha256;
}

const crypto::Sha1Digest& Certificate::SpkiSha1() const {
  return Digests().spki_sha1;
}

bool HostnameMatchesPattern(std::string_view hostname, std::string_view pattern) {
  if (hostname.empty() || pattern.empty()) return false;
  if (util::StartsWith(pattern, "*.")) {
    const std::string_view suffix = pattern.substr(1);  // ".example.com"
    if (!util::EndsWith(hostname, suffix)) return false;
    const std::string_view label = hostname.substr(0, hostname.size() - suffix.size());
    // Exactly one extra, non-empty label: no dots allowed inside it.
    return !label.empty() && label.find('.') == std::string_view::npos;
  }
  return hostname == pattern;
}

bool Certificate::MatchesHostname(std::string_view hostname) const {
  if (data_.san_dns.empty()) {
    return HostnameMatchesPattern(hostname, data_.subject.common_name);
  }
  for (const std::string& san : data_.san_dns) {
    if (HostnameMatchesPattern(hostname, san)) return true;
  }
  return false;
}

}  // namespace pinscope::x509

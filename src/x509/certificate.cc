#include "x509/certificate.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/error.h"
#include "util/hex.h"
#include "util/strings.h"

namespace pinscope::x509 {
namespace {

constexpr std::string_view kMagic = "PSCERT.v1";

void AppendField(std::string& out, std::string_view key, std::string_view value) {
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('\n');
}

// strtoll over a view without materializing a NUL-terminated string. A stack
// buffer keeps strtoll's exact leading-whitespace / sign / overflow-clamping
// behavior; serialized timestamps are far below the buffer size.
long long ParseLongLong(std::string_view value) {
  char buf[64];
  const std::size_t n = std::min(value.size(), sizeof(buf) - 1);
  std::memcpy(buf, value.data(), n);
  buf[n] = '\0';
  return std::strtoll(buf, nullptr, 10);
}

}  // namespace

Certificate::Certificate(CertificateData data) : data_(std::move(data)) {
  if (data_.serial_hex.empty()) throw util::Error("certificate requires a serial");
}

Certificate::DigestCache& Certificate::Cache() const {
  std::shared_ptr<DigestCache> cache =
      digests_.load(std::memory_order_acquire);
  if (cache == nullptr) {
    auto fresh = std::make_shared<DigestCache>();
    if (digests_.compare_exchange_strong(cache, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      cache = std::move(fresh);
    }
    // On failure `cache` was reloaded with the winning thread's cache.
  }
  return *cache;
}

const util::Bytes& Certificate::TbsBytes() const {
  DigestCache& digests = Cache();
  std::call_once(digests.tbs_once, [this, &digests] {
    std::string out;
    out.append(kMagic);
    out.push_back('\n');
    AppendField(out, "serial", data_.serial_hex);
    AppendField(out, "subject", data_.subject.ToString());
    AppendField(out, "issuer", data_.issuer.ToString());
    AppendField(out, "not_before", std::to_string(data_.not_before));
    AppendField(out, "not_after", std::to_string(data_.not_after));
    AppendField(out, "san", util::Join(data_.san_dns, "|"));
    AppendField(out, "ca", data_.is_ca ? "1" : "0");
    if (data_.path_len.has_value()) {
      AppendField(out, "pathlen", std::to_string(*data_.path_len));
    }
    AppendField(out, "spki", util::ToString(data_.spki));
    digests.tbs = util::ToBytes(out);
  });
  return digests.tbs;
}

util::Bytes Certificate::DerBytes() const {
  util::Bytes out = TbsBytes();
  util::Append(out, "sig=" + util::HexEncode(data_.signature) + "\n");
  return out;
}

std::size_t Certificate::DerSize() const {
  // DerBytes() is the TBS plus "sig=<hex>\n": 5 framing bytes and two hex
  // characters per signature byte.
  return TbsBytes().size() + 5 + 2 * data_.signature.size();
}

std::optional<Certificate> Certificate::ParseDer(const util::Bytes& der) {
  // Zero-copy line walk: the only allocations are the retained field values
  // themselves. This parser runs once per certificate of every bundle in
  // every scanned app, so the former ToString + Split + per-line substr
  // copies dominated uncached scan cost.
  const std::string_view text(reinterpret_cast<const char*>(der.data()),
                              der.size());
  CertificateData data;
  bool saw_serial = false;
  bool first = true;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t line_end = nl == std::string_view::npos ? text.size() : nl;
    const std::string_view line = text.substr(pos, line_end - pos);
    pos = line_end + 1;  // text.size() + 1 terminates the loop at the end
    if (first) {
      if (line != kMagic) return std::nullopt;
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "serial") {
      data.serial_hex = value;
      saw_serial = true;
    } else if (key == "subject") {
      data.subject = DistinguishedName::Parse(value);
    } else if (key == "issuer") {
      data.issuer = DistinguishedName::Parse(value);
    } else if (key == "not_before") {
      data.not_before = ParseLongLong(value);
    } else if (key == "not_after") {
      data.not_after = ParseLongLong(value);
    } else if (key == "san") {
      if (!value.empty()) data.san_dns = util::Split(value, '|');
    } else if (key == "ca") {
      data.is_ca = value == "1";
    } else if (key == "pathlen") {
      data.path_len = static_cast<int>(ParseLongLong(value));
    } else if (key == "spki") {
      data.spki = util::ToBytes(value);
    } else if (key == "sig") {
      const auto sig = util::HexDecode(value);
      if (!sig) return std::nullopt;
      data.signature = *sig;
    } else {
      return std::nullopt;  // unknown field: treat as corruption
    }
  }
  if (!saw_serial || data.spki.empty()) return std::nullopt;
  return Certificate(std::move(data));
}

const Certificate::DigestCache& Certificate::Digests() const {
  DigestCache& digests = Cache();
  std::call_once(digests.once, [this, &digests] {
    digests.fingerprint = crypto::Sha256(DerBytes());
    digests.spki_sha256 = crypto::Sha256(data_.spki);
    digests.spki_sha1 = crypto::Sha1(data_.spki);
  });
  return digests;
}

const crypto::Sha256Digest& Certificate::FingerprintSha256() const {
  return Digests().fingerprint;
}

const crypto::Sha256Digest& Certificate::SpkiSha256() const {
  return Digests().spki_sha256;
}

const crypto::Sha1Digest& Certificate::SpkiSha1() const {
  return Digests().spki_sha1;
}

bool HostnameMatchesPattern(std::string_view hostname, std::string_view pattern) {
  if (hostname.empty() || pattern.empty()) return false;
  if (util::StartsWith(pattern, "*.")) {
    const std::string_view suffix = pattern.substr(1);  // ".example.com"
    if (!util::EndsWith(hostname, suffix)) return false;
    const std::string_view label = hostname.substr(0, hostname.size() - suffix.size());
    // Exactly one extra, non-empty label: no dots allowed inside it.
    return !label.empty() && label.find('.') == std::string_view::npos;
  }
  return hostname == pattern;
}

bool Certificate::MatchesHostname(std::string_view hostname) const {
  if (data_.san_dns.empty()) {
    return HostnameMatchesPattern(hostname, data_.subject.common_name());
  }
  for (const std::string& san : data_.san_dns) {
    if (HostnameMatchesPattern(hostname, san)) return true;
  }
  return false;
}

}  // namespace pinscope::x509

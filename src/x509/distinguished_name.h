// X.500 distinguished names (the subset certificates in this study carry).
#pragma once

#include <compare>
#include <string>
#include <string_view>

namespace pinscope::x509 {

/// A distinguished name with the attributes mobile-app certificates carry in
/// practice: CommonName, Organization, Country.
struct DistinguishedName {
  std::string common_name;
  std::string organization;
  std::string country;

  friend auto operator<=>(const DistinguishedName&, const DistinguishedName&) = default;

  /// RFC 2253-style single-line rendering, e.g. "CN=api.example.com,O=Example,C=US".
  [[nodiscard]] std::string ToString() const;

  /// Parses the rendering produced by ToString(). Unknown attributes are
  /// ignored; missing ones stay empty.
  [[nodiscard]] static DistinguishedName Parse(std::string_view s);
};

}  // namespace pinscope::x509

// X.500 distinguished names (the subset certificates in this study carry).
#pragma once

#include <string>
#include <string_view>

#include "util/packed_strings.h"

namespace pinscope::x509 {

/// A distinguished name with the attributes mobile-app certificates carry in
/// practice: CommonName, Organization, Country.
///
/// The three attributes share one packed backing buffer (see
/// util/packed_strings.h): certificates exist in corpus-sized quantities and
/// most names are CN-only, so this halves the struct and collapses the
/// per-attribute string headers into one. Accessors return views into the
/// buffer — valid until the next set_*() on the same object.
class DistinguishedName {
 public:
  DistinguishedName() = default;
  DistinguishedName(std::string_view cn, std::string_view o = {},
                    std::string_view c = {}) {
    set_common_name(cn);
    set_organization(o);
    set_country(c);
  }

  [[nodiscard]] std::string_view common_name() const { return parts_[0]; }
  [[nodiscard]] std::string_view organization() const { return parts_[1]; }
  [[nodiscard]] std::string_view country() const { return parts_[2]; }

  void set_common_name(std::string_view v) { parts_.set(0, v); }
  void set_organization(std::string_view v) { parts_.set(1, v); }
  void set_country(std::string_view v) { parts_.set(2, v); }

  friend bool operator==(const DistinguishedName&,
                         const DistinguishedName&) = default;

  /// RFC 2253-style single-line rendering, e.g. "CN=api.example.com,O=Example,C=US".
  [[nodiscard]] std::string ToString() const;

  /// Parses the rendering produced by ToString(). Unknown attributes are
  /// ignored; missing ones stay empty.
  [[nodiscard]] static DistinguishedName Parse(std::string_view s);

 private:
  util::PackedStrings<3> parts_;  ///< [0]=CN, [1]=O, [2]=C.
};

}  // namespace pinscope::x509

// Chain-validation memoization (the "validate once per study" layer).
//
// ValidateChain is a pure function of (chain bytes, hostname, sim-time, store
// content, option bits): it reads no other state and draws no randomness. The
// dynamic pipeline evaluates that same function thousands of times per study —
// every app contacting a shared destination revalidates the identical served
// (or forged) chain against the identical platform store — so a study-scoped
// memo turns all but the first evaluation per distinct tuple into a lookup.
//
// Thread safety & determinism mirror staticanalysis/scan_cache.h: the map is
// sharded (per-shard mutex, shard chosen by a chain-fingerprint byte) and
// inserts are first-wins. A racing worker that validated the same tuple
// deposits an *identical* ValidationResult, so which insert lands is
// unobservable — cached and uncached studies export byte-identical results
// (see DESIGN.md §10 and the `ctest -L dynamic` equivalence suite).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/mutex.h"

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "x509/certificate.h"
#include "x509/root_store.h"
#include "x509/validation.h"

namespace pinscope::x509 {

/// Monotonic counters describing a cache's lifetime (snapshot; the cache
/// keeps them in atomics). Per-shard hit attribution is schedule-dependent
/// under parallel studies, but the aggregate is stable: each distinct tuple
/// misses exactly once.
struct ValidationCacheStats {
  std::size_t lookups = 0;  ///< Validations that consulted the cache.
  std::size_t hits = 0;     ///< Validations served from a memoized result.
  std::size_t misses = 0;   ///< Validations that had to run.
  std::size_t inserts = 0;  ///< Deposit attempts (≥ entries; losers of a
                            ///< first-insert-wins race still count one).
  std::size_t entries = 0;  ///< Distinct tuples stored.

  [[nodiscard]] double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Thread-safe, deterministic (validation tuple) → ValidationResult map. One
/// instance lives for the duration of a Study and is shared by every worker.
class ValidationCache {
 public:
  /// Cache key: everything ValidateChain's outcome depends on.
  struct Key {
    /// Concatenated per-certificate SHA-256 fingerprints, leaf first. Kept
    /// raw (32·n bytes) rather than re-hashed: the per-cert digests are
    /// already cached on the certificates, so building a key is pure copies,
    /// and equality is one memcmp.
    util::Bytes chain_fp;
    std::uint64_t store_token = 0;    ///< RootStore::ContentToken().
    std::uint64_t options_token = 0;  ///< Check flags + revocation digest.
    util::SimTime now = 0;
    std::string hostname;

    bool operator==(const Key&) const = default;
  };

  explicit ValidationCache(std::size_t shard_count = kDefaultShards);

  ValidationCache(const ValidationCache&) = delete;
  ValidationCache& operator=(const ValidationCache&) = delete;

  /// Builds the key for one validation.
  [[nodiscard]] static Key MakeKey(const CertificateChain& chain,
                                   std::string_view hostname, util::SimTime now,
                                   const RootStore& store,
                                   const ValidationOptions& options);

  /// Looks up a memoized result. Counts one lookup. nullopt on miss.
  [[nodiscard]] std::optional<ValidationResult> Find(const Key& key);

  /// Deposits a result (first insert wins) and returns the resident value —
  /// racing workers all observe one canonical entry.
  ValidationResult Insert(Key key, ValidationResult result);

  /// Counter snapshot (approximate while validations are in flight; exact
  /// once the parallel loop has joined).
  [[nodiscard]] ValidationCacheStats Stats() const;

  /// Resident entry count, measured by walking the shards (vs the
  /// Stats().entries counter, which tracks winning inserts — equal once the
  /// parallel loop has joined, which the `ctest -L obs` suite asserts).
  [[nodiscard]] std::size_t EntryCount() const;

  /// Persists every memoized tuple to `path` through util::WriteCacheFile
  /// (versioned header, checksum, atomic rename; DESIGN.md §15). Entries
  /// serialize in sorted key order, so equal memos write byte-identical
  /// files. Returns false on I/O failure.
  bool SaveToFile(const std::string& path) const;

  /// Merges entries from a file written by SaveToFile (first-wins against
  /// anything resident). A missing, foreign, version-mismatched, or corrupt
  /// file returns false and loads nothing — the cold-start path. Loaded
  /// entries count toward inserts/entries, never toward lookups/hits.
  bool LoadFromFile(const std::string& path);

  /// Binds every shard's lock to the `lock.<name>.contended` /
  /// `lock.<name>.wait_us` family (obs/mutex.h) so the run autopsy's
  /// idle-time attribution covers this cache. Null-safe; call before the
  /// cache is shared across workers.
  void AttachMetrics(obs::MetricsRegistry* metrics,
                     std::string_view name = "validation_cache") {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      shards_[s].mu.Attach(metrics, name);
    }
  }

  static constexpr std::size_t kDefaultShards = 16;
  static constexpr std::uint32_t kFileKind = 0x314c4156;  // "VAL1"
  static constexpr std::uint32_t kFileVersion = 1;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // The leading fingerprint bytes are already uniform; fold in the
      // scalar parts.
      std::size_t h = 0;
      if (k.chain_fp.size() >= sizeof(h)) {
        std::memcpy(&h, k.chain_fp.data(), sizeof(h));
      }
      h ^= k.store_token + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= k.options_token + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= static_cast<std::size_t>(k.now) + (h << 6) + (h >> 2);
      return h ^ std::hash<std::string>{}(k.hostname);
    }
  };

  struct Shard {
    /// mutable so the read-only EntryCount() walk can lock on a const cache.
    mutable obs::TrackedMutex mu;
    std::unordered_map<Key, ValidationResult, KeyHash> map;
  };

  Shard& ShardFor(const Key& key) {
    // Use a fingerprint byte the hash does not (bytes 0-7 feed KeyHash) so
    // shard choice and within-shard bucketing stay independent.
    const std::uint8_t b = key.chain_fp.size() > 8 ? key.chain_fp[8] : 0;
    return shards_[b % shard_count_];
  }

  const std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::size_t> lookups_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> inserts_{0};
  std::atomic<std::size_t> entries_{0};
};

/// ValidateChain with optional memoization: consults `cache` when non-null,
/// otherwise (or on miss) runs the real validation. The cache never changes
/// the returned result — only whether it was recomputed.
[[nodiscard]] ValidationResult CachedValidateChain(
    ValidationCache* cache, const CertificateChain& chain,
    std::string_view hostname, util::SimTime now, const RootStore& store,
    const ValidationOptions& options);

}  // namespace pinscope::x509

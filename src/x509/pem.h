// PEM armor (RFC 7468 style) for certificates.
//
// Apps embed pinned certificates as PEM blobs in assets; the static analyzer
// finds them by their "-----BEGIN CERTIFICATE-----" delimiter — so the
// toolkit must both emit and recognize real PEM framing.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "x509/certificate.h"

namespace pinscope::x509 {

/// PEM delimiters the scanner searches for.
inline constexpr std::string_view kPemBegin = "-----BEGIN CERTIFICATE-----";
inline constexpr std::string_view kPemEnd = "-----END CERTIFICATE-----";

/// Encodes a certificate as a PEM block (64-column base64 body).
[[nodiscard]] std::string PemEncode(const Certificate& cert);

/// Parses the first PEM certificate block in `text`.
[[nodiscard]] std::optional<Certificate> PemDecode(std::string_view text);

/// Parses every PEM certificate block in `text`, skipping malformed blocks.
[[nodiscard]] std::vector<Certificate> PemDecodeAll(std::string_view text);

}  // namespace pinscope::x509

// PEM armor (RFC 7468 style) for certificates.
//
// Apps embed pinned certificates as PEM blobs in assets; the static analyzer
// finds them by their "-----BEGIN CERTIFICATE-----" delimiter — so the
// toolkit must both emit and recognize real PEM framing.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "x509/certificate.h"

namespace pinscope::x509 {

/// PEM delimiters the scanner searches for.
inline constexpr std::string_view kPemBegin = "-----BEGIN CERTIFICATE-----";
inline constexpr std::string_view kPemEnd = "-----END CERTIFICATE-----";

/// Encodes a certificate as a PEM block (64-column base64 body).
[[nodiscard]] std::string PemEncode(const Certificate& cert);

/// Parses the first PEM certificate block in `text`.
[[nodiscard]] std::optional<Certificate> PemDecode(std::string_view text);

/// Parses every PEM certificate block in `text`, skipping malformed blocks.
[[nodiscard]] std::vector<Certificate> PemDecodeAll(std::string_view text);

/// Incremental single-block decode for callers that locate BEGIN markers
/// themselves (the scanner's multi-literal prefilter). `begin` must be the
/// offset of a kPemBegin occurrence in `text`. Decodes the block that starts
/// there and sets `resume` to the first offset after its END marker — the
/// position PemDecodeAll would continue from — or to `text.size()` when no
/// END marker follows (in which case no further block exists in `text`).
/// Returns nullopt for malformed blocks; `resume` is still advanced.
[[nodiscard]] std::optional<Certificate> PemDecodeAt(std::string_view text,
                                                     std::size_t begin,
                                                     std::size_t* resume);

}  // namespace pinscope::x509

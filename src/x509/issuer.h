// Certificate issuance.
//
// Signature model: sig = SHA-256("pinscope.sig|" + issuer_spki + "|" + tbs).
// Verification needs only the issuer certificate (public data), matching the
// real PKI's verifiability property. The model is structural — anyone could
// compute a signature given the issuer SPKI — but adversary capability in the
// simulation is expressed explicitly (the MITM proxy signs with its *own* CA,
// which is simply not in the victim's root store), so trust decisions behave
// exactly as in the paper's experiments.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/keys.h"
#include "util/clock.h"
#include "util/rng.h"
#include "x509/certificate.h"

namespace pinscope::x509 {

/// Computes the structural signature of `tbs` under the issuer whose SPKI is
/// `issuer_spki`.
[[nodiscard]] util::Bytes SignTbs(const util::Bytes& issuer_spki,
                                  const util::Bytes& tbs);

/// Verifies `cert`'s signature against its issuer's SPKI.
[[nodiscard]] bool VerifySignature(const Certificate& cert,
                                   const util::Bytes& issuer_spki);

/// Parameters for issuing one certificate.
struct IssueSpec {
  DistinguishedName subject;
  std::vector<std::string> san_dns;
  util::SimTime not_before = 0;
  util::SimTime not_after = util::kMillisPerYear;
  bool is_ca = false;
  /// pathLenConstraint for CA certificates (ignored for leaves).
  std::optional<int> path_len;
};

/// A certificate authority: a CA certificate plus the ability to issue
/// children. Also builds self-signed certificates (CA roots and the
/// self-signed leaves §5.3.1 observes in the wild).
class CertificateIssuer {
 public:
  /// Creates a self-signed CA root with a deterministic key derived from
  /// `label`.
  static CertificateIssuer SelfSignedRoot(std::string_view label,
                                          const DistinguishedName& subject,
                                          util::SimTime not_before,
                                          util::SimTime not_after);

  /// Builds a standalone self-signed *leaf* (no issuing capability needed by
  /// callers; returned directly as a certificate).
  static Certificate SelfSignedLeaf(std::string_view label, const IssueSpec& spec);

  /// The CA certificate of this issuer.
  [[nodiscard]] const Certificate& certificate() const { return cert_; }

  /// Issues a child certificate for a fresh key drawn from `rng`. Issuance
  /// is stateless — the serial derives from certificate content, not an
  /// issuance counter — so identical (spec, key) inputs yield identical
  /// certificates regardless of how many or in what order certificates were
  /// issued before (the property parallel per-app analysis relies on).
  [[nodiscard]] Certificate Issue(const IssueSpec& spec, util::Rng& rng) const;

  /// Issues a child certificate over an existing key (certificate renewal
  /// that *reuses* the key — the §5.3.3 scenario where SPKI pins survive
  /// certificate rotation).
  [[nodiscard]] Certificate IssueForKey(const IssueSpec& spec,
                                        const crypto::KeyPair& subject_key) const;

  /// Creates an intermediate CA chained under this issuer.
  [[nodiscard]] CertificateIssuer CreateIntermediate(const IssueSpec& spec,
                                                     std::string_view key_label) const;

 private:
  CertificateIssuer(Certificate cert, crypto::KeyPair key);

  Certificate cert_;
  crypto::KeyPair key_;
};

}  // namespace pinscope::x509

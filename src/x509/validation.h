// Certificate-chain path validation.
//
// Implements the checks the paper calls "all other properties of certificates"
// (§2.1): signature chaining, validity windows, hostname (Common Name / SAN)
// matching, basicConstraints, root-store anchoring, and revocation. Pinning
// evaluation is layered *on top of* this (src/tls/pinning.h), never instead of
// it — except when a client deliberately subverts validation, which the model
// supports so §5.3.4's detection logic has something to detect.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"
#include "x509/certificate.h"
#include "x509/root_store.h"

namespace pinscope::x509 {

/// Outcome of path validation.
enum class ValidationStatus {
  kOk,
  kEmptyChain,
  kBadSignature,       ///< Some link's signature does not verify.
  kBadChainOrder,      ///< Adjacent certs not in issuer/subject relation.
  kNotCa,              ///< An issuing certificate lacks the CA bit.
  kExpired,            ///< A certificate is past notAfter.
  kNotYetValid,        ///< A certificate is before notBefore.
  kHostnameMismatch,   ///< Leaf does not cover the requested hostname.
  kUntrustedRoot,      ///< Chain does not anchor in the root store.
  kRevoked,            ///< A certificate's serial is on the revocation list.
  kPathLenExceeded,    ///< A CA's basicConstraints pathLenConstraint violated.
};

/// Human-readable status label.
[[nodiscard]] std::string_view ValidationStatusName(ValidationStatus s);

/// Result of path validation: overall status plus which chain element failed.
struct ValidationResult {
  ValidationStatus status = ValidationStatus::kOk;
  std::size_t failing_index = 0;  ///< Index into the chain (leaf == 0).

  [[nodiscard]] bool ok() const { return status == ValidationStatus::kOk; }
};

/// A set of revoked serials held sorted for binary-search membership tests —
/// ValidateChain consults it once per chain element per connection, so the
/// lookup must not scan. Constructible from a brace list for ergonomic test
/// setup (`opts.revoked_serials = {leaf.serial()}`).
class RevocationList {
 public:
  RevocationList() = default;
  RevocationList(std::initializer_list<std::string> serials);
  RevocationList(std::vector<std::string> serials);  // NOLINT(google-explicit-constructor)

  /// Adds one revoked serial (keeps the list sorted and duplicate-free).
  void Add(std::string serial);

  /// Binary-search membership test.
  [[nodiscard]] bool Contains(std::string_view serial) const;

  [[nodiscard]] bool empty() const { return serials_.empty(); }
  [[nodiscard]] std::size_t size() const { return serials_.size(); }
  [[nodiscard]] const std::vector<std::string>& serials() const { return serials_; }

  /// Stable content digest, folded into chain-validation cache keys.
  [[nodiscard]] std::uint64_t Token() const;

 private:
  std::vector<std::string> serials_;  ///< Sorted, unique.
};

/// Knobs for validation. Defaults model a correct TLS client; flags allow the
/// simulation to express the *broken* validators prior work found in the wild.
struct ValidationOptions {
  bool check_hostname = true;
  bool check_expiry = true;
  bool check_signatures = true;
  bool require_trusted_root = true;
  /// Serials considered revoked (leaf-level CRL, per §5.3.1's note that
  /// revocation applies to leaf certificates).
  RevocationList revoked_serials;
  /// Optional metrics registry: ValidateChain counts each validation it
  /// actually executes (memoized hits never reach it). Observational only —
  /// deliberately excluded from ValidationCache::MakeKey's options token, so
  /// attaching a registry can never split cache entries (DESIGN.md §11).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Validates `chain` (leaf first) for `hostname` at time `now` against
/// `store`.
[[nodiscard]] ValidationResult ValidateChain(const CertificateChain& chain,
                                             std::string_view hostname,
                                             util::SimTime now,
                                             const RootStore& store,
                                             const ValidationOptions& options = {});

/// Renders the full failure-cause chain of a validation result for the
/// decision journal: the status, the failing element's depth and subject,
/// and the leaf→root path of the judged chain, e.g.
///   `expired at depth 1 (Intermediate CA) in chain [leaf.example.com <-
///    Intermediate CA <- Root CA]`.
/// Returns "ok" for successful results. Pure function of its inputs —
/// deterministic regardless of validation-cache state.
[[nodiscard]] std::string DescribeValidationFailure(
    const ValidationResult& result, const CertificateChain& chain);

/// True if `chain` anchors in the given (public) root store — the paper's
/// §5.3.1 test for "default PKI" vs "custom PKI". Ignores hostname and expiry;
/// only structure and anchoring matter.
[[nodiscard]] bool ChainsToPublicRoot(const CertificateChain& chain,
                                      const RootStore& public_store);

}  // namespace pinscope::x509

#include "x509/validation_cache.h"

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "util/cache_file.h"

namespace pinscope::x509 {

ValidationCache::ValidationCache(std::size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

ValidationCache::Key ValidationCache::MakeKey(const CertificateChain& chain,
                                              std::string_view hostname,
                                              util::SimTime now,
                                              const RootStore& store,
                                              const ValidationOptions& options) {
  Key key;
  // Chain identity: the concatenated per-certificate DER fingerprints. The
  // per-cert digests are cached on the certificates themselves, so building
  // a key costs n 32-byte copies — no serialization, no extra hashing.
  key.chain_fp.reserve(chain.size() * sizeof(crypto::Sha256Digest));
  for (const Certificate& cert : chain) {
    const crypto::Sha256Digest& fp = cert.FingerprintSha256();
    key.chain_fp.insert(key.chain_fp.end(), fp.begin(), fp.end());
  }
  key.store_token = store.ContentToken();
  key.options_token = (options.check_hostname ? 1ULL : 0ULL) |
                      (options.check_expiry ? 2ULL : 0ULL) |
                      (options.check_signatures ? 4ULL : 0ULL) |
                      (options.require_trusted_root ? 8ULL : 0ULL) |
                      (options.revoked_serials.Token() << 4);
  key.now = now;
  key.hostname.assign(hostname);
  return key;
}

std::optional<ValidationResult> ValidationCache::Find(const Key& key) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::optional<ValidationResult> found;
  {
    std::lock_guard<obs::TrackedMutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) found = it->second;
  }
  if (found.has_value()) hits_.fetch_add(1, std::memory_order_relaxed);
  return found;
}

ValidationResult ValidationCache::Insert(Key key, ValidationResult result) {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::lock_guard<obs::TrackedMutex> lock(shard.mu);
  const auto [it, inserted] = shard.map.try_emplace(std::move(key), result);
  if (inserted) entries_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

ValidationCacheStats ValidationCache::Stats() const {
  ValidationCacheStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = stats.lookups - stats.hits;
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t ValidationCache::EntryCount() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard<obs::TrackedMutex> lock(shards_[s].mu);
    n += shards_[s].map.size();
  }
  return n;
}

bool ValidationCache::SaveToFile(const std::string& path) const {
  std::vector<std::pair<Key, ValidationResult>> entries;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard<obs::TrackedMutex> lock(shards_[s].mu);
    for (const auto& [key, result] : shards_[s].map) entries.emplace_back(key, result);
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.chain_fp, a.first.store_token, a.first.options_token,
                    a.first.now, a.first.hostname) <
           std::tie(b.first.chain_fp, b.first.store_token, b.first.options_token,
                    b.first.now, b.first.hostname);
  });

  util::Bytes payload;
  util::AppendU64(payload, entries.size());
  for (const auto& [key, result] : entries) {
    util::AppendBlob(payload, key.chain_fp);
    util::AppendU64(payload, key.store_token);
    util::AppendU64(payload, key.options_token);
    util::AppendI64(payload, key.now);
    util::AppendString(payload, key.hostname);
    util::AppendU8(payload, static_cast<std::uint8_t>(result.status));
    util::AppendU64(payload, result.failing_index);
  }
  return util::WriteCacheFile(path, kFileKind, kFileVersion, payload);
}

bool ValidationCache::LoadFromFile(const std::string& path) {
  const std::optional<util::Bytes> payload =
      util::ReadCacheFile(path, kFileKind, kFileVersion);
  if (!payload.has_value()) return false;

  util::ByteReader reader(*payload);
  const std::uint64_t count = reader.U64();
  std::vector<std::pair<Key, ValidationResult>> loaded;
  for (std::uint64_t i = 0; i < count && reader.ok(); ++i) {
    Key key;
    key.chain_fp = reader.Blob();
    key.store_token = reader.U64();
    key.options_token = reader.U64();
    key.now = reader.I64();
    key.hostname = reader.String();
    ValidationResult result;
    const std::uint8_t status = reader.U8();
    if (status > static_cast<std::uint8_t>(ValidationStatus::kPathLenExceeded)) {
      return false;
    }
    result.status = static_cast<ValidationStatus>(status);
    result.failing_index = reader.U64();
    loaded.emplace_back(std::move(key), result);
  }
  if (!reader.ok() || !reader.AtEnd()) return false;

  // All-or-nothing: deposit only after the whole payload decoded cleanly.
  for (auto& [key, result] : loaded) (void)Insert(std::move(key), result);
  return true;
}

ValidationResult CachedValidateChain(ValidationCache* cache,
                                     const CertificateChain& chain,
                                     std::string_view hostname,
                                     util::SimTime now, const RootStore& store,
                                     const ValidationOptions& options) {
  if (cache == nullptr) {
    return ValidateChain(chain, hostname, now, store, options);
  }
  ValidationCache::Key key =
      ValidationCache::MakeKey(chain, hostname, now, store, options);
  if (const std::optional<ValidationResult> hit = cache->Find(key)) {
    return *hit;
  }
  const ValidationResult result =
      ValidateChain(chain, hostname, now, store, options);
  return cache->Insert(std::move(key), result);
}

}  // namespace pinscope::x509

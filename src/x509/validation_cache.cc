#include "x509/validation_cache.h"

#include <utility>

namespace pinscope::x509 {

ValidationCache::ValidationCache(std::size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

ValidationCache::Key ValidationCache::MakeKey(const CertificateChain& chain,
                                              std::string_view hostname,
                                              util::SimTime now,
                                              const RootStore& store,
                                              const ValidationOptions& options) {
  Key key;
  // Chain identity: the concatenated per-certificate DER fingerprints. The
  // per-cert digests are cached on the certificates themselves, so building
  // a key costs n 32-byte copies — no serialization, no extra hashing.
  key.chain_fp.reserve(chain.size() * sizeof(crypto::Sha256Digest));
  for (const Certificate& cert : chain) {
    const crypto::Sha256Digest& fp = cert.FingerprintSha256();
    key.chain_fp.insert(key.chain_fp.end(), fp.begin(), fp.end());
  }
  key.store_token = store.ContentToken();
  key.options_token = (options.check_hostname ? 1ULL : 0ULL) |
                      (options.check_expiry ? 2ULL : 0ULL) |
                      (options.check_signatures ? 4ULL : 0ULL) |
                      (options.require_trusted_root ? 8ULL : 0ULL) |
                      (options.revoked_serials.Token() << 4);
  key.now = now;
  key.hostname.assign(hostname);
  return key;
}

std::optional<ValidationResult> ValidationCache::Find(const Key& key) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::optional<ValidationResult> found;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) found = it->second;
  }
  if (found.has_value()) hits_.fetch_add(1, std::memory_order_relaxed);
  return found;
}

ValidationResult ValidationCache::Insert(Key key, ValidationResult result) {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.map.try_emplace(std::move(key), result);
  if (inserted) entries_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

ValidationCacheStats ValidationCache::Stats() const {
  ValidationCacheStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = stats.lookups - stats.hits;
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t ValidationCache::EntryCount() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    n += shards_[s].map.size();
  }
  return n;
}

ValidationResult CachedValidateChain(ValidationCache* cache,
                                     const CertificateChain& chain,
                                     std::string_view hostname,
                                     util::SimTime now, const RootStore& store,
                                     const ValidationOptions& options) {
  if (cache == nullptr) {
    return ValidateChain(chain, hostname, now, store, options);
  }
  ValidationCache::Key key =
      ValidationCache::MakeKey(chain, hostname, now, store, options);
  if (const std::optional<ValidationResult> hit = cache->Find(key)) {
    return *hit;
  }
  const ValidationResult result =
      ValidateChain(chain, hostname, now, store, options);
  return cache->Insert(std::move(key), result);
}

}  // namespace pinscope::x509

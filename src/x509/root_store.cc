#include "x509/root_store.h"

#include "util/error.h"
#include "util/rng.h"

namespace pinscope::x509 {

RootStore::RootStore(std::string name, std::vector<Certificate> roots)
    : name_(std::move(name)), roots_(std::move(roots)) {
  for (std::size_t i = 0; i < roots_.size(); ++i) IndexRoot(i);
}

void RootStore::AddRoot(Certificate root) {
  roots_.push_back(std::move(root));
  IndexRoot(roots_.size() - 1);
}

void RootStore::IndexRoot(std::size_t index) {
  const Certificate& root = roots_[index];
  by_subject_cn_[std::string(root.subject().common_name())].push_back(index);
  const crypto::Sha256Digest& fp = root.FingerprintSha256();
  // XOR of per-anchor hashes: order-independent, so equal anchor sets built
  // in any order produce the same token.
  content_token_ ^= util::StableHash64(
      std::string_view(reinterpret_cast<const char*>(fp.data()), fp.size()));
}

bool RootStore::IsTrustedRoot(const Certificate& cert) const {
  const auto it = by_subject_cn_.find(cert.subject().common_name());
  if (it == by_subject_cn_.end()) return false;
  for (const std::size_t index : it->second) {
    const Certificate& r = roots_[index];
    if (r.spki() == cert.spki() && r.subject() == cert.subject()) return true;
  }
  return false;
}

const Certificate* RootStore::FindBySubject(std::string_view cn) const {
  const auto it = by_subject_cn_.find(cn);
  if (it == by_subject_cn_.end()) return nullptr;
  return &roots_[it->second.front()];
}

namespace {

// The simulated WebPKI. Names are fictional; flags model the real-world
// heterogeneity between stores that motivates pinning in the first place.
std::vector<PublicCaInfo> BuildInfos() {
  return {
      // label, CN, O, mozilla, aosp, ios, expired
      {"ca.globaltrust", "GlobalTrust Root CA", "GlobalTrust Ltd", true, true, true, false},
      {"ca.digisign", "DigiSign Global Root G2", "DigiSign Inc", true, true, true, false},
      {"ca.securewire", "SecureWire Root CA", "SecureWire Corp", true, true, true, false},
      {"ca.trustanchor", "TrustAnchor RSA CA 2018", "TrustAnchor plc", true, true, true, false},
      {"ca.nimbus", "NimbusTrust Root R4", "NimbusTrust GmbH", true, true, true, false},
      {"ca.orionsign", "OrionSign Root CA", "OrionSign LLC", true, true, true, false},
      {"ca.veridian", "Veridian Root CA X3", "Veridian Group", true, true, true, false},
      {"ca.meridian", "Meridian Public Root", "Meridian Trust SA", true, true, true, false},
      {"ca.quantumpki", "QuantumPKI Root 2020", "QuantumPKI BV", true, false, true, false},
      {"ca.asiapac", "AsiaPac Commerce Root", "AsiaPac Trust KK", false, true, false, false},
      {"ca.regionalgov", "RegionalGov National Root", "Regional Government PKI",
       false, true, false, true},  // expired anchor still shipped in AOSP
      {"ca.legacysign", "LegacySign Root CA 1999", "LegacySign Inc", false, true, true, false},
  };
}

CertificateIssuer BuildIssuer(const PublicCaInfo& info) {
  DistinguishedName dn;
  dn.set_common_name(info.common_name);
  dn.set_organization(info.organization);
  dn.set_country("US");
  // Roots live decades; the expired anchor ended a year before the study.
  const util::SimTime begin = util::kStudyEpoch - 15 * util::kMillisPerYear;
  const util::SimTime end = info.expired
                                ? util::kStudyEpoch - util::kMillisPerYear
                                : util::kStudyEpoch + 20 * util::kMillisPerYear;
  return CertificateIssuer::SelfSignedRoot(info.label, dn, begin, end);
}

CertificateIssuer BuildOemExtra() {
  DistinguishedName dn;
  dn.set_common_name("HandsetMaker Device Root CA");
  dn.set_organization("HandsetMaker Electronics");
  dn.set_country("KR");
  return CertificateIssuer::SelfSignedRoot(
      "ca.oem.handsetmaker", dn, util::kStudyEpoch - 5 * util::kMillisPerYear,
      util::kStudyEpoch + 10 * util::kMillisPerYear);
}

}  // namespace

PublicCaCatalog::PublicCaCatalog()
    : infos_(BuildInfos()), oem_extra_(BuildOemExtra()) {
  issuers_.reserve(infos_.size());
  for (const PublicCaInfo& info : infos_) issuers_.push_back(BuildIssuer(info));
}

const PublicCaCatalog& PublicCaCatalog::Instance() {
  static const PublicCaCatalog catalog;
  return catalog;
}

const CertificateIssuer& PublicCaCatalog::ByLabel(std::string_view label) const {
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].label == label) return issuers_[i];
  }
  throw util::Error("unknown public CA label: " + std::string(label));
}

namespace {

RootStore BuildStore(std::string name, const std::vector<PublicCaInfo>& infos,
                     const std::vector<CertificateIssuer>& issuers,
                     bool PublicCaInfo::*flag) {
  std::vector<Certificate> roots;
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].*flag) roots.push_back(issuers[i].certificate());
  }
  return RootStore(std::move(name), std::move(roots));
}

}  // namespace

RootStore PublicCaCatalog::MozillaStore() const {
  return BuildStore("mozilla", infos_, issuers_, &PublicCaInfo::in_mozilla);
}

RootStore PublicCaCatalog::AospStore() const {
  return BuildStore("aosp", infos_, issuers_, &PublicCaInfo::in_aosp);
}

RootStore PublicCaCatalog::IosStore() const {
  return BuildStore("ios", infos_, issuers_, &PublicCaInfo::in_ios);
}

RootStore PublicCaCatalog::OemAugmentedStore() const {
  RootStore store = AospStore();
  store.AddRoot(oem_extra_.certificate());
  return RootStore("aosp+oem", store.roots());
}

}  // namespace pinscope::x509

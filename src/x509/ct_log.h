// Simulated Certificate Transparency log (crt.sh substitute).
//
// §4.1.3: the paper resolves SPKI hashes found in app binaries to the
// certificates they pin by querying crt.sh. We model the same query surface:
// an index from SPKI digest (hex or base64, SHA-1 or SHA-256) to every logged
// certificate carrying that key. The corpus generator logs the certificates
// of all simulated public endpoints; private/staging certificates stay
// unlogged — reproducing the paper's ~50% hash-resolution rate.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "x509/certificate.h"

namespace pinscope::x509 {

/// An append-only certificate transparency log with SPKI-hash search.
class CtLog {
 public:
  /// Logs a certificate (idempotent per fingerprint).
  void Add(const Certificate& cert);

  /// Number of logged certificates.
  [[nodiscard]] std::size_t size() const { return certs_.size(); }

  /// Looks up certificates whose SPKI digest matches `digest`, where `digest`
  /// is hex or (un)padded base64 of a SHA-1 or SHA-256 SPKI hash — the forms
  /// found in app binaries. Unknown digests yield an empty vector.
  [[nodiscard]] std::vector<Certificate> FindBySpkiDigest(std::string_view digest) const;

  /// Looks up certificates by exact subject common name.
  [[nodiscard]] std::vector<Certificate> FindBySubjectCn(std::string_view cn) const;

 private:
  std::vector<Certificate> certs_;
  std::map<std::string, std::vector<std::size_t>> by_digest_;  // key: normalized digest
  std::map<std::string, std::vector<std::size_t>> by_cn_;
  std::map<std::string, std::size_t> by_fingerprint_;
};

}  // namespace pinscope::x509

// The certificate model.
//
// Certificates here carry the fields the paper's analyses depend on: subject /
// issuer names, validity window, SubjectAltNames, basicConstraints (CA flag),
// the SubjectPublicKeyInfo blob whose hash forms a pin, and a structural
// signature binding the to-be-signed body to the issuer's key. Signatures are
// verifiable from public material alone (see issuer.h); trust is anchored
// exclusively in root stores, exactly as in the real PKI.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "x509/distinguished_name.h"

namespace pinscope::x509 {

/// Plain data carried by a certificate.
struct CertificateData {
  std::string serial_hex;              ///< Unique serial, lowercase hex.
  DistinguishedName subject;           ///< Subject name.
  DistinguishedName issuer;            ///< Issuer name.
  util::SimTime not_before = 0;        ///< Validity start (sim ms).
  util::SimTime not_after = 0;         ///< Validity end (sim ms).
  std::vector<std::string> san_dns;    ///< SubjectAltName dNSName entries.
  bool is_ca = false;                  ///< basicConstraints CA bit.
  /// basicConstraints pathLenConstraint: maximum number of *intermediate* CA
  /// certificates allowed below this CA. Unset ⇒ unlimited.
  std::optional<int> path_len;
  util::Bytes spki;                    ///< SubjectPublicKeyInfo encoding.
  util::Bytes signature;               ///< Issuer signature over the TBS body.
};

/// An immutable certificate. Value semantics; cheap to copy relative to the
/// corpus sizes involved.
class Certificate {
 public:
  Certificate() = default;
  explicit Certificate(CertificateData data);

  // The digest cache is allocated lazily (see Cache()), so copies must read
  // the slot atomically: a copy may race with another thread's first digest
  // computation on the same source object.
  Certificate(const Certificate& other)
      : data_(other.data_),
        digests_(other.digests_.load(std::memory_order_acquire)) {}
  Certificate(Certificate&& other) noexcept
      : data_(std::move(other.data_)),
        digests_(other.digests_.load(std::memory_order_acquire)) {}
  Certificate& operator=(const Certificate& other) {
    if (this != &other) {
      data_ = other.data_;
      digests_.store(other.digests_.load(std::memory_order_acquire),
                     std::memory_order_release);
    }
    return *this;
  }
  Certificate& operator=(Certificate&& other) noexcept {
    if (this != &other) {
      data_ = std::move(other.data_);
      digests_.store(other.digests_.load(std::memory_order_acquire),
                     std::memory_order_release);
    }
    return *this;
  }

  [[nodiscard]] const CertificateData& data() const { return data_; }
  [[nodiscard]] const std::string& serial() const { return data_.serial_hex; }
  [[nodiscard]] const DistinguishedName& subject() const { return data_.subject; }
  [[nodiscard]] const DistinguishedName& issuer() const { return data_.issuer; }
  [[nodiscard]] util::SimTime not_before() const { return data_.not_before; }
  [[nodiscard]] util::SimTime not_after() const { return data_.not_after; }
  [[nodiscard]] const std::vector<std::string>& san_dns() const { return data_.san_dns; }
  [[nodiscard]] bool is_ca() const { return data_.is_ca; }
  [[nodiscard]] std::optional<int> path_len() const { return data_.path_len; }
  [[nodiscard]] const util::Bytes& spki() const { return data_.spki; }
  [[nodiscard]] const util::Bytes& signature() const { return data_.signature; }

  /// Subject and issuer names are equal. (Self-signedness additionally
  /// requires the signature to verify under the cert's own key; validation
  /// checks that.)
  [[nodiscard]] bool IsSelfIssued() const { return data_.subject == data_.issuer; }

  /// Validity duration in days.
  [[nodiscard]] std::int64_t ValidityDays() const {
    return (data_.not_after - data_.not_before) / util::kMillisPerDay;
  }

  /// True if `now` falls inside [not_before, not_after].
  [[nodiscard]] bool InValidityWindow(util::SimTime now) const {
    return now >= data_.not_before && now <= data_.not_after;
  }

  /// The canonical to-be-signed serialization: every field except the
  /// signature. This is what issuers sign. Serialized once per certificate
  /// and cached; copies share the cached bytes (the data is immutable).
  [[nodiscard]] const util::Bytes& TbsBytes() const;

  /// DER-like serialization of the whole certificate (TBS + signature).
  /// Round-trips through ParseDer().
  [[nodiscard]] util::Bytes DerBytes() const;

  /// Exact byte length of DerBytes(), without materializing it. The record
  /// simulator sizes certificate messages per connection; this keeps that
  /// a constant-time read off the cached TBS serialization.
  [[nodiscard]] std::size_t DerSize() const;

  /// Parses the serialization produced by DerBytes(). Returns std::nullopt on
  /// malformed input.
  [[nodiscard]] static std::optional<Certificate> ParseDer(const util::Bytes& der);

  /// SHA-256 fingerprint of the DER encoding (identifies the certificate).
  /// Computed once per certificate and reused; copies share the cached value
  /// (the underlying data is immutable after construction).
  [[nodiscard]] const crypto::Sha256Digest& FingerprintSha256() const;

  /// SHA-256 of the SubjectPublicKeyInfo — the modern pin digest. Cached like
  /// FingerprintSha256().
  [[nodiscard]] const crypto::Sha256Digest& SpkiSha256() const;

  /// SHA-1 of the SubjectPublicKeyInfo — the legacy pin digest. Cached like
  /// FingerprintSha256().
  [[nodiscard]] const crypto::Sha1Digest& SpkiSha1() const;

  /// True if `hostname` matches any SAN entry (or the subject CN when no SANs
  /// are present), honoring single-label `*.` wildcards.
  [[nodiscard]] bool MatchesHostname(std::string_view hostname) const;

  friend bool operator==(const Certificate& a, const Certificate& b) {
    // Fingerprints identify certificates; comparing them reuses the cached
    // digests instead of re-serializing both DER encodings per comparison.
    return a.FingerprintSha256() == b.FingerprintSha256();
  }

 private:
  /// Lazily-computed digests and serializations, shared by copies taken
  /// after the first computation (all copies carry identical immutable data,
  /// so one computation serves them). call_once makes concurrent first use
  /// from parallel study workers safe. The TBS bytes have their own flag:
  /// issuance needs them on not-yet-signed certificates whose digests would
  /// be meaningless.
  struct DigestCache {
    std::once_flag tbs_once;
    util::Bytes tbs;
    std::once_flag once;
    crypto::Sha256Digest fingerprint{};
    crypto::Sha256Digest spki_sha256{};
    crypto::Sha1Digest spki_sha1{};
  };

  /// Returns the digest cache, allocating it on first use. Most certificates
  /// a scan parses are never digested, so the allocation (and its ~150-byte
  /// zeroing) stays off the parse path; a lock-free CAS converges concurrent
  /// first users onto one cache.
  DigestCache& Cache() const;

  const DigestCache& Digests() const;

  CertificateData data_;
  mutable std::atomic<std::shared_ptr<DigestCache>> digests_;
};

/// An ordered certificate chain, leaf first (as servers send it).
using CertificateChain = std::vector<Certificate>;

/// Wildcard-aware single-pattern hostname match, exposed for reuse by NSC
/// domain rules: `*.example.com` matches exactly one extra label.
[[nodiscard]] bool HostnameMatchesPattern(std::string_view hostname,
                                          std::string_view pattern);

}  // namespace pinscope::x509

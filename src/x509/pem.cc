#include "x509/pem.h"

#include "util/base64.h"
#include "util/strings.h"

namespace pinscope::x509 {

std::string PemEncode(const Certificate& cert) {
  const std::string body = util::Base64Encode(cert.DerBytes());
  std::string out(kPemBegin);
  out.push_back('\n');
  for (std::size_t i = 0; i < body.size(); i += 64) {
    out.append(body.substr(i, 64));
    out.push_back('\n');
  }
  out.append(kPemEnd);
  out.push_back('\n');
  return out;
}

namespace {

std::optional<Certificate> DecodeBlock(std::string_view body) {
  std::string compact;
  compact.reserve(body.size());
  for (char c : body) {
    if (!std::isspace(static_cast<unsigned char>(c))) compact.push_back(c);
  }
  const auto der = util::Base64Decode(compact);
  if (!der) return std::nullopt;
  return Certificate::ParseDer(*der);
}

}  // namespace

std::optional<Certificate> PemDecode(std::string_view text) {
  const std::size_t begin = text.find(kPemBegin);
  if (begin == std::string_view::npos) return std::nullopt;
  const std::size_t body_start = begin + kPemBegin.size();
  const std::size_t end = text.find(kPemEnd, body_start);
  if (end == std::string_view::npos) return std::nullopt;
  return DecodeBlock(text.substr(body_start, end - body_start));
}

std::vector<Certificate> PemDecodeAll(std::string_view text) {
  std::vector<Certificate> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t begin = text.find(kPemBegin, pos);
    if (begin == std::string_view::npos) return out;
    const std::size_t body_start = begin + kPemBegin.size();
    const std::size_t end = text.find(kPemEnd, body_start);
    if (end == std::string_view::npos) return out;
    if (auto cert = DecodeBlock(text.substr(body_start, end - body_start))) {
      out.push_back(std::move(*cert));
    }
    pos = end + kPemEnd.size();
  }
}

}  // namespace pinscope::x509

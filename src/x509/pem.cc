#include "x509/pem.h"

#include "util/base64.h"
#include "util/strings.h"

namespace pinscope::x509 {

std::string PemEncode(const Certificate& cert) {
  const std::string body = util::Base64Encode(cert.DerBytes());
  std::string out(kPemBegin);
  out.push_back('\n');
  for (std::size_t i = 0; i < body.size(); i += 64) {
    out.append(body.substr(i, 64));
    out.push_back('\n');
  }
  out.append(kPemEnd);
  out.push_back('\n');
  return out;
}

namespace {

constexpr bool IsPemSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

std::optional<Certificate> DecodeBlock(std::string_view body) {
  // Whitespace stripping runs once per certificate of every bundle scanned
  // per app: a reused scratch buffer keeps it off the allocator, and whole
  // base64 lines are appended per memcpy instead of per character.
  thread_local std::string compact;
  compact.clear();
  compact.reserve(body.size());
  std::size_t i = 0;
  while (i < body.size()) {
    if (IsPemSpace(body[i])) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < body.size() && !IsPemSpace(body[j])) ++j;
    compact.append(body, i, j - i);
    i = j;
  }
  thread_local util::Bytes der;
  if (!util::Base64DecodeInto(compact, der)) return std::nullopt;
  return Certificate::ParseDer(der);
}

}  // namespace

std::optional<Certificate> PemDecode(std::string_view text) {
  const std::size_t begin = text.find(kPemBegin);
  if (begin == std::string_view::npos) return std::nullopt;
  const std::size_t body_start = begin + kPemBegin.size();
  const std::size_t end = text.find(kPemEnd, body_start);
  if (end == std::string_view::npos) return std::nullopt;
  return DecodeBlock(text.substr(body_start, end - body_start));
}

std::optional<Certificate> PemDecodeAt(std::string_view text, std::size_t begin,
                                       std::size_t* resume) {
  const std::size_t body_start = begin + kPemBegin.size();
  const std::size_t end = text.find(kPemEnd, body_start);
  if (end == std::string_view::npos) {
    *resume = text.size();
    return std::nullopt;
  }
  *resume = end + kPemEnd.size();
  return DecodeBlock(text.substr(body_start, end - body_start));
}

std::vector<Certificate> PemDecodeAll(std::string_view text) {
  std::vector<Certificate> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t begin = text.find(kPemBegin, pos);
    if (begin == std::string_view::npos) return out;
    if (auto cert = PemDecodeAt(text, begin, &pos)) {
      out.push_back(std::move(*cert));
    }
  }
}

}  // namespace pinscope::x509

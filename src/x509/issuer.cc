#include "x509/issuer.h"

#include "crypto/sha256.h"
#include "util/hex.h"

namespace pinscope::x509 {
namespace {

util::Bytes SigPreimage(const util::Bytes& issuer_spki, const util::Bytes& tbs) {
  util::Bytes pre = util::ToBytes("pinscope.sig|");
  util::Append(pre, issuer_spki);
  util::Append(pre, "|");
  util::Append(pre, tbs);
  return pre;
}

// Serials derive from certificate content alone (issuer, subject, subject
// key, validity) — no issuance counter. Stateless derivation keeps serials
// independent of issuance *order*, which is what lets certificate material
// stay byte-identical when per-app work runs on many threads.
std::string DeriveSerial(const util::Bytes& issuer_spki, const IssueSpec& spec,
                         const util::Bytes& subject_spki) {
  std::string pre = "serial|" + util::ToString(issuer_spki) + "|" +
                    spec.subject.ToString() + "|" +
                    util::ToString(subject_spki) + "|" +
                    std::to_string(spec.not_before) + "|" +
                    std::to_string(spec.not_after);
  const crypto::Sha256Digest d = crypto::Sha256(pre);
  return util::HexEncode(util::Bytes(d.begin(), d.begin() + 8));
}

CertificateData MakeData(const IssueSpec& spec, const DistinguishedName& issuer_dn,
                         const util::Bytes& subject_spki, std::string serial) {
  CertificateData data;
  data.serial_hex = std::move(serial);
  data.subject = spec.subject;
  data.issuer = issuer_dn;
  data.not_before = spec.not_before;
  data.not_after = spec.not_after;
  data.san_dns = spec.san_dns;
  data.is_ca = spec.is_ca;
  if (spec.is_ca) data.path_len = spec.path_len;
  data.spki = subject_spki;
  return data;
}

}  // namespace

util::Bytes SignTbs(const util::Bytes& issuer_spki, const util::Bytes& tbs) {
  const crypto::Sha256Digest d = crypto::Sha256(SigPreimage(issuer_spki, tbs));
  return util::Bytes(d.begin(), d.end());
}

bool VerifySignature(const Certificate& cert, const util::Bytes& issuer_spki) {
  return SignTbs(issuer_spki, cert.TbsBytes()) == cert.signature();
}

CertificateIssuer::CertificateIssuer(Certificate cert, crypto::KeyPair key)
    : cert_(std::move(cert)), key_(std::move(key)) {}

CertificateIssuer CertificateIssuer::SelfSignedRoot(std::string_view label,
                                                    const DistinguishedName& subject,
                                                    util::SimTime not_before,
                                                    util::SimTime not_after) {
  const crypto::KeyPair key = crypto::KeyPair::FromLabel(label);
  IssueSpec spec;
  spec.subject = subject;
  spec.not_before = not_before;
  spec.not_after = not_after;
  spec.is_ca = true;
  CertificateData data = MakeData(spec, subject, key.SubjectPublicKeyInfo(),
                                  DeriveSerial(key.SubjectPublicKeyInfo(), spec,
                                               key.SubjectPublicKeyInfo()));
  Certificate unsigned_cert{data};
  data.signature = SignTbs(key.SubjectPublicKeyInfo(), unsigned_cert.TbsBytes());
  return CertificateIssuer(Certificate(std::move(data)), key);
}

Certificate CertificateIssuer::SelfSignedLeaf(std::string_view label,
                                              const IssueSpec& spec) {
  const crypto::KeyPair key = crypto::KeyPair::FromLabel(label);
  CertificateData data = MakeData(spec, spec.subject, key.SubjectPublicKeyInfo(),
                                  DeriveSerial(key.SubjectPublicKeyInfo(), spec,
                                               key.SubjectPublicKeyInfo()));
  data.is_ca = false;
  Certificate unsigned_cert{data};
  data.signature = SignTbs(key.SubjectPublicKeyInfo(), unsigned_cert.TbsBytes());
  return Certificate(std::move(data));
}

Certificate CertificateIssuer::Issue(const IssueSpec& spec, util::Rng& rng) const {
  return IssueForKey(spec, crypto::KeyPair::Generate(rng));
}

Certificate CertificateIssuer::IssueForKey(const IssueSpec& spec,
                                           const crypto::KeyPair& subject_key) const {
  CertificateData data =
      MakeData(spec, cert_.subject(), subject_key.SubjectPublicKeyInfo(),
               DeriveSerial(cert_.spki(), spec, subject_key.SubjectPublicKeyInfo()));
  Certificate unsigned_cert{data};
  data.signature = SignTbs(cert_.spki(), unsigned_cert.TbsBytes());
  return Certificate(std::move(data));
}

CertificateIssuer CertificateIssuer::CreateIntermediate(
    const IssueSpec& spec, std::string_view key_label) const {
  const crypto::KeyPair key = crypto::KeyPair::FromLabel(key_label);
  IssueSpec ca_spec = spec;
  ca_spec.is_ca = true;
  Certificate cert = IssueForKey(ca_spec, key);
  return CertificateIssuer(std::move(cert), key);
}

}  // namespace pinscope::x509

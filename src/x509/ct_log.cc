#include "x509/ct_log.h"

#include "util/base64.h"
#include "util/hex.h"
#include "util/strings.h"

namespace pinscope::x509 {
namespace {

// Normalizes any accepted digest spelling to lowercase hex.
std::string NormalizeDigest(std::string_view digest) {
  if (util::IsHexString(digest) && (digest.size() == 40 || digest.size() == 64)) {
    return util::ToLower(digest);
  }
  if (const auto raw = util::Base64Decode(digest);
      raw && (raw->size() == 20 || raw->size() == 32)) {
    return util::HexEncode(*raw);
  }
  return std::string(digest);  // unknown form; will simply never match
}

}  // namespace

void CtLog::Add(const Certificate& cert) {
  const std::string fp = util::HexEncode(util::Bytes(
      cert.FingerprintSha256().begin(), cert.FingerprintSha256().end()));
  if (by_fingerprint_.contains(fp)) return;
  const std::size_t idx = certs_.size();
  certs_.push_back(cert);
  by_fingerprint_[fp] = idx;

  const auto sha256 = cert.SpkiSha256();
  const auto sha1 = cert.SpkiSha1();
  by_digest_[util::HexEncode(util::Bytes(sha256.begin(), sha256.end()))].push_back(idx);
  by_digest_[util::HexEncode(util::Bytes(sha1.begin(), sha1.end()))].push_back(idx);
  by_cn_[std::string(cert.subject().common_name())].push_back(idx);
}

std::vector<Certificate> CtLog::FindBySpkiDigest(std::string_view digest) const {
  std::vector<Certificate> out;
  const auto it = by_digest_.find(NormalizeDigest(digest));
  if (it == by_digest_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t idx : it->second) out.push_back(certs_[idx]);
  return out;
}

std::vector<Certificate> CtLog::FindBySubjectCn(std::string_view cn) const {
  std::vector<Certificate> out;
  const auto it = by_cn_.find(std::string(cn));
  if (it == by_cn_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t idx : it->second) out.push_back(certs_[idx]);
  return out;
}

}  // namespace pinscope::x509

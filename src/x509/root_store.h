// Root stores and the public-CA catalog.
//
// Models the trust anchors the paper contrasts: the AOSP store shipped by
// Android (known to carry obscure and even expired roots [Vallina-Rodriguez
// et al. 2014]), the iOS store, the Mozilla store (the paper's §5.3.1 uses
// Mozilla's CA list via OpenSSL to decide default-vs-custom PKI), and
// OEM-augmented stores.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "x509/certificate.h"
#include "x509/issuer.h"

namespace pinscope::x509 {

/// A named collection of trusted root certificates.
class RootStore {
 public:
  RootStore() = default;
  RootStore(std::string name, std::vector<Certificate> roots);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Certificate>& roots() const { return roots_; }

  /// Adds a trust anchor (used for OEM additions and the MITM proxy CA).
  void AddRoot(Certificate root);

  /// True if `cert` is one of the anchors (matched by SPKI and subject —
  /// cross-signed re-issues of the same root key are treated as the same
  /// anchor, as real validators do).
  [[nodiscard]] bool IsTrustedRoot(const Certificate& cert) const;

  /// Finds an anchor by subject common name.
  [[nodiscard]] std::optional<Certificate> FindBySubject(std::string_view cn) const;

 private:
  std::string name_;
  std::vector<Certificate> roots_;
};

/// Descriptor of one well-known public CA in the simulated WebPKI.
struct PublicCaInfo {
  std::string label;        ///< Stable key-derivation label.
  std::string common_name;  ///< Root certificate CN.
  std::string organization;
  bool in_mozilla = true;   ///< Present in the Mozilla store.
  bool in_aosp = true;      ///< Present in the AOSP store.
  bool in_ios = true;       ///< Present in the iOS store.
  bool expired = false;     ///< Anchor past its notAfter (AOSP hygiene issue).
};

/// The catalog of well-known public CAs. Deterministic: every run constructs
/// byte-identical roots. Servers in the simulation obtain their chains from
/// these issuers; validators consult the derived stores.
class PublicCaCatalog {
 public:
  /// The process-wide catalog (immutable after construction).
  static const PublicCaCatalog& Instance();

  /// All CA descriptors.
  [[nodiscard]] const std::vector<PublicCaInfo>& infos() const { return infos_; }

  /// Issuer for a catalog CA, by label. Throws util::Error on unknown label.
  [[nodiscard]] const CertificateIssuer& ByLabel(std::string_view label) const;

  /// The Mozilla CA store (paper §5.3.1's default-PKI oracle).
  [[nodiscard]] RootStore MozillaStore() const;

  /// The AOSP system store (includes obscure/expired anchors).
  [[nodiscard]] RootStore AospStore() const;

  /// The iOS system store.
  [[nodiscard]] RootStore IosStore() const;

  /// AOSP plus OEM-added anchors (the Gamba et al. preinstalled-software
  /// observation).
  [[nodiscard]] RootStore OemAugmentedStore() const;

 private:
  PublicCaCatalog();

  std::vector<PublicCaInfo> infos_;
  std::vector<CertificateIssuer> issuers_;
  CertificateIssuer oem_extra_;
};

}  // namespace pinscope::x509

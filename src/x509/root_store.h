// Root stores and the public-CA catalog.
//
// Models the trust anchors the paper contrasts: the AOSP store shipped by
// Android (known to carry obscure and even expired roots [Vallina-Rodriguez
// et al. 2014]), the iOS store, the Mozilla store (the paper's §5.3.1 uses
// Mozilla's CA list via OpenSSL to decide default-vs-custom PKI), and
// OEM-augmented stores.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "x509/certificate.h"
#include "x509/issuer.h"

namespace pinscope::x509 {

/// A named collection of trusted root certificates. Lookups go through a
/// subject-CN index instead of scanning the anchor list — terminal-cert
/// anchor resolution is on every connection's validation path.
class RootStore {
 public:
  RootStore() = default;
  RootStore(std::string name, std::vector<Certificate> roots);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Certificate>& roots() const { return roots_; }

  /// Adds a trust anchor (used for OEM additions and the MITM proxy CA).
  void AddRoot(Certificate root);

  /// True if `cert` is one of the anchors (matched by SPKI and subject —
  /// cross-signed re-issues of the same root key are treated as the same
  /// anchor, as real validators do).
  [[nodiscard]] bool IsTrustedRoot(const Certificate& cert) const;

  /// Finds an anchor by subject common name. The pointer stays valid until
  /// the store is mutated (AddRoot) or destroyed; nullptr on miss.
  [[nodiscard]] const Certificate* FindBySubject(std::string_view cn) const;

  /// Order-independent digest of the anchor *content* (root fingerprints).
  /// Two stores trusting the same anchors share a token; any added or
  /// changed anchor changes it. Used as the store component of
  /// chain-validation cache keys (x509/validation_cache.h).
  [[nodiscard]] std::uint64_t ContentToken() const { return content_token_; }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  void IndexRoot(std::size_t index);

  std::string name_;
  std::vector<Certificate> roots_;
  /// Subject CN → indices into roots_ (duplicate CNs keep list order, so
  /// FindBySubject still returns the first match the linear scan would).
  std::unordered_map<std::string, std::vector<std::size_t>, StringHash,
                     std::equal_to<>>
      by_subject_cn_;
  std::uint64_t content_token_ = 0;
};

/// Descriptor of one well-known public CA in the simulated WebPKI.
struct PublicCaInfo {
  std::string label;        ///< Stable key-derivation label.
  std::string common_name;  ///< Root certificate CN.
  std::string organization;
  bool in_mozilla = true;   ///< Present in the Mozilla store.
  bool in_aosp = true;      ///< Present in the AOSP store.
  bool in_ios = true;       ///< Present in the iOS store.
  bool expired = false;     ///< Anchor past its notAfter (AOSP hygiene issue).
};

/// The catalog of well-known public CAs. Deterministic: every run constructs
/// byte-identical roots. Servers in the simulation obtain their chains from
/// these issuers; validators consult the derived stores.
class PublicCaCatalog {
 public:
  /// The process-wide catalog (immutable after construction).
  static const PublicCaCatalog& Instance();

  /// All CA descriptors.
  [[nodiscard]] const std::vector<PublicCaInfo>& infos() const { return infos_; }

  /// Issuer for a catalog CA, by label. Throws util::Error on unknown label.
  [[nodiscard]] const CertificateIssuer& ByLabel(std::string_view label) const;

  /// The Mozilla CA store (paper §5.3.1's default-PKI oracle).
  [[nodiscard]] RootStore MozillaStore() const;

  /// The AOSP system store (includes obscure/expired anchors).
  [[nodiscard]] RootStore AospStore() const;

  /// The iOS system store.
  [[nodiscard]] RootStore IosStore() const;

  /// AOSP plus OEM-added anchors (the Gamba et al. preinstalled-software
  /// observation).
  [[nodiscard]] RootStore OemAugmentedStore() const;

 private:
  PublicCaCatalog();

  std::vector<PublicCaInfo> infos_;
  std::vector<CertificateIssuer> issuers_;
  CertificateIssuer oem_extra_;
};

}  // namespace pinscope::x509

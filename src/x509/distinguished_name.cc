#include "x509/distinguished_name.h"

#include "util/strings.h"

namespace pinscope::x509 {

std::string DistinguishedName::ToString() const {
  std::string out;
  auto add = [&out](std::string_view key, std::string_view value) {
    if (value.empty()) return;
    if (!out.empty()) out.push_back(',');
    out.append(key);
    out.push_back('=');
    out.append(value);
  };
  add("CN", common_name());
  add("O", organization());
  add("C", country());
  return out;
}

DistinguishedName DistinguishedName::Parse(std::string_view s) {
  // Parsed once per certificate field; splitting on views keeps the only
  // allocation the packed backing buffer itself.
  DistinguishedName dn;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t part_end = comma == std::string_view::npos ? s.size() : comma;
    const std::string_view p = util::Trim(s.substr(pos, part_end - pos));
    pos = part_end + 1;
    const std::size_t eq = p.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = p.substr(0, eq);
    const std::string_view value = p.substr(eq + 1);
    if (key == "CN") {
      dn.set_common_name(value);
    } else if (key == "O") {
      dn.set_organization(value);
    } else if (key == "C") {
      dn.set_country(value);
    }
  }
  return dn;
}

}  // namespace pinscope::x509

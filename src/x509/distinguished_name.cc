#include "x509/distinguished_name.h"

#include "util/strings.h"

namespace pinscope::x509 {

std::string DistinguishedName::ToString() const {
  std::string out;
  auto add = [&out](std::string_view key, const std::string& value) {
    if (value.empty()) return;
    if (!out.empty()) out.push_back(',');
    out.append(key);
    out.push_back('=');
    out.append(value);
  };
  add("CN", common_name);
  add("O", organization);
  add("C", country);
  return out;
}

DistinguishedName DistinguishedName::Parse(std::string_view s) {
  DistinguishedName dn;
  for (const std::string& part : util::Split(s, ',')) {
    const std::string_view p = util::Trim(part);
    const std::size_t eq = p.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = p.substr(0, eq);
    const std::string value(p.substr(eq + 1));
    if (key == "CN") {
      dn.common_name = value;
    } else if (key == "O") {
      dn.organization = value;
    } else if (key == "C") {
      dn.country = value;
    }
  }
  return dn;
}

}  // namespace pinscope::x509

#include "x509/validation.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"
#include "x509/issuer.h"

namespace pinscope::x509 {

RevocationList::RevocationList(std::initializer_list<std::string> serials)
    : RevocationList(std::vector<std::string>(serials)) {}

RevocationList::RevocationList(std::vector<std::string> serials)
    : serials_(std::move(serials)) {
  std::sort(serials_.begin(), serials_.end());
  serials_.erase(std::unique(serials_.begin(), serials_.end()), serials_.end());
}

void RevocationList::Add(std::string serial) {
  const auto it = std::lower_bound(serials_.begin(), serials_.end(), serial);
  if (it != serials_.end() && *it == serial) return;
  serials_.insert(it, std::move(serial));
}

bool RevocationList::Contains(std::string_view serial) const {
  return std::binary_search(serials_.begin(), serials_.end(), serial,
                            [](std::string_view a, std::string_view b) {
                              return a < b;
                            });
}

std::uint64_t RevocationList::Token() const {
  std::uint64_t token = serials_.size();
  // The list is sorted, so an order-dependent fold is still content-stable.
  for (const std::string& s : serials_) {
    token = token * 0x100000001b3ULL ^ util::StableHash64(s);
  }
  return token;
}

std::string_view ValidationStatusName(ValidationStatus s) {
  switch (s) {
    case ValidationStatus::kOk: return "ok";
    case ValidationStatus::kEmptyChain: return "empty-chain";
    case ValidationStatus::kBadSignature: return "bad-signature";
    case ValidationStatus::kBadChainOrder: return "bad-chain-order";
    case ValidationStatus::kNotCa: return "issuer-not-ca";
    case ValidationStatus::kExpired: return "expired";
    case ValidationStatus::kNotYetValid: return "not-yet-valid";
    case ValidationStatus::kHostnameMismatch: return "hostname-mismatch";
    case ValidationStatus::kUntrustedRoot: return "untrusted-root";
    case ValidationStatus::kRevoked: return "revoked";
    case ValidationStatus::kPathLenExceeded: return "path-len-exceeded";
  }
  throw util::Error("unknown ValidationStatus");
}

ValidationResult ValidateChain(const CertificateChain& chain,
                               std::string_view hostname, util::SimTime now,
                               const RootStore& store,
                               const ValidationOptions& options) {
  obs::CounterOrNull(options.metrics, "x509.chain_validations").Increment();
  if (chain.empty()) return {ValidationStatus::kEmptyChain, 0};

  // Structural pass: issuer/subject linkage, CA bits, signatures.
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    const bool is_last = i + 1 == chain.size();
    const Certificate& issuer = is_last ? cert : chain[i + 1];

    if (!is_last) {
      if (cert.issuer() != issuer.subject()) {
        return {ValidationStatus::kBadChainOrder, i};
      }
      if (!issuer.is_ca()) return {ValidationStatus::kNotCa, i + 1};
      // basicConstraints pathLenConstraint: the issuer at chain index i+1 may
      // have at most path_len intermediate CA certificates beneath it. In a
      // leaf-first chain those are indices 1..i, i.e. exactly i of them.
      if (issuer.path_len().has_value() &&
          static_cast<int>(i) > *issuer.path_len()) {
        return {ValidationStatus::kPathLenExceeded, i + 1};
      }
    } else {
      // Terminal certificate: either a self-signed anchor/leaf, or an
      // intermediate whose issuer must be found in the root store.
      if (!cert.IsSelfIssued()) {
        const Certificate* anchor = store.FindBySubject(cert.issuer().common_name());
        if (anchor != nullptr) {
          if (options.check_signatures && !VerifySignature(cert, anchor->spki())) {
            return {ValidationStatus::kBadSignature, i};
          }
          // Anchored directly in the store; skip the self-signature check.
          continue;
        }
        if (options.require_trusted_root) {
          return {ValidationStatus::kUntrustedRoot, i};
        }
        continue;
      }
    }
    if (options.check_signatures && !VerifySignature(cert, issuer.spki())) {
      return {ValidationStatus::kBadSignature, i};
    }
  }

  if (options.check_expiry) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (now > chain[i].not_after()) return {ValidationStatus::kExpired, i};
      if (now < chain[i].not_before()) return {ValidationStatus::kNotYetValid, i};
    }
  }

  if (options.check_hostname && !chain.front().MatchesHostname(hostname)) {
    return {ValidationStatus::kHostnameMismatch, 0};
  }

  if (!options.revoked_serials.empty()) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (options.revoked_serials.Contains(chain[i].serial())) {
        return {ValidationStatus::kRevoked, i};
      }
    }
  }

  if (options.require_trusted_root) {
    // The terminal certificate (or the anchor that issued it) must be in the
    // store. Self-signed leaves are trusted only if explicitly anchored.
    const Certificate& last = chain.back();
    if (!store.IsTrustedRoot(last) &&
        store.FindBySubject(last.issuer().common_name()) == nullptr) {
      return {ValidationStatus::kUntrustedRoot, chain.size() - 1};
    }
  }

  return {ValidationStatus::kOk, 0};
}

std::string DescribeValidationFailure(const ValidationResult& result,
                                      const CertificateChain& chain) {
  if (result.ok()) return "ok";
  std::string out(ValidationStatusName(result.status));
  if (result.failing_index < chain.size()) {
    out += " at depth ";
    out += std::to_string(result.failing_index);
    out += " (";
    out += chain[result.failing_index].subject().common_name();
    out += ")";
  }
  if (!chain.empty()) {
    out += " in chain [";
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i > 0) out += " <- ";
      out += chain[i].subject().common_name();
    }
    out += "]";
  }
  return out;
}

bool ChainsToPublicRoot(const CertificateChain& chain, const RootStore& public_store) {
  if (chain.empty()) return false;
  ValidationOptions opts;
  opts.check_hostname = false;
  opts.check_expiry = false;
  return ValidateChain(chain, "", util::kStudyEpoch, public_store, opts).ok();
}

}  // namespace pinscope::x509

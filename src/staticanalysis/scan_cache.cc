#include "staticanalysis/scan_cache.h"

#include <utility>

namespace pinscope::staticanalysis {

ScanCache::ScanCache(std::size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

ScanCache::Key ScanCache::MakeKey(const util::Bytes& content, bool cert_file) {
  return Key{crypto::Sha256(content), cert_file};
}

std::shared_ptr<const CachedFileScan> ScanCache::Find(const Key& key,
                                                      std::size_t content_size) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::shared_ptr<const CachedFileScan> found;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) found = it->second;
  }
  if (found != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_deduped_.fetch_add(content_size, std::memory_order_relaxed);
  }
  return found;
}

std::shared_ptr<const CachedFileScan> ScanCache::Insert(const Key& key,
                                                        CachedFileScan scan) {
  auto entry = std::make_shared<const CachedFileScan>(std::move(scan));
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.map.try_emplace(key, std::move(entry));
  if (inserted) entries_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

ScanCacheStats ScanCache::Stats() const {
  ScanCacheStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = stats.lookups - stats.hits;
  stats.entries = entries_.load(std::memory_order_relaxed);
  stats.bytes_deduped = bytes_deduped_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pinscope::staticanalysis

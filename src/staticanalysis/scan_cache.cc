#include "staticanalysis/scan_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/cache_file.h"

namespace pinscope::staticanalysis {

ScanCache::ScanCache(std::size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

ScanCache::Key ScanCache::MakeKey(const util::Bytes& content, bool cert_file) {
  return Key{crypto::Sha256(content), cert_file};
}

std::shared_ptr<const CachedFileScan> ScanCache::Find(const Key& key,
                                                      std::size_t content_size) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::shared_ptr<const CachedFileScan> found;
  {
    std::lock_guard<obs::TrackedMutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) found = it->second;
  }
  if (found != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_deduped_.fetch_add(content_size, std::memory_order_relaxed);
  }
  return found;
}

std::shared_ptr<const CachedFileScan> ScanCache::Insert(const Key& key,
                                                        CachedFileScan scan) {
  auto entry = std::make_shared<const CachedFileScan>(std::move(scan));
  Shard& shard = ShardFor(key);
  std::lock_guard<obs::TrackedMutex> lock(shard.mu);
  const auto [it, inserted] = shard.map.try_emplace(key, std::move(entry));
  if (inserted) entries_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::size_t ScanCache::EntryCount() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard<obs::TrackedMutex> lock(shards_[s].mu);
    n += shards_[s].map.size();
  }
  return n;
}

bool ScanCache::SaveToFile(const std::string& path) const {
  // Snapshot every shard, then order by key: equal caches ⇒ equal bytes.
  std::vector<std::pair<Key, std::shared_ptr<const CachedFileScan>>> entries;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard<obs::TrackedMutex> lock(shards_[s].mu);
    for (const auto& [key, scan] : shards_[s].map) entries.emplace_back(key, scan);
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.first.digest != b.first.digest) return a.first.digest < b.first.digest;
    return a.first.cert_file < b.first.cert_file;
  });

  util::Bytes payload;
  util::AppendU64(payload, entries.size());
  for (const auto& [key, scan] : entries) {
    payload.insert(payload.end(), key.digest.begin(), key.digest.end());
    util::AppendU8(payload, key.cert_file ? 1 : 0);
    util::AppendU32(payload, static_cast<std::uint32_t>(scan->certificates.size()));
    for (const FoundCertificate& c : scan->certificates) {
      util::AppendU8(payload, c.from_pem ? 1 : 0);
      util::AppendBlob(payload, c.cert.DerBytes());
    }
    util::AppendU32(payload, static_cast<std::uint32_t>(scan->pins.size()));
    for (const FoundPin& p : scan->pins) {
      util::AppendString(payload, p.pin_string);
      util::AppendU64(payload, p.offset);
      // The decoded form is stored, not re-derived at load: pin-dense files
      // carry thousands of pins per entry, and re-running FromPinString on
      // each would make loading as expensive as the scan the cache exists
      // to skip.
      util::AppendU8(payload, p.parsed.has_value() ? 1 : 0);
      if (p.parsed.has_value()) {
        util::AppendU8(payload, static_cast<std::uint8_t>(p.parsed->form));
        util::AppendBlob(payload, p.parsed->material);
      }
    }
  }
  return util::WriteCacheFile(path, kFileKind, kFileVersion, payload);
}

bool ScanCache::LoadFromFile(const std::string& path) {
  const std::optional<util::Bytes> payload =
      util::ReadCacheFile(path, kFileKind, kFileVersion);
  if (!payload.has_value()) return false;

  util::ByteReader reader(*payload);
  const std::uint64_t count = reader.U64();
  std::vector<std::pair<Key, CachedFileScan>> loaded;
  for (std::uint64_t i = 0; i < count && reader.ok(); ++i) {
    Key key;
    reader.Raw(key.digest.data(), key.digest.size());
    key.cert_file = reader.U8() != 0;
    CachedFileScan scan;
    const std::uint32_t n_certs = reader.U32();
    for (std::uint32_t c = 0; c < n_certs && reader.ok(); ++c) {
      FoundCertificate found;
      found.from_pem = reader.U8() != 0;
      const std::optional<x509::Certificate> cert =
          x509::Certificate::ParseDer(reader.Blob());
      if (!cert.has_value()) return false;
      found.cert = *cert;
      scan.certificates.push_back(std::move(found));
    }
    const std::uint32_t n_pins = reader.U32();
    for (std::uint32_t p = 0; p < n_pins && reader.ok(); ++p) {
      FoundPin pin;
      pin.pin_string = reader.String();
      pin.offset = reader.U64();
      if (reader.U8() != 0) {
        const std::uint8_t form = reader.U8();
        if (form > static_cast<std::uint8_t>(tls::PinForm::kPublicKey)) {
          return false;
        }
        tls::Pin parsed;
        parsed.form = static_cast<tls::PinForm>(form);
        parsed.material = reader.Blob();
        pin.parsed = std::move(parsed);
      }
      scan.pins.push_back(std::move(pin));
    }
    loaded.emplace_back(std::move(key), std::move(scan));
  }
  if (!reader.ok() || !reader.AtEnd()) return false;

  // All-or-nothing: deposit only after the whole payload decoded cleanly.
  for (auto& [key, scan] : loaded) (void)Insert(key, std::move(scan));
  return true;
}

ScanCacheStats ScanCache::Stats() const {
  ScanCacheStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = stats.lookups - stats.hits;
  stats.entries = entries_.load(std::memory_order_relaxed);
  stats.bytes_deduped = bytes_deduped_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pinscope::staticanalysis

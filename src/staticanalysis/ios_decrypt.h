// iOS app decryption (Flexdecrypt / frida-ios-dump substitutes, §4.1.2).
//
// App Store binaries are FairPlay-encrypted; static analysis must first
// obtain decrypted payloads on a jailbroken device. Two tools are modeled
// with their real trade-off: Flexdecrypt decrypts in place without launching
// the app (fast), frida-ios-dump launches the app and dumps decrypted memory
// (slower, needs a spawnable app). Both need a jailbroken device.
#pragma once

#include <string>
#include <string_view>

#include "appmodel/package.h"

namespace pinscope::staticanalysis {

/// A handle to a (possibly jailbroken) test device for decryption purposes.
struct DecryptionDevice {
  bool jailbroken = true;        ///< checkra1n'd in the paper's setup.
  std::string name = "iphone-x";
};

/// Which decryption tool to use.
enum class DecryptTool { kFlexdecrypt, kFridaIosDump };

/// Result of a decryption attempt.
struct DecryptResult {
  bool ok = false;
  std::string error;             ///< Set when !ok.
  appmodel::PackageFiles files;  ///< Tree with the main binary decrypted.
  /// Simulated wall-clock cost in milliseconds (Flexdecrypt is faster; the
  /// paper chose it for exactly that reason).
  std::int64_t cost_ms = 0;
  bool launched_app = false;     ///< frida-ios-dump must launch the app.
};

/// Decrypts an IPA tree for the bundle `bundle_id` on `device`. Fails when
/// the device is not jailbroken. Files that are not FairPlay-encrypted are
/// passed through unchanged.
[[nodiscard]] DecryptResult DecryptIpa(const appmodel::PackageFiles& ipa,
                                       std::string_view bundle_id,
                                       const DecryptionDevice& device,
                                       DecryptTool tool = DecryptTool::kFlexdecrypt);

}  // namespace pinscope::staticanalysis

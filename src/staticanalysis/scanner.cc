#include "staticanalysis/scanner.h"

#include "staticanalysis/scan_cache.h"
#include "util/strings.h"
#include "x509/pem.h"

namespace pinscope::staticanalysis {

namespace {

// Minimum printable-run length treated as a "string" in binary files (the
// default ExtractStrings threshold; the zero-copy path must agree with it).
constexpr std::size_t kMinStringLen = 6;

}  // namespace

bool ScanResult::HasPinningEvidence() const {
  if (!certificates.empty()) return true;
  for (const FoundPin& pin : pins) {
    if (pin.parsed.has_value()) return true;
  }
  return false;
}

void ExtractStrings(const util::Bytes& data, std::size_t min_len,
                    std::vector<std::string>& out) {
  out.clear();
  out.reserve(std::max<std::size_t>(out.capacity(), data.size() / 128 + 1));
  ForEachPrintableRun(data, min_len,
                      [&](std::string_view run) { out.emplace_back(run); });
}

std::vector<std::string> ExtractStrings(const util::Bytes& data,
                                        std::size_t min_len) {
  std::vector<std::string> out;
  ExtractStrings(data, min_len, out);
  return out;
}

const std::vector<std::string>& CertFileSuffixes() {
  static const std::vector<std::string> suffixes = {".der", ".pem", ".crt",
                                                    ".cert", ".cer"};
  return suffixes;
}

bool HasCertFileSuffix(std::string_view path) {
  for (const std::string& suffix : CertFileSuffixes()) {
    if (util::EndsWithIgnoreCase(path, suffix)) return true;
  }
  return false;
}

namespace {

// Heuristic: treat content as binary if it contains NUL or a significant
// fraction of non-printable bytes in its head.
bool LooksBinary(const util::Bytes& data) {
  const std::size_t probe = std::min<std::size_t>(data.size(), 512);
  std::size_t nonprint = 0;
  for (std::size_t i = 0; i < probe; ++i) {
    if (data[i] == 0) return true;
    if (data[i] < 0x09 || (data[i] > 0x0d && data[i] < 0x20) || data[i] > 0x7e) {
      ++nonprint;
    }
  }
  return probe > 0 && nonprint * 10 > probe;  // >10% non-printable
}

// Appends a cached (path-less) outcome to `out`, rebinding every `path`
// field to the observing file. Copying: the entry stays cache-resident.
void AppendRebound(const CachedFileScan& scan, const std::string& path,
                   ScanResult& out) {
  for (const FoundCertificate& c : scan.certificates) {
    out.certificates.push_back(c);
    out.certificates.back().path = path;
  }
  for (const FoundPin& p : scan.pins) {
    out.pins.push_back(p);
    out.pins.back().path = path;
  }
}

// Move flavor for outcomes that are not kept anywhere else (cache off).
void AppendOwned(CachedFileScan&& scan, const std::string& path, ScanResult& out) {
  for (FoundCertificate& c : scan.certificates) {
    c.path = path;
    out.certificates.push_back(std::move(c));
  }
  for (FoundPin& p : scan.pins) {
    p.path = path;
    out.pins.push_back(std::move(p));
  }
}

}  // namespace

Scanner::Scanner() : pin_pattern_("sha(1|256)/[a-zA-Z0-9+/=]{28,64}") {}

void Scanner::ScanContent(std::string_view text, std::size_t base_offset,
                          CachedFileScan& out) const {
  // PEM blobs anywhere in the content.
  for (x509::Certificate& cert : x509::PemDecodeAll(text)) {
    out.certificates.push_back({std::string(), std::move(cert), true});
  }
  // Pin hashes by regex. The recorded offset is absolute within the file —
  // content-derived evidence the decision journal can point at.
  for (RegexMatch& m : pin_pattern_.FindAll(text)) {
    FoundPin pin;
    pin.pin_string = std::move(m.text);
    pin.parsed = tls::Pin::FromPinString(pin.pin_string);
    pin.offset = base_offset + m.position;
    out.pins.push_back(std::move(pin));
  }
}

void Scanner::ScanFile(const util::Bytes& content, bool is_cert_file,
                       CachedFileScan& out) const {
  const std::string_view text(reinterpret_cast<const char*>(content.data()),
                              content.size());
  // (a) Certificate files by extension.
  if (is_cert_file) {
    if (auto cert = x509::PemDecode(text)) {
      out.certificates.push_back({std::string(), std::move(*cert), true});
      return;
    }
    if (auto cert = x509::Certificate::ParseDer(content)) {
      out.certificates.push_back({std::string(), std::move(*cert), false});
      return;
    }
    // Unparseable cert file: fall through to content scanning.
  }

  // (b)+(c) Content scanning; binaries reduce to printable runs first. Run
  // views alias `content`, so pointer arithmetic recovers each run's offset.
  if (LooksBinary(content)) {
    ForEachPrintableRun(content, kMinStringLen, [&](std::string_view run) {
      ScanContent(run, static_cast<std::size_t>(run.data() - text.data()), out);
    });
  } else {
    ScanContent(text, 0, out);
  }
}

ScanResult Scanner::Scan(const appmodel::PackageFiles& files, ScanCache* cache,
                         obs::MetricsRegistry* metrics) const {
  ScanResult out;
  for (const auto& [path, content] : files.files()) {
    ++out.files_scanned;
    out.bytes_scanned += content.size();
    const bool is_cert_file = HasCertFileSuffix(path);

    if (cache == nullptr) {
      CachedFileScan scan;
      ScanFile(content, is_cert_file, scan);
      AppendOwned(std::move(scan), path, out);
      continue;
    }

    // The scan branch taken depends on the cert-file flag as well as the
    // bytes, so both are part of the cache key.
    const ScanCache::Key key = ScanCache::MakeKey(content, is_cert_file);
    if (const auto hit = cache->Find(key, content.size())) {
      ++out.cache_hits;
      out.cache_bytes_deduped += content.size();
      AppendRebound(*hit, path, out);
      continue;
    }
    CachedFileScan scan;
    ScanFile(content, is_cert_file, scan);
    // First insert wins on a race; either way the resident entry is
    // appended, and racing entries are identical because ScanFile is a pure
    // function of (content, flag).
    const auto resident = cache->Insert(key, std::move(scan));
    AppendRebound(*resident, path, out);
  }
  if (metrics != nullptr) {
    metrics->counter("static.files_scanned").Add(out.files_scanned);
    metrics->counter("static.bytes_scanned").Add(out.bytes_scanned);
    metrics->counter("static.cache_hits").Add(out.cache_hits);
    metrics->counter("static.bytes_deduped").Add(out.cache_bytes_deduped);
    metrics->counter("static.certificates_found").Add(out.certificates.size());
    metrics->counter("static.pins_found").Add(out.pins.size());
  }
  return out;
}

}  // namespace pinscope::staticanalysis

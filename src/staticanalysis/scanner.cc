#include "staticanalysis/scanner.h"

#include <cstdlib>

#include "staticanalysis/scan_cache.h"
#include "util/strings.h"
#include "x509/pem.h"

namespace pinscope::staticanalysis {

namespace {

// Minimum printable-run length treated as a "string" in binary files (the
// default ExtractStrings threshold; the zero-copy path must agree with it).
constexpr std::size_t kMinStringLen = 6;

// Prefilter pattern indices (construction order in Scanner()).
constexpr std::uint32_t kPemPattern = 0;
constexpr std::uint32_t kPinPattern = 1;

}  // namespace

bool ScanResult::HasPinningEvidence() const {
  if (!certificates.empty()) return true;
  for (const FoundPin& pin : pins) {
    if (pin.parsed.has_value()) return true;
  }
  return false;
}

void ExtractStrings(const util::Bytes& data, std::size_t min_len,
                    std::vector<std::string>& out) {
  out.clear();
  out.reserve(std::max<std::size_t>(out.capacity(), data.size() / 128 + 1));
  ForEachPrintableRun(data, min_len,
                      [&](std::string_view run) { out.emplace_back(run); });
}

std::vector<std::string> ExtractStrings(const util::Bytes& data,
                                        std::size_t min_len) {
  std::vector<std::string> out;
  ExtractStrings(data, min_len, out);
  return out;
}

const std::vector<std::string>& CertFileSuffixes() {
  static const std::vector<std::string> suffixes = {".der", ".pem", ".crt",
                                                    ".cert", ".cer"};
  return suffixes;
}

bool HasCertFileSuffix(std::string_view path) {
  for (const std::string& suffix : CertFileSuffixes()) {
    if (util::EndsWithIgnoreCase(path, suffix)) return true;
  }
  return false;
}

namespace {

// Heuristic: treat content as binary if it contains NUL or a significant
// fraction of non-printable bytes in its head.
bool LooksBinary(const util::Bytes& data) {
  const std::size_t probe = std::min<std::size_t>(data.size(), 512);
  std::size_t nonprint = 0;
  for (std::size_t i = 0; i < probe; ++i) {
    if (data[i] == 0) return true;
    if (data[i] < 0x09 || (data[i] > 0x0d && data[i] < 0x20) || data[i] > 0x7e) {
      ++nonprint;
    }
  }
  return probe > 0 && nonprint * 10 > probe;  // >10% non-printable
}

// Appends a cached (path-less) outcome to `out`, rebinding every `path`
// field to the observing file. Copying: the entry stays cache-resident.
void AppendRebound(const CachedFileScan& scan, const std::string& path,
                   ScanResult& out) {
  out.certificates.reserve(out.certificates.size() + scan.certificates.size());
  out.pins.reserve(out.pins.size() + scan.pins.size());
  for (const FoundCertificate& c : scan.certificates) {
    out.certificates.push_back(c);
    out.certificates.back().path = path;
  }
  for (const FoundPin& p : scan.pins) {
    out.pins.push_back(p);
    out.pins.back().path = path;
  }
}

// Move flavor for outcomes that are not kept anywhere else (cache off).
void AppendOwned(CachedFileScan&& scan, const std::string& path, ScanResult& out) {
  out.certificates.reserve(out.certificates.size() + scan.certificates.size());
  out.pins.reserve(out.pins.size() + scan.pins.size());
  for (FoundCertificate& c : scan.certificates) {
    c.path = path;
    out.certificates.push_back(std::move(c));
  }
  for (FoundPin& p : scan.pins) {
    p.path = path;
    out.pins.push_back(std::move(p));
  }
}

}  // namespace

Scanner::Scanner()
    : pin_pattern_("sha(1|256)/[a-zA-Z0-9+/=]{28,64}"),
      prefilter_({std::string(x509::kPemBegin),
                  pin_pattern_.required_literal().literal}) {
  // One batched sweep needs a usable anchor for every rule; without one (or
  // with the kill-switch set) content scanning stays on the per-pattern
  // sweep. Decided at construction so tests can toggle via setenv.
  use_prefilter_ = !pin_pattern_.required_literal().literal.empty() &&
                   std::getenv("PINSCOPE_NO_PREFILTER") == nullptr;
}

// Legacy two-sweep content scan: one PemDecodeAll pass for certificates, one
// FindAll pass for pins. Kept as the prefilter's reference implementation
// (and its kill-switch fallback) — the two must agree byte-for-byte.
void Scanner::ScanContentLegacy(std::string_view text, std::size_t base_offset,
                                CachedFileScan& out) const {
  // PEM blobs anywhere in the content.
  for (x509::Certificate& cert : x509::PemDecodeAll(text)) {
    out.certificates.push_back({std::string(), std::move(cert), true});
  }
  // Pin hashes by regex. The recorded offset is absolute within the file —
  // content-derived evidence the decision journal can point at.
  for (RegexMatch& m : pin_pattern_.FindAll(text)) {
    FoundPin pin;
    pin.pin_string = std::move(m.text);
    pin.parsed = tls::Pin::FromPinString(pin.pin_string);
    pin.offset = base_offset + m.position;
    out.pins.push_back(std::move(pin));
  }
}

// Consumes the prefilter hits that fall inside `text`, which starts at
// absolute offset `rebase` of the swept buffer (0 when `text` itself was
// swept). Every PEM BEGIN marker and every pin-anchor occurrence arrives in
// one position-ordered stream, consumed by two independent cursors.
// Certificates and pins still land in their own vectors, so the output is
// byte-identical to the legacy two-sweep path.
void Scanner::ConsumeHits(const PrefilterHit* begin, const PrefilterHit* end,
                          std::string_view text, std::size_t rebase,
                          std::size_t base_offset, CachedFileScan& out) const {
  const LiteralAnchor& anchor = pin_pattern_.required_literal();
  // PEM cursor: everything before `pem_resume` is inside an already-decoded
  // block (PemDecodeAll's skip-inside-body rule).
  std::size_t pem_resume = 0;
  // Pin cursor: replicates Regex::FindAll's anchor sweep. `pin_pos` is the
  // earliest position a (non-overlapping) match may still start.
  std::size_t pin_pos = 0;

  for (const PrefilterHit* it = begin; it != end; ++it) {
    const std::size_t pos = it->pos - rebase;  // text-relative
    if (it->pattern == kPemPattern) {
      if (pos < pem_resume) continue;
      if (auto cert = x509::PemDecodeAt(text, pos, &pem_resume)) {
        out.certificates.push_back({std::string(), std::move(*cert), true});
      }
      continue;
    }
    // Pin-anchor occurrence at q = pos. FindAll would consider it only as
    // the first occurrence at or after pin_pos + min_offset; earlier
    // occurrences were already consumed or ruled out.
    const std::size_t q = pos;
    if (q < pin_pos + anchor.min_offset) continue;
    // Anchor fast-forward: match starts before q - max_offset cannot reach
    // this occurrence (and no earlier occurrence remains).
    if (anchor.bounded() && q > anchor.max_offset &&
        pin_pos < q - anchor.max_offset) {
      pin_pos = q - anchor.max_offset;
    }
    // Try every candidate start this occurrence admits, exactly as the
    // anchor sweep does: MatchAt, then advance by the match length
    // (non-overlapping, leftmost-greedy) or one byte on failure.
    while (pin_pos + anchor.min_offset <= q && pin_pos <= text.size()) {
      std::size_t len = 0;
      if (pin_pattern_.MatchAt(text, pin_pos, &len)) {
        FoundPin pin;
        pin.pin_string = std::string(text.substr(pin_pos, len));
        pin.parsed = tls::Pin::FromPinString(pin.pin_string);
        pin.offset = base_offset + pin_pos;
        out.pins.push_back(std::move(pin));
        pin_pos += len == 0 ? 1 : len;
      } else {
        ++pin_pos;
      }
    }
  }
}

void Scanner::ScanContent(std::string_view text, std::size_t base_offset,
                          CachedFileScan& out) const {
  if (!use_prefilter_) {
    ScanContentLegacy(text, base_offset, out);
    return;
  }
  thread_local std::vector<PrefilterHit> hits;
  prefilter_.FindAll(text, hits);
  ConsumeHits(hits.data(), hits.data() + hits.size(), text, 0, base_offset,
              out);
}

void Scanner::ScanFile(const util::Bytes& content, bool is_cert_file,
                       CachedFileScan& out) const {
  const std::string_view text(reinterpret_cast<const char*>(content.data()),
                              content.size());
  // (a) Certificate files by extension.
  if (is_cert_file) {
    if (auto cert = x509::PemDecode(text)) {
      out.certificates.push_back({std::string(), std::move(*cert), true});
      return;
    }
    if (auto cert = x509::Certificate::ParseDer(content)) {
      out.certificates.push_back({std::string(), std::move(*cert), false});
      return;
    }
    // Unparseable cert file: fall through to content scanning.
  }

  // (b)+(c) Content scanning; binaries reduce to printable runs first. Run
  // views alias `content`, so pointer arithmetic recovers each run's offset.
  if (LooksBinary(content)) {
    if (use_prefilter_) {
      ScanBinaryPrefiltered(text, out);
      return;
    }
    ForEachPrintableRun(content, kMinStringLen, [&](std::string_view run) {
      ScanContent(run, static_cast<std::size_t>(run.data() - text.data()), out);
    });
  } else {
    ScanContent(text, 0, out);
  }
}

// Binary fast path: ONE prefilter sweep over the raw bytes plus one
// vectorized printable-run classification, instead of a per-run sweep pair.
// Equivalent to scanning each printable run separately: every literal is
// printable ASCII, so an occurrence in the raw bytes lies entirely inside a
// maximal printable run — hits are just partitioned by run, and hits inside
// disqualified (< kMinStringLen) runs are dropped, exactly as the per-run
// walk never sees them. MatchAt runs against the run view, so matches still
// cannot cross a run boundary.
void Scanner::ScanBinaryPrefiltered(std::string_view text,
                                    CachedFileScan& out) const {
  thread_local std::vector<PrefilterHit> hits;
  prefilter_.FindAll(text, hits);
  thread_local std::vector<PrintableRun> runs;
  FindPrintableRuns(text, kMinStringLen, prefilter_.level(), runs);

  const PrefilterHit* it = hits.data();
  const PrefilterHit* const end = it + hits.size();
  for (const PrintableRun& run : runs) {
    if (it == end) break;
    while (it != end && it->pos < run.offset) ++it;  // gap/short-run hits
    const PrefilterHit* run_end = it;
    while (run_end != end && run_end->pos < run.offset + run.length) ++run_end;
    if (it != run_end) {
      ConsumeHits(it, run_end, text.substr(run.offset, run.length), run.offset,
                  run.offset, out);
      it = run_end;
    }
  }
}

ScanResult Scanner::Scan(const appmodel::PackageFiles& files, ScanCache* cache,
                         obs::MetricsRegistry* metrics) const {
  ScanResult out;
  for (const auto& [path, content] : files.files()) {
    ++out.files_scanned;
    out.bytes_scanned += content.size();
    const bool is_cert_file = HasCertFileSuffix(path);

    if (cache == nullptr) {
      CachedFileScan scan;
      ScanFile(content, is_cert_file, scan);
      AppendOwned(std::move(scan), path, out);
      continue;
    }

    // The scan branch taken depends on the cert-file flag as well as the
    // bytes, so both are part of the cache key.
    const ScanCache::Key key = ScanCache::MakeKey(content, is_cert_file);
    if (const auto hit = cache->Find(key, content.size())) {
      ++out.cache_hits;
      out.cache_bytes_deduped += content.size();
      AppendRebound(*hit, path, out);
      continue;
    }
    CachedFileScan scan;
    ScanFile(content, is_cert_file, scan);
    // First insert wins on a race; either way the resident entry is
    // appended, and racing entries are identical because ScanFile is a pure
    // function of (content, flag).
    const auto resident = cache->Insert(key, std::move(scan));
    AppendRebound(*resident, path, out);
  }
  if (metrics != nullptr) {
    metrics->counter("static.files_scanned").Add(out.files_scanned);
    metrics->counter("static.bytes_scanned").Add(out.bytes_scanned);
    metrics->counter("static.cache_hits").Add(out.cache_hits);
    metrics->counter("static.bytes_deduped").Add(out.cache_bytes_deduped);
    metrics->counter("static.certificates_found").Add(out.certificates.size());
    metrics->counter("static.pins_found").Add(out.pins.size());
  }
  return out;
}

}  // namespace pinscope::staticanalysis

#include "staticanalysis/scanner.h"

#include "util/strings.h"
#include "x509/pem.h"

namespace pinscope::staticanalysis {

bool ScanResult::HasPinningEvidence() const {
  if (!certificates.empty()) return true;
  for (const FoundPin& pin : pins) {
    if (pin.parsed.has_value()) return true;
  }
  return false;
}

std::vector<std::string> ExtractStrings(const util::Bytes& data,
                                        std::size_t min_len) {
  std::vector<std::string> out;
  std::string current;
  for (std::uint8_t b : data) {
    if (b >= 0x20 && b <= 0x7e) {
      current.push_back(static_cast<char>(b));
    } else {
      if (current.size() >= min_len) out.push_back(current);
      current.clear();
    }
  }
  if (current.size() >= min_len) out.push_back(current);
  return out;
}

const std::vector<std::string>& CertFileSuffixes() {
  static const std::vector<std::string> suffixes = {".der", ".pem", ".crt",
                                                    ".cert", ".cer"};
  return suffixes;
}

namespace {

// Heuristic: treat content as binary if it contains NUL or a significant
// fraction of non-printable bytes in its head.
bool LooksBinary(const util::Bytes& data) {
  const std::size_t probe = std::min<std::size_t>(data.size(), 512);
  std::size_t nonprint = 0;
  for (std::size_t i = 0; i < probe; ++i) {
    if (data[i] == 0) return true;
    if (data[i] < 0x09 || (data[i] > 0x0d && data[i] < 0x20) || data[i] > 0x7e) {
      ++nonprint;
    }
  }
  return probe > 0 && nonprint * 10 > probe;  // >10% non-printable
}

}  // namespace

Scanner::Scanner() : pin_pattern_("sha(1|256)/[a-zA-Z0-9+/=]{28,64}") {}

void Scanner::ScanContent(const std::string& path, const std::string& text,
                          ScanResult& out) const {
  // PEM blobs anywhere in the content.
  for (x509::Certificate& cert : x509::PemDecodeAll(text)) {
    out.certificates.push_back({path, std::move(cert), true});
  }
  // Pin hashes by regex.
  for (const RegexMatch& m : pin_pattern_.FindAll(text)) {
    FoundPin pin;
    pin.path = path;
    pin.pin_string = m.text;
    pin.parsed = tls::Pin::FromPinString(m.text);
    out.pins.push_back(std::move(pin));
  }
}

ScanResult Scanner::Scan(const appmodel::PackageFiles& files) const {
  ScanResult out;
  for (const auto& [path, content] : files.files()) {
    ++out.files_scanned;
    out.bytes_scanned += content.size();

    // (a) Certificate files by extension.
    const std::string lower = util::ToLower(path);
    bool is_cert_file = false;
    for (const std::string& suffix : CertFileSuffixes()) {
      if (util::EndsWith(lower, suffix)) {
        is_cert_file = true;
        break;
      }
    }
    if (is_cert_file) {
      const std::string text = util::ToString(content);
      if (auto cert = x509::PemDecode(text)) {
        out.certificates.push_back({path, std::move(*cert), true});
        continue;
      }
      if (auto cert = x509::Certificate::ParseDer(content)) {
        out.certificates.push_back({path, std::move(*cert), false});
        continue;
      }
      // Unparseable cert file: fall through to content scanning.
    }

    // (b)+(c) Content scanning; binaries reduce to printable strings first.
    if (LooksBinary(content)) {
      for (const std::string& s : ExtractStrings(content)) {
        ScanContent(path, s, out);
      }
    } else {
      ScanContent(path, util::ToString(content), out);
    }
  }
  return out;
}

}  // namespace pinscope::staticanalysis

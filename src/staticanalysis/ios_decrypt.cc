#include "staticanalysis/ios_decrypt.h"

#include "appmodel/ios_package.h"

namespace pinscope::staticanalysis {

DecryptResult DecryptIpa(const appmodel::PackageFiles& ipa,
                         std::string_view bundle_id,
                         const DecryptionDevice& device, DecryptTool tool) {
  DecryptResult out;
  if (!device.jailbroken) {
    out.error = "decryption requires a jailbroken device";
    return out;
  }

  std::size_t encrypted_files = 0;
  for (const auto& [path, content] : ipa.files()) {
    if (appmodel::IsFairPlayEncrypted(content)) {
      ++encrypted_files;
      out.files.Add(path, appmodel::FairPlayDecrypt(content, bundle_id));
    } else {
      out.files.Add(path, content);
    }
  }

  out.ok = true;
  out.launched_app = tool == DecryptTool::kFridaIosDump;
  // Cost model: Flexdecrypt ~2s + per-file work; frida-ios-dump adds an app
  // launch (~8s) before dumping.
  out.cost_ms = 2'000 + static_cast<std::int64_t>(encrypted_files) * 500;
  if (out.launched_app) out.cost_ms += 8'000;
  return out;
}

}  // namespace pinscope::staticanalysis

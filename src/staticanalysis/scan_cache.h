// Corpus-wide static-scan cache (the "scan once per study" layer).
//
// The paper attributes most pinning to a small set of third-party SDKs
// shipped identically across thousands of apps (IMC '22 §5, Table 7), which
// makes per-file scan work massively redundant at corpus scale: the same
// OkHttp smali, the same bundled PEM roots, the same native lib appear in
// app after app. This cache memoizes the scanner's per-content outcome,
// keyed by SHA-256 of the file bytes (src/crypto/sha256) plus the cert-file
// flag, so any given content is scanned once per study no matter how many
// apps ship it.
//
// Thread safety & determinism: the map is sharded (per-shard mutex, shard
// chosen by digest byte) so parallel per-app workers rarely contend.
// Inserts are first-wins; a racing worker that scanned the same content
// deposits an *identical* outcome (the scan is a pure function of the key),
// so which insert lands is unobservable. Cached entries store no paths —
// the scanner rebinds paths on every hit — which is why cached and uncached
// studies export byte-identical results (see DESIGN.md §9 and the
// `ctest -L static` equivalence suite).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/mutex.h"

#include "crypto/sha256.h"
#include "staticanalysis/scanner.h"
#include "util/bytes.h"

namespace pinscope::staticanalysis {

/// Monotonic counters describing a cache's lifetime (snapshot; the cache
/// keeps them in atomics). Schedule-dependent in the per-app breakdown but
/// stable in aggregate: for every distinct content exactly one scan misses.
struct ScanCacheStats {
  std::size_t lookups = 0;       ///< Files that consulted the cache.
  std::size_t hits = 0;          ///< Files served from a cached outcome.
  std::size_t misses = 0;        ///< Files that had to be scanned.
  std::size_t entries = 0;       ///< Distinct (content, flag) outcomes stored.
  std::size_t bytes_deduped = 0; ///< Content bytes never rescanned.

  [[nodiscard]] double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Thread-safe, deterministic content-hash → scan-outcome map. One instance
/// lives for the duration of a Study and is shared by every worker.
class ScanCache {
 public:
  /// Cache key: content digest + the suffix-dependent scan branch.
  struct Key {
    crypto::Sha256Digest digest{};
    bool cert_file = false;

    bool operator==(const Key& o) const {
      return cert_file == o.cert_file && digest == o.digest;
    }
  };

  explicit ScanCache(std::size_t shard_count = kDefaultShards);

  ScanCache(const ScanCache&) = delete;
  ScanCache& operator=(const ScanCache&) = delete;

  /// Builds the key for one file.
  [[nodiscard]] static Key MakeKey(const util::Bytes& content, bool cert_file);

  /// Looks up a cached outcome. Counts one lookup; on a hit also counts
  /// `content_size` toward bytes_deduped. Returns nullptr on miss.
  [[nodiscard]] std::shared_ptr<const CachedFileScan> Find(
      const Key& key, std::size_t content_size);

  /// Deposits an outcome (first insert wins) and returns the resident
  /// entry — the caller must append *that*, not its local copy, so racing
  /// workers all observe one canonical outcome.
  std::shared_ptr<const CachedFileScan> Insert(const Key& key,
                                               CachedFileScan scan);

  /// Counter snapshot (approximate while scans are in flight; exact once
  /// the parallel loop has joined).
  [[nodiscard]] ScanCacheStats Stats() const;

  /// Resident entry count, measured by walking the shards.
  [[nodiscard]] std::size_t EntryCount() const;

  /// Persists every entry to `path` through util::WriteCacheFile (versioned
  /// header, checksum, atomic rename; DESIGN.md §15). Entries serialize in
  /// sorted key order, so two caches holding the same outcomes write
  /// byte-identical files — which is what makes concurrent last-writer-wins
  /// saves into one cache dir unobservable. Returns false on I/O failure.
  bool SaveToFile(const std::string& path) const;

  /// Merges entries from a file written by SaveToFile (first-wins against
  /// anything already resident). A missing, foreign, version-mismatched, or
  /// corrupt file returns false and loads nothing — the cold-start path.
  /// Loaded entries count toward entries (they are resident), never toward
  /// lookups/hits: warm-start provenance is reported by the caller's
  /// cache.persist.* gauges instead.
  bool LoadFromFile(const std::string& path);

  /// Binds every shard's lock to the `lock.<name>.contended` /
  /// `lock.<name>.wait_us` family (obs/mutex.h) so the run autopsy's
  /// idle-time attribution covers this cache. Null-safe; call before the
  /// cache is shared across workers.
  void AttachMetrics(obs::MetricsRegistry* metrics,
                     std::string_view name = "scan_cache") {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      shards_[s].mu.Attach(metrics, name);
    }
  }

  static constexpr std::size_t kDefaultShards = 16;
  static constexpr std::uint32_t kFileKind = 0x314e4353;  // "SCN1"
  static constexpr std::uint32_t kFileVersion = 1;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // The digest is already uniform; fold in the flag.
      std::size_t h = 0;
      std::memcpy(&h, k.digest.data(), sizeof(h));
      return k.cert_file ? h ^ 0x9e3779b97f4a7c15ULL : h;
    }
  };

  struct Shard {
    /// mutable so the read-only SaveToFile/EntryCount walks can lock on a
    /// const cache.
    mutable obs::TrackedMutex mu;
    std::unordered_map<Key, std::shared_ptr<const CachedFileScan>, KeyHash> map;
  };

  Shard& ShardFor(const Key& key) {
    // Use a digest byte the hash does not (bytes 0-7 feed KeyHash) so shard
    // choice and within-shard bucketing stay independent.
    return shards_[key.digest[8] % shard_count_];
  }

  const std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::size_t> lookups_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> bytes_deduped_{0};
  std::atomic<std::size_t> entries_{0};
};

}  // namespace pinscope::staticanalysis

#include "staticanalysis/ats_analyzer.h"

#include "staticanalysis/xml.h"
#include "util/error.h"
#include "util/strings.h"

namespace pinscope::staticanalysis {
namespace {

// Plist <dict>: children alternate <key> and a value element. Returns the
// value element following the given key, or nullptr.
const XmlNode* DictValue(const XmlNode& dict, std::string_view key) {
  for (std::size_t i = 0; i + 1 < dict.children.size(); ++i) {
    const XmlNode& k = *dict.children[i];
    if (k.name == "key" && k.TrimmedText() == key) {
      return dict.children[i + 1].get();
    }
  }
  return nullptr;
}

// The root <dict> of a plist document, or nullptr.
const XmlNode* PlistRootDict(const XmlNode& plist) {
  if (plist.name == "dict") return &plist;
  return plist.Child("dict");
}

AtsPinnedDomainResult ParsePinnedDomain(const std::string& domain,
                                        const XmlNode& dict) {
  AtsPinnedDomainResult out;
  out.domain = domain;
  if (const XmlNode* subs = DictValue(dict, "NSIncludesSubdomains")) {
    out.include_subdomains = subs->name == "true";
  }
  for (const char* key : {"NSPinnedCAIdentities", "NSPinnedLeafIdentities"}) {
    const XmlNode* identities = DictValue(dict, key);
    if (identities == nullptr || identities->name != "array") continue;
    for (const auto& ident : identities->children) {
      if (ident->name != "dict") continue;
      const XmlNode* spki = DictValue(*ident, "SPKI-SHA256-BASE64");
      if (spki == nullptr) continue;
      if (auto pin = tls::Pin::FromPinString("sha256/" + spki->TrimmedText())) {
        out.pins.push_back(std::move(*pin));
      }
    }
  }
  return out;
}

}  // namespace

AtsAnalysis AnalyzeAts(const appmodel::PackageFiles& ipa) {
  AtsAnalysis out;

  for (const auto& [path, content] : ipa.files()) {
    const bool is_info = util::EndsWith(path, "/Info.plist");
    const bool is_entitlements = util::EndsWith(path, ".entitlements");
    if (!is_info && !is_entitlements) continue;

    std::unique_ptr<XmlNode> doc;
    try {
      doc = ParseXml(util::ToString(content));
    } catch (const util::ParseError&) {
      continue;
    }
    const XmlNode* dict = PlistRootDict(*doc);
    if (dict == nullptr) continue;

    if (is_info) {
      out.has_info_plist = true;
      out.info_plist_path = path;
      if (const XmlNode* bid = DictValue(*dict, "CFBundleIdentifier")) {
        out.bundle_id = bid->TrimmedText();
      }
      const XmlNode* ats = DictValue(*dict, "NSAppTransportSecurity");
      if (ats != nullptr && ats->name == "dict") {
        const XmlNode* pinned = DictValue(*ats, "NSPinnedDomains");
        if (pinned != nullptr && pinned->name == "dict") {
          for (std::size_t i = 0; i + 1 < pinned->children.size(); i += 2) {
            const XmlNode& k = *pinned->children[i];
            const XmlNode& v = *pinned->children[i + 1];
            if (k.name != "key" || v.name != "dict") continue;
            AtsPinnedDomainResult entry = ParsePinnedDomain(k.TrimmedText(), v);
            if (!entry.pins.empty()) out.pinned_domains.push_back(std::move(entry));
          }
        }
      }
    } else {
      const XmlNode* assoc =
          DictValue(*dict, "com.apple.developer.associated-domains");
      if (assoc != nullptr && assoc->name == "array") {
        for (const auto& entry : assoc->children) {
          if (entry->name != "string") continue;
          std::string value = entry->TrimmedText();
          // "applinks:example.com" → "example.com".
          const std::size_t colon = value.find(':');
          if (colon != std::string::npos) value = value.substr(colon + 1);
          out.associated_domains.push_back(std::move(value));
        }
      }
    }
  }
  return out;
}

}  // namespace pinscope::staticanalysis

// A small from-scratch regular-expression engine.
//
// Supports exactly the constructs the paper's search patterns need:
// literals, '.', character classes with ranges and negation, groups with
// alternation, and the quantifiers * + ? {m} {m,} {m,n} (greedy, with
// backtracking). No anchors, no captures, no std::regex dependency — the
// engine is part of the reproduced tooling (the ripgrep substitute).
#pragma once

#include <bitset>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pinscope::staticanalysis {

/// One match found in a subject string.
struct RegexMatch {
  std::size_t position = 0;  ///< Byte offset of the match start.
  std::string text;          ///< Matched text.
};

/// Sentinel for "the anchor's offset within a match is unbounded" (a
/// preceding unbounded quantifier makes it unknowable).
inline constexpr std::size_t kUnboundedOffset =
    std::numeric_limits<std::size_t>::max();

/// A literal substring every match of a pattern must contain, plus the
/// window — relative to the match start — where it must begin. Search() and
/// FindAll() use it as a prefilter: the subject is swept for the literal
/// with std::string_view::find (memchr-backed) and the backtracking matcher
/// only runs at positions the window says could start a match. Generalizes
/// the literal-prefix case: the prefix is the anchor with window [0, 0].
struct LiteralAnchor {
  std::string literal;  ///< Empty when no mandatory literal is extractable.
  std::size_t min_offset = 0;  ///< Earliest offset of `literal` in a match.
  std::size_t max_offset = 0;  ///< Latest offset, or kUnboundedOffset.

  /// True when the window is finite, i.e. finding the literal at subject
  /// position q bounds candidate match starts to [q - max_offset, q].
  [[nodiscard]] bool bounded() const { return max_offset != kUnboundedOffset; }
};

/// A compiled pattern. Compile once, match many times.
class Regex {
 public:
  /// Compiles `pattern`. Throws util::ParseError on invalid syntax.
  explicit Regex(std::string_view pattern);

  Regex(Regex&&) noexcept;
  Regex& operator=(Regex&&) noexcept;
  ~Regex();

  /// The source pattern.
  [[nodiscard]] const std::string& pattern() const { return pattern_; }

  /// True if the pattern matches starting exactly at `text[pos]`.
  /// `match_len` (optional) receives the longest match length.
  [[nodiscard]] bool MatchAt(std::string_view text, std::size_t pos,
                             std::size_t* match_len = nullptr) const;

  /// True if the pattern matches anywhere in `text`.
  [[nodiscard]] bool Search(std::string_view text) const;

  /// All non-overlapping matches, leftmost-greedy.
  [[nodiscard]] std::vector<RegexMatch> FindAll(std::string_view text) const;

  /// Implementation AST node (public so the out-of-line parser/matcher can
  /// reach it; not part of the supported API surface).
  struct Node;

  /// The literal prefix every match must start with ("" when the pattern has
  /// no mandatory literal head). Subsumed by required_literal() — kept for
  /// callers that specifically want a match *head*.
  [[nodiscard]] const std::string& literal_prefix() const { return prefix_; }

  /// The best mandatory-literal anchor of this pattern, memoized at compile
  /// time (longest literal; ties prefer a bounded, then tighter, window).
  /// `required_literal().literal` is empty for patterns with no extractable
  /// literal, e.g. pure character classes or disjoint alternations.
  [[nodiscard]] const LiteralAnchor& required_literal() const { return anchor_; }

 private:
  std::string pattern_;
  std::unique_ptr<Node> root_;
  std::string prefix_;
  LiteralAnchor anchor_;
};

}  // namespace pinscope::staticanalysis

// A small from-scratch regular-expression engine.
//
// Supports exactly the constructs the paper's search patterns need:
// literals, '.', character classes with ranges and negation, groups with
// alternation, and the quantifiers * + ? {m} {m,} {m,n} (greedy, with
// backtracking). No anchors, no captures, no std::regex dependency — the
// engine is part of the reproduced tooling (the ripgrep substitute).
#pragma once

#include <bitset>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pinscope::staticanalysis {

/// One match found in a subject string.
struct RegexMatch {
  std::size_t position = 0;  ///< Byte offset of the match start.
  std::string text;          ///< Matched text.
};

/// A compiled pattern. Compile once, match many times.
class Regex {
 public:
  /// Compiles `pattern`. Throws util::ParseError on invalid syntax.
  explicit Regex(std::string_view pattern);

  Regex(Regex&&) noexcept;
  Regex& operator=(Regex&&) noexcept;
  ~Regex();

  /// The source pattern.
  [[nodiscard]] const std::string& pattern() const { return pattern_; }

  /// True if the pattern matches starting exactly at `text[pos]`.
  /// `match_len` (optional) receives the longest match length.
  [[nodiscard]] bool MatchAt(std::string_view text, std::size_t pos,
                             std::size_t* match_len = nullptr) const;

  /// True if the pattern matches anywhere in `text`.
  [[nodiscard]] bool Search(std::string_view text) const;

  /// All non-overlapping matches, leftmost-greedy.
  [[nodiscard]] std::vector<RegexMatch> FindAll(std::string_view text) const;

  /// Implementation AST node (public so the out-of-line parser/matcher can
  /// reach it; not part of the supported API surface).
  struct Node;

  /// The literal prefix every match must start with ("" when the pattern has
  /// no mandatory literal head). Search() and FindAll() use it to skip
  /// non-candidate positions — essential for corpus-scale scanning.
  [[nodiscard]] const std::string& literal_prefix() const { return prefix_; }

 private:
  std::string pattern_;
  std::unique_ptr<Node> root_;
  std::string prefix_;
};

}  // namespace pinscope::staticanalysis

// A minimal XML parser.
//
// Covers the subset that AndroidManifest.xml, Network Security Configs and
// property lists use: declarations, elements with quoted attributes,
// self-closing tags, text content, and comments. No namespaces, CDATA, or
// DTDs. Parsing either succeeds with a document tree or throws ParseError.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pinscope::staticanalysis {

/// One XML element.
struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  ///< Concatenated character data directly inside this node.

  /// Attribute value, or nullopt.
  [[nodiscard]] std::optional<std::string> Attr(std::string_view key) const;

  /// First child element with the given name, or nullptr.
  [[nodiscard]] const XmlNode* Child(std::string_view name) const;

  /// All child elements with the given name.
  [[nodiscard]] std::vector<const XmlNode*> Children(std::string_view name) const;

  /// Trimmed text content.
  [[nodiscard]] std::string TrimmedText() const;
};

/// Parses a document; returns its root element. Throws util::ParseError on
/// malformed input.
[[nodiscard]] std::unique_ptr<XmlNode> ParseXml(std::string_view input);

}  // namespace pinscope::staticanalysis

// End-to-end static analysis of one app (§4.1).
//
// Orchestrates the per-platform steps: Apktool-style decoding (Android trees
// are already decoded), FairPlay decryption (iOS), the scanner, NSC/ATS
// configuration analysis, and optional CT-log resolution of found pin hashes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "appmodel/app.h"
#include "obs/obs.h"
#include "staticanalysis/ats_analyzer.h"
#include "staticanalysis/ios_decrypt.h"
#include "staticanalysis/nsc_analyzer.h"
#include "staticanalysis/scanner.h"
#include "x509/ct_log.h"

namespace pinscope::staticanalysis {

/// Everything static analysis learned about one app.
struct StaticReport {
  std::string app_id;
  appmodel::Platform platform = appmodel::Platform::kAndroid;

  bool decryption_ok = true;  ///< iOS only; false if decryption failed.
  ScanResult scan;
  NscAnalysis nsc;  ///< Android only.
  AtsAnalysis ats;  ///< iOS only.

  /// Certificates resolved from scanned pin hashes via the CT log (§4.1.3).
  std::vector<x509::Certificate> ct_resolved;
  /// Number of distinct scanned pins that resolved in the CT log.
  std::size_t pins_resolved = 0;
  /// Number of distinct well-formed scanned pins.
  std::size_t pins_total = 0;

  /// Paper's "Embedded Certificates" static signal: any certificate or
  /// well-formed pin hash found in the package.
  [[nodiscard]] bool PotentialPinning() const;

  /// Prior-work "Configuration Files" signal (NSC pins; ATS pins on iOS 14+,
  /// reported separately since the paper's device predates it).
  [[nodiscard]] bool ConfigPinning() const;

  /// Paths where pin/cert evidence was found (for attribution).
  [[nodiscard]] std::vector<std::string> EvidencePaths() const;
};

/// Options controlling the static pipeline.
struct StaticAnalysisOptions {
  /// Jailbroken device available for iOS decryption.
  DecryptionDevice device;
  DecryptTool decrypt_tool = DecryptTool::kFlexdecrypt;
  /// CT log for hash→certificate resolution; nullptr skips resolution.
  const x509::CtLog* ct_log = nullptr;
  /// Corpus-wide scan cache shared across apps (scan_cache.h); nullptr
  /// scans every file uncached. Results are identical either way.
  ScanCache* scan_cache = nullptr;
  /// Optional observability sink: the per-app scan span plus the study-wide
  /// `static.*` counters. Reports are byte-identical with or without it
  /// (DESIGN.md §11).
  obs::Observer* observer = nullptr;
};

/// Runs the full static pipeline over one app.
[[nodiscard]] StaticReport AnalyzeStatically(const appmodel::App& app,
                                             const StaticAnalysisOptions& options = {});

}  // namespace pinscope::staticanalysis

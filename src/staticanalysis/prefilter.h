// SIMD multi-literal scan prefilter (the Teddy/memchr-style batch sweep).
//
// The scanner used to sweep each artifact once per pattern: one
// std::string_view::find pass for the PEM BEGIN marker, another for the pin
// regex's mandatory literal (Regex::required_literal()). This class batches
// the mandatory literals of *all* compiled rules into a single pass: a
// vectorized candidate filter over 2-byte probes marks the few positions
// where any literal could occur, and an exact memcmp confirms which rule(s)
// actually begin there. One traversal of the haystack replaces k traversals,
// and the candidate filter runs 16 (SSE2) or 32 (AVX2) subject positions per
// instruction.
//
// Each literal's probe pair is chosen at the lowest-noise offset *inside*
// the literal, not blindly at its head: "-----BEGIN CERTIFICATE-----" would
// otherwise anchor on "--" and fire at every position of every dash run the
// subject contains. A candidate match of the pair at position i is verified
// at literal start i - offset.
//
// The kernel tier is chosen at construction from the shared dispatch helper
// (crypto/cpu.h) — honoring PINSCOPE_NO_SIMD / PINSCOPE_NO_AVX2 — so tests
// can force the portable path with setenv and compare outputs. All tiers are
// exact and byte-identical: hits are every occurrence (overlapping included)
// of every literal, ordered by position, ties by pattern index.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/cpu.h"

namespace pinscope::staticanalysis {

/// One literal occurrence found by the prefilter.
struct PrefilterHit {
  std::size_t pos = 0;        ///< Byte offset of the literal in the subject.
  std::uint32_t pattern = 0;  ///< Index into the constructor's literal list.

  bool operator==(const PrefilterHit&) const = default;
};

/// Batch multi-literal searcher. Compile once per rule set; sweep many
/// subjects. Thread-safe after construction (FindAll is const and keeps no
/// mutable state).
class MultiLiteralPrefilter {
 public:
  /// Builds the filter for `literals` (pattern i = literals[i]). Empty
  /// literals are legal but never reported. The SIMD tier is fixed here,
  /// from crypto::cpu::DetectSimdLevel().
  explicit MultiLiteralPrefilter(std::vector<std::string> literals);

  /// Clears `out` and fills it with every occurrence of every non-empty
  /// literal in `text` — overlapping occurrences included — sorted by
  /// (pos, pattern). `out` is caller-provided so a scan loop can reuse one
  /// buffer's capacity across files.
  void FindAll(std::string_view text, std::vector<PrefilterHit>& out) const;

  /// The literal list, as given.
  [[nodiscard]] const std::vector<std::string>& literals() const {
    return literals_;
  }

  /// The kernel tier selected at construction.
  [[nodiscard]] crypto::cpu::SimdLevel level() const { return level_; }

  /// Human-readable tier ("avx2" / "sse2" / "portable"), for benchmarks.
  [[nodiscard]] const char* level_name() const {
    return crypto::cpu::SimdLevelName(level_);
  }

 private:
  /// Candidate filter unit: each literal of length >= 2 contributes the
  /// 2-byte probe at its chosen offset; duplicate probes are collapsed.
  struct BytePair {
    unsigned char b0 = 0;
    unsigned char b1 = 0;
  };

  void FindAllPortable(std::string_view text, std::size_t from,
                       std::vector<PrefilterHit>& out) const;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  void FindAllSse2(std::string_view text, std::vector<PrefilterHit>& out) const;
  void FindAllAvx2(std::string_view text, std::vector<PrefilterHit>& out) const;
#endif
  /// Exact confirmation at one candidate (probe-pair) position: each literal
  /// is tested at pos - its probe offset. Kernels may therefore append hits
  /// out of (pos, pattern) order; FindAll sorts before returning.
  void VerifyAt(std::string_view text, std::size_t pos,
                std::vector<PrefilterHit>& out) const;

  std::vector<std::string> literals_;
  std::vector<std::size_t> probe_offsets_;  ///< Per-literal probe position.
  crypto::cpu::SimdLevel level_ = crypto::cpu::SimdLevel::kPortable;
  std::vector<BytePair> pairs_;          ///< Distinct 2-byte probes.
  std::vector<unsigned char> singles_;   ///< Distinct 1-byte literals.
  bool first_byte_[256] = {};            ///< Portable candidate table.
};

/// One maximal printable-ASCII run in a binary blob.
struct PrintableRun {
  std::size_t offset = 0;  ///< Byte offset of the run start.
  std::size_t length = 0;  ///< Run length (>= the caller's min_len).

  bool operator==(const PrintableRun&) const = default;
};

/// Vectorized replacement for the scanner's printable-run byte loop
/// (ForEachPrintableRun): classifies 16/32 bytes per instruction into a
/// printable bitmask and walks its transitions. Clears `out` and fills it
/// with every maximal run of printable bytes (0x20..0x7e) of at least
/// `min_len`, in order — exactly the runs the scalar loop visits. `level`
/// picks the kernel (pass crypto::cpu::DetectSimdLevel(), or kPortable to
/// force the scalar reference).
void FindPrintableRuns(std::string_view data, std::size_t min_len,
                       crypto::cpu::SimdLevel level,
                       std::vector<PrintableRun>& out);

}  // namespace pinscope::staticanalysis

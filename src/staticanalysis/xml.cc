#include "staticanalysis/xml.h"

#include <cctype>

#include "util/error.h"
#include "util/strings.h"

namespace pinscope::staticanalysis {

std::optional<std::string> XmlNode::Attr(std::string_view key) const {
  const auto it = attributes.find(std::string(key));
  if (it == attributes.end()) return std::nullopt;
  return it->second;
}

const XmlNode* XmlNode::Child(std::string_view name) const {
  for (const auto& c : children) {
    if (c->name == name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == name) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::TrimmedText() const { return std::string(util::Trim(text)); }

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : in_(input) {}

  std::unique_ptr<XmlNode> Parse() {
    SkipProlog();
    auto root = ParseElement();
    SkipWhitespaceAndComments();
    if (pos_ != in_.size()) Fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw util::ParseError("xml at offset " + std::to_string(pos_) + ": " + why);
  }

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (true) {
      SkipWhitespace();
      if (util::StartsWith(in_.substr(pos_), "<!--")) {
        const std::size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) Fail("unterminated comment");
        pos_ = end + 3;
      } else {
        return;
      }
    }
  }

  void SkipProlog() {
    SkipWhitespaceAndComments();
    while (!AtEnd() && util::StartsWith(in_.substr(pos_), "<?")) {
      const std::size_t end = in_.find("?>", pos_);
      if (end == std::string_view::npos) Fail("unterminated declaration");
      pos_ = end + 2;
      SkipWhitespaceAndComments();
    }
  }

  std::string ParseName() {
    const std::size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '-' || Peek() == '_' || Peek() == ':' ||
                        Peek() == '.')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a name");
    return std::string(in_.substr(start, pos_ - start));
  }

  std::unique_ptr<XmlNode> ParseElement() {
    if (AtEnd() || Peek() != '<') Fail("expected '<'");
    ++pos_;
    auto node = std::make_unique<XmlNode>();
    node->name = ParseName();

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) Fail("unterminated tag");
      if (Peek() == '/') {
        ++pos_;
        if (AtEnd() || Peek() != '>') Fail("expected '>' after '/'");
        ++pos_;
        return node;  // self-closing
      }
      if (Peek() == '>') {
        ++pos_;
        break;
      }
      const std::string key = ParseName();
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') Fail("expected '=' in attribute");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) Fail("expected quote");
      const char quote = Peek();
      ++pos_;
      const std::size_t vstart = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) Fail("unterminated attribute value");
      node->attributes[key] = std::string(in_.substr(vstart, pos_ - vstart));
      ++pos_;
    }

    // Content.
    while (true) {
      if (AtEnd()) Fail("unterminated element <" + node->name + ">");
      if (Peek() == '<') {
        if (util::StartsWith(in_.substr(pos_), "<!--")) {
          const std::size_t end = in_.find("-->", pos_);
          if (end == std::string_view::npos) Fail("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '/') {
          pos_ += 2;
          const std::string closing = ParseName();
          if (closing != node->name) {
            Fail("mismatched closing tag </" + closing + "> for <" + node->name + ">");
          }
          SkipWhitespace();
          if (AtEnd() || Peek() != '>') Fail("expected '>' in closing tag");
          ++pos_;
          return node;
        }
        node->children.push_back(ParseElement());
      } else {
        node->text.push_back(Peek());
        ++pos_;
      }
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<XmlNode> ParseXml(std::string_view input) {
  return XmlParser(input).Parse();
}

}  // namespace pinscope::staticanalysis

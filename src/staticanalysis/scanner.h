// Package scanner (§4.1.2): the ripgrep + radare2 substitute.
//
// Walks an app's file tree looking for (a) certificate files by extension,
// (b) PEM blobs by their BEGIN delimiter, and (c) SPKI pin hashes via the
// paper's regex sha(1|256)/[a-zA-Z0-9+/=]{28,64}. Binary files (native libs,
// executables) are first reduced to their printable string runs, like
// radare2's string extraction.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "appmodel/package.h"
#include "staticanalysis/regex.h"
#include "tls/pinning.h"
#include "x509/certificate.h"

namespace pinscope::staticanalysis {

/// A certificate discovered in a package.
struct FoundCertificate {
  std::string path;          ///< File where it was found.
  x509::Certificate cert;
  bool from_pem = false;     ///< Found via PEM armor (vs raw DER file).
};

/// A pin string discovered in a package.
struct FoundPin {
  std::string path;          ///< File where it was found.
  std::string pin_string;    ///< Raw "sha256/..." text as matched.
  std::optional<tls::Pin> parsed;  ///< Decoded pin (nullopt if malformed).
};

/// Everything the scanner extracted from one package.
struct ScanResult {
  std::vector<FoundCertificate> certificates;
  std::vector<FoundPin> pins;
  std::size_t files_scanned = 0;
  std::size_t bytes_scanned = 0;

  /// True if any certificate or well-formed pin was found — the paper's
  /// "embedded certificates" static-detection signal.
  [[nodiscard]] bool HasPinningEvidence() const;
};

/// Extracts printable ASCII runs of at least `min_len` characters from a
/// binary blob (radare2-equivalent string extraction).
[[nodiscard]] std::vector<std::string> ExtractStrings(const util::Bytes& data,
                                                      std::size_t min_len = 6);

/// The certificate-file extensions §4.1.2 searches for.
[[nodiscard]] const std::vector<std::string>& CertFileSuffixes();

/// Package scanner. Construct once; the pin regex is compiled at
/// construction.
class Scanner {
 public:
  Scanner();

  /// Scans a (decoded, decrypted) package tree.
  [[nodiscard]] ScanResult Scan(const appmodel::PackageFiles& files) const;

  /// The compiled pin-hash pattern (exposed for tests and benchmarks).
  [[nodiscard]] const Regex& pin_pattern() const { return pin_pattern_; }

 private:
  void ScanContent(const std::string& path, const std::string& text,
                   ScanResult& out) const;

  Regex pin_pattern_;
};

}  // namespace pinscope::staticanalysis

// Package scanner (§4.1.2): the ripgrep + radare2 substitute.
//
// Walks an app's file tree looking for (a) certificate files by extension,
// (b) PEM blobs by their BEGIN delimiter, and (c) SPKI pin hashes via the
// paper's regex sha(1|256)/[a-zA-Z0-9+/=]{28,64}. Binary files (native libs,
// executables) are first reduced to their printable string runs, like
// radare2's string extraction.
//
// The scan inner loop is zero-copy and single-pass: file contents are viewed
// as std::string_view over the package's own bytes (no per-file string
// copies), and binary files yield printable runs through ForEachPrintableRun
// instead of materializing a vector of strings. With a ScanCache (see
// scan_cache.h) attached, files whose content was already scanned anywhere
// in the corpus replay their cached outcome instead of being rescanned —
// shared SDK artifacts are scanned once per study, not once per app.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "appmodel/package.h"
#include "obs/metrics.h"
#include "staticanalysis/prefilter.h"
#include "staticanalysis/regex.h"
#include "tls/pinning.h"
#include "x509/certificate.h"

namespace pinscope::staticanalysis {

class ScanCache;  // scan_cache.h

/// A certificate discovered in a package.
struct FoundCertificate {
  std::string path;          ///< File where it was found.
  x509::Certificate cert;
  bool from_pem = false;     ///< Found via PEM armor (vs raw DER file).
};

/// A pin string discovered in a package.
struct FoundPin {
  std::string path;          ///< File where it was found.
  std::string pin_string;    ///< Raw "sha256/..." text as matched.
  std::optional<tls::Pin> parsed;  ///< Decoded pin (nullopt if malformed).
  /// Byte offset of the match within the file — in binary files, the
  /// absolute offset of the match inside the printable run it was found in.
  /// Content-derived, so cached and uncached scans agree.
  std::size_t offset = 0;
};

/// Path-independent scan outcome of one file's *content* — the unit the
/// corpus-wide ScanCache stores. The `path` fields inside are empty; they
/// are rebound to the observing file's path when the entry is appended to a
/// ScanResult, so cached and uncached scans are byte-identical.
struct CachedFileScan {
  std::vector<FoundCertificate> certificates;
  std::vector<FoundPin> pins;
};

/// Everything the scanner extracted from one package.
struct ScanResult {
  std::vector<FoundCertificate> certificates;
  std::vector<FoundPin> pins;
  std::size_t files_scanned = 0;
  std::size_t bytes_scanned = 0;

  /// Diagnostic scan-cache counters for this package (zero when scanning
  /// without a cache). Deliberately excluded from exports: which app takes
  /// the miss for a shared SDK file depends on scheduling, so these are
  /// observability counters, not results.
  std::size_t cache_hits = 0;
  std::size_t cache_bytes_deduped = 0;

  /// True if any certificate or well-formed pin was found — the paper's
  /// "embedded certificates" static-detection signal.
  [[nodiscard]] bool HasPinningEvidence() const;
};

/// Calls `fn(std::string_view)` for every printable-ASCII run of at least
/// `min_len` bytes in `data`. The views alias `data` — no copies are made —
/// so they are valid only for the duration of the callback. This is the
/// scanner's fast path for binary files; ExtractStrings is the materializing
/// wrapper kept for callers that want owned strings.
template <typename Fn>
void ForEachPrintableRun(const util::Bytes& data, std::size_t min_len, Fn&& fn) {
  const char* base = reinterpret_cast<const char*>(data.data());
  const std::size_t n = data.size();
  std::size_t run_start = 0;
  bool in_run = false;
  for (std::size_t i = 0; i < n; ++i) {
    const bool printable = data[i] >= 0x20 && data[i] <= 0x7e;
    if (printable) {
      if (!in_run) {
        run_start = i;
        in_run = true;
      }
    } else if (in_run) {
      if (i - run_start >= min_len) fn(std::string_view(base + run_start, i - run_start));
      in_run = false;
    }
  }
  if (in_run && n - run_start >= min_len) {
    fn(std::string_view(base + run_start, n - run_start));
  }
}

/// Extracts printable ASCII runs of at least `min_len` characters from a
/// binary blob (radare2-equivalent string extraction).
[[nodiscard]] std::vector<std::string> ExtractStrings(const util::Bytes& data,
                                                      std::size_t min_len = 6);

/// As above, but refills `out` (clearing it first) so a caller looping over
/// many files reuses one scratch vector's capacity instead of reallocating
/// per file.
void ExtractStrings(const util::Bytes& data, std::size_t min_len,
                    std::vector<std::string>& out);

/// The certificate-file extensions §4.1.2 searches for.
[[nodiscard]] const std::vector<std::string>& CertFileSuffixes();

/// True if `path` ends with one of CertFileSuffixes(), compared
/// case-insensitively without copying or lowercasing the path.
[[nodiscard]] bool HasCertFileSuffix(std::string_view path);

/// Package scanner. Construct once; the pin regex is compiled at
/// construction.
class Scanner {
 public:
  Scanner();

  /// Scans a (decoded, decrypted) package tree. With `cache` non-null,
  /// per-content outcomes are looked up / deposited there, keyed by
  /// SHA-256(content) + cert-file flag; results are byte-identical with the
  /// cache on or off. The cache may be shared across threads. With `metrics`
  /// non-null the per-package tallies are also added to the study-wide
  /// `static.*` counters (observational only — the returned ScanResult is
  /// identical either way).
  [[nodiscard]] ScanResult Scan(const appmodel::PackageFiles& files,
                                ScanCache* cache = nullptr,
                                obs::MetricsRegistry* metrics = nullptr) const;

  /// The compiled pin-hash pattern (exposed for tests and benchmarks).
  [[nodiscard]] const Regex& pin_pattern() const { return pin_pattern_; }

  /// The batched literal sweep shared by all rules (tests and benchmarks).
  [[nodiscard]] const MultiLiteralPrefilter& prefilter() const {
    return prefilter_;
  }

  /// True when content scanning uses the single-pass multi-literal
  /// prefilter; false on the legacy per-pattern sweep (PINSCOPE_NO_PREFILTER
  /// set at construction, or the pin pattern yielded no usable anchor).
  /// Either way the results are byte-identical.
  [[nodiscard]] bool prefilter_enabled() const { return use_prefilter_; }

 private:
  void ScanContent(std::string_view text, std::size_t base_offset,
                   CachedFileScan& out) const;
  void ScanContentLegacy(std::string_view text, std::size_t base_offset,
                         CachedFileScan& out) const;
  void ConsumeHits(const PrefilterHit* begin, const PrefilterHit* end,
                   std::string_view text, std::size_t rebase,
                   std::size_t base_offset, CachedFileScan& out) const;
  void ScanBinaryPrefiltered(std::string_view text, CachedFileScan& out) const;
  void ScanFile(const util::Bytes& content, bool is_cert_file,
                CachedFileScan& out) const;

  Regex pin_pattern_;
  MultiLiteralPrefilter prefilter_;  ///< [0]=PEM BEGIN, [1]=pin anchor.
  bool use_prefilter_ = false;
};

}  // namespace pinscope::staticanalysis

#include "staticanalysis/nsc_analyzer.h"

#include "staticanalysis/xml.h"
#include "util/base64.h"
#include "util/error.h"
#include "util/strings.h"

namespace pinscope::staticanalysis {

bool NscAnalysis::PinsViaNsc() const {
  for (const NscDomainResult& d : domains) {
    if (!d.parsed_pins.empty()) return true;
  }
  return false;
}

std::vector<std::string> NscAnalysis::MisconfiguredDomains() const {
  std::vector<std::string> out;
  for (const NscDomainResult& d : domains) {
    if (d.override_pins && !d.pin_strings.empty()) out.push_back(d.domain);
  }
  return out;
}

std::vector<std::string> NscAnalysis::LintFindings() const {
  std::vector<std::string> findings;
  for (const std::string& domain : MisconfiguredDomains()) {
    findings.push_back("pin-set for " + domain +
                       " is neutralized by overridePins=\"true\"");
  }
  if (has_debug_overrides && debug_trusts_user_anchors) {
    findings.push_back(
        "debug-overrides trust user-installed CAs (MITM-able if the release "
        "build is debuggable)");
  }
  if (base_cleartext_permitted == true) {
    findings.push_back("base-config permits cleartext traffic globally");
  }
  for (const NscDomainResult& d : domains) {
    if (d.cleartext_permitted == true) {
      findings.push_back("cleartext traffic permitted for " + d.domain);
    }
    if (!d.parsed_pins.empty() && d.parsed_pins.size() < 2) {
      findings.push_back("pin-set for " + d.domain +
                         " has no backup pin (rotation will break the app)");
    }
  }
  if (base_trusts_user_anchors) {
    findings.push_back("base-config trusts user-installed CAs");
  }
  return findings;
}

namespace {

std::optional<tls::Pin> ParseNscPin(const std::string& digest_attr,
                                    const std::string& body) {
  std::string prefix;
  if (digest_attr == "SHA-256") {
    prefix = "sha256/";
  } else if (digest_attr == "SHA-1") {
    prefix = "sha1/";
  } else {
    return std::nullopt;
  }
  return tls::Pin::FromPinString(prefix + std::string(util::Trim(body)));
}

NscDomainResult ParseDomainConfig(const XmlNode& cfg) {
  NscDomainResult out;
  if (const XmlNode* domain = cfg.Child("domain")) {
    out.domain = domain->TrimmedText();
    out.include_subdomains = domain->Attr("includeSubdomains") == "true";
  }
  if (const XmlNode* pin_set = cfg.Child("pin-set")) {
    if (const auto exp = pin_set->Attr("expiration")) out.pin_expiration = *exp;
    for (const XmlNode* pin : pin_set->Children("pin")) {
      const std::string digest = pin->Attr("digest").value_or("");
      const std::string body = pin->TrimmedText();
      out.pin_strings.push_back(digest + ":" + body);
      if (auto parsed = ParseNscPin(digest, body)) {
        out.parsed_pins.push_back(std::move(*parsed));
      }
    }
  }
  if (const XmlNode* anchors = cfg.Child("trust-anchors")) {
    for (const XmlNode* certs : anchors->Children("certificates")) {
      if (certs->Attr("overridePins") == "true") out.override_pins = true;
    }
  }
  if (const auto cleartext = cfg.Attr("cleartextTrafficPermitted")) {
    out.cleartext_permitted = *cleartext == "true";
  }
  return out;
}

bool TrustsUserAnchors(const XmlNode& element) {
  const XmlNode* anchors = element.Child("trust-anchors");
  if (anchors == nullptr) return false;
  for (const XmlNode* certs : anchors->Children("certificates")) {
    if (certs->Attr("src") == "user") return true;
  }
  return false;
}

}  // namespace

NscAnalysis AnalyzeNsc(const appmodel::PackageFiles& apk) {
  NscAnalysis out;

  const util::Bytes* manifest_bytes = apk.Find("AndroidManifest.xml");
  if (manifest_bytes == nullptr) return out;
  out.has_manifest = true;

  std::unique_ptr<XmlNode> manifest;
  try {
    manifest = ParseXml(util::ToString(*manifest_bytes));
  } catch (const util::ParseError&) {
    return out;
  }

  const XmlNode* application = manifest->Child("application");
  if (application == nullptr) return out;
  const auto nsc_ref = application->Attr("android:networkSecurityConfig");
  if (!nsc_ref.has_value()) return out;
  out.uses_nsc = true;

  // "@xml/network_security_config" → res/xml/network_security_config.xml.
  std::string path(*nsc_ref);
  if (util::StartsWith(path, "@xml/")) {
    path = "res/xml/" + path.substr(5) + ".xml";
  }
  const util::Bytes* nsc_bytes = apk.Find(path);
  if (nsc_bytes == nullptr) return out;

  std::unique_ptr<XmlNode> nsc;
  try {
    nsc = ParseXml(util::ToString(*nsc_bytes));
  } catch (const util::ParseError&) {
    return out;
  }
  if (nsc->name != "network-security-config") return out;
  out.nsc_file_found = true;
  out.nsc_path = path;

  for (const XmlNode* cfg : nsc->Children("domain-config")) {
    out.domains.push_back(ParseDomainConfig(*cfg));
  }
  if (const XmlNode* base = nsc->Child("base-config")) {
    out.has_base_config = true;
    if (const auto cleartext = base->Attr("cleartextTrafficPermitted")) {
      out.base_cleartext_permitted = *cleartext == "true";
    }
    out.base_trusts_user_anchors = TrustsUserAnchors(*base);
  }
  if (const XmlNode* debug = nsc->Child("debug-overrides")) {
    out.has_debug_overrides = true;
    out.debug_trusts_user_anchors = TrustsUserAnchors(*debug);
  }
  return out;
}

}  // namespace pinscope::staticanalysis

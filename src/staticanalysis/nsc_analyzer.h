// Android Network Security Configuration analysis (§4.1.1).
//
// The prior-work detection technique (Possemato et al., Oltrogge et al.):
// read AndroidManifest.xml, follow the android:networkSecurityConfig
// reference, and parse the NSC's <pin-set> entries. Also flags the
// misconfiguration Possemato et al. observed — a pin-set combined with
// trust-anchors carrying overridePins="true", which neutralizes the pins.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "appmodel/package.h"
#include "tls/pinning.h"

namespace pinscope::staticanalysis {

/// One parsed <domain-config>.
struct NscDomainResult {
  std::string domain;
  bool include_subdomains = false;
  std::vector<std::string> pin_strings;         ///< Raw pin texts.
  std::vector<tls::Pin> parsed_pins;            ///< Well-formed subset.
  std::string pin_expiration;                   ///< Raw expiration attribute.
  bool override_pins = false;                   ///< Misconfiguration flag.
  /// cleartextTrafficPermitted attribute (unset inherits the base config).
  std::optional<bool> cleartext_permitted;
};

/// Result of NSC analysis for one APK.
struct NscAnalysis {
  bool has_manifest = false;
  bool uses_nsc = false;           ///< Manifest references an NSC file.
  bool nsc_file_found = false;     ///< The referenced file exists and parsed.
  /// Resolved path of the parsed NSC document — digest provenance for the
  /// decision journal ("" until nsc_file_found).
  std::string nsc_path;
  std::vector<NscDomainResult> domains;

  /// <base-config> findings.
  bool has_base_config = false;
  std::optional<bool> base_cleartext_permitted;
  bool base_trusts_user_anchors = false;

  /// <debug-overrides> findings.
  bool has_debug_overrides = false;
  bool debug_trusts_user_anchors = false;

  /// True if any domain-config carries well-formed pins — the prior-work
  /// static pinning signal ("Configuration Files" column of Table 3).
  [[nodiscard]] bool PinsViaNsc() const;

  /// Domains whose pins are neutralized by overridePins="true".
  [[nodiscard]] std::vector<std::string> MisconfiguredDomains() const;

  /// Lint findings over the whole document (Possemato-et-al.-style audit):
  /// neutralized pins, user-trusting debug overrides, cleartext enabled.
  [[nodiscard]] std::vector<std::string> LintFindings() const;
};

/// Analyzes an APK tree.
[[nodiscard]] NscAnalysis AnalyzeNsc(const appmodel::PackageFiles& apk);

}  // namespace pinscope::staticanalysis

#include "staticanalysis/prefilter.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PINSCOPE_PREFILTER_X86 1
#include <immintrin.h>
#else
#define PINSCOPE_PREFILTER_X86 0
#endif

namespace pinscope::staticanalysis {

namespace {

/// Commonness of a byte in the artifacts the scanner sweeps (smali text,
/// base64 bodies, symbol tables, dash rules): lower = rarer = better probe.
int ByteWeight(unsigned char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return 4;
  }
  // Dash runs, path separators and base64 punctuation are dense in exactly
  // the files being scanned.
  if (c == '-' || c == '_' || c == '/' || c == '.' || c == '+' || c == '=') {
    return 6;
  }
  return 2;  // space and the remaining punctuation
}

/// Probe score: product of byte weights, with a heavy penalty for repeated
/// bytes — a (c, c) probe fires at every position of every c-run.
int ProbeScore(unsigned char b0, unsigned char b1) {
  return ByteWeight(b0) * ByteWeight(b1) + (b0 == b1 ? 64 : 0);
}

}  // namespace

MultiLiteralPrefilter::MultiLiteralPrefilter(std::vector<std::string> literals)
    : literals_(std::move(literals)), level_(crypto::cpu::DetectSimdLevel()) {
  probe_offsets_.assign(literals_.size(), 0);
  for (std::size_t id = 0; id < literals_.size(); ++id) {
    const std::string& lit = literals_[id];
    if (lit.empty()) continue;
    if (lit.size() == 1) {
      const auto b = static_cast<unsigned char>(lit[0]);
      first_byte_[b] = true;
      if (std::find(singles_.begin(), singles_.end(), b) == singles_.end()) {
        singles_.push_back(b);
      }
      continue;
    }
    // Probe at the literal's least-common adjacent byte pair.
    std::size_t best = 0;
    int best_score = 0;
    for (std::size_t k = 0; k + 1 < lit.size(); ++k) {
      const int score = ProbeScore(static_cast<unsigned char>(lit[k]),
                                   static_cast<unsigned char>(lit[k + 1]));
      if (k == 0 || score < best_score) {
        best_score = score;
        best = k;
      }
    }
    probe_offsets_[id] = best;
    const auto b0 = static_cast<unsigned char>(lit[best]);
    const auto b1 = static_cast<unsigned char>(lit[best + 1]);
    first_byte_[b0] = true;
    const bool seen = std::any_of(
        pairs_.begin(), pairs_.end(),
        [&](const BytePair& p) { return p.b0 == b0 && p.b1 == b1; });
    if (!seen) pairs_.push_back({b0, b1});
  }
}

void MultiLiteralPrefilter::VerifyAt(std::string_view text, std::size_t pos,
                                     std::vector<PrefilterHit>& out) const {
  for (std::uint32_t id = 0; id < literals_.size(); ++id) {
    const std::string& lit = literals_[id];
    if (lit.empty()) continue;
    const std::size_t k = probe_offsets_[id];
    if (pos < k) continue;
    const std::size_t start = pos - k;
    if (start + lit.size() > text.size()) continue;
    if (std::memcmp(text.data() + start, lit.data(), lit.size()) == 0) {
      out.push_back({start, id});
    }
  }
}

void MultiLiteralPrefilter::FindAllPortable(
    std::string_view text, std::size_t from,
    std::vector<PrefilterHit>& out) const {
  for (std::size_t pos = from; pos < text.size(); ++pos) {
    const auto b0 = static_cast<unsigned char>(text[pos]);
    if (!first_byte_[b0]) continue;
    bool candidate =
        std::find(singles_.begin(), singles_.end(), b0) != singles_.end();
    if (!candidate && pos + 1 < text.size()) {
      const auto b1 = static_cast<unsigned char>(text[pos + 1]);
      candidate = std::any_of(
          pairs_.begin(), pairs_.end(),
          [&](const BytePair& p) { return p.b0 == b0 && p.b1 == b1; });
    }
    if (candidate) VerifyAt(text, pos, out);
  }
}

#if PINSCOPE_PREFILTER_X86

// Both vector kernels share one shape: load the block starting at i and the
// block starting at i+1, build a candidate byte-mask as the OR over all
// distinct probe pairs of cmpeq(v0, b0) & cmpeq(v1, b1) (plus plain cmpeq
// for single-byte literals), then walk the movemask's set bits in ascending
// position order and confirm with memcmp at each literal's probe-relative
// start. The i+1 load requires i + lanes + 1 <= n; the last < lanes+1 bytes
// fall through to the scalar loop. FindAll sorts afterwards, so kernels only
// need to visit every candidate position exactly once.

void MultiLiteralPrefilter::FindAllSse2(std::string_view text,
                                        std::vector<PrefilterHit>& out) const {
  const auto* s = reinterpret_cast<const unsigned char*>(text.data());
  const std::size_t n = text.size();
  std::size_t i = 0;
  for (; i + 17 <= n; i += 16) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 1));
    __m128i m = _mm_setzero_si128();
    for (const BytePair& p : pairs_) {
      m = _mm_or_si128(
          m, _mm_and_si128(
                 _mm_cmpeq_epi8(v0, _mm_set1_epi8(static_cast<char>(p.b0))),
                 _mm_cmpeq_epi8(v1, _mm_set1_epi8(static_cast<char>(p.b1)))));
    }
    for (const unsigned char b : singles_) {
      m = _mm_or_si128(m,
                       _mm_cmpeq_epi8(v0, _mm_set1_epi8(static_cast<char>(b))));
    }
    unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(m));
    while (mask != 0) {
      const int bit = __builtin_ctz(mask);
      mask &= mask - 1;
      VerifyAt(text, i + static_cast<std::size_t>(bit), out);
    }
  }
  FindAllPortable(text, i, out);
}

__attribute__((target("avx2"))) void MultiLiteralPrefilter::FindAllAvx2(
    std::string_view text, std::vector<PrefilterHit>& out) const {
  const auto* s = reinterpret_cast<const unsigned char*>(text.data());
  const std::size_t n = text.size();
  std::size_t i = 0;
  for (; i + 33 <= n; i += 32) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 1));
    __m256i m = _mm256_setzero_si256();
    for (const BytePair& p : pairs_) {
      m = _mm256_or_si256(
          m,
          _mm256_and_si256(
              _mm256_cmpeq_epi8(v0, _mm256_set1_epi8(static_cast<char>(p.b0))),
              _mm256_cmpeq_epi8(v1,
                                _mm256_set1_epi8(static_cast<char>(p.b1)))));
    }
    for (const unsigned char b : singles_) {
      m = _mm256_or_si256(
          m, _mm256_cmpeq_epi8(v0, _mm256_set1_epi8(static_cast<char>(b))));
    }
    unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(m));
    while (mask != 0) {
      const int bit = __builtin_ctz(mask);
      mask &= mask - 1;
      VerifyAt(text, i + static_cast<std::size_t>(bit), out);
    }
  }
  FindAllPortable(text, i, out);
}

#endif  // PINSCOPE_PREFILTER_X86

void MultiLiteralPrefilter::FindAll(std::string_view text,
                                    std::vector<PrefilterHit>& out) const {
  out.clear();
  if (pairs_.empty() && singles_.empty()) return;
#if PINSCOPE_PREFILTER_X86
  switch (level_) {
    case crypto::cpu::SimdLevel::kAvx2:
      FindAllAvx2(text, out);
      break;
    case crypto::cpu::SimdLevel::kSse2:
      FindAllSse2(text, out);
      break;
    case crypto::cpu::SimdLevel::kPortable:
      FindAllPortable(text, 0, out);
      break;
  }
#else
  FindAllPortable(text, 0, out);
#endif
  // Kernels emit hits in probe-position order; literals with different probe
  // offsets can interleave, so restore the documented (pos, pattern) order.
  std::sort(out.begin(), out.end(),
            [](const PrefilterHit& a, const PrefilterHit& b) {
              return a.pos != b.pos ? a.pos < b.pos : a.pattern < b.pattern;
            });
}

// --- Printable-run classification ---------------------------------------

namespace {

constexpr bool IsPrintable(unsigned char c) { return c >= 0x20 && c <= 0x7e; }

/// Run-walk state shared by all kernels: feed it printable/non-printable
/// transitions in position order, and it emits maximal runs >= min_len.
struct RunWalker {
  std::size_t min_len;
  std::vector<PrintableRun>& out;
  std::size_t run_start = 0;
  bool in_run = false;

  void Open(std::size_t pos) {
    run_start = pos;
    in_run = true;
  }
  void Close(std::size_t pos) {
    if (pos - run_start >= min_len) out.push_back({run_start, pos - run_start});
    in_run = false;
  }
  /// Consumes a bitmask of `width` printable flags for bytes
  /// [base, base + width).
  void Feed(std::uint32_t mask, std::size_t base, unsigned width) {
    unsigned offset = 0;
    while (offset < width) {
      if (!in_run) {
        const std::uint32_t rest = mask >> offset;
        if (rest == 0) return;
        offset += static_cast<unsigned>(__builtin_ctz(rest));
        Open(base + offset);
      } else {
        // Invert within width so trailing bits read as "printable ends".
        const std::uint32_t rest = ~mask >> offset;
        const std::uint32_t valid =
            width - offset >= 32 ? rest
                                 : rest & ((std::uint32_t{1} << (width - offset)) - 1);
        if (valid == 0) return;  // run continues past this block
        offset += static_cast<unsigned>(__builtin_ctz(valid));
        Close(base + offset);
      }
    }
  }
};

void FindRunsScalar(std::string_view data, std::size_t from, RunWalker& walk) {
  for (std::size_t i = from; i < data.size(); ++i) {
    const bool printable = IsPrintable(static_cast<unsigned char>(data[i]));
    if (printable && !walk.in_run) {
      walk.Open(i);
    } else if (!printable && walk.in_run) {
      walk.Close(i);
    }
  }
}

#if PINSCOPE_PREFILTER_X86

/// Printable = c > 0x1f && c < 0x7f; signed compares exclude 0x80..0xff via
/// the lower bound (they are negative), so both bounds are exact.

void FindRunsSse2(std::string_view data, RunWalker& walk) {
  const auto* s = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t n = data.size();
  const __m128i lo = _mm_set1_epi8(0x1f);
  const __m128i hi = _mm_set1_epi8(0x7f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    const __m128i p =
        _mm_and_si128(_mm_cmpgt_epi8(v, lo), _mm_cmpgt_epi8(hi, v));
    const auto mask = static_cast<std::uint32_t>(_mm_movemask_epi8(p));
    if (walk.in_run && mask == 0xffffu) continue;
    if (!walk.in_run && mask == 0) continue;
    walk.Feed(mask, i, 16);
  }
  FindRunsScalar(data, i, walk);
}

__attribute__((target("avx2"))) void FindRunsAvx2(std::string_view data,
                                                  RunWalker& walk) {
  const auto* s = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t n = data.size();
  const __m256i lo = _mm256_set1_epi8(0x1f);
  const __m256i hi = _mm256_set1_epi8(0x7f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i p =
        _mm256_and_si256(_mm256_cmpgt_epi8(v, lo), _mm256_cmpgt_epi8(hi, v));
    const auto mask = static_cast<std::uint32_t>(_mm256_movemask_epi8(p));
    if (walk.in_run && mask == 0xffffffffu) continue;
    if (!walk.in_run && mask == 0) continue;
    walk.Feed(mask, i, 32);
  }
  FindRunsScalar(data, i, walk);
}

#endif  // PINSCOPE_PREFILTER_X86

}  // namespace

void FindPrintableRuns(std::string_view data, std::size_t min_len,
                       crypto::cpu::SimdLevel level,
                       std::vector<PrintableRun>& out) {
  out.clear();
  RunWalker walk{min_len, out};
#if PINSCOPE_PREFILTER_X86
  switch (level) {
    case crypto::cpu::SimdLevel::kAvx2:
      FindRunsAvx2(data, walk);
      break;
    case crypto::cpu::SimdLevel::kSse2:
      FindRunsSse2(data, walk);
      break;
    case crypto::cpu::SimdLevel::kPortable:
      FindRunsScalar(data, 0, walk);
      break;
  }
#else
  FindRunsScalar(data, 0, walk);
#endif
  if (walk.in_run) walk.Close(data.size());
}

}  // namespace pinscope::staticanalysis

// iOS App Transport Security analysis.
//
// Parses Info.plist for NSAppTransportSecurity → NSPinnedDomains (the iOS 14+
// declarative pinning mechanism, §4.1.1) and the entitlements plist for
// associated domains (whose OS-initiated verification traffic §4.5 must
// exclude from pinning attribution).
#pragma once

#include <string>
#include <vector>

#include "appmodel/package.h"
#include "tls/pinning.h"

namespace pinscope::staticanalysis {

/// One NSPinnedDomains entry.
struct AtsPinnedDomainResult {
  std::string domain;
  bool include_subdomains = false;
  std::vector<tls::Pin> pins;  ///< Parsed SPKI-SHA256 identities.
};

/// Result of ATS / entitlements analysis for one (decrypted) IPA tree.
struct AtsAnalysis {
  bool has_info_plist = false;
  std::string bundle_id;
  /// Path of the Info.plist the pinned domains were read from — digest
  /// provenance for the decision journal ("" when none was found).
  std::string info_plist_path;
  std::vector<AtsPinnedDomainResult> pinned_domains;
  std::vector<std::string> associated_domains;  ///< From entitlements.

  /// True if NSPinnedDomains declares any well-formed pin.
  [[nodiscard]] bool PinsViaAts() const { return !pinned_domains.empty(); }
};

/// Analyzes an IPA tree (Info.plist may live under any Payload/<App>.app/).
[[nodiscard]] AtsAnalysis AnalyzeAts(const appmodel::PackageFiles& ipa);

}  // namespace pinscope::staticanalysis

// Third-party code-path attribution (§4.1.4, Table 7).
//
// The scanner records the file path where every certificate/pin was found.
// Paths that recur across many apps (>5 in the paper) identify third-party
// frameworks: "code in the sensibill folder reflects the billing API of the
// Sensibill SDK". We normalize paths to their framework directory, count
// distinct apps per directory, and map directories to the SDK catalog.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "appmodel/platform.h"
#include "staticanalysis/scanner.h"

namespace pinscope::staticanalysis {

/// Evidence collected from one app for attribution.
struct AppEvidence {
  std::string app_id;
  appmodel::Platform platform = appmodel::Platform::kAndroid;
  std::vector<std::string> evidence_paths;  ///< Paths holding certs/pins.
};

/// One attributed framework.
struct FrameworkAttribution {
  std::string framework;         ///< SDK display name (or raw path key).
  std::string path_key;          ///< Normalized code path shared across apps.
  std::size_t app_count = 0;     ///< Distinct apps carrying evidence there.
  bool matched_catalog = false;  ///< Resolved to a known SDK.
};

/// Normalizes an evidence path to a framework-identifying key:
/// smali trees → their package directory; iOS frameworks → framework name;
/// everything else → the containing directory. Generic names (assets,
/// res/raw, config files) normalize to "" and are skipped.
[[nodiscard]] std::string NormalizeEvidencePath(std::string_view path,
                                                appmodel::Platform platform);

/// Aggregates evidence across apps and returns frameworks seen in more than
/// `min_apps` apps, ordered by descending app count (Table 7's ranking).
[[nodiscard]] std::vector<FrameworkAttribution> AttributeFrameworks(
    const std::vector<AppEvidence>& evidence, appmodel::Platform platform,
    std::size_t min_apps = 5);

}  // namespace pinscope::staticanalysis

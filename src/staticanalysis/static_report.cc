#include "staticanalysis/static_report.h"

#include <set>

namespace pinscope::staticanalysis {

bool StaticReport::PotentialPinning() const { return scan.HasPinningEvidence(); }

bool StaticReport::ConfigPinning() const {
  return platform == appmodel::Platform::kAndroid ? nsc.PinsViaNsc()
                                                  : ats.PinsViaAts();
}

std::vector<std::string> StaticReport::EvidencePaths() const {
  std::set<std::string> paths;
  for (const FoundCertificate& c : scan.certificates) paths.insert(c.path);
  for (const FoundPin& p : scan.pins) {
    if (p.parsed.has_value()) paths.insert(p.path);
  }
  return std::vector<std::string>(paths.begin(), paths.end());
}

StaticReport AnalyzeStatically(const appmodel::App& app,
                               const StaticAnalysisOptions& options) {
  StaticReport report;
  report.app_id = app.meta.app_id;
  report.platform = app.meta.platform;

  static const Scanner scanner;  // stateless; the pin regex compiles once

  const obs::Span span = obs::SpanFor(options.observer, "static.scan", "phase",
                                      {{"app", app.meta.app_id}});
  obs::MetricsRegistry* metrics = obs::MetricsOf(options.observer);

  if (app.meta.platform == appmodel::Platform::kAndroid) {
    // Apktool step: our APK trees are stored decoded; scanning is direct.
    report.scan = scanner.Scan(app.package, options.scan_cache, metrics);
    report.nsc = AnalyzeNsc(app.package);
  } else {
    const DecryptResult dec = DecryptIpa(app.package, app.meta.app_id,
                                         options.device, options.decrypt_tool);
    report.decryption_ok = dec.ok;
    // On failure, scan what is readable (plaintext resources) anyway.
    const appmodel::PackageFiles& tree = dec.ok ? dec.files : app.package;
    report.scan = scanner.Scan(tree, options.scan_cache, metrics);
    report.ats = AnalyzeAts(tree);
  }

  // §4.1.3: resolve found pin hashes against the CT log.
  if (options.ct_log != nullptr) {
    std::set<std::string> seen_pins;
    std::set<std::string> seen_fingerprints;
    for (const FoundPin& pin : report.scan.pins) {
      if (!pin.parsed.has_value()) continue;
      if (!seen_pins.insert(pin.pin_string).second) continue;
      ++report.pins_total;
      const auto certs = options.ct_log->FindBySpkiDigest(
          pin.pin_string.substr(pin.pin_string.find('/') + 1));
      if (!certs.empty()) ++report.pins_resolved;
      for (const x509::Certificate& cert : certs) {
        const auto fp = cert.FingerprintSha256();
        const std::string key(fp.begin(), fp.end());
        if (seen_fingerprints.insert(key).second) {
          report.ct_resolved.push_back(cert);
        }
      }
    }
  }

  return report;
}

}  // namespace pinscope::staticanalysis

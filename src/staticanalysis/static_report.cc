#include "staticanalysis/static_report.h"

#include <set>
#include <string_view>
#include <unordered_set>

namespace pinscope::staticanalysis {

bool StaticReport::PotentialPinning() const { return scan.HasPinningEvidence(); }

bool StaticReport::ConfigPinning() const {
  return platform == appmodel::Platform::kAndroid ? nsc.PinsViaNsc()
                                                  : ats.PinsViaAts();
}

std::vector<std::string> StaticReport::EvidencePaths() const {
  std::set<std::string> paths;
  for (const FoundCertificate& c : scan.certificates) paths.insert(c.path);
  for (const FoundPin& p : scan.pins) {
    if (p.parsed.has_value()) paths.insert(p.path);
  }
  return std::vector<std::string>(paths.begin(), paths.end());
}

namespace {

// The scanner's pin-hash pattern, quoted verbatim in static.pin_found events
// so the journal names the rule that fired.
constexpr std::string_view kPinRule = "sha(1|256)/[a-zA-Z0-9+/=]{28,64}";

// Decision events for the static layer, derived from the finished report so
// they are identical with the scan cache on or off (DESIGN.md §12).
void EmitStaticEvents(const StaticReport& report, obs::EventScope& log) {
  if (!report.decryption_ok) {
    log.Emit(obs::Severity::kWarn, "static.decrypt_failed",
             {{"app", report.app_id}});
  }
  for (const FoundPin& pin : report.scan.pins) {
    log.Emit(obs::Severity::kDecision, "static.pin_found",
             {{"path", pin.path},
              {"offset", static_cast<std::uint64_t>(pin.offset)},
              {"rule", kPinRule},
              {"pin", pin.pin_string},
              {"well_formed", pin.parsed.has_value()}});
  }
  for (const FoundCertificate& cert : report.scan.certificates) {
    log.Emit(obs::Severity::kDecision, "static.cert_found",
             {{"path", cert.path},
              {"source", cert.from_pem ? "pem" : "der"},
              {"subject", cert.cert.subject().common_name()}});
  }
  for (const NscDomainResult& d : report.nsc.domains) {
    if (d.pin_strings.empty()) continue;
    std::string digests;
    for (const std::string& p : d.pin_strings) {
      if (!digests.empty()) digests += ',';
      digests += p;
    }
    log.Emit(obs::Severity::kDecision, "nsc.pin_set",
             {{"domain", d.domain},
              {"source", report.nsc.nsc_path},
              {"include_subdomains", d.include_subdomains},
              {"pins", static_cast<std::uint64_t>(d.pin_strings.size())},
              {"well_formed", static_cast<std::uint64_t>(d.parsed_pins.size())},
              {"digests", digests},
              {"expiration", d.pin_expiration},
              {"override_pins", d.override_pins}});
  }
  for (const std::string& domain : report.nsc.MisconfiguredDomains()) {
    log.Emit(obs::Severity::kWarn, "nsc.pins_overridden",
             {{"domain", domain}, {"source", report.nsc.nsc_path}});
  }
  for (const AtsPinnedDomainResult& d : report.ats.pinned_domains) {
    std::string digests;
    for (const tls::Pin& p : d.pins) {
      if (!digests.empty()) digests += ',';
      digests += p.ToPinString();
    }
    log.Emit(obs::Severity::kDecision, "ats.pinned_domain",
             {{"domain", d.domain},
              {"source", report.ats.info_plist_path},
              {"include_subdomains", d.include_subdomains},
              {"pins", static_cast<std::uint64_t>(d.pins.size())},
              {"digests", digests}});
  }
}

}  // namespace

StaticReport AnalyzeStatically(const appmodel::App& app,
                               const StaticAnalysisOptions& options) {
  StaticReport report;
  report.app_id = app.meta.app_id;
  report.platform = app.meta.platform;

  static const Scanner scanner;  // stateless; the pin regex compiles once

  const obs::Span span = obs::SpanFor(options.observer, "static.scan", "phase",
                                      {{"app", app.meta.app_id}});
  obs::MetricsRegistry* metrics = obs::MetricsOf(options.observer);
  obs::EventScope log =
      obs::ScopeFor(options.observer, std::string(PlatformName(app.meta.platform)),
                    app.meta.app_id, "static");

  if (app.meta.platform == appmodel::Platform::kAndroid) {
    // Apktool step: our APK trees are stored decoded; scanning is direct.
    report.scan = scanner.Scan(app.package, options.scan_cache, metrics);
    report.nsc = AnalyzeNsc(app.package);
  } else {
    const DecryptResult dec = DecryptIpa(app.package, app.meta.app_id,
                                         options.device, options.decrypt_tool);
    report.decryption_ok = dec.ok;
    // On failure, scan what is readable (plaintext resources) anyway.
    const appmodel::PackageFiles& tree = dec.ok ? dec.files : app.package;
    report.scan = scanner.Scan(tree, options.scan_cache, metrics);
    report.ats = AnalyzeAts(tree);
  }
  EmitStaticEvents(report, log);

  // §4.1.3: resolve found pin hashes against the CT log.
  if (options.ct_log != nullptr) {
    // Views into report.scan.pins (stable for the loop's lifetime): a
    // pin-dense file would otherwise pay one heap string per dedup insert
    // and another per substr.
    std::unordered_set<std::string_view> seen_pins;
    seen_pins.reserve(report.scan.pins.size());
    std::set<std::string> seen_fingerprints;
    for (const FoundPin& pin : report.scan.pins) {
      if (!pin.parsed.has_value()) continue;
      if (!seen_pins.insert(pin.pin_string).second) continue;
      ++report.pins_total;
      const std::string_view pin_str = pin.pin_string;
      const auto certs =
          options.ct_log->FindBySpkiDigest(pin_str.substr(pin_str.find('/') + 1));
      if (!certs.empty()) ++report.pins_resolved;
      for (const x509::Certificate& cert : certs) {
        const auto fp = cert.FingerprintSha256();
        const std::string key(fp.begin(), fp.end());
        if (seen_fingerprints.insert(key).second) {
          report.ct_resolved.push_back(cert);
        }
      }
    }
    if (report.pins_total > 0) {
      log.Emit(obs::Severity::kInfo, "static.ct_resolution",
               {{"pins_total", static_cast<std::uint64_t>(report.pins_total)},
                {"pins_resolved",
                 static_cast<std::uint64_t>(report.pins_resolved)},
                {"certificates",
                 static_cast<std::uint64_t>(report.ct_resolved.size())}});
    }
  }

  log.Emit(obs::Severity::kDecision, "static.verdict",
           {{"potential_pinning", report.PotentialPinning()},
            {"config_pinning", report.ConfigPinning()},
            {"certificates",
             static_cast<std::uint64_t>(report.scan.certificates.size())},
            {"pins", static_cast<std::uint64_t>(report.scan.pins.size())}});

  return report;
}

}  // namespace pinscope::staticanalysis

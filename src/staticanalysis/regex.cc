#include "staticanalysis/regex.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "util/error.h"

namespace pinscope::staticanalysis {

// --- AST ---------------------------------------------------------------

namespace {

constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

enum class AtomKind { kLiteral, kAny, kClass, kGroup };

}  // namespace

struct Regex::Node {
  // A Node is a group: a list of alternatives, each a sequence of atoms.
  struct Atom {
    AtomKind kind = AtomKind::kLiteral;
    char literal = 0;
    std::bitset<256> cls;  // for kClass
    std::unique_ptr<Node> group;
    std::size_t min = 1;
    std::size_t max = 1;
  };
  using Sequence = std::vector<Atom>;
  std::vector<Sequence> alternatives;
};

// --- Parser ------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view p) : p_(p) {}

  std::unique_ptr<Regex::Node> Parse() {
    auto node = ParseGroupBody();
    if (pos_ != p_.size()) Fail("unexpected ')'");
    return node;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw util::ParseError("regex '" + std::string(p_) + "': " + why);
  }

  bool AtEnd() const { return pos_ >= p_.size(); }
  char Peek() const { return p_[pos_]; }
  char Next() {
    if (AtEnd()) Fail("unexpected end of pattern");
    return p_[pos_++];
  }

  std::unique_ptr<Regex::Node> ParseGroupBody() {
    auto node = std::make_unique<Regex::Node>();
    node->alternatives.emplace_back();
    while (!AtEnd() && Peek() != ')') {
      if (Peek() == '|') {
        ++pos_;
        node->alternatives.emplace_back();
        continue;
      }
      node->alternatives.back().push_back(ParseAtom());
    }
    return node;
  }

  Regex::Node::Atom ParseAtom() {
    Regex::Node::Atom atom;
    const char c = Next();
    switch (c) {
      case '(': {
        atom.kind = AtomKind::kGroup;
        atom.group = ParseGroupBody();
        if (AtEnd() || Next() != ')') Fail("missing ')'");
        break;
      }
      case '[':
        atom.kind = AtomKind::kClass;
        atom.cls = ParseClass();
        break;
      case '.':
        atom.kind = AtomKind::kAny;
        break;
      case '\\':
        atom.kind = AtomKind::kLiteral;
        atom.literal = Next();
        break;
      case '*':
      case '+':
      case '?':
      case '{':
        Fail("quantifier with nothing to repeat");
      default:
        atom.kind = AtomKind::kLiteral;
        atom.literal = c;
    }
    ParseQuantifier(atom);
    return atom;
  }

  std::bitset<256> ParseClass() {
    std::bitset<256> cls;
    bool negated = false;
    if (!AtEnd() && Peek() == '^') {
      negated = true;
      ++pos_;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) Fail("missing ']'");
      char c = Next();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') c = Next();
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < p_.size() && p_[pos_ + 1] != ']') {
        ++pos_;  // consume '-'
        char hi = Next();
        if (hi == '\\') hi = Next();
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          Fail("inverted class range");
        }
        for (int v = static_cast<unsigned char>(c); v <= static_cast<unsigned char>(hi);
             ++v) {
          cls.set(static_cast<std::size_t>(v));
        }
      } else {
        cls.set(static_cast<unsigned char>(c));
      }
    }
    if (negated) cls.flip();
    return cls;
  }

  void ParseQuantifier(Regex::Node::Atom& atom) {
    if (AtEnd()) return;
    switch (Peek()) {
      case '*':
        ++pos_;
        atom.min = 0;
        atom.max = kUnbounded;
        return;
      case '+':
        ++pos_;
        atom.min = 1;
        atom.max = kUnbounded;
        return;
      case '?':
        ++pos_;
        atom.min = 0;
        atom.max = 1;
        return;
      case '{': {
        ++pos_;
        atom.min = ParseNumber();
        if (Peek() == ',') {
          ++pos_;
          atom.max = Peek() == '}' ? kUnbounded : ParseNumber();
        } else {
          atom.max = atom.min;
        }
        if (Next() != '}') Fail("missing '}'");
        if (atom.max < atom.min) Fail("quantifier max < min");
        return;
      }
      default:
        return;
    }
  }

  std::size_t ParseNumber() {
    if (AtEnd() || Peek() < '0' || Peek() > '9') Fail("expected number");
    std::size_t n = 0;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      n = n * 10 + static_cast<std::size_t>(Next() - '0');
      if (n > 100'000) Fail("quantifier too large");
    }
    return n;
  }

  std::string_view p_;
  std::size_t pos_ = 0;
};

// --- Matcher -----------------------------------------------------------

// Backtracking matcher. The continuation is invoked with the subject position
// after a successful partial match; returning true commits the parse. The
// continuation is type-erased: the AST nests at run time, so a templated
// continuation would instantiate without bound.
class Matcher {
 public:
  using Cont = std::function<bool(std::size_t)>;

  explicit Matcher(std::string_view text) : text_(text) {}

  // Longest match of `node` starting at `pos`; npos if none.
  std::size_t LongestMatch(const Regex::Node& node, std::size_t pos) {
    best_ = std::string_view::npos;
    MatchNode(node, pos, [this](std::size_t end) {
      if (best_ == std::string_view::npos || end > best_) best_ = end;
      return false;  // keep exploring for a longer match
    });
    return best_;
  }

 private:
  bool MatchNode(const Regex::Node& node, std::size_t pos, const Cont& cont) {
    for (const auto& alt : node.alternatives) {
      if (MatchSeq(alt, 0, pos, cont)) return true;
    }
    return false;
  }

  bool MatchSeq(const Regex::Node::Sequence& seq, std::size_t idx, std::size_t pos,
                const Cont& cont) {
    if (idx == seq.size()) return cont(pos);
    return MatchAtomRep(seq, idx, seq[idx], 0, pos, cont);
  }

  // Matches `count` occurrences so far of `atom`, then either more (greedy)
  // or the rest of the sequence.
  bool MatchAtomRep(const Regex::Node::Sequence& seq, std::size_t idx,
                    const Regex::Node::Atom& atom, std::size_t count,
                    std::size_t pos, const Cont& cont) {
    // Greedy: try one more repetition first (if allowed).
    if (count < atom.max) {
      const bool matched = MatchSingle(atom, pos, [&](std::size_t next) {
        return MatchAtomRep(seq, idx, atom, count + 1, next, cont);
      });
      if (matched) return true;
    }
    if (count >= atom.min) {
      return MatchSeq(seq, idx + 1, pos, cont);
    }
    return false;
  }

  bool MatchSingle(const Regex::Node::Atom& atom, std::size_t pos, const Cont& cont) {
    switch (atom.kind) {
      case AtomKind::kLiteral:
        if (pos < text_.size() && text_[pos] == atom.literal) return cont(pos + 1);
        return false;
      case AtomKind::kAny:
        if (pos < text_.size()) return cont(pos + 1);
        return false;
      case AtomKind::kClass:
        if (pos < text_.size() &&
            atom.cls.test(static_cast<unsigned char>(text_[pos]))) {
          return cont(pos + 1);
        }
        return false;
      case AtomKind::kGroup:
        return MatchNode(*atom.group, pos, cont);
    }
    return false;
  }

  std::string_view text_;
  std::size_t best_ = std::string_view::npos;
};

}  // namespace

namespace {

// Mandatory literal prefix of a pattern: the leading run of single-shot
// literal atoms in a single-alternative root.
std::string ComputePrefix(const Regex::Node& root) {
  std::string prefix;
  if (root.alternatives.size() != 1) return prefix;
  for (const auto& atom : root.alternatives.front()) {
    if (atom.kind != AtomKind::kLiteral || atom.min != 1 || atom.max != 1) break;
    prefix.push_back(atom.literal);
  }
  return prefix;
}

// --- Required-literal anchor extraction --------------------------------
//
// Walks the AST collecting every literal substring a match is guaranteed to
// contain, with the (possibly unbounded) window of offsets it can occupy
// relative to the match start. The best candidate is memoized per pattern
// and drives the Search()/FindAll() prefilter. The analysis is
// conservative: returning no anchor is always sound, and every reported
// (literal, window) pair must hold for every possible match.

std::size_t SatAdd(std::size_t a, std::size_t b) {
  if (a == kUnbounded || b == kUnbounded) return kUnbounded;
  return a > kUnbounded - b ? kUnbounded : a + b;
}

std::size_t SatMul(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnbounded || b == kUnbounded) return kUnbounded;
  return a > kUnbounded / b ? kUnbounded : a * b;
}

struct LenRange {
  std::size_t min = 0;
  std::size_t max = 0;  // kUnbounded when a quantifier is open-ended
};

LenRange NodeLen(const Regex::Node& node);

LenRange AtomLen(const Regex::Node::Atom& atom) {
  LenRange base{1, 1};
  if (atom.kind == AtomKind::kGroup) base = NodeLen(*atom.group);
  return {SatMul(atom.min, base.min), SatMul(atom.max, base.max)};
}

LenRange NodeLen(const Regex::Node& node) {
  LenRange out{kUnbounded, 0};
  for (const auto& alt : node.alternatives) {
    LenRange seq{0, 0};
    for (const auto& atom : alt) {
      const LenRange len = AtomLen(atom);
      seq.min = SatAdd(seq.min, len.min);
      seq.max = SatAdd(seq.max, len.max);
    }
    out.min = std::min(out.min, seq.min);
    out.max = std::max(out.max, seq.max);
  }
  return out;
}

struct Candidate {
  std::string literal;
  std::size_t min_offset = 0;
  std::size_t max_offset = 0;
};

std::vector<Candidate> CollectNode(const Regex::Node& node);

// Mandatory literals of one alternative. Runs accumulate over consecutive
// mandatory literal atoms; an exact quantifier {n} contributes n adjacent
// copies (capped), a variable one contributes its guaranteed minimum and
// then breaks the run (the following atom is no longer at a fixed distance).
void CollectSeq(const Regex::Node::Sequence& seq, std::vector<Candidate>& out) {
  constexpr std::size_t kMaxLiteralRepeat = 64;
  std::size_t min_off = 0;
  std::size_t max_off = 0;
  Candidate run;
  bool in_run = false;
  const auto flush = [&] {
    if (in_run) out.push_back(run);
    in_run = false;
  };
  for (const auto& atom : seq) {
    if (atom.kind == AtomKind::kLiteral && atom.min >= 1) {
      if (!in_run) {
        run = {"", min_off, max_off};
        in_run = true;
      }
      const std::size_t copies = std::min(atom.min, kMaxLiteralRepeat);
      run.literal.append(copies, atom.literal);
      if (atom.max != atom.min || atom.min > kMaxLiteralRepeat) flush();
    } else {
      flush();
      if (atom.kind == AtomKind::kGroup && atom.min >= 1) {
        // A mandatory group's first repetition must contain each of the
        // group's own anchors, shifted by what precedes the group.
        for (Candidate& c : CollectNode(*atom.group)) {
          out.push_back({std::move(c.literal), SatAdd(min_off, c.min_offset),
                         SatAdd(max_off, c.max_offset)});
        }
      }
    }
    const LenRange len = AtomLen(atom);
    min_off = SatAdd(min_off, len.min);
    max_off = SatAdd(max_off, len.max);
  }
  flush();
}

// Mandatory literals of a node. For alternations, a literal qualifies only
// if *every* alternative guarantees it (as a substring of one of its own
// mandatory literals); the window is the union over alternatives. Exact
// equality is not required — "foo|food" anchors on "foo" — but maximal
// common substrings are not synthesized ("food|foot" yields no anchor).
std::vector<Candidate> CollectNode(const Regex::Node& node) {
  std::vector<std::vector<Candidate>> lists;
  lists.reserve(node.alternatives.size());
  for (const auto& alt : node.alternatives) {
    std::vector<Candidate> list;
    CollectSeq(alt, list);
    if (list.empty()) return {};  // this alternative guarantees no literal
    lists.push_back(std::move(list));
  }
  if (lists.size() == 1) return std::move(lists.front());

  std::vector<Candidate> out;
  for (const auto& list : lists) {
    for (const Candidate& seed : list) {
      bool already = false;
      for (const Candidate& o : out) already = already || o.literal == seed.literal;
      if (already) continue;
      Candidate merged{seed.literal, kUnbounded, 0};
      bool common = true;
      for (const auto& other : lists) {
        bool found = false;
        for (const Candidate& c : other) {
          const std::size_t pos = c.literal.find(seed.literal);
          if (pos == std::string::npos) continue;
          merged.min_offset = std::min(merged.min_offset, SatAdd(c.min_offset, pos));
          merged.max_offset = std::max(merged.max_offset, SatAdd(c.max_offset, pos));
          found = true;
          break;
        }
        if (!found) {
          common = false;
          break;
        }
      }
      if (common) out.push_back(std::move(merged));
    }
  }
  return out;
}

// Best anchor: longest literal; ties prefer a bounded window, then a
// tighter one, then lexicographic order (a deterministic compile).
LiteralAnchor ComputeAnchor(const Regex::Node& root) {
  LiteralAnchor best;
  for (const Candidate& c : CollectNode(root)) {
    const LiteralAnchor cand{c.literal, c.min_offset, c.max_offset};
    if (best.literal.empty()) {
      best = cand;
      continue;
    }
    if (cand.literal.size() != best.literal.size()) {
      if (cand.literal.size() > best.literal.size()) best = cand;
      continue;
    }
    if (cand.bounded() != best.bounded()) {
      if (cand.bounded()) best = cand;
      continue;
    }
    if (cand.max_offset != best.max_offset) {
      if (cand.max_offset < best.max_offset) best = cand;
      continue;
    }
    if (cand.literal < best.literal) best = cand;
  }
  return best;
}

}  // namespace

// --- Public API ---------------------------------------------------------

Regex::Regex(std::string_view pattern)
    : pattern_(pattern),
      root_(Parser(pattern).Parse()),
      prefix_(ComputePrefix(*root_)),
      anchor_(ComputeAnchor(*root_)) {}

Regex::Regex(Regex&&) noexcept = default;
Regex& Regex::operator=(Regex&&) noexcept = default;
Regex::~Regex() = default;

bool Regex::MatchAt(std::string_view text, std::size_t pos,
                    std::size_t* match_len) const {
  Matcher m(text);
  const std::size_t end = m.LongestMatch(*root_, pos);
  if (end == std::string_view::npos) return false;
  if (match_len != nullptr) *match_len = end - pos;
  return true;
}

namespace {

// Prefilter state shared by Search()/FindAll(): tracks the next occurrence
// of the anchor literal so each subject byte is searched at most once.
// Advance(pos) either confirms `pos` could start a match, fast-forwards
// `pos` past positions the anchor rules out, or reports that no further
// match is possible anywhere in the subject.
class AnchorSweep {
 public:
  AnchorSweep(const LiteralAnchor& anchor, std::string_view text)
      : anchor_(anchor), text_(text) {}

  // Returns false when the anchor proves no match can start at or after
  // `pos`; otherwise leaves `pos` at the earliest still-possible start.
  bool Advance(std::size_t& pos) {
    if (anchor_.literal.empty()) return true;
    // A match at `pos` needs the literal at some q >= pos + min_offset.
    const std::size_t need = SatAdd(pos, anchor_.min_offset);
    if (!valid_ || lit_at_ < need) {
      lit_at_ = text_.find(anchor_.literal, need);
      valid_ = true;
      if (lit_at_ == std::string_view::npos) return false;
    }
    // ...and at most max_offset past the start: starts before
    // lit_at_ - max_offset cannot reach the earliest occurrence.
    if (anchor_.bounded()) {
      const std::size_t earliest =
          lit_at_ > anchor_.max_offset ? lit_at_ - anchor_.max_offset : 0;
      if (pos < earliest) pos = earliest;
    }
    return true;
  }

 private:
  const LiteralAnchor& anchor_;
  std::string_view text_;
  std::size_t lit_at_ = 0;
  bool valid_ = false;
};

}  // namespace

bool Regex::Search(std::string_view text) const {
  AnchorSweep sweep(anchor_, text);
  std::size_t pos = 0;
  while (pos <= text.size()) {
    if (!sweep.Advance(pos)) return false;
    if (MatchAt(text, pos)) return true;
    ++pos;
  }
  return false;
}

std::vector<RegexMatch> Regex::FindAll(std::string_view text) const {
  std::vector<RegexMatch> out;
  AnchorSweep sweep(anchor_, text);
  std::size_t pos = 0;
  while (pos <= text.size()) {
    if (!sweep.Advance(pos)) return out;
    std::size_t len = 0;
    if (MatchAt(text, pos, &len)) {
      out.push_back({pos, std::string(text.substr(pos, len))});
      pos += len == 0 ? 1 : len;
    } else {
      ++pos;
    }
  }
  return out;
}

}  // namespace pinscope::staticanalysis

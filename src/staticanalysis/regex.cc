#include "staticanalysis/regex.h"

#include <functional>
#include <limits>

#include "util/error.h"

namespace pinscope::staticanalysis {

// --- AST ---------------------------------------------------------------

namespace {

constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

enum class AtomKind { kLiteral, kAny, kClass, kGroup };

}  // namespace

struct Regex::Node {
  // A Node is a group: a list of alternatives, each a sequence of atoms.
  struct Atom {
    AtomKind kind = AtomKind::kLiteral;
    char literal = 0;
    std::bitset<256> cls;  // for kClass
    std::unique_ptr<Node> group;
    std::size_t min = 1;
    std::size_t max = 1;
  };
  using Sequence = std::vector<Atom>;
  std::vector<Sequence> alternatives;
};

// --- Parser ------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view p) : p_(p) {}

  std::unique_ptr<Regex::Node> Parse() {
    auto node = ParseGroupBody();
    if (pos_ != p_.size()) Fail("unexpected ')'");
    return node;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw util::ParseError("regex '" + std::string(p_) + "': " + why);
  }

  bool AtEnd() const { return pos_ >= p_.size(); }
  char Peek() const { return p_[pos_]; }
  char Next() {
    if (AtEnd()) Fail("unexpected end of pattern");
    return p_[pos_++];
  }

  std::unique_ptr<Regex::Node> ParseGroupBody() {
    auto node = std::make_unique<Regex::Node>();
    node->alternatives.emplace_back();
    while (!AtEnd() && Peek() != ')') {
      if (Peek() == '|') {
        ++pos_;
        node->alternatives.emplace_back();
        continue;
      }
      node->alternatives.back().push_back(ParseAtom());
    }
    return node;
  }

  Regex::Node::Atom ParseAtom() {
    Regex::Node::Atom atom;
    const char c = Next();
    switch (c) {
      case '(': {
        atom.kind = AtomKind::kGroup;
        atom.group = ParseGroupBody();
        if (AtEnd() || Next() != ')') Fail("missing ')'");
        break;
      }
      case '[':
        atom.kind = AtomKind::kClass;
        atom.cls = ParseClass();
        break;
      case '.':
        atom.kind = AtomKind::kAny;
        break;
      case '\\':
        atom.kind = AtomKind::kLiteral;
        atom.literal = Next();
        break;
      case '*':
      case '+':
      case '?':
      case '{':
        Fail("quantifier with nothing to repeat");
      default:
        atom.kind = AtomKind::kLiteral;
        atom.literal = c;
    }
    ParseQuantifier(atom);
    return atom;
  }

  std::bitset<256> ParseClass() {
    std::bitset<256> cls;
    bool negated = false;
    if (!AtEnd() && Peek() == '^') {
      negated = true;
      ++pos_;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) Fail("missing ']'");
      char c = Next();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') c = Next();
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < p_.size() && p_[pos_ + 1] != ']') {
        ++pos_;  // consume '-'
        char hi = Next();
        if (hi == '\\') hi = Next();
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          Fail("inverted class range");
        }
        for (int v = static_cast<unsigned char>(c); v <= static_cast<unsigned char>(hi);
             ++v) {
          cls.set(static_cast<std::size_t>(v));
        }
      } else {
        cls.set(static_cast<unsigned char>(c));
      }
    }
    if (negated) cls.flip();
    return cls;
  }

  void ParseQuantifier(Regex::Node::Atom& atom) {
    if (AtEnd()) return;
    switch (Peek()) {
      case '*':
        ++pos_;
        atom.min = 0;
        atom.max = kUnbounded;
        return;
      case '+':
        ++pos_;
        atom.min = 1;
        atom.max = kUnbounded;
        return;
      case '?':
        ++pos_;
        atom.min = 0;
        atom.max = 1;
        return;
      case '{': {
        ++pos_;
        atom.min = ParseNumber();
        if (Peek() == ',') {
          ++pos_;
          atom.max = Peek() == '}' ? kUnbounded : ParseNumber();
        } else {
          atom.max = atom.min;
        }
        if (Next() != '}') Fail("missing '}'");
        if (atom.max < atom.min) Fail("quantifier max < min");
        return;
      }
      default:
        return;
    }
  }

  std::size_t ParseNumber() {
    if (AtEnd() || Peek() < '0' || Peek() > '9') Fail("expected number");
    std::size_t n = 0;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      n = n * 10 + static_cast<std::size_t>(Next() - '0');
      if (n > 100'000) Fail("quantifier too large");
    }
    return n;
  }

  std::string_view p_;
  std::size_t pos_ = 0;
};

// --- Matcher -----------------------------------------------------------

// Backtracking matcher. The continuation is invoked with the subject position
// after a successful partial match; returning true commits the parse. The
// continuation is type-erased: the AST nests at run time, so a templated
// continuation would instantiate without bound.
class Matcher {
 public:
  using Cont = std::function<bool(std::size_t)>;

  explicit Matcher(std::string_view text) : text_(text) {}

  // Longest match of `node` starting at `pos`; npos if none.
  std::size_t LongestMatch(const Regex::Node& node, std::size_t pos) {
    best_ = std::string_view::npos;
    MatchNode(node, pos, [this](std::size_t end) {
      if (best_ == std::string_view::npos || end > best_) best_ = end;
      return false;  // keep exploring for a longer match
    });
    return best_;
  }

 private:
  bool MatchNode(const Regex::Node& node, std::size_t pos, const Cont& cont) {
    for (const auto& alt : node.alternatives) {
      if (MatchSeq(alt, 0, pos, cont)) return true;
    }
    return false;
  }

  bool MatchSeq(const Regex::Node::Sequence& seq, std::size_t idx, std::size_t pos,
                const Cont& cont) {
    if (idx == seq.size()) return cont(pos);
    return MatchAtomRep(seq, idx, seq[idx], 0, pos, cont);
  }

  // Matches `count` occurrences so far of `atom`, then either more (greedy)
  // or the rest of the sequence.
  bool MatchAtomRep(const Regex::Node::Sequence& seq, std::size_t idx,
                    const Regex::Node::Atom& atom, std::size_t count,
                    std::size_t pos, const Cont& cont) {
    // Greedy: try one more repetition first (if allowed).
    if (count < atom.max) {
      const bool matched = MatchSingle(atom, pos, [&](std::size_t next) {
        return MatchAtomRep(seq, idx, atom, count + 1, next, cont);
      });
      if (matched) return true;
    }
    if (count >= atom.min) {
      return MatchSeq(seq, idx + 1, pos, cont);
    }
    return false;
  }

  bool MatchSingle(const Regex::Node::Atom& atom, std::size_t pos, const Cont& cont) {
    switch (atom.kind) {
      case AtomKind::kLiteral:
        if (pos < text_.size() && text_[pos] == atom.literal) return cont(pos + 1);
        return false;
      case AtomKind::kAny:
        if (pos < text_.size()) return cont(pos + 1);
        return false;
      case AtomKind::kClass:
        if (pos < text_.size() &&
            atom.cls.test(static_cast<unsigned char>(text_[pos]))) {
          return cont(pos + 1);
        }
        return false;
      case AtomKind::kGroup:
        return MatchNode(*atom.group, pos, cont);
    }
    return false;
  }

  std::string_view text_;
  std::size_t best_ = std::string_view::npos;
};

}  // namespace

namespace {

// Mandatory literal prefix of a pattern: the leading run of single-shot
// literal atoms in a single-alternative root.
std::string ComputePrefix(const Regex::Node& root) {
  std::string prefix;
  if (root.alternatives.size() != 1) return prefix;
  for (const auto& atom : root.alternatives.front()) {
    if (atom.kind != AtomKind::kLiteral || atom.min != 1 || atom.max != 1) break;
    prefix.push_back(atom.literal);
  }
  return prefix;
}

}  // namespace

// --- Public API ---------------------------------------------------------

Regex::Regex(std::string_view pattern)
    : pattern_(pattern), root_(Parser(pattern).Parse()), prefix_(ComputePrefix(*root_)) {}

Regex::Regex(Regex&&) noexcept = default;
Regex& Regex::operator=(Regex&&) noexcept = default;
Regex::~Regex() = default;

bool Regex::MatchAt(std::string_view text, std::size_t pos,
                    std::size_t* match_len) const {
  Matcher m(text);
  const std::size_t end = m.LongestMatch(*root_, pos);
  if (end == std::string_view::npos) return false;
  if (match_len != nullptr) *match_len = end - pos;
  return true;
}

bool Regex::Search(std::string_view text) const {
  for (std::size_t pos = 0; pos <= text.size(); ++pos) {
    if (!prefix_.empty()) {
      pos = text.find(prefix_, pos);
      if (pos == std::string_view::npos) return false;
    }
    if (MatchAt(text, pos)) return true;
  }
  return false;
}

std::vector<RegexMatch> Regex::FindAll(std::string_view text) const {
  std::vector<RegexMatch> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    if (!prefix_.empty()) {
      pos = text.find(prefix_, pos);
      if (pos == std::string_view::npos) return out;
    }
    std::size_t len = 0;
    if (MatchAt(text, pos, &len)) {
      out.push_back({pos, std::string(text.substr(pos, len))});
      pos += len == 0 ? 1 : len;
    } else {
      ++pos;
    }
  }
  return out;
}

}  // namespace pinscope::staticanalysis

#include "staticanalysis/attribution.h"

#include <algorithm>
#include <set>

#include "appmodel/sdk_catalog.h"
#include "util/strings.h"

namespace pinscope::staticanalysis {

std::string NormalizeEvidencePath(std::string_view path,
                                  appmodel::Platform platform) {
  if (platform == appmodel::Platform::kAndroid) {
    if (util::StartsWith(path, "smali/")) {
      const std::string_view rest = path.substr(6);
      // Prefer an exact catalog package prefix.
      for (const appmodel::SdkInfo& sdk : appmodel::SdkCatalog()) {
        if (!sdk.android_code_path.empty() &&
            util::StartsWith(rest, sdk.android_code_path)) {
          return sdk.android_code_path;
        }
      }
      // Fallback: the first two package components.
      const std::vector<std::string> parts = util::Split(rest, '/');
      if (parts.size() >= 2) return parts[0] + "/" + parts[1];
      return std::string(rest);
    }
    if (util::StartsWith(path, "lib/")) {
      const std::size_t last = path.rfind('/');
      return std::string(path.substr(last + 1));  // libname.so
    }
    return "";  // assets/, res/raw/, generic config files
  }

  // iOS: framework binaries and resources.
  const std::size_t fw = path.find("/Frameworks/");
  if (fw != std::string_view::npos) {
    const std::string_view rest = path.substr(fw + 12);
    const std::size_t end = rest.find(".framework");
    if (end != std::string_view::npos) {
      return "Frameworks/" + std::string(rest.substr(0, end)) + ".framework";
    }
  }
  return "";  // main binary, bundle-root certificates: generic
}

namespace {

std::optional<std::string> CatalogNameForPathKey(const std::string& key,
                                                 appmodel::Platform platform) {
  for (const appmodel::SdkInfo& sdk : appmodel::SdkCatalog()) {
    if (platform == appmodel::Platform::kAndroid) {
      if (sdk.android_code_path == key) return sdk.name;
    } else {
      if ("Frameworks/" + sdk.ios_framework + ".framework" == key) return sdk.name;
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<FrameworkAttribution> AttributeFrameworks(
    const std::vector<AppEvidence>& evidence, appmodel::Platform platform,
    std::size_t min_apps) {
  // Distinct apps per normalized path key.
  std::map<std::string, std::set<std::string>> apps_by_key;
  for (const AppEvidence& app : evidence) {
    if (app.platform != platform) continue;
    for (const std::string& path : app.evidence_paths) {
      const std::string key = NormalizeEvidencePath(path, platform);
      if (!key.empty()) apps_by_key[key].insert(app.app_id);
    }
  }

  std::vector<FrameworkAttribution> out;
  for (const auto& [key, apps] : apps_by_key) {
    if (apps.size() <= min_apps) continue;
    FrameworkAttribution fa;
    fa.path_key = key;
    fa.app_count = apps.size();
    if (const auto name = CatalogNameForPathKey(key, platform)) {
      fa.framework = *name;
      fa.matched_catalog = true;
    } else {
      fa.framework = key;
    }
    out.push_back(std::move(fa));
  }

  std::sort(out.begin(), out.end(),
            [](const FrameworkAttribution& a, const FrameworkAttribution& b) {
              if (a.app_count != b.app_count) return a.app_count > b.app_count;
              return a.framework < b.framework;
            });
  return out;
}

}  // namespace pinscope::staticanalysis

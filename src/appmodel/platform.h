// Platforms and app metadata.
#pragma once

#include <string>
#include <string_view>

namespace pinscope::appmodel {

/// Mobile platform an app build targets.
enum class Platform { kAndroid, kIos };

/// Human-readable platform name.
[[nodiscard]] constexpr std::string_view PlatformName(Platform p) {
  return p == Platform::kAndroid ? "android" : "ios";
}

/// Store-level metadata for one app build (one platform's version of an app).
struct AppMetadata {
  std::string app_id;        ///< Package name / bundle identifier.
  std::string display_name;  ///< Store listing name.
  Platform platform = Platform::kAndroid;
  std::string category;      ///< Store category ("Finance", "Games", ...).
  std::string developer_org; ///< Organization identifier (party attribution).
  int popularity_rank = 0;   ///< 1 = most popular in its store listing.
  bool free = true;          ///< Paid apps are excluded from the datasets.
};

}  // namespace pinscope::appmodel

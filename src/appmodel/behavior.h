// Runtime behaviour specification of an app.
//
// Where the package (static artifact) describes what ships on disk, the
// behaviour describes what the app *does* when launched: which destinations
// it contacts, which of those it pins and with what pins, which TLS stack
// carries each connection, what it transmits, and how noisy it is. The
// corpus generator keeps package and behaviour consistent — or deliberately
// inconsistent, to model shipped-but-dormant pinning code (the static ≫
// dynamic gap in Table 3).
#pragma once

#include <string>
#include <vector>

#include "appmodel/platform.h"
#include "tls/cipher_suites.h"
#include "tls/handshake.h"
#include "tls/pinning.h"

namespace pinscope::appmodel {

/// One destination an app contacts at launch.
struct DestinationBehavior {
  std::string hostname;

  /// The app enforces pins on this destination at run time.
  bool pinned = false;
  /// Pins enforced when `pinned` (must match the genuine server chain).
  std::vector<tls::Pin> pins;

  /// TLS implementation carrying these connections; decides hookability for
  /// pin circumvention (§4.3).
  tls::TlsStack stack = tls::TlsStack::kAndroidPlatform;

  /// The app trusts its own bundled root for this destination instead of the
  /// OS store (custom-PKI deployments, §5.3.1). Such connections fail under
  /// interception exactly like pinned ones.
  bool custom_trust = false;

  /// Cipher suites this connection's ClientHello advertises.
  std::vector<tls::CipherSuiteId> cipher_offer = tls::ModernCipherOffer();

  /// Request body template; may carry {{pii}} placeholders. Empty template
  /// still sends a minimal request (the connection is "used").
  std::string payload_template = "GET / HTTP/1.1";

  /// Extra connections to the same host that are opened but never used —
  /// the §4.2.2 confounder ("apps will create redundant connections").
  int redundant_connections = 0;

  /// If true, the connection is attempted but carries no data even without
  /// interception (dead endpoint / feature not triggered in 30s).
  bool never_used = false;

  /// Destination only contacted when the app is actively exercised (login
  /// flows, deep screens). The paper's automated random interactions produced
  /// "no significant change in the number of domains contacted" (§4.2.1), and
  /// §5.6 lists uninteracted code paths as a source of missed pinning.
  bool requires_interaction = false;

  /// SDK that owns this connection, empty for first-party app code. Used for
  /// attribution ground truth in tests.
  std::string owning_sdk;
};

/// Complete runtime behaviour of one app build.
struct AppBehavior {
  std::vector<DestinationBehavior> destinations;

  /// Whether the app's validators check hostnames/expiry (§5.3.4: the paper
  /// looks for pinning apps that subvert normal validation; our corpus keeps
  /// these true, and tests exercise the false paths explicitly).
  bool validates_hostname = true;
  bool validates_expiry = true;

  /// iOS: associated domains from entitlements. The OS contacts these at
  /// install time over connections that ignore user-installed CAs (§4.5).
  std::vector<std::string> associated_domains;

  /// All destinations with `pinned` set (runtime ground truth).
  [[nodiscard]] std::vector<std::string> PinnedHostnames() const;

  /// True if any destination is pinned at run time.
  [[nodiscard]] bool PinsAtRuntime() const;

  /// The aggregate pin policy the app enforces (union over destinations).
  [[nodiscard]] tls::PinPolicy BuildPinPolicy() const;
};

}  // namespace pinscope::appmodel

// Third-party SDK catalog.
//
// §5.3.5 finds that social-network, payment-processing, and app-analytics
// frameworks are the dominant source of third-party pinning code (Table 7).
// The catalog models those frameworks: each entry knows where its code lives
// inside packages on each platform (the attribution signal), which endpoints
// it contacts, whether it ships certificate material, and whether it enforces
// pinning at run time.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "appmodel/platform.h"
#include "tls/handshake.h"

namespace pinscope::appmodel {

/// What a bundled SDK contributes to an app.
struct SdkInfo {
  std::string name;               ///< Display name ("Twitter", "Stripe", ...).
  std::string android_code_path;  ///< smali directory, e.g. "com/twitter/sdk".
  std::string ios_framework;      ///< Framework name, e.g. "TwitterKit".
  std::vector<std::string> domains;  ///< Endpoints the SDK contacts.
  std::string organization;       ///< Operator of those endpoints.
  bool available_android = true;
  bool available_ios = true;
  /// SDK ships certificate/pin material in its code (static-analysis signal).
  bool embeds_certificate = false;
  /// SDK enforces pinning at run time on each platform.
  bool pins_android = false;
  bool pins_ios = false;
  /// TLS stack the SDK uses per platform.
  tls::TlsStack stack_android = tls::TlsStack::kOkHttp;
  tls::TlsStack stack_ios = tls::TlsStack::kNsUrlSession;
  /// Relative placement weight per platform (drives Table 7's ordering).
  double weight_android = 1.0;
  double weight_ios = 1.0;
};

/// The full SDK catalog (fixed, deterministic order).
[[nodiscard]] const std::vector<SdkInfo>& SdkCatalog();

/// Finds an SDK by name.
[[nodiscard]] std::optional<SdkInfo> FindSdk(std::string_view name);

/// Catalog entries available on `platform` that embed certificate material.
[[nodiscard]] std::vector<SdkInfo> SdksEmbeddingCertificates(Platform platform);

}  // namespace pinscope::appmodel

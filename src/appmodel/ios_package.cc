#include "appmodel/ios_package.h"

#include <cctype>

#include "crypto/sha256.h"
#include "util/error.h"
#include "x509/pem.h"

namespace pinscope::appmodel {
namespace {

// Derives a CamelCase executable name from the display name.
std::string ExecutableName(const AppMetadata& meta) {
  std::string out;
  bool upper_next = true;
  for (char c : meta.display_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(upper_next ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                               : c);
      upper_next = false;
    } else {
      upper_next = true;
    }
  }
  return out.empty() ? std::string("App") : out;
}

util::Bytes Keystream(std::string_view bundle_id, std::size_t len) {
  util::Bytes stream;
  stream.reserve(len + 32);
  std::uint64_t counter = 0;
  while (stream.size() < len) {
    const auto block = crypto::Sha256("fairplay|" + std::string(bundle_id) + "|" +
                                      std::to_string(counter++));
    stream.insert(stream.end(), block.begin(), block.end());
  }
  stream.resize(len);
  return stream;
}

}  // namespace

util::Bytes FairPlayEncrypt(const util::Bytes& plain, std::string_view bundle_id) {
  util::Bytes out = util::ToBytes(kFairPlayMagic);
  const util::Bytes stream = Keystream(bundle_id, plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    out.push_back(static_cast<std::uint8_t>(plain[i] ^ stream[i]));
  }
  return out;
}

bool IsFairPlayEncrypted(const util::Bytes& data) {
  if (data.size() < kFairPlayMagic.size()) return false;
  return std::string_view(reinterpret_cast<const char*>(data.data()),
                          kFairPlayMagic.size()) == kFairPlayMagic;
}

util::Bytes FairPlayDecrypt(const util::Bytes& cipher, std::string_view bundle_id) {
  if (!IsFairPlayEncrypted(cipher)) return {};
  const std::size_t body = cipher.size() - kFairPlayMagic.size();
  const util::Bytes stream = Keystream(bundle_id, body);
  util::Bytes out;
  out.reserve(body);
  for (std::size_t i = 0; i < body; ++i) {
    out.push_back(static_cast<std::uint8_t>(cipher[kFairPlayMagic.size() + i] ^ stream[i]));
  }
  return out;
}

IosPackageBuilder::IosPackageBuilder(const AppMetadata& meta) : meta_(meta) {
  if (meta.platform != Platform::kIos) {
    throw util::Error("IosPackageBuilder requires an iOS AppMetadata");
  }
}

std::string IosPackageBuilder::BundleRoot() const {
  return "Payload/" + ExecutableName(meta_) + ".app";
}

std::string IosPackageBuilder::MainBinaryPath() const {
  return BundleRoot() + "/" + ExecutableName(meta_);
}

IosPackageBuilder& IosPackageBuilder::WithAssociatedDomains(
    const std::vector<std::string>& domains) {
  associated_domains_ = domains;
  return *this;
}

IosPackageBuilder& IosPackageBuilder::WithAtsPinnedDomains(
    std::vector<AtsPinnedDomain> domains) {
  ats_pins_ = std::move(domains);
  return *this;
}

IosPackageBuilder& IosPackageBuilder::AddMainBinaryString(std::string_view content) {
  main_binary_strings_.emplace_back(content);
  return *this;
}

IosPackageBuilder& IosPackageBuilder::AddFrameworkStrings(
    std::string_view name, const std::vector<std::string>& strings, util::Rng& rng) {
  const std::string base =
      BundleRoot() + "/Frameworks/" + std::string(name) + ".framework/" + std::string(name);
  files_.Add(base, RenderBinaryWithStrings(strings, rng));
  return *this;
}

IosPackageBuilder& IosPackageBuilder::AddCertificateFile(std::string_view base_name,
                                                         const x509::Certificate& cert,
                                                         CertFileFormat format) {
  const std::string path = BundleRoot() + "/" + std::string(base_name) +
                           std::string(CertFileExtension(format));
  if (format == CertFileFormat::kPem) {
    files_.AddText(path, x509::PemEncode(cert));
  } else {
    files_.Add(path, cert.DerBytes());
  }
  return *this;
}

IosPackageBuilder& IosPackageBuilder::AddResource(std::string relative_path,
                                                  std::string_view contents) {
  files_.AddText(BundleRoot() + "/" + std::move(relative_path), contents);
  return *this;
}

PackageFiles IosPackageBuilder::Build(util::Rng& rng) const {
  PackageFiles out = files_;

  // Info.plist.
  std::string plist =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<plist version=\"1.0\">\n<dict>\n";
  plist += "  <key>CFBundleIdentifier</key>\n  <string>" + meta_.app_id + "</string>\n";
  plist += "  <key>CFBundleDisplayName</key>\n  <string>" + meta_.display_name +
           "</string>\n";
  if (!ats_pins_.empty()) {
    plist += "  <key>NSAppTransportSecurity</key>\n  <dict>\n";
    plist += "    <key>NSPinnedDomains</key>\n    <dict>\n";
    for (const AtsPinnedDomain& d : ats_pins_) {
      plist += "      <key>" + d.domain + "</key>\n      <dict>\n";
      if (d.include_subdomains) {
        plist += "        <key>NSIncludesSubdomains</key>\n        <true/>\n";
      }
      plist += "        <key>NSPinnedCAIdentities</key>\n        <array>\n";
      for (const std::string& spki : d.spki_sha256_base64) {
        plist += "          <dict>\n            <key>SPKI-SHA256-BASE64</key>\n";
        plist += "            <string>" + spki + "</string>\n          </dict>\n";
      }
      plist += "        </array>\n      </dict>\n";
    }
    plist += "    </dict>\n  </dict>\n";
  }
  plist += "</dict>\n</plist>\n";
  out.AddText(BundleRoot() + "/Info.plist", plist);

  // Entitlements (associated domains).
  std::string ent =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<plist version=\"1.0\">\n<dict>\n";
  if (!associated_domains_.empty()) {
    ent += "  <key>com.apple.developer.associated-domains</key>\n  <array>\n";
    for (const std::string& d : associated_domains_) {
      ent += "    <string>applinks:" + d + "</string>\n";
    }
    ent += "  </array>\n";
  }
  ent += "</dict>\n</plist>\n";
  out.AddText(BundleRoot() + "/App.entitlements", ent);

  // FairPlay-encrypted main executable.
  util::Rng bin_rng = rng.Fork("ios-binary:" + meta_.app_id);
  const util::Bytes plain = RenderBinaryWithStrings(main_binary_strings_, bin_rng);
  out.Add(MainBinaryPath(), FairPlayEncrypt(plain, meta_.app_id));

  return out;
}

}  // namespace pinscope::appmodel

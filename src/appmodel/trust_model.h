// Platform trust-store semantics.
//
// Why did the paper need a *modified factory image* to install its proxy CA
// on Android (§4.2.1)? Because trust in user-installed CAs is API-level
// dependent: apps targeting API 24+ (Android 7) ignore the user store unless
// their Network Security Config opts back in, and iOS system services ignore
// user-trusted roots entirely. This module encodes those rules so tests and
// examples can demonstrate each interception setup working — or not.
#pragma once

#include "x509/root_store.h"

namespace pinscope::appmodel {

/// Where a trust anchor was installed on the device.
struct DeviceTrustState {
  x509::RootStore system_store;  ///< Vendor-shipped (or image-modified) roots.
  x509::RootStore user_store;    ///< Roots the user added in Settings.
};

/// Android: the first targetSdkVersion that stops trusting user CAs by
/// default (API 24, Android 7.0 "Nougat").
inline constexpr int kAndroidUserCaCutoffApi = 24;

/// Computes the effective trust store an Android app validates against.
/// `target_sdk` is the app's targetSdkVersion; `nsc_trusts_user` reflects an
/// NSC `<certificates src="user"/>` opt-in.
[[nodiscard]] x509::RootStore EffectiveAndroidTrustStore(
    const DeviceTrustState& device, int target_sdk, bool nsc_trusts_user);

/// Computes the effective trust store for iOS. Apps honor user-trusted roots
/// (once enabled in Settings → About → Certificate Trust); OS services never
/// do — the §4.5 reason Apple background traffic looks pinned under MITM.
[[nodiscard]] x509::RootStore EffectiveIosTrustStore(const DeviceTrustState& device,
                                                     bool os_service);

}  // namespace pinscope::appmodel

// The complete model of one app build: metadata + on-disk package + runtime
// behaviour.
#pragma once

#include "appmodel/behavior.h"
#include "appmodel/package.h"
#include "appmodel/platform.h"

namespace pinscope::appmodel {

/// One platform build of an app, as the measurement pipeline receives it.
struct App {
  AppMetadata meta;
  /// The distributed artifact (APK tree; IPA tree with encrypted main binary).
  PackageFiles package;
  /// Runtime ground truth driven by the device emulator. Analysis code never
  /// reads this directly — it measures packets/bytes; tests compare against it.
  AppBehavior behavior;
};

}  // namespace pinscope::appmodel

#include "appmodel/package.h"

#include "util/strings.h"

namespace pinscope::appmodel {

void PackageFiles::Add(std::string path, util::Bytes contents) {
  files_[std::move(path)] = std::move(contents);
}

void PackageFiles::AddText(std::string path, std::string_view contents) {
  files_[std::move(path)] = util::ToBytes(contents);
}

const util::Bytes* PackageFiles::Find(std::string_view path) const {
  const auto it = files_.find(std::string(path));
  return it == files_.end() ? nullptr : &it->second;
}

bool PackageFiles::Contains(std::string_view path) const {
  return files_.contains(std::string(path));
}

std::vector<std::string> PackageFiles::PathsWithSuffix(std::string_view suffix) const {
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (util::EndsWithIgnoreCase(path, suffix)) out.push_back(path);
  }
  return out;
}

std::size_t PackageFiles::TotalBytes() const {
  std::size_t total = 0;
  for (const auto& [_, contents] : files_) total += contents.size();
  return total;
}

}  // namespace pinscope::appmodel

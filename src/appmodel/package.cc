#include "appmodel/package.h"

#include "util/strings.h"

namespace pinscope::appmodel {

void PackageFiles::Add(std::string path, util::Bytes contents) {
  files_[std::move(path)] = std::move(contents);
}

void PackageFiles::AddText(std::string path, std::string_view contents) {
  files_[std::move(path)] = util::ToBytes(contents);
}

const util::Bytes* PackageFiles::Find(std::string_view path) const {
  const auto it = files_.find(std::string(path));
  return it == files_.end() ? nullptr : &it->second;
}

bool PackageFiles::Contains(std::string_view path) const {
  return files_.contains(std::string(path));
}

std::vector<std::string> PackageFiles::PathsWithSuffix(std::string_view suffix) const {
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (util::EndsWithIgnoreCase(path, suffix)) out.push_back(path);
  }
  return out;
}

std::size_t PackageFiles::ReplaceText(std::string_view old_text,
                                      std::string_view new_text) {
  std::size_t replaced = 0;
  if (old_text.empty() || old_text == new_text) return replaced;
  for (auto& [path, contents] : files_) {
    std::string text(reinterpret_cast<const char*>(contents.data()),
                     contents.size());
    std::size_t pos = 0;
    bool changed = false;
    while ((pos = text.find(old_text, pos)) != std::string::npos) {
      text.replace(pos, old_text.size(), new_text);
      pos += new_text.size();
      changed = true;
      ++replaced;
    }
    if (changed) contents = util::ToBytes(text);
  }
  return replaced;
}

std::size_t PackageFiles::TotalBytes() const {
  std::size_t total = 0;
  for (const auto& [_, contents] : files_) total += contents.size();
  return total;
}

}  // namespace pinscope::appmodel

#include "appmodel/pii.h"

#include "util/error.h"
#include "util/strings.h"

namespace pinscope::appmodel {

const std::vector<PiiType>& AllPiiTypes() {
  static const std::vector<PiiType> all = {
      PiiType::kImei,  PiiType::kAdvertisingId, PiiType::kWifiMac,
      PiiType::kEmail, PiiType::kState,         PiiType::kCity,
      PiiType::kLatLong};
  return all;
}

std::string_view PiiTypeName(PiiType t) {
  switch (t) {
    case PiiType::kImei: return "IMEI";
    case PiiType::kAdvertisingId: return "Ad. ID";
    case PiiType::kWifiMac: return "WiFi MAC";
    case PiiType::kEmail: return "Email";
    case PiiType::kState: return "State";
    case PiiType::kCity: return "City";
    case PiiType::kLatLong: return "Lat./Lon.";
  }
  throw util::Error("unknown PiiType");
}

std::string_view PiiPlaceholder(PiiType t) {
  switch (t) {
    case PiiType::kImei: return "{{imei}}";
    case PiiType::kAdvertisingId: return "{{ad_id}}";
    case PiiType::kWifiMac: return "{{wifi_mac}}";
    case PiiType::kEmail: return "{{email}}";
    case PiiType::kState: return "{{state}}";
    case PiiType::kCity: return "{{city}}";
    case PiiType::kLatLong: return "{{lat_long}}";
  }
  throw util::Error("unknown PiiType");
}

const std::string& DeviceIdentity::Value(PiiType t) const {
  switch (t) {
    case PiiType::kImei: return imei;
    case PiiType::kAdvertisingId: return advertising_id;
    case PiiType::kWifiMac: return wifi_mac;
    case PiiType::kEmail: return email;
    case PiiType::kState: return state;
    case PiiType::kCity: return city;
    case PiiType::kLatLong: return lat_long;
  }
  throw util::Error("unknown PiiType");
}

std::string ExpandPiiTemplate(std::string_view payload_template,
                              const DeviceIdentity& device) {
  std::string out(payload_template);
  // Every placeholder starts with "{{": one scan skips the rebuild loop for
  // payloads that carry no PII at all, and per-type scans skip the types a
  // template does not mention.
  for (PiiType t : AllPiiTypes()) {
    if (out.find("{{") == std::string::npos) break;
    const std::string_view placeholder = PiiPlaceholder(t);
    if (out.find(placeholder) == std::string::npos) continue;
    out = util::ReplaceAll(out, placeholder, device.Value(t));
  }
  return out;
}

std::vector<PiiType> PiiInTemplate(std::string_view payload_template) {
  std::vector<PiiType> out;
  for (PiiType t : AllPiiTypes()) {
    if (util::Contains(payload_template, PiiPlaceholder(t))) out.push_back(t);
  }
  return out;
}

}  // namespace pinscope::appmodel

#include "appmodel/server_world.h"

#include "net/hostname.h"
#include "util/error.h"

namespace pinscope::appmodel {

std::string_view PkiTypeName(PkiType t) {
  switch (t) {
    case PkiType::kDefaultPki: return "default-pki";
    case PkiType::kCustomPki: return "custom-pki";
    case PkiType::kSelfSigned: return "self-signed";
  }
  throw util::Error("unknown PkiType");
}

namespace {

x509::IssueSpec LeafSpec(std::string_view hostname) {
  x509::IssueSpec spec;
  spec.subject.set_common_name(std::string(hostname));
  spec.san_dns = {std::string(hostname)};
  spec.not_before = util::kStudyEpoch - 30 * util::kMillisPerDay;
  spec.not_after = util::kStudyEpoch + util::kMillisPerYear;
  return spec;
}

}  // namespace

ServerWorld::ServerWorld(std::uint64_t seed) : rng_(seed) {}

const x509::CertificateIssuer& ServerWorld::IntermediateFor(
    const std::string& ca_label) const {
  // Map nodes are stable, so returned references outlive later insertions;
  // the lock only covers the lookup-or-create of the lazy cache.
  std::lock_guard<std::mutex> lock(*intermediates_mu_);
  auto it = intermediates_.find(ca_label);
  if (it != intermediates_.end()) return it->second;

  const x509::CertificateIssuer& root =
      x509::PublicCaCatalog::Instance().ByLabel(ca_label);
  x509::IssueSpec spec;
  spec.subject.set_common_name(
      std::string(root.certificate().subject().common_name()) +
      " Intermediate CA");
  spec.subject.set_organization(root.certificate().subject().organization());
  spec.not_before = util::kStudyEpoch - 2 * util::kMillisPerYear;
  spec.not_after = util::kStudyEpoch + 5 * util::kMillisPerYear;
  spec.is_ca = true;
  x509::CertificateIssuer inter =
      root.CreateIntermediate(spec, ca_label + ".intermediate");
  return intermediates_.emplace(ca_label, std::move(inter)).first->second;
}

const ServerInfo& ServerWorld::EnsureDefaultPki(std::string_view hostname,
                                                std::string_view organization) {
  const std::string key(hostname);
  if (const auto it = servers_.find(key); it != servers_.end()) return it->second;

  // Deterministically spread hostnames across catalog CAs present in all
  // public stores (so default-PKI servers validate everywhere).
  const auto& catalog = x509::PublicCaCatalog::Instance();
  std::vector<std::string> universal;
  for (const auto& info : catalog.infos()) {
    if (info.in_mozilla && info.in_aosp && info.in_ios && !info.expired) {
      universal.push_back(info.label);
    }
  }
  const std::string ca_label =
      universal[util::StableHash64(key) % universal.size()];

  const x509::CertificateIssuer& inter = IntermediateFor(ca_label);
  const crypto::KeyPair leaf_key = crypto::KeyPair::Generate(rng_);
  const x509::Certificate leaf = inter.IssueForKey(LeafSpec(hostname), leaf_key);
  leaf_keys_.emplace(key, leaf_key);

  ServerInfo info;
  info.endpoint.hostname = key;
  info.endpoint.chain = {leaf, inter.certificate(),
                         catalog.ByLabel(ca_label).certificate()};
  info.organization = std::string(organization);
  info.pki = PkiType::kDefaultPki;
  info.ca_label = ca_label;
  return servers_.emplace(key, std::move(info)).first->second;
}

const ServerInfo& ServerWorld::EnsureCustomPki(std::string_view hostname,
                                               std::string_view organization) {
  const std::string key(hostname);
  if (const auto it = servers_.find(key); it != servers_.end()) return it->second;

  const std::string org(organization);
  auto root_it = custom_roots_.find(org);
  if (root_it == custom_roots_.end()) {
    x509::DistinguishedName dn;
    dn.set_common_name(org + " Private Root CA");
    dn.set_organization(org);
    root_it = custom_roots_
                  .emplace(org, x509::CertificateIssuer::SelfSignedRoot(
                                    "custom-root:" + org, dn,
                                    util::kStudyEpoch - 5 * util::kMillisPerYear,
                                    util::kStudyEpoch + 15 * util::kMillisPerYear))
                  .first;
  }

  const crypto::KeyPair leaf_key = crypto::KeyPair::Generate(rng_);
  const x509::Certificate leaf = root_it->second.IssueForKey(LeafSpec(hostname), leaf_key);
  leaf_keys_.emplace(key, leaf_key);

  ServerInfo info;
  info.endpoint.hostname = key;
  info.endpoint.chain = {leaf, root_it->second.certificate()};
  info.organization = org;
  info.pki = PkiType::kCustomPki;
  return servers_.emplace(key, std::move(info)).first->second;
}

const ServerInfo& ServerWorld::EnsureSelfSigned(std::string_view hostname,
                                                std::string_view organization,
                                                int validity_years) {
  const std::string key(hostname);
  if (const auto it = servers_.find(key); it != servers_.end()) return it->second;

  x509::IssueSpec spec = LeafSpec(hostname);
  spec.not_after =
      util::kStudyEpoch + validity_years * util::kMillisPerYear;
  const x509::Certificate leaf =
      x509::CertificateIssuer::SelfSignedLeaf("selfsigned:" + key, spec);

  ServerInfo info;
  info.endpoint.hostname = key;
  info.endpoint.chain = {leaf};
  info.organization = std::string(organization);
  info.pki = PkiType::kSelfSigned;
  return servers_.emplace(key, std::move(info)).first->second;
}

const ServerInfo* ServerWorld::Find(std::string_view hostname) const {
  const auto it = servers_.find(std::string(hostname));
  return it == servers_.end() ? nullptr : &it->second;
}

void ServerWorld::RotateLeaf(std::string_view hostname, bool reuse_key) {
  const std::string key(hostname);
  auto it = servers_.find(key);
  if (it == servers_.end()) throw util::Error("RotateLeaf: unknown host " + key);
  ServerInfo& info = it->second;
  if (info.pki == PkiType::kSelfSigned) {
    throw util::Error("RotateLeaf: self-signed hosts have no issuer");
  }

  const crypto::KeyPair new_key =
      reuse_key ? leaf_keys_.at(key) : crypto::KeyPair::Generate(rng_);
  leaf_keys_.insert_or_assign(key, new_key);

  x509::IssueSpec spec = LeafSpec(hostname);
  // Renewal: shift the validity window forward.
  spec.not_before = util::kStudyEpoch;
  spec.not_after = util::kStudyEpoch + util::kMillisPerYear + 90 * util::kMillisPerDay;

  if (info.pki == PkiType::kDefaultPki) {
    info.endpoint.chain[0] = IntermediateFor(info.ca_label).IssueForKey(spec, new_key);
  } else {
    info.endpoint.chain[0] =
        custom_roots_.at(info.organization).IssueForKey(spec, new_key);
  }
}

void ServerWorld::Downgrade(std::string_view hostname) {
  auto it = servers_.find(std::string(hostname));
  if (it == servers_.end()) throw util::Error("Downgrade: unknown host");
  it->second.endpoint.max_version = tls::TlsVersion::kTls12;
  it->second.endpoint.ciphers = tls::LegacyCipherOffer();
}

void ServerWorld::MarkChainFetchUnavailable(std::string_view hostname) {
  auto it = servers_.find(std::string(hostname));
  if (it == servers_.end()) {
    throw util::Error("MarkChainFetchUnavailable: unknown host");
  }
  it->second.chain_fetch_unavailable = true;
}

x509::CertificateChain ServerWorld::MakeDecoyChain(std::string_view like_hostname,
                                                   std::string_view decoy_host) const {
  const ServerInfo* info = Find(like_hostname);
  if (info == nullptr) throw util::Error("MakeDecoyChain: unknown host");

  x509::IssueSpec spec = LeafSpec(decoy_host);
  const crypto::KeyPair key =
      crypto::KeyPair::FromLabel("decoy:" + std::string(decoy_host));
  switch (info->pki) {
    case PkiType::kDefaultPki: {
      const x509::CertificateIssuer& inter = IntermediateFor(info->ca_label);
      return {inter.IssueForKey(spec, key), inter.certificate(),
              x509::PublicCaCatalog::Instance().ByLabel(info->ca_label).certificate()};
    }
    case PkiType::kCustomPki: {
      const auto& root = custom_roots_.at(info->organization);
      return {root.IssueForKey(spec, key), root.certificate()};
    }
    case PkiType::kSelfSigned:
      return {x509::CertificateIssuer::SelfSignedLeaf(
          "decoy:" + std::string(decoy_host), spec)};
  }
  throw util::Error("unknown PkiType");
}

x509::CertificateChain ServerWorld::MakeForeignChain(std::string_view like_hostname,
                                                     std::string_view decoy_host) const {
  const ServerInfo* info = Find(like_hostname);
  if (info == nullptr) throw util::Error("MakeForeignChain: unknown host");

  // Pick a universal public CA different from the target's issuer.
  const auto& catalog = x509::PublicCaCatalog::Instance();
  std::string foreign_label;
  for (const auto& ca : catalog.infos()) {
    if (ca.in_mozilla && ca.in_aosp && ca.in_ios && !ca.expired &&
        ca.label != info->ca_label) {
      foreign_label = ca.label;
      break;
    }
  }
  x509::IssueSpec spec = LeafSpec(decoy_host);
  const crypto::KeyPair key =
      crypto::KeyPair::FromLabel("foreign-decoy:" + std::string(decoy_host));
  const x509::CertificateIssuer& inter = IntermediateFor(foreign_label);
  return {inter.IssueForKey(spec, key), inter.certificate(),
          catalog.ByLabel(foreign_label).certificate()};
}

void ServerWorld::ExportOwnership(net::OrganizationDirectory& dir) const {
  for (const auto& [hostname, info] : servers_) {
    dir.Register(net::RegistrableDomain(hostname), info.organization);
  }
}

void ServerWorld::ExportToCtLog(x509::CtLog& log) const {
  for (const auto& [_, info] : servers_) {
    if (info.pki != PkiType::kDefaultPki) continue;
    // CT logs index end-entity and intermediate certificates; self-signed
    // trust anchors are not submitted. This is why roughly half of the pins
    // found in apps (those targeting roots) resolve via crt.sh (§4.1.3).
    for (std::size_t i = 0; i + 1 < info.endpoint.chain.size(); ++i) {
      log.Add(info.endpoint.chain[i]);
    }
  }
}

std::vector<std::string> ServerWorld::Hostnames() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [hostname, _] : servers_) out.push_back(hostname);
  return out;
}

}  // namespace pinscope::appmodel

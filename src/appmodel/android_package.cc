#include "appmodel/android_package.h"

#include "util/error.h"
#include "util/hex.h"
#include "util/strings.h"
#include "x509/pem.h"

namespace pinscope::appmodel {

std::string RenderNscXml(const NscDocument& doc) {
  std::string xml = "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  xml += "<network-security-config>\n";
  if (doc.base.present) {
    xml += "  <base-config";
    if (doc.base.cleartext_permitted.has_value()) {
      xml += std::string(" cleartextTrafficPermitted=\"") +
             (*doc.base.cleartext_permitted ? "true" : "false") + "\"";
    }
    xml += ">\n";
    if (doc.base.trust_user_anchors) {
      xml +=
          "    <trust-anchors>\n"
          "      <certificates src=\"system\"/>\n"
          "      <certificates src=\"user\"/>\n"
          "    </trust-anchors>\n";
    }
    xml += "  </base-config>\n";
  }
  if (doc.debug_overrides.present) {
    xml += "  <debug-overrides>\n";
    if (doc.debug_overrides.trust_user_anchors) {
      xml +=
          "    <trust-anchors>\n"
          "      <certificates src=\"user\"/>\n"
          "    </trust-anchors>\n";
    }
    xml += "  </debug-overrides>\n";
  }
  for (const NscDomainConfig& cfg : doc.domain_configs) {
    xml += "  <domain-config";
    if (cfg.cleartext_permitted.has_value()) {
      xml += std::string(" cleartextTrafficPermitted=\"") +
             (*cfg.cleartext_permitted ? "true" : "false") + "\"";
    }
    xml += ">\n";
    xml += "    <domain includeSubdomains=\"";
    xml += cfg.include_subdomains ? "true" : "false";
    xml += "\">" + cfg.domain + "</domain>\n";
    if (!cfg.pin_strings.empty()) {
      xml += "    <pin-set";
      if (!cfg.pin_expiration.empty()) {
        xml += " expiration=\"" + cfg.pin_expiration + "\"";
      }
      xml += ">\n";
      for (const std::string& pin : cfg.pin_strings) {
        // "sha256/AAA..." → digest attribute + body, the real NSC layout.
        const std::size_t slash = pin.find('/');
        const std::string algo = slash == std::string::npos
                                     ? std::string("SHA-256")
                                     : (pin.substr(0, slash) == "sha1" ? "SHA-1"
                                                                       : "SHA-256");
        const std::string body =
            slash == std::string::npos ? pin : pin.substr(slash + 1);
        xml += "      <pin digest=\"" + algo + "\">" + body + "</pin>\n";
      }
      xml += "    </pin-set>\n";
    }
    if (cfg.override_pins) {
      xml +=
          "    <trust-anchors>\n"
          "      <certificates src=\"user\" overridePins=\"true\"/>\n"
          "    </trust-anchors>\n";
    }
    xml += "  </domain-config>\n";
  }
  xml += "</network-security-config>\n";
  return xml;
}

std::string RenderNscXml(const std::vector<NscDomainConfig>& configs) {
  NscDocument doc;
  doc.domain_configs = configs;
  return RenderNscXml(doc);
}

std::string_view CertFileExtension(CertFileFormat f) {
  switch (f) {
    case CertFileFormat::kPem: return ".pem";
    case CertFileFormat::kDer: return ".der";
    case CertFileFormat::kCrt: return ".crt";
    case CertFileFormat::kCer: return ".cer";
    case CertFileFormat::kCert: return ".cert";
  }
  throw util::Error("unknown CertFileFormat");
}

AndroidPackageBuilder::AndroidPackageBuilder(const AppMetadata& meta) : meta_(meta) {
  if (meta.platform != Platform::kAndroid) {
    throw util::Error("AndroidPackageBuilder requires an Android AppMetadata");
  }
}

AndroidPackageBuilder& AndroidPackageBuilder::WithNsc(
    std::vector<NscDomainConfig> configs) {
  NscDocument doc;
  doc.domain_configs = std::move(configs);
  return WithNscDocument(doc);
}

AndroidPackageBuilder& AndroidPackageBuilder::WithNscDocument(
    const NscDocument& doc) {
  files_.AddText("res/xml/network_security_config.xml", RenderNscXml(doc));
  has_nsc_ = true;
  return *this;
}

AndroidPackageBuilder& AndroidPackageBuilder::AddSmaliString(
    std::string_view code_path, std::string_view file_name,
    std::string_view content) {
  std::string path = "smali/" + std::string(code_path) + "/" + std::string(file_name);
  std::string body = ".class public L" + std::string(code_path) + ";\n";
  body += ".source \"" + std::string(file_name) + "\"\n\n";
  body += "const-string v0, \"" + std::string(content) + "\"\n";
  files_.AddText(std::move(path), body);
  return *this;
}

AndroidPackageBuilder& AndroidPackageBuilder::AddCertificateFile(
    std::string_view dir, std::string_view base_name, const x509::Certificate& cert,
    CertFileFormat format) {
  std::string path = std::string(dir) + "/" + std::string(base_name) +
                     std::string(CertFileExtension(format));
  if (format == CertFileFormat::kPem) {
    files_.AddText(std::move(path), x509::PemEncode(cert));
  } else {
    files_.Add(std::move(path), cert.DerBytes());
  }
  return *this;
}

util::Bytes RenderBinaryWithStrings(const std::vector<std::string>& strings,
                                    util::Rng& rng, std::size_t noise_bytes) {
  util::Bytes out;
  auto noise = [&rng, &out](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      // Bias toward non-printable bytes so noise does not form strings.
      out.push_back(static_cast<std::uint8_t>(rng.UniformU64(0, 31)));
    }
  };
  noise(noise_bytes / 2);
  for (const std::string& s : strings) {
    util::Append(out, s);
    out.push_back(0);
    noise(8 + static_cast<std::size_t>(rng.UniformU64(0, 24)));
  }
  noise(noise_bytes / 2);
  return out;
}

AndroidPackageBuilder& AndroidPackageBuilder::AddNativeLib(
    std::string_view lib_name, const std::vector<std::string>& strings,
    util::Rng& rng) {
  files_.Add("lib/arm64-v8a/" + std::string(lib_name),
             RenderBinaryWithStrings(strings, rng));
  return *this;
}

AndroidPackageBuilder& AndroidPackageBuilder::AddAsset(std::string path,
                                                       std::string_view contents) {
  files_.AddText(std::move(path), contents);
  return *this;
}

PackageFiles AndroidPackageBuilder::Build() const {
  PackageFiles out = files_;
  std::string manifest = "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  manifest += "<manifest package=\"" + meta_.app_id + "\">\n";
  manifest += "  <application android:label=\"" + meta_.display_name + "\"";
  if (has_nsc_) {
    manifest += " android:networkSecurityConfig=\"@xml/network_security_config\"";
  }
  manifest += ">\n  </application>\n</manifest>\n";
  out.AddText("AndroidManifest.xml", manifest);
  return out;
}

}  // namespace pinscope::appmodel

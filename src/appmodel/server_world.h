// The simulated server-side Internet.
//
// Every destination the corpus contacts is backed by a server with a real
// certificate chain: default-PKI chains issued by catalog CAs (root →
// intermediate → leaf), custom-PKI chains under private roots, or bare
// self-signed leaves (§5.3.1 found one of each per platform, with 27- and
// 10-year validities). The world also tracks domain ownership for party
// attribution and can publish its public chains to a CT log.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "net/party.h"
#include "tls/handshake.h"
#include "util/rng.h"
#include "x509/ct_log.h"
#include "x509/issuer.h"
#include "x509/root_store.h"

namespace pinscope::appmodel {

/// How a server's chain anchors (Table 6's categories).
enum class PkiType {
  kDefaultPki,  ///< Chains to a public root store.
  kCustomPki,   ///< Chains to a private root.
  kSelfSigned,  ///< Single self-signed leaf, no chain.
};

/// Human-readable PKI type.
[[nodiscard]] std::string_view PkiTypeName(PkiType t);

/// One destination server.
struct ServerInfo {
  tls::ServerEndpoint endpoint;
  std::string organization;   ///< Operator (for whois/party attribution).
  PkiType pki = PkiType::kDefaultPki;
  std::string ca_label;       ///< Issuing catalog CA ("" for custom/self).
  /// The out-of-band chain fetch (§5.3's OpenSSL step) fails for this host —
  /// Table 6's "Data Unavailable" bucket.
  bool chain_fetch_unavailable = false;
};

/// Registry of all reachable servers, keyed by hostname.
class ServerWorld {
 public:
  /// Creates a world; `seed` drives all key generation.
  explicit ServerWorld(std::uint64_t seed);

  /// Returns the server for `hostname`, creating a default-PKI one (root →
  /// intermediate → leaf under a deterministic catalog CA) on first use.
  const ServerInfo& EnsureDefaultPki(std::string_view hostname,
                                     std::string_view organization);

  /// Creates/returns a custom-PKI server: leaf → private intermediate →
  /// private root (not in any public store).
  const ServerInfo& EnsureCustomPki(std::string_view hostname,
                                    std::string_view organization);

  /// Creates/returns a self-signed server with the given validity.
  const ServerInfo& EnsureSelfSigned(std::string_view hostname,
                                     std::string_view organization,
                                     int validity_years);

  /// Looks up a server. nullptr if the hostname was never provisioned.
  [[nodiscard]] const ServerInfo* Find(std::string_view hostname) const;

  /// Renews `hostname`'s leaf certificate. If `reuse_key`, the new leaf keeps
  /// the old SubjectPublicKeyInfo (so SPKI pins keep matching — §5.3.3);
  /// otherwise a fresh key is generated (certificate pins break).
  void RotateLeaf(std::string_view hostname, bool reuse_key);

  /// Weakens a server's TLS configuration to also accept legacy suites and
  /// TLS 1.2 at most (used to model long-tail endpoints).
  void Downgrade(std::string_view hostname);

  /// Marks the host's out-of-band chain fetch as failing (Table 6's
  /// "Data Unavailable"). Live connections are unaffected.
  void MarkChainFetchUnavailable(std::string_view hostname);

  /// A valid chain for `decoy_host` issued under the *same* hierarchy as
  /// `like_hostname`'s server (Spinner-style probe material: a real cert of
  /// some other site sharing the CA). Requires `like_hostname` provisioned.
  [[nodiscard]] x509::CertificateChain MakeDecoyChain(std::string_view like_hostname,
                                                      std::string_view decoy_host) const;

  /// A valid chain for `decoy_host` under a public CA *different* from
  /// `like_hostname`'s issuer.
  [[nodiscard]] x509::CertificateChain MakeForeignChain(std::string_view like_hostname,
                                                        std::string_view decoy_host) const;

  /// Registers ownership of every provisioned registrable domain in `dir`.
  void ExportOwnership(net::OrganizationDirectory& dir) const;

  /// Publishes all default-PKI chains (public certificates) to `log`.
  void ExportToCtLog(x509::CtLog& log) const;

  /// All hostnames, sorted.
  [[nodiscard]] std::vector<std::string> Hostnames() const;

  /// Number of provisioned servers.
  [[nodiscard]] std::size_t size() const { return servers_.size(); }

 private:
  const x509::CertificateIssuer& IntermediateFor(const std::string& ca_label) const;

  util::Rng rng_;
  std::map<std::string, ServerInfo> servers_;
  /// Per-CA-label intermediates, created lazily (also from const probes, so
  /// concurrent per-app readers of a const world may race to build one —
  /// the mutex makes that safe, and stateless issuance makes it identical).
  /// Heap-held so the world stays movable.
  mutable std::unique_ptr<std::mutex> intermediates_mu_ =
      std::make_unique<std::mutex>();
  mutable std::map<std::string, x509::CertificateIssuer> intermediates_;
  std::map<std::string, x509::CertificateIssuer> custom_roots_;   // per org
  std::map<std::string, crypto::KeyPair> leaf_keys_;              // per hostname
};

}  // namespace pinscope::appmodel

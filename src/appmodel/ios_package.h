// iOS package (IPA) construction and FairPlay-style encryption.
//
// Real App Store binaries ship FairPlay-encrypted: the main executable's
// text section is ciphered with device-bound keys, while Info.plist,
// entitlements, resource files, and (usually) framework binaries stay
// readable. Static analysis therefore requires a decryption step on a
// jailbroken device (Flexdecrypt / frida-ios-dump). We reproduce the whole
// shape: the builder scrambles the main executable; the analyzer must route
// through the decryptor before string extraction sees anything.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "appmodel/android_package.h"  // CertFileFormat, RenderBinaryWithStrings
#include "appmodel/package.h"
#include "appmodel/platform.h"
#include "util/rng.h"
#include "x509/certificate.h"

namespace pinscope::appmodel {

/// Magic prefix marking FairPlay-scrambled content.
inline constexpr std::string_view kFairPlayMagic = "FAIRPLAY1";

/// Scrambles `plain` under a keystream bound to `bundle_id` (models the
/// device/user key pair). Output starts with kFairPlayMagic.
[[nodiscard]] util::Bytes FairPlayEncrypt(const util::Bytes& plain,
                                          std::string_view bundle_id);

/// Inverse of FairPlayEncrypt. Returns an empty buffer if `cipher` does not
/// carry the magic (i.e., was never encrypted).
[[nodiscard]] util::Bytes FairPlayDecrypt(const util::Bytes& cipher,
                                          std::string_view bundle_id);

/// True if `data` carries the FairPlay magic.
[[nodiscard]] bool IsFairPlayEncrypted(const util::Bytes& data);

/// One NSPinnedDomains entry for App Transport Security (iOS 14+; present in
/// the model for completeness — the paper's device ran iOS 13 and skipped it).
struct AtsPinnedDomain {
  std::string domain;
  bool include_subdomains = false;
  std::vector<std::string> spki_sha256_base64;  ///< Pin digests.
};

/// Builder for IPA file trees (rooted at "Payload/<App>.app/").
class IosPackageBuilder {
 public:
  explicit IosPackageBuilder(const AppMetadata& meta);

  /// Declares associated domains (written into the entitlements plist; the
  /// OS will contact these on install — §4.5's confounder).
  IosPackageBuilder& WithAssociatedDomains(const std::vector<std::string>& domains);

  /// Adds NSPinnedDomains to Info.plist's NSAppTransportSecurity dict.
  IosPackageBuilder& WithAtsPinnedDomains(std::vector<AtsPinnedDomain> domains);

  /// Adds strings compiled into the (to-be-encrypted) main executable.
  IosPackageBuilder& AddMainBinaryString(std::string_view content);

  /// Adds a framework binary (plaintext) with embedded strings. `name` like
  /// "TwitterKit" becomes Frameworks/TwitterKit.framework/TwitterKit.
  IosPackageBuilder& AddFrameworkStrings(std::string_view name,
                                         const std::vector<std::string>& strings,
                                         util::Rng& rng);

  /// Embeds a certificate file in the bundle.
  IosPackageBuilder& AddCertificateFile(std::string_view base_name,
                                        const x509::Certificate& cert,
                                        CertFileFormat format);

  /// Adds an arbitrary bundle resource.
  IosPackageBuilder& AddResource(std::string relative_path, std::string_view contents);

  /// Finalizes: writes Info.plist, entitlements, and the FairPlay-encrypted
  /// main executable, then returns the tree.
  [[nodiscard]] PackageFiles Build(util::Rng& rng) const;

  /// Root of the bundle inside the IPA, e.g. "Payload/MyApp.app".
  [[nodiscard]] std::string BundleRoot() const;

  /// Path of the main executable inside the IPA.
  [[nodiscard]] std::string MainBinaryPath() const;

 private:
  AppMetadata meta_;
  PackageFiles files_;
  std::vector<std::string> main_binary_strings_;
  std::vector<std::string> associated_domains_;
  std::vector<AtsPinnedDomain> ats_pins_;
};

}  // namespace pinscope::appmodel

#include "appmodel/behavior.h"

namespace pinscope::appmodel {

std::vector<std::string> AppBehavior::PinnedHostnames() const {
  std::vector<std::string> out;
  for (const DestinationBehavior& d : destinations) {
    if (d.pinned) out.push_back(d.hostname);
  }
  return out;
}

bool AppBehavior::PinsAtRuntime() const {
  for (const DestinationBehavior& d : destinations) {
    if (d.pinned) return true;
  }
  return false;
}

tls::PinPolicy AppBehavior::BuildPinPolicy() const {
  tls::PinPolicy policy;
  for (const DestinationBehavior& d : destinations) {
    if (!d.pinned || d.pins.empty()) continue;
    tls::DomainPinRule rule;
    rule.pattern = d.hostname;
    rule.pins = d.pins;
    policy.AddRule(std::move(rule));
  }
  return policy;
}

}  // namespace pinscope::appmodel

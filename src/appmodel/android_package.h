// Android package (APK) construction.
//
// Materializes the decompiled-style file tree an APK yields after Apktool:
// AndroidManifest.xml, res/xml/ Network Security Configs, smali code trees
// (whose directory paths identify first- vs third-party code), assets, and
// native libraries with embedded string tables. The static analyzer consumes
// exactly these artifacts.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "appmodel/package.h"
#include "appmodel/platform.h"
#include "util/rng.h"
#include "x509/certificate.h"

namespace pinscope::appmodel {

/// One <domain-config> entry of a Network Security Config.
struct NscDomainConfig {
  std::string domain;
  bool include_subdomains = false;
  /// "sha256/<base64>" or "sha1/<base64>" pin strings (empty ⇒ no pin-set).
  std::vector<std::string> pin_strings;
  /// pin-set expiration attribute, "YYYY-MM-DD" or empty.
  std::string pin_expiration;
  /// Misconfiguration found by Possemato et al.: custom trust-anchors with
  /// overridePins="true", which silently disables the pin-set.
  bool override_pins = false;
  /// cleartextTrafficPermitted attribute (tri-state: unset inherits base).
  std::optional<bool> cleartext_permitted;
};

/// The document-wide <base-config> element.
struct NscBaseConfig {
  bool present = false;
  std::optional<bool> cleartext_permitted;
  bool trust_user_anchors = false;  ///< <certificates src="user"/>.
};

/// The <debug-overrides> element; only honored in debuggable builds, but its
/// presence with user trust is a frequent footgun Possemato et al. flag.
struct NscDebugOverrides {
  bool present = false;
  bool trust_user_anchors = false;
};

/// A complete Network Security Config document.
struct NscDocument {
  NscBaseConfig base;
  NscDebugOverrides debug_overrides;
  std::vector<NscDomainConfig> domain_configs;
};

/// Serializes a complete network_security_config.xml document.
[[nodiscard]] std::string RenderNscXml(const NscDocument& doc);

/// Convenience overload: domain-configs only.
[[nodiscard]] std::string RenderNscXml(const std::vector<NscDomainConfig>& configs);

/// Certificate container format for embedded certificate files.
enum class CertFileFormat { kPem, kDer, kCrt, kCer, kCert };

/// File extension (with dot) for a format.
[[nodiscard]] std::string_view CertFileExtension(CertFileFormat f);

/// Builder for APK file trees.
class AndroidPackageBuilder {
 public:
  explicit AndroidPackageBuilder(const AppMetadata& meta);

  /// Installs a Network Security Config (referenced from the manifest).
  AndroidPackageBuilder& WithNsc(std::vector<NscDomainConfig> configs);

  /// Installs a full Network Security Config document.
  AndroidPackageBuilder& WithNscDocument(const NscDocument& doc);

  /// Adds a smali source file under `code_path` (e.g. "com/twitter/sdk")
  /// whose body embeds `content` as string constants. The file path is what
  /// third-party attribution later inspects.
  AndroidPackageBuilder& AddSmaliString(std::string_view code_path,
                                        std::string_view file_name,
                                        std::string_view content);

  /// Embeds a certificate file under `dir` (e.g. "assets" or "res/raw").
  AndroidPackageBuilder& AddCertificateFile(std::string_view dir,
                                            std::string_view base_name,
                                            const x509::Certificate& cert,
                                            CertFileFormat format);

  /// Adds a native library with the given embedded strings, padded with
  /// deterministic pseudo-binary noise (the radare2-extraction target).
  AndroidPackageBuilder& AddNativeLib(std::string_view lib_name,
                                      const std::vector<std::string>& strings,
                                      util::Rng& rng);

  /// Adds an arbitrary asset file.
  AndroidPackageBuilder& AddAsset(std::string path, std::string_view contents);

  /// Finalizes: writes the manifest and returns the tree.
  [[nodiscard]] PackageFiles Build() const;

 private:
  AppMetadata meta_;
  PackageFiles files_;
  bool has_nsc_ = false;
};

/// Renders a pseudo-binary blob embedding `strings` (NUL-separated printable
/// runs amid noise). Shared with the iOS builder.
[[nodiscard]] util::Bytes RenderBinaryWithStrings(const std::vector<std::string>& strings,
                                                  util::Rng& rng,
                                                  std::size_t noise_bytes = 256);

}  // namespace pinscope::appmodel

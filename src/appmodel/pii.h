// Personally identifiable information model (§4.4).
//
// Apps embed PII placeholders in their request templates; the device emulator
// expands them with the test device's identity at run time; the PII detector
// searches decrypted payloads for the known identity values (the ReCon-style
// approach the paper builds on).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pinscope::appmodel {

/// PII classes the paper searches for (§4.4).
enum class PiiType {
  kImei,
  kAdvertisingId,
  kWifiMac,
  kEmail,
  kState,
  kCity,
  kLatLong,
};

/// All PII types, in report order.
[[nodiscard]] const std::vector<PiiType>& AllPiiTypes();

/// Human-readable PII name (matches Table 9 row labels).
[[nodiscard]] std::string_view PiiTypeName(PiiType t);

/// Template placeholder for a PII type, e.g. "{{ad_id}}".
[[nodiscard]] std::string_view PiiPlaceholder(PiiType t);

/// The identity of a test device — ground-truth values the detector matches.
struct DeviceIdentity {
  std::string imei;
  std::string advertising_id;
  std::string wifi_mac;
  std::string email;
  std::string state;
  std::string city;
  std::string lat_long;

  /// Value for a given PII type.
  [[nodiscard]] const std::string& Value(PiiType t) const;
};

/// Expands every "{{...}}" PII placeholder in `payload_template` with the
/// device's values. Unknown placeholders are left intact.
[[nodiscard]] std::string ExpandPiiTemplate(std::string_view payload_template,
                                            const DeviceIdentity& device);

/// PII types whose placeholder occurs in `payload_template` (ground truth for
/// tests and calibration).
[[nodiscard]] std::vector<PiiType> PiiInTemplate(std::string_view payload_template);

}  // namespace pinscope::appmodel

#include "appmodel/sdk_catalog.h"

namespace pinscope::appmodel {

const std::vector<SdkInfo>& SdkCatalog() {
  // Weights approximate the per-platform embedding counts of Table 7 (per
  // ~2,500 apps); the generator scales them to dataset sizes.
  static const std::vector<SdkInfo> catalog = {
      {"Twitter", "com/twitter/sdk", "TwitterKit",
       {"api.twitter.com"}, "twitter",
       true, true, true, true, true,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 29, 6},
      {"Braintree", "com/braintreepayments/api", "Braintree",
       {"api.braintreegateway.com"}, "braintree",
       true, true, true, true, false,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 27, 7},
      {"Paypal", "com/paypal/android/sdk", "PayPalKit",
       {"www.paypalobjects.com", "api.paypal.com"}, "paypal",
       true, true, true, true, true,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 25, 11},
      {"Perimeterx", "com/perimeterx/mobile_sdk", "PerimeterX",
       {"collector.perimeterx.net"}, "perimeterx",
       true, false, true, true, false,
       tls::TlsStack::kAndroidPlatform, tls::TlsStack::kNsUrlSession, 9, 0},
      {"MParticle", "com/mparticle", "mParticle",
       {"config2.mparticle.com"}, "mparticle",
       true, true, true, true, false,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 9, 3},
      {"Amplitude", "com/amplitude/api", "Amplitude",
       {"api2.amplitude.com"}, "amplitude",
       true, true, true, false, true,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 6, 45},
      {"Stripe", "com/stripe/android", "Stripe",
       {"api.stripe.com"}, "stripe",
       true, true, true, false, true,
       tls::TlsStack::kOkHttp, tls::TlsStack::kAlamofire, 8, 42},
      {"Weibo", "com/sina/weibo/sdk", "WeiboSDK",
       {"api.weibo.com"}, "weibo",
       false, true, true, false, true,
       tls::TlsStack::kOkHttp, tls::TlsStack::kAfNetworking, 0, 20},
      {"FraudForce", "com/iovation/mobile", "FraudForce",
       {"mpsnare.iesnare.com"}, "iovation",
       false, true, true, false, true,
       tls::TlsStack::kAndroidPlatform, tls::TlsStack::kNsUrlSession, 0, 16},
      {"Adobe Creative Cloud", "com/adobe/creativesdk", "AdobeCreativeCloud",
       {"cc-api-data.adobe.io"}, "adobe",
       false, true, true, false, true,
       tls::TlsStack::kCronet, tls::TlsStack::kNsUrlSession, 0, 13},
      {"Sensibill", "com/getsensibill/sdk", "Sensibill",
       {"api.getsensibill.com"}, "sensibill",
       true, false, true, true, false,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 6, 0},
      {"Firestore", "com/google/firebase/firestore", "FirebaseFirestore",
       {"firestore.googleapis.com"}, "google",
       true, true, false, false, true,
       tls::TlsStack::kCronet, tls::TlsStack::kNsUrlSession, 40, 30},
      // Pure traffic generators: contacted but never pinned, no cert material.
      {"Facebook", "com/facebook/sdk", "FBSDKCoreKit",
       {"graph.facebook.com"}, "facebook",
       true, true, false, false, false,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 60, 55},
      {"Crashlane", "com/crashlane/agent", "Crashlane",
       {"reports.crashlane.io"}, "crashlane",
       true, true, false, false, false,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 50, 45},
      {"AdNetwork", "com/adnetwork/ads", "AdNetworkKit",
       {"ads.adnetwork-cdn.com", "metrics.adnetwork-cdn.com"}, "adnetwork",
       true, true, false, false, false,
       tls::TlsStack::kOkHttp, tls::TlsStack::kNsUrlSession, 70, 60},
  };
  return catalog;
}

std::optional<SdkInfo> FindSdk(std::string_view name) {
  for (const SdkInfo& sdk : SdkCatalog()) {
    if (sdk.name == name) return sdk;
  }
  return std::nullopt;
}

std::vector<SdkInfo> SdksEmbeddingCertificates(Platform platform) {
  std::vector<SdkInfo> out;
  for (const SdkInfo& sdk : SdkCatalog()) {
    const bool available = platform == Platform::kAndroid ? sdk.available_android
                                                          : sdk.available_ios;
    if (available && sdk.embeds_certificate) out.push_back(sdk);
  }
  return out;
}

}  // namespace pinscope::appmodel

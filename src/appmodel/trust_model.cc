#include "appmodel/trust_model.h"

namespace pinscope::appmodel {
namespace {

x509::RootStore Merge(std::string name, const x509::RootStore& base,
                      const x509::RootStore& extra) {
  x509::RootStore merged(std::move(name), base.roots());
  for (const x509::Certificate& root : extra.roots()) {
    if (!merged.IsTrustedRoot(root)) merged.AddRoot(root);
  }
  return merged;
}

}  // namespace

x509::RootStore EffectiveAndroidTrustStore(const DeviceTrustState& device,
                                           int target_sdk, bool nsc_trusts_user) {
  if (target_sdk < kAndroidUserCaCutoffApi || nsc_trusts_user) {
    return Merge("android-system+user", device.system_store, device.user_store);
  }
  return x509::RootStore("android-system", device.system_store.roots());
}

x509::RootStore EffectiveIosTrustStore(const DeviceTrustState& device,
                                       bool os_service) {
  if (os_service) {
    return x509::RootStore("ios-system(os-service)", device.system_store.roots());
  }
  return Merge("ios-system+user", device.system_store, device.user_store);
}

}  // namespace pinscope::appmodel

// App package file trees.
//
// Both APKs and decrypted IPAs reduce, for analysis purposes, to a tree of
// named files. The static analyzer walks these trees exactly the way the
// paper runs ripgrep over unpacked app directories.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace pinscope::appmodel {

/// An immutable-ish file tree: path → contents. Paths use '/' separators and
/// are unique.
class PackageFiles {
 public:
  /// Adds or replaces a file.
  void Add(std::string path, util::Bytes contents);

  /// Adds or replaces a text file.
  void AddText(std::string path, std::string_view contents);

  /// Contents of `path`, or nullptr if absent.
  [[nodiscard]] const util::Bytes* Find(std::string_view path) const;

  /// True if `path` exists.
  [[nodiscard]] bool Contains(std::string_view path) const;

  /// All files, ordered by path.
  [[nodiscard]] const std::map<std::string, util::Bytes>& files() const {
    return files_;
  }

  /// Paths whose name ends with `suffix` (case-insensitive), e.g. ".pem".
  [[nodiscard]] std::vector<std::string> PathsWithSuffix(std::string_view suffix) const;

  /// Replaces every occurrence of `old_text` with `new_text` across all
  /// files, returning the number of replacements. Used by snapshot churn to
  /// rewrite embedded pin strings in place (same-form pin strings have equal
  /// length, so offsets of later matches survive).
  std::size_t ReplaceText(std::string_view old_text, std::string_view new_text);

  /// Number of files.
  [[nodiscard]] std::size_t size() const { return files_.size(); }

  /// Total bytes across all files.
  [[nodiscard]] std::size_t TotalBytes() const;

 private:
  std::map<std::string, util::Bytes> files_;
};

}  // namespace pinscope::appmodel

// Table 7: third-party frameworks that ship certificate/pin material.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Table 7 — frameworks introducing certificates").c_str());
  std::printf(
      "Paper (top 5 per platform):\n"
      "  Android: Twitter 29, Braintree 27, Paypal 25, Perimeterx 9, MParticle 9\n"
      "  iOS:     Amplitude 45, Stripe 34, Weibo 24, FraudForce 16, Adobe CC 13\n\n");

  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    std::printf("%s (code paths with cert/pin evidence in >5 apps):\n",
                PlatformName(p).data());
    report::TextTable table;
    table.SetHeader({"Framework", "# apps", "Code path"});
    const auto frameworks = core::ComputeFrameworks(study, p);
    std::size_t shown = 0;
    for (const auto& fw : frameworks) {
      table.AddRow({fw.framework, std::to_string(fw.app_count), fw.path_key});
      if (++shown == 8) break;
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

// Table 5: top-10 categories of pinning apps, iOS.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Table 5 — top pinning categories, iOS").c_str());
  std::printf(
      "Paper: Finance 20.63%% (26 apps) leads; then Shopping 16.48%% (15),\n"
      "Travel, Social Networking, Photo & Video, Lifestyle, Food & Drink,\n"
      "Sports, Navigation, Books.\n\n");

  report::TextTable table;
  table.SetHeader({"Category (rank)", "Pinning %", "No. of Apps"});
  for (const core::CategoryPinningRow& row :
       core::ComputePinningByCategory(study, appmodel::Platform::kIos)) {
    table.AddRow({row.category + " (" + std::to_string(row.popularity_rank) + ")",
                  util::FormatDouble(row.pinning_pct, 2) + " %",
                  std::to_string(row.pinning_apps)});
  }
  std::printf("%s\n", table.Render().c_str());

  const auto rows = core::ComputePinningByCategory(study, appmodel::Platform::kIos);
  if (!rows.empty()) {
    std::printf("Shape check: top pinning category measured = %s (paper: Finance)\n",
                rows.front().category.c_str());
  }
  return 0;
}

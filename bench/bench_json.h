// Shared output plumbing for the bench harnesses.
//
// Every benchmark emits the same JSON shape: a snprintf'd head of
// benchmark-specific fields, then a trailing "phases" object rendered from
// a metrics snapshot. This helper owns that embedding (and the
// stdout + file + stderr-confirmation dance) so the harnesses cannot
// drift apart again.
#pragma once

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/process.h"

namespace pinscope::bench {

/// The process-level resource block every BENCH_*.json carries: the peak
/// resident set at write time (JSON null where procfs is unavailable).
inline std::string ProcessBlockJson() {
  const auto peak = obs::ReadPeakRssBytes();
  return "  \"process\": {\"peak_rss_bytes\": " +
         (peak.has_value() ? std::to_string(*peak) : std::string("null")) +
         "},\n";
}

/// Appends the process resource block and the per-phase wall-time breakdown
/// to `head` (which must end just after the last benchmark-specific field's
/// trailing ",\n"), closes the JSON object, prints it to stdout, and writes
/// it to `path`. Returns the process exit code: 0 on success, 1 when the
/// file cannot be written.
inline int WriteBenchJsonWithPhases(const char* path, const std::string& head,
                                    const obs::MetricsSnapshot& snapshot) {
  const std::string full =
      head + ProcessBlockJson() +
      "  \"phases\": " + obs::WritePhaseBreakdownJson(snapshot) + "\n}\n";
  std::fputs(full.c_str(), stdout);
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(full.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[pinscope] wrote %s\n", path);
    return 0;
  }
  std::fprintf(stderr, "[pinscope] could not write %s\n", path);
  return 1;
}

}  // namespace pinscope::bench

// Shared output plumbing for the bench harnesses.
//
// Every benchmark emits the same JSON shape: a snprintf'd head of
// benchmark-specific fields, then a trailing "phases" object rendered from
// a metrics snapshot. This helper owns that embedding (and the
// stdout + file + stderr-confirmation dance) so the harnesses cannot
// drift apart again.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/process.h"
#include "report/bench_compare.h"

namespace pinscope::bench {

/// The process-level resource block every BENCH_*.json carries: the peak
/// resident set at write time (JSON null where procfs is unavailable).
inline std::string ProcessBlockJson() {
  const auto peak = obs::ReadPeakRssBytes();
  return "  \"process\": {\"peak_rss_bytes\": " +
         (peak.has_value() ? std::to_string(*peak) : std::string("null")) +
         "},\n";
}

/// Appends the process resource block and the per-phase wall-time breakdown
/// to `head` (which must end just after the last benchmark-specific field's
/// trailing ",\n"), closes the JSON object, prints it to stdout, and writes
/// it to `path`. Returns the process exit code: 0 on success, 1 when the
/// file cannot be written.
///
/// Regression gate: when PINSCOPE_BENCH_CHECK is set (optionally to a max
/// regression percentage, default 10) and a previous document already exists
/// at `path`, the fresh numbers are compared against it with
/// report::CompareBenchJson before anything is overwritten. On regression
/// the baseline file is kept, the fresh document lands at `<path>.new` for
/// inspection, and the harness exits 1 — the same verdict `bench_diff`
/// renders standalone. Bench numbers are machine-dependent, so the gate is
/// opt-in: committed BENCH files gate a rerun on the machine that wrote
/// them, not across hardware.
inline int WriteBenchJsonWithPhases(const char* path, const std::string& head,
                                    const obs::MetricsSnapshot& snapshot) {
  const std::string full =
      head + ProcessBlockJson() +
      "  \"phases\": " + obs::WritePhaseBreakdownJson(snapshot) + "\n}\n";
  std::fputs(full.c_str(), stdout);

  if (const char* check = std::getenv("PINSCOPE_BENCH_CHECK")) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      report::BenchCompareOptions options;
      if (const double pct = std::atof(check); pct > 0) {
        options.max_regress_pct = pct;
      }
      const report::BenchCompareResult verdict =
          report::CompareBenchJson(buffer.str(), full, options);
      std::fputs(report::RenderBenchCompare(verdict).c_str(), stderr);
      if (!verdict.ok()) {
        const std::string side = std::string(path) + ".new";
        if (std::FILE* f = std::fopen(side.c_str(), "w")) {
          std::fputs(full.c_str(), f);
          std::fclose(f);
        }
        std::fprintf(stderr,
                     "[pinscope] PINSCOPE_BENCH_CHECK: regression vs %s — "
                     "baseline kept, fresh numbers at %s\n",
                     path, side.c_str());
        return 1;
      }
    }
  }

  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(full.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[pinscope] wrote %s\n", path);
    return 0;
  }
  std::fprintf(stderr, "[pinscope] could not write %s\n", path);
  return 1;
}

}  // namespace pinscope::bench

// Streaming-study scale and warm-start benchmark.
//
// Two claims from DESIGN.md §15, each measured and written to
// BENCH_stream.json:
//
//  1. Bounded memory: a streaming study's peak RSS is set by the scheduler's
//     in-flight window, not corpus size. Witness: stream a small synthetic
//     corpus, record the process high-water mark, then stream a corpus 20x
//     larger and check the mark barely moves (flat_within_2x). Order
//     matters — VmHWM is monotone for the process lifetime, so the small
//     run MUST come first; anything the large run adds shows up in its own
//     reading.
//
//  2. Warm starts: persisting the content-keyed scan and validation caches
//     (--cache-dir) makes re-analysis of an unchanged corpus much cheaper.
//     Witness: a unique-payload corpus (every app a distinct content digest,
//     stacked PEM blocks per file) where the in-run cache can never help
//     across apps — cold scans pay full price, a second run over the same
//     corpus with the persisted caches hits everything. A byte-equality
//     guard on the exports enforces that warm results are identical to cold.
//
// Knobs: PINSCOPE_BENCH_STREAM_SMALL  (small corpus total apps, default 5000),
//        PINSCOPE_BENCH_STREAM_LARGE  (large corpus total apps, default 100000),
//        PINSCOPE_BENCH_STREAM_WARM   (warm-start corpus total apps, default 600),
//        PINSCOPE_BENCH_THREADS       (workers, default max(2, hardware)).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "bench_json.h"
#include "core/stream_export.h"
#include "core/stream_study.h"
#include "core/synthetic_corpus.h"
#include "obs/autopsy.h"
#include "obs/obs.h"
#include "obs/process.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"

namespace {

using namespace pinscope;

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

std::uint64_t PeakRss() { return obs::ReadPeakRssBytes().value_or(0); }

/// Streams `total_apps` synthetic apps in firehose mode (no rows retained);
/// returns wall milliseconds.
double TimedStream(std::size_t total_apps, int workers,
                   obs::Observer* observer,
                   obs::Telemetry* telemetry = nullptr,
                   obs::Timeline* timeline = nullptr,
                   const core::SyntheticCorpusConfig* corpus = nullptr) {
  core::SyntheticCorpusConfig config;
  if (corpus) config = *corpus;
  config.apps_per_platform = total_apps / 2;
  const core::SyntheticCorpusSource source(config);
  core::StudyOptions opts;
  opts.threads = workers;
  opts.observer = observer;
  opts.telemetry = telemetry;
  opts.timeline = timeline;
  // Every app carries a unique manifest/binary digest, so an in-run scan
  // cache can never hit twice — it would only accumulate one entry per app,
  // O(corpus) memory for zero hits. The firehose run streams without it
  // (the validation memo stays on: it is bounded by the host set and hits
  // constantly). Cache on/off never changes an exported byte (§9).
  opts.scan_cache = false;
  core::StreamExporter::Options eopts;
  eopts.retain_rows = false;
  core::StreamExporter exporter(eopts);
  const auto start = std::chrono::steady_clock::now();
  const core::StreamStudyResult run =
      core::RunStreamingStudy(source, opts, exporter);
  const auto end = std::chrono::steady_clock::now();
  if (run.apps != total_apps) {
    std::fprintf(stderr, "FATAL: streamed %zu of %zu apps\n", run.apps,
                 total_apps);
    std::exit(1);
  }
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// One full streaming pass over the warm-start corpus with `cache_dir`
/// persistence; leaves the JSON export (the equality guard) in `json_out`.
double TimedWarmablePass(const core::SyntheticCorpusSource& source, int workers,
                         const std::string& cache_dir, std::string* json_out) {
  core::StudyOptions opts;
  opts.threads = workers;
  opts.cache_dir = cache_dir;
  core::StreamExporter exporter;
  const auto start = std::chrono::steady_clock::now();
  (void)core::RunStreamingStudy(source, opts, exporter);
  const auto end = std::chrono::steady_clock::now();
  *json_out = exporter.FinishJson();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  const std::size_t small_apps =
      static_cast<std::size_t>(EnvInt("PINSCOPE_BENCH_STREAM_SMALL", 5000));
  const std::size_t large_apps =
      static_cast<std::size_t>(EnvInt("PINSCOPE_BENCH_STREAM_LARGE", 100000));
  const std::size_t warm_apps =
      static_cast<std::size_t>(EnvInt("PINSCOPE_BENCH_STREAM_WARM", 600));
  const int workers =
      EnvInt("PINSCOPE_BENCH_THREADS",
             static_cast<int>(std::max(2u, std::thread::hardware_concurrency())));

  // --- Claim 1: flat peak RSS, small corpus first (VmHWM is monotone). ----
  // Bounded tracing: the registry is fixed-size, but an unbounded trace
  // sink retains every per-app span — linear in corpus size, which is
  // exactly what this claim forbids. Capping the sink keeps the head of the
  // run inspectable while dropped spans are counted, not silently lost.
  obs::Observer observer;
  observer.trace().set_max_events(std::size_t{1} << 14);
  std::fprintf(stderr, "[pinscope] streaming %zu apps (%d workers)...\n",
               small_apps, workers);
  const double small_ms = TimedStream(small_apps, workers, &observer);
  const std::uint64_t small_peak = PeakRss();
  std::fprintf(stderr, "[pinscope] %zu apps: %.0f ms, peak RSS %.1f MiB\n",
               small_apps, small_ms, small_peak / (1024.0 * 1024.0));

  // The large run carries the flight recorder: a 100 ms sampler whose ring
  // holds the whole run, so BENCH_stream.json can embed the sampled
  // RSS/progress timeline — the flat-RSS claim as a curve, not one number.
  obs::TelemetryOptions topts;
  topts.interval_ms = 100;
  topts.ring_capacity = 1 << 16;
  obs::Telemetry telemetry(&observer.metrics(), topts);
  std::fprintf(stderr, "[pinscope] streaming %zu apps (%d workers)...\n",
               large_apps, workers);
  telemetry.Start();
  const double large_ms = TimedStream(large_apps, workers, &observer,
                                      &telemetry);
  telemetry.Stop();
  const std::uint64_t large_peak = PeakRss();
  std::fprintf(stderr, "[pinscope] %zu apps: %.0f ms, peak RSS %.1f MiB\n",
               large_apps, large_ms, large_peak / (1024.0 * 1024.0));

  const double rss_ratio =
      small_peak > 0 ? static_cast<double>(large_peak) / small_peak : 0.0;
  const bool flat = small_peak > 0 && rss_ratio <= 2.0;
  if (!flat) {
    std::fprintf(stderr,
                 "WARNING: peak RSS grew %.2fx from %zu to %zu apps "
                 "(streaming should keep it flat)\n",
                 rss_ratio, small_apps, large_apps);
  }

  // --- Claim 3: timeline-fed autopsy costs <2% of a streaming run. --------
  // Min-of-N with and without a timeline attached, over a corpus whose
  // stage bodies do real work: unique payloads with embedded PEM blocks,
  // so every scan pays a parse like a real app bundle would. The record
  // path is a constant ~hundreds of ns per interval; against the default
  // 4 KiB shared-payload corpus (µs-scale no-op stages) that constant
  // reads as several percent, which measures the microbenchmark, not the
  // instrument. The per-interval cost is reported alongside so the
  // constant itself stays gated too. The analyzed autopsy of the last
  // instrumented pass rides along as evidence the bounded reservoir still
  // reconstructs a critical path at this scale.
  const std::size_t autopsy_apps = static_cast<std::size_t>(
      EnvInt("PINSCOPE_BENCH_STREAM_AUTOPSY", 2000));
  const int autopsy_reps = EnvInt("PINSCOPE_BENCH_STREAM_AUTOPSY_REPS", 5);
  core::SyntheticCorpusConfig autopsy_corpus;
  autopsy_corpus.payload_bytes = 32768;
  autopsy_corpus.unique_payload = true;
  autopsy_corpus.pem_certs_in_payload = 2;
  std::unique_ptr<obs::Timeline> autopsy_timeline;
  double autopsy_base_ms = 0.0, autopsy_timeline_ms = 0.0;
  std::fprintf(stderr,
               "[pinscope] autopsy overhead: %zu apps, timeline off vs on...\n",
               autopsy_apps);
  (void)TimedStream(autopsy_apps, workers, nullptr, nullptr, nullptr,
                    &autopsy_corpus);  // warm allocator/page cache
  for (int rep = 0; rep < autopsy_reps; ++rep) {
    const double off = TimedStream(autopsy_apps, workers, nullptr, nullptr,
                                   nullptr, &autopsy_corpus);
    // Fresh timeline per instrumented rep so the reported autopsy describes
    // exactly one run, not two overlaid ones.
    autopsy_timeline = std::make_unique<obs::Timeline>();
    const double on = TimedStream(autopsy_apps, workers, nullptr, nullptr,
                                  autopsy_timeline.get(), &autopsy_corpus);
    autopsy_base_ms = rep == 0 ? off : std::min(autopsy_base_ms, off);
    autopsy_timeline_ms = rep == 0 ? on : std::min(autopsy_timeline_ms, on);
  }
  const double autopsy_overhead_pct =
      autopsy_base_ms > 0.0
          ? (autopsy_timeline_ms - autopsy_base_ms) / autopsy_base_ms * 100.0
          : 0.0;
  const obs::Autopsy autopsy = obs::Analyze(*autopsy_timeline);
  const double record_ns_per_interval =
      autopsy.intervals_seen > 0
          ? std::max(0.0, autopsy_timeline_ms - autopsy_base_ms) * 1e6 /
                static_cast<double>(autopsy.intervals_seen)
          : 0.0;
  // The path length/weight over a *sampled* reservoir varies run to run
  // (which intervals survive sampling decides where the walk can reach),
  // so the JSON reports the unitless share of wall — informational, never
  // a gate — while the absolute numbers go to stderr for the operator.
  const double critical_path_share =
      autopsy.wall_us > 0.0 ? autopsy.critical_path_us / autopsy.wall_us : 0.0;
  std::fprintf(stderr,
               "[pinscope] autopsy: off %.0f ms, on %.0f ms (%+.2f%%, "
               "%.0f ns/interval), critical path %zu segments / %.0f us\n",
               autopsy_base_ms, autopsy_timeline_ms, autopsy_overhead_pct,
               record_ns_per_interval, autopsy.critical_path.size(),
               autopsy.critical_path_us);

  // --- Claim 2: warm start from persisted caches. -------------------------
  core::SyntheticCorpusConfig warm_config;
  warm_config.apps_per_platform = warm_apps / 2;
  warm_config.unique_payload = true;
  warm_config.pin_strings_in_payload = 8000;
  warm_config.payload_bytes = 4096;
  const core::SyntheticCorpusSource warm_source(warm_config);

  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "pinscope_bench_stream_cache";
  std::filesystem::remove_all(cache_dir);

  std::string cold_json, warm_json;
  std::fprintf(stderr, "[pinscope] cold pass over %zu unique-payload apps...\n",
               warm_apps);
  const double cold_ms =
      TimedWarmablePass(warm_source, workers, cache_dir.string(), &cold_json);
  std::fprintf(stderr, "[pinscope] warm pass (persisted caches)...\n");
  const double warm_ms =
      TimedWarmablePass(warm_source, workers, cache_dir.string(), &warm_json);
  std::filesystem::remove_all(cache_dir);

  if (cold_json != warm_json) {
    std::fprintf(stderr, "FATAL: warm run exported different bytes than cold\n");
    return 1;
  }
  const double warm_speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  std::fprintf(stderr,
               "[pinscope] cold %.0f ms, warm %.0f ms (%.2fx), exports "
               "byte-identical\n",
               cold_ms, warm_ms, warm_speedup);

  if (const std::size_t trace_dropped = observer.trace().DroppedCount();
      trace_dropped > 0) {
    std::fprintf(stderr,
                 "[pinscope] trace buffer full: %zu span(s) dropped beyond "
                 "the %zu-event cap (counted, not silent)\n",
                 trace_dropped, observer.trace().max_events());
  }

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"benchmark\": \"stream_study\",\n"
      "  \"workers\": %d,\n"
      "  \"streaming\": {\"small_apps\": %zu, \"small_ms\": %.3f,\n"
      "                \"small_peak_rss_bytes\": %llu,\n"
      "                \"large_apps\": %zu, \"large_ms\": %.3f,\n"
      "                \"large_peak_rss_bytes\": %llu,\n"
      "                \"rss_ratio\": %.3f, \"flat_within_2x\": %s},\n"
      "  \"warm_start\": {\"apps\": %zu, \"cold_ms\": %.3f, \"warm_ms\": %.3f,\n"
      "                 \"speedup\": %.2f, \"exports_byte_identical\": true},\n"
      "  \"autopsy\": {\"apps\": %zu, \"baseline_ms\": %.3f,\n"
      "              \"timeline_ms\": %.3f, \"overhead_pct\": %.2f,\n"
      "              \"within_2pct\": %s,\n"
      "              \"record_cost_ns_per_interval\": %.0f,\n"
      "              \"critical_path_segments\": %zu,\n"
      "              \"critical_path_share\": %.3f,\n"
      "              \"intervals_seen\": %llu, \"intervals_sampled\": %llu,\n"
      "              \"reservoir_bytes\": %zu},\n",
      workers, small_apps, small_ms,
      static_cast<unsigned long long>(small_peak), large_apps, large_ms,
      static_cast<unsigned long long>(large_peak), rss_ratio,
      flat ? "true" : "false", warm_apps, cold_ms, warm_ms, warm_speedup,
      autopsy_apps, autopsy_base_ms, autopsy_timeline_ms, autopsy_overhead_pct,
      autopsy_overhead_pct <= 2.0 ? "true" : "false", record_ns_per_interval,
      autopsy.critical_path.size(), critical_path_share,
      static_cast<unsigned long long>(autopsy.intervals_seen),
      static_cast<unsigned long long>(autopsy.intervals_sampled),
      autopsy_timeline->ReservoirCapacityBytes());

  // The sampled timeline of the large run rides along in the head (which
  // must keep ending in ",\n" for the shared phases/process embedding).
  std::string head = json;
  head += "  \"timeline\": " + telemetry.TimelineJson() + ",\n";
  return bench::WriteBenchJsonWithPhases("BENCH_stream.json", head,
                                         observer.metrics().Snapshot());
}

// Figure 2: pinning in the Common dataset, split by platform and
// consistency verdict.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Figure 2 — pinning consistency in Common apps").c_str());
  std::printf(
      "Paper: 69 apps pin on ≥1 platform — 27 on both (15 consistent, of which\n"
      "13 identical; 6 inconsistent; 6 inconclusive), 20 Android-only\n"
      "(10 inconsistent / 10 inconclusive), 22 iOS-only (7 / 15).\n\n");

  int both = 0, android_only = 0, ios_only = 0;
  int both_consistent = 0, both_identical = 0, both_inconsistent = 0,
      both_inconclusive = 0;
  int a_inc = 0, a_incl = 0, i_inc = 0, i_incl = 0;
  for (const core::PairAnalysis& pa : core::AnalyzeCommonPairs(study)) {
    switch (pa.mode) {
      case core::PairAnalysis::Mode::kNone:
        break;
      case core::PairAnalysis::Mode::kBoth:
        ++both;
        if (pa.verdict == core::PairAnalysis::Verdict::kConsistent) {
          ++both_consistent;
          if (pa.identical_sets) ++both_identical;
        } else if (pa.verdict == core::PairAnalysis::Verdict::kInconsistent) {
          ++both_inconsistent;
        } else {
          ++both_inconclusive;
        }
        break;
      case core::PairAnalysis::Mode::kAndroidOnly:
        ++android_only;
        (pa.verdict == core::PairAnalysis::Verdict::kInconsistent ? a_inc : a_incl)++;
        break;
      case core::PairAnalysis::Mode::kIosOnly:
        ++ios_only;
        (pa.verdict == core::PairAnalysis::Verdict::kInconsistent ? i_inc : i_incl)++;
        break;
    }
  }

  report::TextTable table;
  table.SetHeader({"Group", "Apps", "Consistent", "Inconsistent", "Inconclusive"});
  table.AddRow({"Pins on both platforms", std::to_string(both),
                std::to_string(both_consistent) + " (identical: " +
                    std::to_string(both_identical) + ")",
                std::to_string(both_inconsistent), std::to_string(both_inconclusive)});
  table.AddRow({"Pins on Android only", std::to_string(android_only), "-",
                std::to_string(a_inc), std::to_string(a_incl)});
  table.AddRow({"Pins on iOS only", std::to_string(ios_only), "-",
                std::to_string(i_inc), std::to_string(i_incl)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("Total apps pinning on at least one platform: %d\n",
              both + android_only + ios_only);
  std::printf("Shape check: fewer than half of both-platform pinners are fully\n"
              "consistent — the paper's central consistency finding.\n");
  return 0;
}

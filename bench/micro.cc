// Microbenchmarks of the pipeline's hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include <memory>

#include "appmodel/android_package.h"
#include "core/study.h"
#include "crypto/sha256.h"
#include "dynamicanalysis/detector.h"
#include "dynamicanalysis/pipeline.h"
#include "dynamicanalysis/sim_fixtures.h"
#include "net/mitm_proxy.h"
#include "appmodel/ios_package.h"
#include "staticanalysis/ios_decrypt.h"
#include "staticanalysis/nsc_analyzer.h"
#include "staticanalysis/scan_cache.h"
#include "staticanalysis/scanner.h"
#include "store/generator.h"
#include "tls/handshake.h"
#include "util/rng.h"
#include "x509/issuer.h"
#include "x509/pem.h"
#include "x509/validation.h"

namespace {

using namespace pinscope;

void BM_Sha256_1KiB(benchmark::State& state) {
  const util::Bytes data(1024, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_ChainValidation(benchmark::State& state) {
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.globaltrust");
  util::Rng rng(1);
  x509::IssueSpec spec;
  spec.subject.set_common_name("bench.example.com");
  spec.san_dns = {"bench.example.com"};
  spec.not_before = -util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  const x509::CertificateChain chain = {ca.Issue(spec, rng), ca.certificate()};
  const x509::RootStore store = x509::PublicCaCatalog::Instance().MozillaStore();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        x509::ValidateChain(chain, "bench.example.com", 0, store));
  }
}
BENCHMARK(BM_ChainValidation);

void BM_HandshakeSimulation(benchmark::State& state) {
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.digisign");
  util::Rng rng(2);
  x509::IssueSpec spec;
  spec.subject.set_common_name("hs.example.com");
  spec.san_dns = {"hs.example.com"};
  spec.not_before = -util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  tls::ServerEndpoint server;
  server.hostname = "hs.example.com";
  server.chain = {ca.Issue(spec, rng), ca.certificate()};
  const x509::RootStore store = x509::PublicCaCatalog::Instance().MozillaStore();
  tls::ClientTlsConfig client;
  client.root_store = &store;
  tls::AppPayload payload;
  payload.plaintext = "POST /v1/collect session=1";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tls::SimulateDirectConnection(client, server, payload, 0, rng));
  }
}
BENCHMARK(BM_HandshakeSimulation);

void BM_MitmIntercept(benchmark::State& state) {
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.nimbus");
  util::Rng rng(3);
  x509::IssueSpec spec;
  spec.subject.set_common_name("mitm.example.com");
  spec.san_dns = {"mitm.example.com"};
  spec.not_before = -util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  tls::ServerEndpoint server;
  server.hostname = "mitm.example.com";
  server.chain = {ca.Issue(spec, rng), ca.certificate()};
  net::MitmProxy proxy;
  x509::RootStore store = x509::PublicCaCatalog::Instance().MozillaStore();
  store.AddRoot(proxy.CaCertificate());
  tls::ClientTlsConfig client;
  client.root_store = &store;
  tls::AppPayload payload;
  payload.plaintext = "GET /";
  for (auto _ : state) {
    benchmark::DoNotOptimize(proxy.Intercept(client, server, payload, 0, rng));
  }
}
BENCHMARK(BM_MitmIntercept);

appmodel::PackageFiles BenchPackage(int smali_files) {
  appmodel::AppMetadata meta;
  meta.app_id = "com.bench.app";
  meta.display_name = "Bench";
  meta.platform = appmodel::Platform::kAndroid;
  appmodel::AndroidPackageBuilder builder(meta);
  util::Rng rng(4);
  for (int i = 0; i < smali_files; ++i) {
    builder.AddSmaliString("com/bench/pkg" + std::to_string(i), "Api.smali",
                           "https://api" + std::to_string(i) + ".bench.com/v1");
  }
  builder.AddSmaliString("com/bench/net", "Pinner.smali",
                         "sha256/" + std::string(43, 'Q') + "=");
  builder.AddNativeLib("libbench.so", {"noise", "more-noise-strings"}, rng);
  return builder.Build();
}

void BM_ScannerPackage(benchmark::State& state) {
  const appmodel::PackageFiles package =
      BenchPackage(static_cast<int>(state.range(0)));
  const staticanalysis::Scanner scanner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.Scan(package));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(package.TotalBytes()));
}
BENCHMARK(BM_ScannerPackage)->Arg(8)->Arg(64)->Arg(256);

// A duplicated-SDK corpus: every app carries the same SDK payload (smali
// pin config, API client, bundled PEM chain) plus a handful of app-unique
// files — the sharing profile the content-hash scan cache is built for.
std::vector<appmodel::PackageFiles> DuplicatedSdkCorpus(int apps) {
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.globaltrust");
  const std::string sdk_pin = "sha256/" + std::string(43, 'S') + "=";
  // The SDK's native half: one prebuilt .so, byte-identical in every app,
  // with the dense symbol/string table a real stripped library still has.
  std::vector<std::string> sdk_symbols = {sdk_pin, "https://telemetry.vendor.com"};
  for (int sym = 0; sym < 4000; ++sym) {
    sdk_symbols.push_back("_ZN6vendor9analytics" + std::to_string(sym) + "Ev");
  }
  util::Rng blob_rng(1);
  const util::Bytes sdk_blob =
      appmodel::RenderBinaryWithStrings(sdk_symbols, blob_rng, 48 * 1024);
  // And its vendored CA bundle: ~130 anchors like a real cacert.pem,
  // shipped (as SDKs tend to) under a non-certificate extension, so every
  // uncached pass PEM-decodes and parses each certificate from content.
  std::string ca_bundle;
  for (int c = 0; c < 130; ++c) {
    x509::IssueSpec spec;
    spec.subject.set_common_name("Bundle Root CA " + std::to_string(c));
    ca_bundle += x509::PemEncode(
        x509::CertificateIssuer::SelfSignedLeaf("bundle:" + std::to_string(c), spec));
  }
  std::vector<appmodel::PackageFiles> corpus;
  corpus.reserve(static_cast<std::size_t>(apps));
  for (int a = 0; a < apps; ++a) {
    appmodel::AppMetadata meta;
    meta.app_id = "com.bench.dup" + std::to_string(a);
    meta.display_name = "Dup" + std::to_string(a);
    meta.platform = appmodel::Platform::kAndroid;
    appmodel::AndroidPackageBuilder builder(meta);
    // Shared across every app: identical bytes, identical paths.
    builder.AddSmaliString("com/vendor/analytics", "PinningConfig.smali", sdk_pin);
    for (int f = 0; f < 24; ++f) {
      builder.AddSmaliString("com/vendor/analytics/impl" + std::to_string(f),
                             "Api.smali",
                             "https://telemetry.vendor.com/v2/e" + std::to_string(f));
    }
    builder.AddCertificateFile("assets/sdk", "vendor_root", ca.certificate(),
                               appmodel::CertFileFormat::kPem);
    // App-unique tail: always a cache miss.
    builder.AddSmaliString("com/bench/dup" + std::to_string(a), "Main.smali",
                           "https://api.dup" + std::to_string(a) + ".com/v1");
    builder.AddAsset("assets/config.json",
                     "{\"app\":\"dup" + std::to_string(a) + "\"}");
    appmodel::PackageFiles files = builder.Build();
    files.Add("lib/arm64-v8a/libvendorsdk.so", sdk_blob);
    files.AddText("assets/sdk/ca_bundle.dat", ca_bundle);
    corpus.push_back(std::move(files));
  }
  return corpus;
}

// The cache headline: one corpus scanned end to end, without (arg 0) and
// with (arg 1) a shared ScanCache. The cache is recreated every iteration,
// so warm-up hits inside one pass are the only hits — exactly the shape of
// a real study run.
void BM_StaticScan(benchmark::State& state) {
  static const std::vector<appmodel::PackageFiles> corpus = DuplicatedSdkCorpus(64);
  const bool use_cache = state.range(0) != 0;
  const staticanalysis::Scanner scanner;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    staticanalysis::ScanCache cache;
    bytes = 0;
    for (const auto& package : corpus) {
      const staticanalysis::ScanResult result =
          scanner.Scan(package, use_cache ? &cache : nullptr);
      bytes += static_cast<std::int64_t>(result.bytes_scanned);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  state.SetLabel(use_cache ? "cache" : "no-cache");
}
BENCHMARK(BM_StaticScan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PinRegexFindAll(benchmark::State& state) {
  const staticanalysis::Regex re("sha(1|256)/[a-zA-Z0-9+/=]{28,64}");
  std::string haystack;
  for (int i = 0; i < 200; ++i) {
    haystack += "const-string v0, \"https://endpoint" + std::to_string(i) + ".com\"\n";
  }
  haystack += "sha256/" + std::string(43, 'R') + "=";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.FindAll(haystack));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(haystack.size()));
}
BENCHMARK(BM_PinRegexFindAll);

// The literal-anchor prefilter on a pin-free megabyte — the common case for
// scanned app content. Arg selects the anchor shape: 0 = prefix literal
// ("sha..."), 1 = interior literal behind a group (invisible to the old
// prefix-only prefilter), 2 = no extractable literal (pure backtracking
// floor, unchanged by this work).
void BM_RegexScan1MiB(benchmark::State& state) {
  static const std::string haystack = [] {
    std::string s;
    s.reserve(1 << 20);
    util::Rng rng(8);
    while (s.size() < (1 << 20)) {
      s += "const-string v" + std::to_string(rng.UniformInt(0, 9)) +
           ", \"https://host" + std::to_string(rng.UniformInt(0, 9999)) +
           ".example.com/path\"\n";
    }
    return s;
  }();
  static const staticanalysis::Regex patterns[] = {
      staticanalysis::Regex("sha(1|256)/[a-zA-Z0-9+/=]{28,64}"),
      staticanalysis::Regex("(-----BEGIN |-----END )CERTIFICATE-----"),
      staticanalysis::Regex("[a-z]+[0-9]{4}[a-z]+"),
  };
  const staticanalysis::Regex& re = patterns[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.FindAll(haystack));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(haystack.size()));
}
BENCHMARK(BM_RegexScan1MiB)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_UsedConnectionClassification(benchmark::State& state) {
  net::Flow flow;
  flow.version = tls::TlsVersion::kTls13;
  flow.sni = "x.com";
  for (int i = 0; i < 12; ++i) {
    flow.records.push_back({tls::Direction::kClientToServer,
                            tls::ContentType::kApplicationData,
                            tls::ContentType::kApplicationData, 512u, {}, i});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamicanalysis::IsUsedConnection(flow));
  }
}
BENCHMARK(BM_UsedConnectionClassification);

void BM_ResumedHandshake(benchmark::State& state) {
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.veridian");
  util::Rng rng(5);
  x509::IssueSpec spec;
  spec.subject.set_common_name("resume.bench.com");
  spec.san_dns = {"resume.bench.com"};
  spec.not_before = -util::kMillisPerDay;
  spec.not_after = util::kMillisPerYear;
  tls::ServerEndpoint server;
  server.hostname = "resume.bench.com";
  server.chain = {ca.Issue(spec, rng), ca.certificate()};
  const x509::RootStore store = x509::PublicCaCatalog::Instance().MozillaStore();
  tls::ClientTlsConfig client;
  client.root_store = &store;
  tls::AppPayload payload;
  payload.plaintext = "GET /";
  const auto full = tls::SimulateDirectConnection(client, server, payload, 0, rng);
  const tls::SessionTicket ticket = *full.ticket;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tls::SimulateResumedConnection(client, server, ticket, payload, 0, rng));
  }
}
BENCHMARK(BM_ResumedHandshake);

void BM_NscParse(benchmark::State& state) {
  appmodel::AppMetadata meta;
  meta.app_id = "com.bench.nsc";
  meta.display_name = "Bench";
  meta.platform = appmodel::Platform::kAndroid;
  std::vector<appmodel::NscDomainConfig> configs;
  for (int i = 0; i < 8; ++i) {
    appmodel::NscDomainConfig cfg;
    cfg.domain = "host" + std::to_string(i) + ".bench.com";
    cfg.include_subdomains = true;
    cfg.pin_strings = {"sha256/" + std::string(43, 'Z') + "="};
    configs.push_back(std::move(cfg));
  }
  const appmodel::PackageFiles apk =
      appmodel::AndroidPackageBuilder(meta).WithNsc(configs).Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(staticanalysis::AnalyzeNsc(apk));
  }
}
BENCHMARK(BM_NscParse);

void BM_IpaDecryption(benchmark::State& state) {
  appmodel::AppMetadata meta;
  meta.app_id = "com.bench.ipa";
  meta.display_name = "BenchIpa";
  meta.platform = appmodel::Platform::kIos;
  util::Rng rng(6);
  appmodel::IosPackageBuilder builder(meta);
  for (int i = 0; i < 30; ++i) {
    builder.AddMainBinaryString("string payload number " + std::to_string(i));
  }
  const appmodel::PackageFiles ipa = builder.Build(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(staticanalysis::DecryptIpa(
        ipa, "com.bench.ipa", staticanalysis::DecryptionDevice{}));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ipa.TotalBytes()));
}
BENCHMARK(BM_IpaDecryption);

// Serial-vs-parallel full-study throughput: the same ecosystem analyzed end
// to end (static scan + two dynamic runs + circumvention + PII per app) at
// thread counts 1, 4, and hardware concurrency. Results are byte-identical
// across arguments (tests/core/parallel_study_test.cc); only wall time
// changes, and only as far as the machine has cores to offer.
void BM_FullStudy(benchmark::State& state) {
  static const store::Ecosystem eco = [] {
    store::EcosystemConfig config;
    config.seed = 42;
    config.scale = 0.05;
    return store::Ecosystem::Generate(config);
  }();

  const int threads = static_cast<int>(state.range(0));
  std::size_t apps = 0;
  for (auto _ : state) {
    core::StudyOptions opts;
    opts.threads = threads;
    opts.dynamic.parallel_phases = threads != 1;
    core::Study study(eco, opts);
    study.Run();
    apps = study.AllResults(appmodel::Platform::kAndroid).size() +
           study.AllResults(appmodel::Platform::kIos).size();
    benchmark::DoNotOptimize(apps);
  }
  state.counters["apps"] = static_cast<double>(apps);
  state.counters["apps/s"] = benchmark::Counter(
      static_cast<double>(apps * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullStudy)
    ->Arg(1)
    ->Arg(4)
    ->Arg(0)  // 0 = hardware concurrency
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The sim-cache headline: the full dynamic pipeline over every app of a
// shared-destination ecosystem, without (arg 0) and with (arg 1) study
// fixtures. Fixtures are recreated every iteration, so the forged-leaf and
// validation caches start cold each pass — exactly a study's shape. Reports
// are identical across arguments (tests/core/sim_cache_equivalence_test.cc);
// only wall time changes.
void BM_DynamicPipeline(benchmark::State& state) {
  static const store::Ecosystem eco = [] {
    store::EcosystemConfig config;
    config.seed = 42;
    config.scale = 0.05;
    return store::Ecosystem::Generate(config);
  }();

  const bool use_fixtures = state.range(0) != 0;
  std::size_t pinned = 0;
  for (auto _ : state) {
    dynamicanalysis::DynamicOptions opts;
    std::unique_ptr<dynamicanalysis::SimFixtures> fixtures;
    if (use_fixtures) {
      fixtures = std::make_unique<dynamicanalysis::SimFixtures>(opts.seed);
      opts.fixtures = fixtures.get();
    }
    pinned = 0;
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      for (const appmodel::App& app : eco.apps(p)) {
        const dynamicanalysis::DynamicReport report =
            dynamicanalysis::RunDynamicAnalysis(app, eco.world(), opts);
        pinned += report.PinnedDestinations().size();
        benchmark::DoNotOptimize(report);
      }
    }
  }
  state.counters["pinned"] = static_cast<double>(pinned);
  state.SetLabel(use_fixtures ? "sim-cache" : "no-sim-cache");
}
BENCHMARK(BM_DynamicPipeline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PinPolicyEvaluate(benchmark::State& state) {
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.meridian");
  util::Rng rng(7);
  x509::IssueSpec spec;
  spec.subject.set_common_name("pins.bench.com");
  spec.san_dns = {"pins.bench.com"};
  const x509::CertificateChain chain = {ca.Issue(spec, rng), ca.certificate()};
  tls::PinPolicy policy;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    policy.AddRule({"host" + std::to_string(i) + ".bench.com", true,
                    {tls::Pin::ForCertificate(chain.back(),
                                              tls::PinForm::kSpkiSha256)}});
  }
  policy.AddRule({"pins.bench.com", false,
                  {tls::Pin::ForCertificate(chain.back(),
                                            tls::PinForm::kSpkiSha256)}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Evaluate("pins.bench.com", chain));
  }
}
BENCHMARK(BM_PinPolicyEvaluate)->Arg(1)->Arg(16)->Arg(128);

}  // namespace

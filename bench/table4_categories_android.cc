// Table 4: top-10 categories of pinning apps, Android.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Table 4 — top pinning categories, Android").c_str());
  std::printf(
      "Paper: Finance 22.99%% (20 apps) leads; then Social 17.81%% (13), Events,\n"
      "Dating, Food & Drink, Shopping, Comics, Automobile, Travel, Weather.\n\n");

  report::TextTable table;
  table.SetHeader({"Category (rank)", "Pinning %", "No. of Apps"});
  for (const core::CategoryPinningRow& row :
       core::ComputePinningByCategory(study, appmodel::Platform::kAndroid)) {
    table.AddRow({row.category + " (" + std::to_string(row.popularity_rank) + ")",
                  util::FormatDouble(row.pinning_pct, 2) + " %",
                  std::to_string(row.pinning_apps)});
  }
  std::printf("%s\n", table.Render().c_str());

  const auto rows = core::ComputePinningByCategory(study, appmodel::Platform::kAndroid);
  if (!rows.empty()) {
    std::printf("Shape check: top pinning category measured = %s (paper: Finance)\n",
                rows.front().category.c_str());
  }
  return 0;
}

// Table 8: weak ciphers advertised — all apps vs pinning apps' pinned
// connections.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Table 8 — weak ciphers in pinned vs all connections").c_str());
  std::printf(
      "Paper: Common  Android 8.35%% / 23.4%%;  iOS 93.39%% / 55.77%%\n"
      "       Popular Android 18.3%% / 1.49%%;  iOS 95.2%%  / 46.09%%\n"
      "       Random  Android 3.1%%  / 0.0%%;   iOS 82.6%%  / 52.94%%\n"
      "(columns: overall apps with a weak-cipher connection / pinning apps with a\n"
      " weak-cipher *pinned* connection)\n\n");

  report::TextTable table;
  table.SetHeader({"Dataset", "Platform", "Overall", "Pinning apps"});
  for (const store::DatasetId id : store::AllDatasets()) {
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      const core::CipherRow row = core::ComputeCiphers(study, id, p);
      table.AddRow({std::string(store::DatasetName(id)), std::string(PlatformName(p)),
                    util::FormatDouble(row.overall_pct, 2) + "%",
                    util::FormatDouble(row.pinning_apps_pct, 2) + "%"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape check: pinned connections disable weak suites more often than the\n"
      "overall population on iOS and on Popular/Random Android; the Common Android\n"
      "set is the paper's noted exception.\n");
  return 0;
}

// Shared setup for the table/figure reproduction harnesses.
//
// Every bench binary regenerates the ecosystem and runs the full measurement
// study, then prints paper-reported vs. measured values. The corpus scale is
// 1.0 (the paper's 5,079 apps) by default; set PINSCOPE_SCALE to trade
// fidelity for speed (e.g. PINSCOPE_SCALE=0.2).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/analyses.h"
#include "core/study.h"
#include "report/table.h"
#include "store/generator.h"
#include "util/strings.h"

namespace pinscope::bench {

inline double CorpusScale() {
  if (const char* env = std::getenv("PINSCOPE_SCALE")) {
    const double scale = std::atof(env);
    if (scale > 0.0 && scale <= 1.0) return scale;
  }
  return 1.0;
}

/// Worker threads for the shared study. Defaults to every hardware thread;
/// set PINSCOPE_THREADS=1 for a serial run. Any value produces the same
/// tables — the study is thread-count invariant.
inline int StudyThreads() {
  if (const char* env = std::getenv("PINSCOPE_THREADS")) {
    const int threads = std::atoi(env);
    if (threads >= 0) return threads;
  }
  return 0;
}

/// The corpus-wide scan cache is on by default; PINSCOPE_SCAN_CACHE=0
/// disables it (for before/after timing — the tables never change).
inline bool ScanCacheEnabled() {
  if (const char* env = std::getenv("PINSCOPE_SCAN_CACHE")) {
    return std::string(env) != "0" && std::string(env) != "off";
  }
  return true;
}

/// The shared (per-process) study: generated once, analyzed once.
inline const core::Study& GetStudy() {
  static const std::unique_ptr<core::Study> study = [] {
    store::EcosystemConfig config;
    config.seed = 42;
    config.scale = CorpusScale();
    std::fprintf(stderr, "[pinscope] generating ecosystem (scale %.2f)...\n",
                 config.scale);
    static store::Ecosystem eco = store::Ecosystem::Generate(config);
    core::StudyOptions opts;
    opts.threads = StudyThreads();
    opts.dynamic.parallel_phases = opts.threads != 1;
    opts.scan_cache = ScanCacheEnabled();
    std::fprintf(stderr, "[pinscope] running measurement pipeline (threads %d)...\n",
                 opts.threads);
    auto s = std::make_unique<core::Study>(eco, opts);
    s->Run();
    std::fprintf(stderr, "[pinscope] analysis ready.\n");
    return s;
  }();
  return *study;
}

/// "n (p%)" cell helper.
inline std::string CountPct(int count, int total) {
  if (total == 0) return "0";
  return util::Percent(static_cast<double>(count) / total, 2) + " (" +
         std::to_string(count) + ")";
}

}  // namespace pinscope::bench

// Table 3: certificate-pinning prevalence per detection technique.
//
// The paper's headline result: dynamic analysis finds far more pinning than
// the NSC-based technique of prior work, and static embedded-certificate
// search flags even more potential pinning.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Table 3 — pinning prevalence by technique").c_str());
  std::printf(
      "Paper: Common  Android 8.17%%(47) / 26.96%%(155) / 2.78%%(16); iOS 8.52%%(49) / 22.96%%(132) / -\n"
      "       Popular Android 6.7%%(67)  / 19.7%%(197)  / 1.8%%(18);  iOS 11.4%%(114) / 33.4%%(334) / -\n"
      "       Random  Android 0.9%%(9)   / 9.9%%(99)    / 0.6%%(6);   iOS 2.5%%(25)   / 9.5%%(95)   / -\n\n");

  report::TextTable table;
  table.SetHeader({"Dataset", "Platform", "Dynamic", "Embedded certs (static)",
                   "Config files (prior work)"});
  for (const store::DatasetId id : store::AllDatasets()) {
    for (const appmodel::Platform p :
         {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
      const core::PrevalenceRow row = core::ComputePrevalence(study, id, p);
      table.AddRow({std::string(store::DatasetName(id)) +
                        " (n=" + std::to_string(row.total) + ")",
                    std::string(PlatformName(p)),
                    bench::CountPct(row.dynamic_pinning, row.total),
                    bench::CountPct(row.embedded_static, row.total),
                    p == appmodel::Platform::kAndroid
                        ? bench::CountPct(row.config_pinning, row.total)
                        : std::string("-")});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // The headline ratio: dynamic vs prior-work NSC detection on Android.
  const auto popular = core::ComputePrevalence(study, store::DatasetId::kPopular,
                                               appmodel::Platform::kAndroid);
  if (popular.config_pinning > 0) {
    std::printf("Dynamic/NSC detection ratio (Android Popular): %.1fx "
                "(paper reports up to 4x more pinning than prior studies)\n",
                static_cast<double>(popular.dynamic_pinning) / popular.config_pinning);
  }
  return 0;
}

// Static-scan cache throughput harness.
//
// Scans a duplicated-SDK corpus (every app ships the same SDK smali, API
// client stubs and bundled PEM chain, plus a few app-unique files) end to
// end with the content-hash scan cache off and on, and writes the results
// as machine-readable JSON to BENCH_static_scan.json so CI can track the
// speedup over time.
//
// A second dimension compares the content-scan inner loop itself: the same
// uncached corpus pass with the SIMD multi-literal prefilter (one batched
// sweep for the PEM marker + pin anchor, see staticanalysis/prefilter.h)
// against the legacy per-pattern anchor sweep (PINSCOPE_NO_PREFILTER), with
// a result-equality guard — the two scanners must find identical pins.
//
// Knobs: PINSCOPE_BENCH_APPS (corpus size, default 64),
//        PINSCOPE_BENCH_REPS (timed repetitions, default 5; best rep wins).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "appmodel/android_package.h"
#include "bench_json.h"
#include "obs/metrics.h"
#include "staticanalysis/scan_cache.h"
#include "staticanalysis/scanner.h"
#include "util/rng.h"
#include "x509/issuer.h"
#include "x509/pem.h"
#include "x509/root_store.h"

namespace {

using namespace pinscope;

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

std::vector<appmodel::PackageFiles> DuplicatedSdkCorpus(int apps) {
  const auto& ca = x509::PublicCaCatalog::Instance().ByLabel("ca.globaltrust");
  const std::string sdk_pin = "sha256/" + std::string(43, 'S') + "=";
  // The SDK's native half: one prebuilt .so, byte-identical in every app,
  // with the dense symbol/string table a real stripped library still has.
  std::vector<std::string> sdk_symbols = {sdk_pin, "https://telemetry.vendor.com"};
  for (int sym = 0; sym < 4000; ++sym) {
    sdk_symbols.push_back("_ZN6vendor9analytics" + std::to_string(sym) + "Ev");
  }
  util::Rng blob_rng(1);
  const util::Bytes sdk_blob =
      appmodel::RenderBinaryWithStrings(sdk_symbols, blob_rng, 48 * 1024);
  // And its vendored CA bundle: ~130 anchors like a real cacert.pem,
  // shipped (as SDKs tend to) under a non-certificate extension, so every
  // uncached pass PEM-decodes and parses each certificate from content.
  std::string ca_bundle;
  for (int c = 0; c < 130; ++c) {
    x509::IssueSpec spec;
    spec.subject.set_common_name("Bundle Root CA " + std::to_string(c));
    ca_bundle += x509::PemEncode(
        x509::CertificateIssuer::SelfSignedLeaf("bundle:" + std::to_string(c), spec));
  }
  std::vector<appmodel::PackageFiles> corpus;
  corpus.reserve(static_cast<std::size_t>(apps));
  for (int a = 0; a < apps; ++a) {
    appmodel::AppMetadata meta;
    meta.app_id = "com.bench.dup" + std::to_string(a);
    meta.display_name = "Dup" + std::to_string(a);
    meta.platform = appmodel::Platform::kAndroid;
    appmodel::AndroidPackageBuilder builder(meta);
    builder.AddSmaliString("com/vendor/analytics", "PinningConfig.smali", sdk_pin);
    for (int f = 0; f < 24; ++f) {
      builder.AddSmaliString("com/vendor/analytics/impl" + std::to_string(f),
                             "Api.smali",
                             "https://telemetry.vendor.com/v2/e" + std::to_string(f));
    }
    builder.AddCertificateFile("assets/sdk", "vendor_root", ca.certificate(),
                               appmodel::CertFileFormat::kPem);
    builder.AddSmaliString("com/bench/dup" + std::to_string(a), "Main.smali",
                           "https://api.dup" + std::to_string(a) + ".com/v1");
    builder.AddAsset("assets/config.json",
                     "{\"app\":\"dup" + std::to_string(a) + "\"}");
    appmodel::PackageFiles files = builder.Build();
    files.Add("lib/arm64-v8a/libvendorsdk.so", sdk_blob);
    files.AddText("assets/sdk/ca_bundle.dat", ca_bundle);
    corpus.push_back(std::move(files));
  }
  return corpus;
}

/// One full corpus pass; returns wall milliseconds. The cache (when given)
/// starts cold, as at the beginning of a study.
double TimedPass(const staticanalysis::Scanner& scanner,
                 const std::vector<appmodel::PackageFiles>& corpus,
                 staticanalysis::ScanCache* cache, std::size_t* pins_out) {
  const auto start = std::chrono::steady_clock::now();
  std::size_t pins = 0;
  for (const auto& package : corpus) {
    pins += scanner.Scan(package, cache).pins.size();
  }
  const auto end = std::chrono::steady_clock::now();
  *pins_out = pins;
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  const int apps = EnvInt("PINSCOPE_BENCH_APPS", 64);
  const int reps = EnvInt("PINSCOPE_BENCH_REPS", 5);

  std::fprintf(stderr, "[pinscope] building %d-app duplicated-SDK corpus...\n",
               apps);
  const std::vector<appmodel::PackageFiles> corpus = DuplicatedSdkCorpus(apps);
  std::size_t total_files = 0, total_bytes = 0;
  for (const auto& package : corpus) {
    total_files += package.size();
    total_bytes += package.TotalBytes();
  }

  const staticanalysis::Scanner scanner;
  // The legacy-sweep scanner for the prefilter dimension: the knob is read
  // at construction, so scope it to this one object.
  ::setenv("PINSCOPE_NO_PREFILTER", "1", 1);
  const staticanalysis::Scanner legacy_scanner;
  ::unsetenv("PINSCOPE_NO_PREFILTER");
  if (!scanner.prefilter_enabled() || legacy_scanner.prefilter_enabled()) {
    std::fprintf(stderr, "FATAL: prefilter knob wiring broken\n");
    return 1;
  }

  std::size_t pins_off = 0, pins_on = 0, pins_legacy = 0;
  double best_off = 0.0, best_on = 0.0, best_legacy = 0.0;
  staticanalysis::ScanCacheStats stats;
  // Per-phase wall-time histograms (one sample per rep), embedded into the
  // JSON below as the "phases" breakdown.
  obs::MetricsRegistry registry;
  for (int r = 0; r < reps; ++r) {
    double off = 0.0, on = 0.0, legacy = 0.0;
    {
      obs::ScopedTimer timer(
          obs::PhaseHistogramOrNull(&registry, "phase.scan_legacy_sweep"));
      legacy = TimedPass(legacy_scanner, corpus, nullptr, &pins_legacy);
    }
    {
      obs::ScopedTimer timer(
          obs::PhaseHistogramOrNull(&registry, "phase.scan_uncached"));
      off = TimedPass(scanner, corpus, nullptr, &pins_off);
    }
    staticanalysis::ScanCache cache;
    {
      obs::ScopedTimer timer(
          obs::PhaseHistogramOrNull(&registry, "phase.scan_cached"));
      on = TimedPass(scanner, corpus, &cache, &pins_on);
    }
    if (r == 0 || legacy < best_legacy) best_legacy = legacy;
    if (r == 0 || off < best_off) best_off = off;
    if (r == 0 || on < best_on) {
      best_on = on;
      stats = cache.Stats();
    }
    std::fprintf(stderr,
                 "[pinscope] rep %d: legacy sweep %.2f ms, "
                 "prefilter %.2f ms, cached %.2f ms\n",
                 r + 1, legacy, off, on);
  }
  if (pins_off != pins_on || pins_off != pins_legacy) {
    std::fprintf(stderr,
                 "FATAL: scan variants disagree (%zu prefilter, %zu cached, "
                 "%zu legacy pins)\n",
                 pins_off, pins_on, pins_legacy);
    return 1;
  }

  const double speedup = best_on > 0.0 ? best_off / best_on : 0.0;
  const double prefilter_speedup =
      best_off > 0.0 ? best_legacy / best_off : 0.0;
  char json[1536];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"benchmark\": \"static_scan\",\n"
      "  \"corpus\": {\"apps\": %d, \"files\": %zu, \"bytes\": %zu},\n"
      "  \"reps\": %d,\n"
      "  \"cache_off_ms\": %.3f,\n"
      "  \"cache_on_ms\": %.3f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"pins_found\": %zu,\n"
      "  \"prefilter\": {\"level\": \"%s\", \"legacy_sweep_ms\": %.3f,\n"
      "                \"prefilter_ms\": %.3f, \"speedup\": %.2f},\n"
      "  \"cache\": {\"lookups\": %zu, \"hits\": %zu, \"misses\": %zu,\n"
      "            \"entries\": %zu, \"bytes_deduped\": %zu, \"hit_rate\": %.4f},\n",
      apps, total_files, total_bytes, reps, best_off, best_on, speedup, pins_on,
      scanner.prefilter().level_name(), best_legacy, best_off,
      prefilter_speedup, stats.lookups, stats.hits, stats.misses, stats.entries,
      stats.bytes_deduped, stats.HitRate());

  return bench::WriteBenchJsonWithPhases("BENCH_static_scan.json", json,
                                         registry.Snapshot());
}

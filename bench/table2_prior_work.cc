// Table 2: prevalence reported by prior work, contrasted with this
// reproduction's own measurements using the corresponding techniques.
//
// The literature rows are constants from the paper; the "this pipeline" rows
// re-run (a) the NSC-only static technique of Possemato/Oltrogge and (b) the
// dynamic differential technique on our corpora, showing the same regime gap
// the paper highlights.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Table 2 — pinning prevalence in prior work").c_str());
  report::TextTable prior;
  prior.SetHeader({"Study", "Year", "Prevalence", "Analysis", "Dataset"});
  prior.AddRow({"Fahl et al.", "2012", "10%", "Dynamic", "20 high-profile Android apps"});
  prior.AddRow({"Oltrogge et al.", "2015", "0.07%", "Static", "639,283 Play Store apps"});
  prior.AddRow({"Razaghpanah et al.", "2017", "2%", "Dynamic", "7,258 Android apps in the wild"});
  prior.AddRow({"Stone et al.", "2017", "28%", "Dynamic", "135 security-sensitive apps"});
  prior.AddRow({"Possemato et al.", "2020", "0.62%", "Static", "16,332 apps using NSCs"});
  prior.AddRow({"Oltrogge et al.", "2021", "0.67%", "Static", "99,212 apps using NSCs"});
  std::printf("%s\n", prior.Render().c_str());

  std::printf("Same techniques, this pipeline's corpora (Android):\n");
  report::TextTable ours;
  ours.SetHeader({"Dataset", "NSC-only static (prior-work method)",
                  "Dynamic differential (this work)"});
  for (const store::DatasetId id : store::AllDatasets()) {
    const core::PrevalenceRow row =
        core::ComputePrevalence(study, id, appmodel::Platform::kAndroid);
    ours.AddRow({std::string(store::DatasetName(id)),
                 bench::CountPct(row.config_pinning, row.total),
                 bench::CountPct(row.dynamic_pinning, row.total)});
  }
  std::printf("%s\n", ours.Render().c_str());
  std::printf(
      "Shape check: the NSC-only technique lands in prior work's sub-3%% regime\n"
      "while the dynamic technique finds several times more pinning.\n");
  return 0;
}

// Table 9 + §4.3: PII in pinned vs non-pinned traffic, plus circumvention
// success rates.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "§4.3 — pinning circumvention success").c_str());
  std::printf("Paper: ≈51.51%% of pinned destinations circumvented on Android,\n"
              "       ≈66.15%% on iOS.\n\n");
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const core::CircumventionStats stats = core::ComputeCircumvention(study, p);
    std::printf("  %s: %d/%d unique pinned destinations circumvented (%.2f%%)\n",
                PlatformName(p).data(), stats.circumvented_unique,
                stats.pinned_unique, 100.0 * stats.Rate());
  }

  std::printf("%s", report::SectionHeader(
                        "Table 9 — PII in pinned vs non-pinned traffic").c_str());
  std::printf(
      "Paper: iOS Ad.ID 25.85%% vs 18.06%% (*significant*), City 0/0.94, State\n"
      "0/0.31, Lat./Lon. 0/0.04; Android Ad.ID 25.74%% vs 19.96%% (not significant),\n"
      "Email 0.99/0.52, State 0.99/1.12, City 0/0.45.\n\n");

  for (const appmodel::Platform p :
       {appmodel::Platform::kIos, appmodel::Platform::kAndroid}) {
    const core::PiiAnalysis pii = core::ComputePii(study, p);
    std::printf("%s (decrypted destinations: %d pinned, %d non-pinned):\n",
                PlatformName(p).data(), pii.pinned_dests, pii.non_pinned_dests);
    report::TextTable table;
    table.SetHeader({"PII", "Pinned", "Non-Pinned", "chi2", "p", "significant"});
    for (const core::PiiRow& row : pii.rows) {
      table.AddRow({std::string(appmodel::PiiTypeName(row.type)),
                    util::FormatDouble(row.pinned_pct, 2) + " %",
                    util::FormatDouble(row.non_pinned_pct, 2) + " %",
                    util::FormatDouble(row.test.statistic, 2),
                    util::FormatDouble(row.test.p_value, 4),
                    row.test.Significant() ? "yes (*)" : "no"});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Shape check: Ad-ID appears in both traffic classes with a pinned-side\n"
      "excess; no substantial presence of other identifiers — pinning is not\n"
      "primarily hiding (non-credential) PII collection.\n");
  return 0;
}

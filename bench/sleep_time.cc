// §4.2.1 — the sleep-time sweep: how many TLS handshakes a capture records
// at 15 s / 30 s / 60 s. The paper measured averages of 20.78, 23.5 and
// 24.62 on a small random app sample and picked 30 s as the point of
// diminishing returns.
#include <cstdio>

#include "common.h"
#include "dynamicanalysis/device.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();
  const store::Ecosystem& eco = study.ecosystem();

  std::printf("%s", report::SectionHeader(
                        "§4.2.1 — handshakes captured vs sleep time").c_str());
  std::printf("Paper: 20.78 (15 s), 23.5 (30 s), 24.62 (60 s) average TLS\n"
              "handshakes on a small random app sample; 30 s chosen.\n\n");

  // A small random sample of apps, like the paper's calibration experiment.
  util::Rng sample_rng(2021);
  report::TextTable table;
  table.SetHeader({"Platform", "15 s", "30 s", "60 s"});
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const auto& apps = eco.apps(p);
    const auto indices = sample_rng.SampleIndices(apps.size(), 40);
    const dynamicanalysis::DeviceEmulator device =
        p == appmodel::Platform::kAndroid
            ? dynamicanalysis::DeviceEmulator::Pixel3(nullptr)
            : dynamicanalysis::DeviceEmulator::IPhoneX(nullptr);

    std::vector<std::string> row = {std::string(PlatformName(p))};
    for (const int seconds : {15, 30, 60}) {
      double total = 0;
      for (std::size_t idx : indices) {
        dynamicanalysis::RunOptions opts;
        opts.capture_seconds = seconds;
        util::Rng rng(900 + idx);
        total += static_cast<double>(
            device.RunApp(apps[idx], eco.world(), opts, rng).flows.size());
      }
      row.push_back(util::FormatDouble(total / static_cast<double>(indices.size()), 2));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check: handshake counts rise with capture time with clearly\n"
              "diminishing returns after 30 s — the basis for the paper's choice.\n");
  return 0;
}

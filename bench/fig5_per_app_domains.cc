// Figure 5: per-app pinned vs not-pinned domains, first vs third party,
// for pinning apps of the Popular and Random datasets.
#include <cstdio>

#include "common.h"

namespace {

using namespace pinscope;

void PrintPlatform(const core::Study& study, appmodel::Platform p) {
  const auto profiles = core::ComputeDomainProfiles(study, p);
  std::printf("%s — %zu pinning apps (Popular + Random)\n", PlatformName(p).data(),
              profiles.size());

  int fp_pinners = 0, fp_contacting = 0, tp_pinners = 0, tp_all_pinned = 0,
      pins_all = 0;
  long pinned_first = 0, pinned_third = 0;
  // Stacked per-app bars like the paper's figure: P/p = pinned first/third
  // party, U/u = unpinned first/third party.
  std::size_t shown = 0;
  std::printf("  legend: P pinned-1st  p pinned-3rd  U unpinned-1st  u unpinned-3rd\n");
  for (const core::AppDomainProfile& prof : profiles) {
    if (prof.first_party_pinned + prof.first_party_unpinned > 0) ++fp_contacting;
    if (prof.first_party_pinned > 0) ++fp_pinners;
    if (prof.third_party_pinned > 0) {
      ++tp_pinners;
      if (prof.third_party_unpinned == 0) ++tp_all_pinned;
    }
    if (prof.PinsAll()) ++pins_all;
    pinned_first += prof.first_party_pinned;
    pinned_third += prof.third_party_pinned;
    if (shown < 16) {
      std::string bar;
      bar += std::string(static_cast<std::size_t>(prof.first_party_pinned), 'P');
      bar += std::string(static_cast<std::size_t>(prof.third_party_pinned), 'p');
      bar += std::string(static_cast<std::size_t>(prof.first_party_unpinned), 'U');
      bar += std::string(static_cast<std::size_t>(prof.third_party_unpinned), 'u');
      const int total = prof.Total();
      const double pct =
          total == 0 ? 0.0
                     : 100.0 * (prof.first_party_pinned + prof.third_party_pinned) /
                           total;
      std::printf("  %-24s |%-14s| %3.0f%% pinned\n", prof.app_id.c_str(),
                  bar.c_str(), pct);
      ++shown;
    }
  }
  std::printf("  (first %zu of %zu apps shown)\n\n", shown, profiles.size());
  std::printf("  apps pinning some first party:     %d (of %d contacting first party)\n",
              fp_pinners, fp_contacting);
  std::printf("  apps pinning some third party:     %d (all third parties pinned: %d)\n",
              tp_pinners, tp_all_pinned);
  std::printf("  apps pinning everything they contact: %d\n", pins_all);
  std::printf("  pinned destinations: %ld first-party vs %ld third-party\n\n",
              pinned_first, pinned_third);
}

}  // namespace

int main() {
  const core::Study& study = bench::GetStudy();
  std::printf("%s", report::SectionHeader(
                        "Figure 5 — pinned vs not-pinned domains per app").c_str());
  std::printf(
      "Paper: pinning is selective — most pinned destinations are third-party;\n"
      "Android apps contacting first party almost always pin all of it (one\n"
      "exception); only 5 Android and 4 iOS apps pin every domain they contact.\n\n");
  PrintPlatform(study, appmodel::Platform::kAndroid);
  PrintPlatform(study, appmodel::Platform::kIos);
  return 0;
}

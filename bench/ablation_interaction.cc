// Ablation: automated UI interaction (§4.2.1 / §5.6).
//
// The paper experimented with random UI interactions and "found no
// significant change in the number of domains contacted", so it ran without
// them — while acknowledging (§5.6) that uninteracted code paths may hide
// pinned connections. This bench quantifies both statements on our corpus.
#include <cstdio>

#include "common.h"
#include "dynamicanalysis/detector.h"
#include "dynamicanalysis/device.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();
  const store::Ecosystem& eco = study.ecosystem();

  std::printf("%s", report::SectionHeader(
                        "Ablation — automated UI interaction").c_str());
  std::printf("Paper: random interactions cause no significant change in domains\n"
              "contacted (§4.2.1); some pinned connections may hide behind\n"
              "uninteracted code paths (§5.6).\n\n");

  report::TextTable table;
  table.SetHeader({"Platform", "Avg domains (no interaction)",
                   "Avg domains (random interaction)", "Pinned dests missed"});
  for (const appmodel::Platform p :
       {appmodel::Platform::kAndroid, appmodel::Platform::kIos}) {
    const auto& apps = eco.apps(p);
    const dynamicanalysis::DeviceEmulator device =
        p == appmodel::Platform::kAndroid
            ? dynamicanalysis::DeviceEmulator::Pixel3(nullptr)
            : dynamicanalysis::DeviceEmulator::IPhoneX(nullptr);

    util::Rng sample_rng(4242);
    const auto indices = sample_rng.SampleIndices(apps.size(), 120);
    double domains_plain = 0, domains_interact = 0;
    int missed_pinned = 0;
    for (std::size_t idx : indices) {
      dynamicanalysis::RunOptions plain;
      dynamicanalysis::RunOptions interactive;
      interactive.interact = true;
      util::Rng r1(500 + idx), r2(500 + idx);
      const auto cap_plain = device.RunApp(apps[idx], eco.world(), plain, r1);
      const auto cap_inter = device.RunApp(apps[idx], eco.world(), interactive, r2);
      domains_plain += static_cast<double>(cap_plain.Destinations().size());
      domains_interact += static_cast<double>(cap_inter.Destinations().size());
    }
    // Ground-truth view of §5.6: pinned destinations unreachable without
    // interaction, across the whole platform corpus.
    for (const auto& app : apps) {
      for (const auto& dest : app.behavior.destinations) {
        if (dest.pinned && dest.requires_interaction) ++missed_pinned;
      }
    }

    const double n = static_cast<double>(indices.size());
    table.AddRow({std::string(PlatformName(p)),
                  util::FormatDouble(domains_plain / n, 2),
                  util::FormatDouble(domains_interact / n, 2),
                  std::to_string(missed_pinned)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check: the per-app domain-count difference is fractional —\n"
              "consistent with the paper's decision to skip interactions — while a\n"
              "handful of pinned destinations do hide behind interaction (§5.6).\n");
  return 0;
}

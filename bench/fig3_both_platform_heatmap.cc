// Figure 3: inconsistency heatmap for apps pinning on both platforms.
#include <cstdio>

#include "common.h"

int main() {
  using namespace pinscope;
  const core::Study& study = bench::GetStudy();

  std::printf("%s", report::SectionHeader(
                        "Figure 3 — inconsistent both-platform pinners").c_str());
  std::printf(
      "Paper rows (overlap / %%A-pinned-unpinned-on-iOS / %%iOS-pinned-unpinned-on-A):\n"
      "  Twitter 0.5/50/0, J.P. 0.25/0/75, TikTok 0/100/40, State 0/100/0,\n"
      "  Seamless 0/100/0, Jungle 0/0/100.\n\n");

  report::TextTable table;
  table.SetHeader({"App", "Pinned overlap (Jaccard)", "% A-pinned unpinned on iOS",
                   "% iOS-pinned unpinned on A"});
  int rows = 0;
  for (const core::PairAnalysis& pa : core::AnalyzeCommonPairs(study)) {
    if (pa.mode != core::PairAnalysis::Mode::kBoth ||
        pa.verdict != core::PairAnalysis::Verdict::kInconsistent) {
      continue;
    }
    table.AddRow({pa.name, util::FormatDouble(pa.jaccard, 2),
                  report::HeatCell(pa.android_pinned_unpinned_on_ios),
                  report::HeatCell(pa.ios_pinned_unpinned_on_android)});
    ++rows;
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%d inconsistent both-platform pinners (paper: 6 at full scale)\n",
              rows);
  return 0;
}
